//! Umbrella crate for the SLC reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests and downstream users can depend on a single `slc` crate:
//!
//! * [`slc_core`] — the paper's contribution: MAG-aware selective lossy
//!   compression (TSLC) layered on E2MC.
//! * [`slc_compress`] — lossless substrates: BDI, FPC, C-PACK, E2MC, BPC.
//! * [`slc_engine`] — batch compression engine: shards byte streams into
//!   chunks, compresses them in parallel and emits a self-describing
//!   framed container with chunk-parallel decode.
//! * [`slc_sim`] — trace-driven GPU memory-subsystem timing simulator.
//! * [`slc_workloads`] — the nine paper benchmarks, traces and error metrics.
//! * [`slc_power`] — energy/EDP model and the 32 nm RTL cost model.
//! * [`slc_exp`] — harness regenerating every table and figure.

#![forbid(unsafe_code)]

pub use slc_compress;
pub use slc_core;
pub use slc_engine;
pub use slc_exp;
pub use slc_power;
pub use slc_sim;
pub use slc_workloads;

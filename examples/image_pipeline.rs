//! Image pipeline: run the DCT benchmark under E2MC and SLC and compare
//! output quality against the DRAM traffic saved — the trade-off at the
//! heart of the paper.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use slc::slc_core::slc::SlcVariant;
use slc::slc_workloads::benchmarks::dct::Dct;
use slc::slc_workloads::{Harness, Scale, Scheme, Workload};

fn main() {
    let harness = Harness::new(Scale::Tiny);
    let dct = Dct::new(Scale::Tiny);
    println!("Preparing {} ({}) ...", dct.name(), dct.input_description());
    let artifacts = harness.prepare(&dct);

    let e2mc = Scheme::E2mc(artifacts.e2mc.clone());
    let (f_base, t_base) = harness.evaluate(&dct, &artifacts, &e2mc);

    println!(
        "{:>10}  {:>10}  {:>10}  {:>12}  {:>10}",
        "scheme", "bursts", "cycles", "image diff", "speedup"
    );
    println!(
        "{:>10}  {:>10}  {:>10}  {:>11}%  {:>10}",
        "E2MC",
        t_base.stats.total_bursts(),
        t_base.stats.cycles,
        f_base.error_pct,
        "1.000"
    );
    for variant in [SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt] {
        let scheme = Scheme::slc(artifacts.e2mc.clone(), harness.config.mag(), 16, variant);
        let (f, t) = harness.evaluate(&dct, &artifacts, &scheme);
        println!(
            "{:>10}  {:>10}  {:>10}  {:>11.4}%  {:>10.3}",
            variant.label(),
            t.stats.total_bursts(),
            t.stats.cycles,
            f.error_pct,
            t_base.stats.cycles as f64 / t.stats.cycles as f64
        );
    }
    println!("\nLower bursts at sub-percent image difference is SLC's bargain;");
    println!("TSLC-PRED/OPT recover most of TSLC-SIMP's quality loss via prediction.");
}

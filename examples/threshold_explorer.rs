//! Threshold explorer: sweep the programmer-specified lossy threshold for
//! one benchmark and watch the accuracy/traffic trade-off move — the knob
//! the paper's extended `cudaMalloc` exposes (§IV-C).
//!
//! ```sh
//! cargo run --release --example threshold_explorer [BENCH]
//! ```

use slc::slc_core::slc::SlcVariant;
use slc::slc_workloads::{workload_by_name, Harness, Scale, Scheme};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "NN".to_owned());
    let Some(w) = workload_by_name(&name, Scale::Tiny) else {
        eprintln!("unknown benchmark {name}; use JM/BS/DCT/FWT/TP/BP/NN/SRAD1/SRAD2");
        std::process::exit(1);
    };
    let harness = Harness::new(Scale::Tiny);
    println!("Benchmark {} ({}), metric {}", w.name(), w.input_description(), w.metric().label());
    let artifacts = harness.prepare(w.as_ref());
    let e2mc = Scheme::E2mc(artifacts.e2mc.clone());
    let (_, t_base) = harness.evaluate(w.as_ref(), &artifacts, &e2mc);

    println!("\n{:>10}  {:>12}  {:>10}  {:>10}", "threshold", "mean bursts", "speedup", "error");
    for threshold in [0u32, 2, 4, 8, 12, 16, 24, 32] {
        let scheme = Scheme::slc(
            artifacts.e2mc.clone(),
            harness.config.mag(),
            threshold,
            SlcVariant::TslcOpt,
        );
        let (f, t) = harness.evaluate(w.as_ref(), &artifacts, &scheme);
        println!(
            "{:>9}B  {:>12.3}  {:>10.3}  {:>9.4}%",
            threshold,
            f.bursts.mean_bursts(),
            t_base.stats.cycles as f64 / t.stats.cycles as f64,
            f.error_pct
        );
    }
    println!("\nA larger threshold approximates more blocks: traffic and cycles fall,");
    println!("error rises. The paper picks 16 B at MAG 32 B (and MAG/2 elsewhere).");
}

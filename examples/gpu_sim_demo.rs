//! GPU simulator demo: drive the timing model directly with a synthetic
//! streaming trace and watch bandwidth become cycles.
//!
//! ```sh
//! cargo run --release --example gpu_sim_demo
//! ```

use slc::slc_sim::mc::UniformBursts;
use slc::slc_sim::trace::TraceBuilder;
use slc::slc_sim::{Engine, GpuConfig};

fn main() {
    let cfg = GpuConfig::default();
    println!(
        "GTX580-like GPU: {} SMs @ {} MHz, {} channels, {:.1} GB/s, MAG {}",
        cfg.sms,
        cfg.sm_clock_mhz,
        cfg.channels(),
        cfg.bandwidth_gbps(),
        cfg.mag()
    );

    // A memory-bound streaming kernel: 16k blocks (2 MB), light math.
    let mut b = TraceBuilder::new(cfg.sms);
    b.stream_sweep(0, 16_384, 8, 2, None);
    let trace = b.build();

    println!(
        "\n{:>22}  {:>10}  {:>10}  {:>8}  {:>9}",
        "compression", "cycles", "bursts", "speedup", "BW util"
    );
    let base = Engine::new(cfg.clone()).run(&trace, &UniformBursts(4));
    for (label, bursts, compress, decompress) in [
        ("none (4 bursts)", 4u32, 0u64, 0u64),
        ("2x lossless (2+dec)", 2, 46, 20),
        ("4x lossless (1+dec)", 1, 46, 20),
    ] {
        let cfg_run = cfg.clone().with_codec_latency(compress, decompress);
        let stats = Engine::new(cfg_run).run(&trace, &UniformBursts(bursts));
        println!(
            "{:>22}  {:>10}  {:>10}  {:>8.3}  {:>8.1}%",
            label,
            stats.cycles,
            stats.total_bursts(),
            base.cycles as f64 / stats.cycles as f64,
            stats.achieved_bandwidth_gbps(cfg.mag().bytes(), cfg.sm_clock_mhz)
                / cfg.bandwidth_gbps()
                * 100.0
        );
    }
    println!("\nFor a bandwidth-bound kernel, halving bursts approaches a 2x speedup —");
    println!("the headroom SLC captures by rounding compressed blocks down to MAG multiples.");
}

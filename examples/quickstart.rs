//! Quickstart: compress one block with SLC and inspect every decision.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use slc::slc_compress::e2mc::{E2mc, E2mcConfig};
use slc::slc_compress::{BlockCompressor, Mag, BLOCK_BYTES};
use slc::slc_core::budget::ModeChoice;
use slc::slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant, StoredKind};

fn main() {
    // 1. Train the lossless E2MC baseline on traffic representative of
    //    the application (here: a smooth f32 field at sensor precision).
    let training: Vec<u8> = (0..1u32 << 16)
        .flat_map(|i| {
            let v = 1000.0 + ((i % 512) as f32) * 0.25;
            v.to_le_bytes()
        })
        .collect();
    let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());

    // 2. Wrap it with SLC: GDDR5 MAG (32 B), 16 B lossy threshold,
    //    TSLC-OPT (prediction + extra tree nodes).
    let config = SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt);
    let slc = SlcCompressor::new(e2mc.clone(), config);

    // 3. Compress a few blocks and show the Fig. 4 decision flow.
    println!(
        "{:>5}  {:>9}  {:>9}  {:>6}  {:>8}  {:>6}",
        "block", "lossless", "stored", "extra", "mode", "bursts"
    );
    for k in 0..8 {
        let mut block = [0u8; BLOCK_BYTES];
        for (i, c) in block.chunks_exact_mut(4).enumerate() {
            // On-grid sensor samples with occasional full-precision
            // outliers: the mix that lands blocks a few bytes above MAG.
            let mut v = 1000.0 + ((k * 37 + i) % 512) as f32 * 0.25;
            if i % (5 + k) == 0 {
                v += 0.001 * (i + 1) as f32;
            }
            c.copy_from_slice(&v.to_le_bytes());
        }
        let lossless_bits = e2mc.size_bits(&block);
        let enc = slc.compress(&block);
        let mode = match enc.kind() {
            StoredKind::Uncompressed => "verbat".to_owned(),
            StoredKind::Lossless => "lossls".to_owned(),
            StoredKind::Lossy { selection } => format!("lossy({})", selection.symbols),
        };
        println!(
            "{:>5}  {:>8}b  {:>8}b  {:>5}b  {:>8}  {:>6}",
            k,
            lossless_bits,
            enc.size_bits(),
            enc.decision().extra_bits,
            mode,
            enc.bursts()
        );
        // Round-trip: lossless blocks reproduce exactly, lossy blocks
        // differ only in the approximated symbols.
        let out = slc.decompress(&enc);
        match enc.decision().mode {
            ModeChoice::Lossy if enc.is_lossy() => {
                let diff = block.iter().zip(&out).filter(|(a, b)| a != b).count();
                println!("       -> {diff} of 128 bytes approximated");
            }
            _ => assert_eq!(out, block, "lossless round-trip must be exact"),
        }
    }
}

#!/usr/bin/env python3
"""Compare a fresh bench run against its committed baseline.

Works for any baseline in the shared bench-JSON shape (``BENCH_codec.json``
from codec_throughput, ``BENCH_eval.json`` from eval_pipeline, ...).

Usage: check_bench_regression.py BASELINE_JSON CANDIDATE_JSON [--tolerance PCT]

Fails (exit 1) when any benchmark row present in both files is more than
``--tolerance`` percent slower than the baseline *after normalising for
machine speed*: each row's candidate/baseline ratio is divided by the
median ratio across all shared rows, so a runner that is uniformly slower
(or faster) than the machine that produced the committed baseline cancels
out, and only rows that regressed relative to their peers fail. The
trade-off: a change that slows every row by the same factor is invisible
to this gate (pass ``--no-normalize`` for raw cross-machine comparison).

Rows may carry extra derived fields (e.g. the ``gb_per_s`` the engine
rows record for human consumption); the gate reads only ``id`` and
``ns_per_iter`` and ignores everything else, so derived fields can never
double-count a regression or mask one.

Rows only present on one side are reported as warnings but never fail
the check (nor crash it), so adding or retiring benches does not break
CI; a trailing summary counts them so a renamed row cannot slip through
silently as one "new" plus one "retired". The default tolerance of
30% is deliberately loose: the gate exists to catch lost fast paths and
accidental asymptotic regressions, not single-digit drift.

``--require-rows MANIFEST`` closes the loophole the warnings leave: the
manifest (one row id per line, ``#`` comments allowed) lists the rows
that must exist in the *candidate* run, and any missing one fails the
check — a silently dropped or renamed bench can no longer pass CI as a
mere warning. Retiring a bench on purpose means editing the manifest in
the same change, which is exactly the review-visible signal we want.
"""

import argparse
import json
import statistics
import sys


def die(message):
    """One-line diagnostic on stderr, then the CI-visible failure exit."""
    print(f"check_bench_regression: {message}", file=sys.stderr)
    raise SystemExit(1)


def load_rows(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
        return {r["id"]: float(r["ns_per_iter"]) for r in doc["results"]}
    except OSError as exc:
        die(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        die(f"{path} is not valid JSON: {exc}")
    except (KeyError, TypeError, ValueError) as exc:
        die(f"{path} is not a bench baseline "
            f"(expected {{'results': [{{'id', 'ns_per_iter'}}, ...]}}): {exc!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=30.0,
                    help="allowed relative slowdown in percent (default: 30)")
    ap.add_argument("--no-normalize", action="store_true",
                    help="compare raw ns/iter instead of median-normalised ratios")
    ap.add_argument("--require-rows", metavar="MANIFEST",
                    help="file listing row ids (one per line, # comments) that "
                         "must be present in CANDIDATE; missing rows fail")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)
    limit = 1.0 + args.tolerance / 100.0

    if args.require_rows:
        try:
            with open(args.require_rows) as fh:
                required = [line.strip() for line in fh
                            if line.strip() and not line.lstrip().startswith("#")]
        except OSError as exc:
            die(f"cannot read manifest {args.require_rows}: {exc}")
        missing = [row_id for row_id in required if row_id not in cand]
        if missing:
            print(f"{len(missing)} required row(s) missing from {args.candidate} "
                  f"(manifest: {args.require_rows}):")
            for row_id in missing:
                print(f"  MISSING {row_id}")
            print("a bench was dropped or renamed without updating the manifest")
            return 1
        print(f"all {len(required)} required rows present "
              f"(manifest: {args.require_rows})")

    shared = sorted(k for k in base.keys() & cand.keys() if base[k] > 0)
    ratios = {k: cand[k] / base[k] for k in shared}
    pivot = 1.0
    if ratios and not args.no_normalize:
        # Clamped at 1.0: a slower runner cancels out, but a run where
        # most rows *improved* must never penalise the unchanged rows
        # (a sub-1.0 median would inflate their relative ratios).
        pivot = max(statistics.median(ratios.values()), 1.0)
        print(f"median machine-speed ratio: {pivot:.2f}x (normalising by it)")
        if pivot > 1.5:
            # Normalisation cannot tell a slow runner from a genuine
            # across-the-board regression (e.g. a lost bitstream fast
            # path slows every codec row by the same factor). The gate
            # stays green either way — this banner is the tripwire a
            # human must follow up: rerun on the baseline's machine, or
            # with --no-normalize.
            print(f"WARNING: every shared row is >= ~{pivot:.1f}x the committed "
                  "baseline. If this machine class matches the one that "
                  "generated the baseline, that is a uniform regression "
                  "the normalised gate cannot flag — investigate before "
                  "trusting this pass.")

    failures = []
    one_sided = 0
    for row_id in sorted(base.keys() | cand.keys()):
        if row_id not in base:
            one_sided += 1
            print(f"  WARN new row (no baseline, not gated):      {row_id}")
            continue
        if row_id not in cand:
            one_sided += 1
            print(f"  WARN retired row (baseline only, not gated): {row_id}")
            continue
        rel = ratios.get(row_id, 1.0) / pivot
        marker = "FAIL" if rel > limit else "ok"
        print(f"  {marker:4} {row_id:44} {base[row_id]:9.1f} -> {cand[row_id]:9.1f} ns "
              f"({rel:5.2f}x rel)")
        if rel > limit:
            failures.append((row_id, rel))

    if one_sided:
        print(f"\nWARNING: {one_sided} row(s) present in only one file — "
              "regenerate the committed baseline if a bench was added or "
              "renamed, so future runs gate on it.")
    if failures:
        print(f"\n{len(failures)} row(s) regressed beyond {args.tolerance:.0f}% "
              "relative to the run median:")
        for row_id, rel in failures:
            print(f"  {row_id}: {rel:.2f}x")
        return 1
    print(f"\nall shared rows within {args.tolerance:.0f}% (relative)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

//! Order-preserving parallel map over a work list.
//!
//! The evaluation harness fans benchmark × scheme combinations out across
//! cores. The container has no crates.io access, so instead of rayon this
//! crate implements the one primitive the workspace needs — a scoped
//! thread-pool `par_map` — on `std::thread::scope`. Results always come
//! back in input order, so parallel and serial runs produce byte-identical
//! reports.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can
//! be pinned with `SLC_PAR_THREADS`. `SLC_PAR_THREADS=1` forces the serial
//! path (also the fallback for empty and single-item inputs), and so do
//! `SLC_PAR_THREADS=0` and any unparseable value: an operator who sets the
//! knob to "no threads" — or typos it — gets the predictable serial
//! fallback, never an accidental fan-out across every core.
//!
//! ```
//! let squares = slc_par::par_map(vec![1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Whether the current thread is already a `par_map` worker. Nested
    /// `par_map` calls (e.g. a per-snapshot fan-out inside a per-workload
    /// fan-out) then run serially on the worker instead of multiplying
    /// live threads to ~cores² and paying a spawn per inner call; output
    /// is unchanged either way (the map is order-preserving).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Thread cap for one `SLC_PAR_THREADS` value: unset defers to the
/// hardware count, while `0` and garbage both clamp to serial (a pinned
/// knob must never silently mean "all cores" — see the module docs).
fn cap_from_env(var: Option<&str>, hw: usize) -> usize {
    match var {
        None => hw,
        Some(v) => v.trim().parse::<usize>().unwrap_or(0).max(1),
    }
}

/// Number of worker threads to use for `n` items.
fn worker_count(n: usize) -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1; // nested call: stay on the current worker thread
    }
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let cap = cap_from_env(std::env::var("SLC_PAR_THREADS").ok().as_deref(), hw);
    cap.min(n)
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Items are distributed dynamically (an atomic cursor), so uneven work —
/// one slow benchmark among nine — does not idle the other workers.
/// Panics in `f` propagate to the caller once all threads have stopped.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = worker_count(items.len());
    par_map_workers(items, f, workers)
}

/// [`par_map`] with an explicit worker count, bypassing the hardware
/// count and the `SLC_PAR_THREADS` knob (still clamped to the item count,
/// and to 1 inside a nested call — see the module docs). Callers that
/// must exercise the threaded path deterministically — the engine's
/// parallel-equals-serial property tests on a single-core host — pass the
/// count instead of mutating process-global environment.
pub fn par_map_workers<T, U, F>(items: Vec<T>, f: F, workers: usize) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = if IN_WORKER.with(Cell::get) { 1 } else { workers.clamp(1, n.max(1)) };
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().expect("slot poisoned").take().expect("taken once");
                    let result = f(item);
                    *out[i].lock().expect("slot poisoned") = Some(result);
                }
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("slot poisoned").expect("every index visited"))
        .collect()
}

/// Borrowed-input variant of [`par_map`].
pub fn par_map_ref<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map(items.iter().collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_cap_zero_and_garbage_mean_serial() {
        // Pure-function test (no process-global env mutation, which would
        // race with other tests): 0 and any unparseable value clamp to 1
        // worker instead of falling back to all cores.
        assert_eq!(cap_from_env(Some("0"), 8), 1);
        assert_eq!(cap_from_env(Some("garbage"), 8), 1);
        assert_eq!(cap_from_env(Some(""), 8), 1);
        assert_eq!(cap_from_env(Some("-3"), 8), 1);
        assert_eq!(cap_from_env(Some("2.5"), 8), 1);
        // Explicit counts and whitespace-padded counts pass through.
        assert_eq!(cap_from_env(Some("1"), 8), 1);
        assert_eq!(cap_from_env(Some("4"), 8), 4);
        assert_eq!(cap_from_env(Some(" 4 "), 8), 4);
        // More threads than cores is honoured (worker_count still clamps
        // to the item count).
        assert_eq!(cap_from_env(Some("16"), 8), 16);
        // Unset defers to the hardware count.
        assert_eq!(cap_from_env(None, 8), 8);
    }

    #[test]
    fn nested_par_map_runs_serially_on_the_worker() {
        // Each test runs on its own thread, so flipping the thread-local
        // here is isolated: with the worker flag set, worker_count must
        // clamp to 1 no matter the hardware or item count.
        IN_WORKER.with(|w| w.set(true));
        assert_eq!(worker_count(64), 1);
        IN_WORKER.with(|w| w.set(false));
        // And nested maps still produce correct, ordered output.
        let out =
            par_map((0..8usize).collect(), |i| par_map((0..4usize).collect(), move |j| i * 10 + j));
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = par_map(input, |x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn ref_variant_borrows() {
        let items = vec![String::from("a"), String::from("bb")];
        assert_eq!(par_map_ref(&items, |s| s.len()), vec![1, 2]);
    }

    #[test]
    fn uneven_work_completes() {
        let out = par_map((0..64usize).collect(), |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker panic")]
    fn panics_propagate() {
        let _ = par_map(vec![1, 2, 3], |x| {
            if x == 2 {
                panic!("worker panic");
            }
            x
        });
    }
}

//! Tables I–III of the paper.

use crate::report::TextTable;
use slc_power::TslcHardwareModel;
use slc_sim::GpuConfig;
use slc_workloads::{all_workloads, Scale};

/// Renders Table I (frequency, area, power of the SLC additions) from the
/// gate-count model, side by side with the paper's synthesis numbers.
pub fn table1() -> String {
    let m = TslcHardwareModel::new();
    let c = m.compressor_cost();
    let d = m.decompressor_cost();
    let mut t = TextTable::new(vec!["Unit", "Freq (GHz)", "Area (mm2)", "Power (mW)", "Paper"]);
    t.row(vec![
        "Compressor".to_owned(),
        format!("{:.2}", c.freq_ghz),
        format!("{:.5}", c.area_mm2),
        format!("{:.3}", c.power_mw),
        "1.43 / 0.00830 / 1.620".to_owned(),
    ]);
    t.row(vec![
        "Decompressor".to_owned(),
        format!("{:.2}", d.freq_ghz),
        format!("{:.5}", d.area_mm2),
        format!("{:.3}", d.power_mw),
        "0.80 / 0.00030 / 0.210".to_owned(),
    ]);
    let mut out = String::from("Table I: frequency, area and power of SLC (32 nm gate model)\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nOverheads: area {:.4}% of GTX580 (paper 0.0015%), power {:.4}% (paper 0.0008%), {:.1}% of E2MC area (paper 5.6%)\n",
        c.area_pct_of_gtx580() + d.area_pct_of_gtx580(),
        c.power_pct_of_gtx580() + d.power_pct_of_gtx580(),
        m.pct_of_e2mc_area()
    ));
    out.push_str(&format!(
        "Gate inventory: compressor {} GE, decompressor {} GE\n",
        m.compressor_gates().total(),
        m.decompressor_gates().total()
    ));
    out
}

/// Renders Table II (baseline simulator configuration).
pub fn table2() -> String {
    let c = GpuConfig::default();
    let mut t = TextTable::new(vec!["Parameter", "Value"]);
    t.row(vec!["#SMs".to_owned(), c.sms.to_string()]);
    t.row(vec!["SM freq (MHz)".to_owned(), format!("{}", c.sm_clock_mhz)]);
    t.row(vec!["Max #Threads/SM".to_owned(), c.max_threads_per_sm.to_string()]);
    t.row(vec!["Max CTA size".to_owned(), c.max_cta_size.to_string()]);
    t.row(vec!["L1 $ size/SM".to_owned(), format!("{} KB", c.l1_kb)]);
    t.row(vec!["L2 $ size".to_owned(), format!("{} KB", c.l2_kb)]);
    t.row(vec!["#Registers/SM".to_owned(), format!("{} K", c.registers_per_sm / 1024)]);
    t.row(vec!["Shared memory/SM".to_owned(), format!("{} KB", c.shared_mem_kb)]);
    t.row(vec!["Memory type".to_owned(), "GDDR5".to_owned()]);
    t.row(vec!["# Memory controllers".to_owned(), c.memory_controllers.to_string()]);
    t.row(vec!["Memory clock".to_owned(), format!("{} MHz", c.mem_clock_mhz)]);
    t.row(vec!["Memory bandwidth".to_owned(), format!("{:.1} GB/s", c.bandwidth_gbps())]);
    t.row(vec!["Bus width".to_owned(), format!("{}-bit", c.bus_bits)]);
    t.row(vec!["Burst length".to_owned(), c.burst_length.to_string()]);
    t.row(vec!["MAG".to_owned(), c.mag().to_string()]);
    t.row(vec!["E2MC latency".to_owned(), "46 cyc compress / 20 cyc decompress".to_owned()]);
    t.row(vec!["TSLC latency".to_owned(), "60 cyc compress / 20 cyc decompress".to_owned()]);
    let mut out = String::from("Table II: baseline simulator configuration (GTX580-like)\n");
    out.push_str(&t.render());
    out
}

/// Renders Table III (benchmarks) from the live registry.
pub fn table3(scale: Scale) -> String {
    let mut t = TextTable::new(vec!["Name", "Short description", "Input", "Error metric", "#AR"]);
    for w in all_workloads(scale) {
        t.row(vec![
            w.name().to_owned(),
            w.description().to_owned(),
            w.input_description(),
            w.metric().label().to_owned(),
            w.approx_regions().to_string(),
        ]);
    }
    let mut out = String::from("Table III: benchmarks used for experimental evaluation\n");
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_both_units() {
        let s = table1();
        assert!(s.contains("Compressor"));
        assert!(s.contains("Decompressor"));
        assert!(s.contains("E2MC area"));
    }

    #[test]
    fn table2_matches_paper_values() {
        let s = table2();
        for needle in ["16", "822", "768 KB", "GDDR5", "1002 MHz", "32-bit", "192.4 GB/s"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn table3_lists_nine_with_ar() {
        let s = table3(Scale::Tiny);
        for needle in ["JM", "Miss rate", "SRAD1", "8", "Options pricing"] {
            assert!(s.contains(needle), "missing {needle}");
        }
        assert_eq!(s.lines().count(), 2 + 1 + 9);
    }
}

//! Figure 2: heat map of the distribution of compressed blocks above
//! multiples of MAG (E2MC).
//!
//! "0B on the x-axis means a compressed block size is a multiple of MAG
//! ... all blocks with a compressed size < 32B are also included in the 0B
//! origin. 32B on the x-axis represents the percentage of uncompressed
//! blocks."

use crate::report::shade;
use slc_compress::{Mag, BLOCK_BITS, BLOCK_BYTES};
use slc_workloads::{all_workloads, Harness, Scale};

/// One benchmark's distribution over bytes-above-MAG.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Benchmark name.
    pub name: String,
    /// `pct[b]` = percentage of blocks compressed to `b` bytes above a
    /// MAG multiple, for `b` in `0..mag`; the last entry (index `mag`)
    /// holds the uncompressed percentage.
    pub pct: Vec<f64>,
}

/// The whole heat map.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig2Row>,
    /// The MAG used (bucket count = mag + 1).
    pub mag: Mag,
}

/// Computes the Fig. 2 distribution at `scale` under `mag`.
pub fn compute(scale: Scale, mag: Mag) -> Fig2 {
    let harness = Harness::new(scale);
    let buckets = mag.bytes() as usize + 1;
    let rows = slc_par::par_map(all_workloads(scale), |w| {
        let artifacts = harness.prepare(w.as_ref());
        let mut counts = vec![0u64; buckets];
        let mut total = 0u64;
        // One shared analysis of the final memory image sizes every
        // bucket; nothing is re-encoded per figure.
        for b in artifacts.final_analysis().entries() {
            let bits = b.analysis.e2mc_size_bits();
            total += 1;
            if bits >= BLOCK_BITS || mag.round_up_bits(bits) >= BLOCK_BITS {
                counts[mag.bytes() as usize] += 1; // uncompressed bucket
            } else {
                let bytes = bits.div_ceil(8);
                let above = if bytes <= mag.bytes() {
                    0 // "< 32B are also included in the 0B origin"
                } else {
                    mag.bytes_above_multiple(bytes)
                };
                counts[above as usize] += 1;
            }
        }
        Fig2Row {
            name: artifacts.name.clone(),
            pct: counts.iter().map(|&c| c as f64 / total.max(1) as f64 * 100.0).collect(),
        }
    });
    Fig2 { rows, mag }
}

impl Fig2 {
    /// Percentage of blocks within `threshold_bytes` above a MAG multiple
    /// (excluding exact multiples) — SLC's opportunity mass.
    pub fn opportunity_pct(&self, row: &Fig2Row, threshold_bytes: u32) -> f64 {
        row.pct[1..=threshold_bytes as usize].iter().sum()
    }

    /// The "number of samples" histogram of the paper's right y-axis:
    /// how many (benchmark, bucket) cells fall into each percentage band.
    pub fn sample_histogram(&self, band_pct: f64) -> Vec<u32> {
        let bands = (100.0 / band_pct).ceil() as usize;
        let mut hist = vec![0u32; bands];
        for row in &self.rows {
            for &p in &row.pct {
                let idx = ((p / band_pct).floor() as usize).min(bands - 1);
                hist[idx] += 1;
            }
        }
        hist
    }

    /// Renders the heat map with one shaded cell per 2-byte bucket.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fig. 2: distribution of compressed blocks above MAG multiples (E2MC, MAG {}, block {} B)\n",
            self.mag,
            BLOCK_BYTES
        );
        out.push_str("        0B ");
        let cells = self.mag.bytes() as usize / 2;
        out.push_str(&" ".repeat(cells.saturating_sub(6)));
        out.push_str(&format!("{}B  uncomp\n", self.mag.bytes()));
        let max = self
            .rows
            .iter()
            .flat_map(|r| r.pct[..self.mag.bytes() as usize].iter())
            .fold(0.0f64, |a, &b| a.max(b));
        for row in &self.rows {
            let mut line = format!("{:>6}  ", row.name);
            for pair in row.pct[..self.mag.bytes() as usize].chunks(2) {
                let v: f64 = pair.iter().sum::<f64>() / pair.len() as f64;
                line.push(shade(v / max.max(1e-9)));
            }
            line.push_str(&format!("  {:5.1}%\n", row.pct[self.mag.bytes() as usize]));
            out.push_str(&line);
        }
        out.push_str("(cell shade = % of blocks at that bytes-above-MAG offset; rightmost column = uncompressed)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_hundred() {
        let fig = compute(Scale::Tiny, Mag::GDDR5);
        assert_eq!(fig.rows.len(), 9);
        for row in &fig.rows {
            assert_eq!(row.pct.len(), 33);
            let total: f64 = row.pct.iter().sum();
            assert!((total - 100.0).abs() < 1e-6, "{}: {total}", row.name);
        }
    }

    #[test]
    fn significant_mass_sits_just_above_mag() {
        // The paper's core observation: a significant percentage of blocks
        // land a few bytes above a multiple of MAG.
        let fig = compute(Scale::Tiny, Mag::GDDR5);
        let avg_opportunity: f64 = fig.rows.iter().map(|r| fig.opportunity_pct(r, 16)).sum::<f64>()
            / fig.rows.len() as f64;
        assert!(
            avg_opportunity > 10.0,
            "average opportunity {avg_opportunity:.1}% too small to motivate SLC"
        );
    }

    #[test]
    fn histogram_counts_all_cells() {
        let fig = compute(Scale::Tiny, Mag::GDDR5);
        let hist = fig.sample_histogram(5.0);
        let total: u32 = hist.iter().sum();
        assert_eq!(total as usize, 9 * 33);
    }

    #[test]
    fn render_mentions_every_benchmark() {
        let fig = compute(Scale::Tiny, Mag::GDDR5);
        let s = fig.render();
        for name in ["JM", "BS", "DCT", "SRAD2"] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}

//! Figure 9 + §V-C: SLC sensitivity to the memory access granularity.
//!
//! TSLC-OPT under MAG 16 B / 32 B / 64 B with the lossy threshold set to
//! MAG/2 ("one threshold across different MAGs is not suitable"), plus
//! the §V-C effective-compression-ratio study (paper: E2MC GM 1.41 / 1.31
//! / 1.16 at MAG 16/32/64 B, raw GM 1.54 independent of MAG).

use crate::eval::{evaluate_prepared, prepare_all, Eval};
use crate::report::{err_pct, f3, TextTable};
use slc_compress::ratio::{geometric_mean, RatioAccumulator};
use slc_compress::{Mag, BLOCK_BYTES};
use slc_core::slc::SlcVariant;
use slc_workloads::{Harness, Scale};

/// One MAG's column of Fig. 9.
#[derive(Debug, Clone)]
pub struct MagStudy {
    /// The MAG.
    pub mag: Mag,
    /// Threshold used (MAG/2).
    pub threshold_bytes: u32,
    /// The TSLC-OPT evaluation at this MAG.
    pub eval: Eval,
    /// §V-C: E2MC effective-ratio GM at this MAG.
    pub e2mc_effective_gm: f64,
    /// §V-C: E2MC raw-ratio GM (MAG-independent).
    pub e2mc_raw_gm: f64,
}

/// The whole sensitivity study.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// One study per MAG, in 16/32/64 order.
    pub studies: Vec<MagStudy>,
}

/// Runs Fig. 9 at `scale`.
pub fn compute(scale: Scale) -> Fig9 {
    // The exact run, trained table, trace and per-snapshot analyses are
    // all MAG-independent (only burst accounting and the lossy budget see
    // the MAG), so every benchmark is prepared **once** and the three MAG
    // studies — evaluation and the §V-C ratio sweep alike — re-decide
    // over the same shared analyses instead of re-executing and
    // re-encoding per MAG.
    let prepared = prepare_all(scale, &Harness::new(scale));
    let mut studies = Vec::new();
    for mag in [Mag::NARROW_16, Mag::GDDR5, Mag::WIDE_64] {
        let base = Harness::new(scale);
        let config = base.config.with_mag(mag);
        let harness = Harness::new(scale).with_config(config);
        let threshold = mag.bytes() / 2;
        let eval = evaluate_prepared(&harness, threshold, &[SlcVariant::TslcOpt], &prepared);
        let ratios = slc_par::par_map_ref(&prepared, |(_, artifacts)| {
            let mut acc = RatioAccumulator::new(mag, BLOCK_BYTES as u32);
            for b in artifacts.final_analysis().entries() {
                acc.record_bits(b.analysis.e2mc_size_bits());
            }
            (acc.raw_ratio(), acc.effective_ratio())
        });
        let (raw, eff): (Vec<f64>, Vec<f64>) = ratios.into_iter().unzip();
        studies.push(MagStudy {
            mag,
            threshold_bytes: threshold,
            eval,
            e2mc_effective_gm: geometric_mean(&eff),
            e2mc_raw_gm: geometric_mean(&raw),
        });
    }
    Fig9 { studies }
}

impl Fig9 {
    /// Renders speedups, errors and the §V-C ratios.
    pub fn render(&self) -> String {
        let mut header = vec!["Bench".to_owned()];
        for s in &self.studies {
            header.push(format!("speedup@{}", s.mag));
        }
        for s in &self.studies {
            header.push(format!("err@{}", s.mag));
        }
        let mut t = TextTable::new(header);
        let names: Vec<String> = self.studies[0].eval.rows.iter().map(|r| r.name.clone()).collect();
        for (i, name) in names.iter().enumerate() {
            let mut cells = vec![name.clone()];
            for s in &self.studies {
                cells.push(f3(s.eval.rows[i].variants[0].speedup));
            }
            for s in &self.studies {
                cells.push(err_pct(s.eval.rows[i].variants[0].error_pct));
            }
            t.row(cells);
        }
        let mut cells = vec!["GM".to_owned()];
        for s in &self.studies {
            cells.push(f3(s.eval.gm_speedup(0)));
        }
        for s in &self.studies {
            cells.push(err_pct(s.eval.gm_mre(0)));
        }
        t.row(cells);
        let mut out =
            String::from("Fig. 9: TSLC-OPT speedup and error across MAGs (threshold = MAG/2)\n");
        out.push_str(&t.render());
        out.push_str("\n(paper GM speedups: 1.05 @16B, 1.097 @32B, 1.09 @64B; NN +35%, SRAD1 +27%, TP +21% @64B)\n");
        out.push_str(
            "\n§V-C: E2MC compression-ratio GM by MAG (paper: eff 1.41/1.31/1.16, raw 1.54):\n",
        );
        for s in &self.studies {
            out.push_str(&format!(
                "  MAG {:>3}: raw {:.2}  effective {:.2}\n",
                s.mag.to_string(),
                s.e2mc_raw_gm,
                s.e2mc_effective_gm
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_ratio_decreases_with_mag() {
        let fig = compute(Scale::Tiny);
        assert_eq!(fig.studies.len(), 3);
        let eff: Vec<f64> = fig.studies.iter().map(|s| s.e2mc_effective_gm).collect();
        assert!(eff[0] > eff[1] && eff[1] > eff[2], "effective GMs must fall with MAG: {eff:?}");
        // Raw GM is MAG-independent.
        let raw: Vec<f64> = fig.studies.iter().map(|s| s.e2mc_raw_gm).collect();
        assert!((raw[0] - raw[2]).abs() < 1e-9, "raw GM depends on MAG: {raw:?}");
        for s in &fig.studies {
            assert!(s.e2mc_raw_gm >= s.e2mc_effective_gm);
            assert_eq!(s.threshold_bytes, s.mag.bytes() / 2);
        }
        assert!(fig.render().contains("GM"));
    }
}

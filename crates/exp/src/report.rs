//! Plain-text rendering for figures and tables.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a ratio/speedup with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with 2 decimals.
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

/// Formats an error percentage in scientific-ish style matching the
/// paper's log-scale error plots.
pub fn err_pct(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v >= 0.01 {
        format!("{v:.3}%")
    } else {
        format!("{v:.1e}%")
    }
}

/// A one-line ASCII bar of `value` against `max` (for heat-map rows).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return " ".repeat(width);
    }
    let filled = ((value / max) * width as f64).round() as usize;
    let filled = filled.min(width);
    format!("{}{}", "#".repeat(filled), " ".repeat(width - filled))
}

/// Shade characters for heat-map cells by intensity in [0, 1].
pub fn shade(intensity: f64) -> char {
    const RAMP: [char; 6] = [' ', '.', ':', '+', '*', '#'];
    let idx = (intensity.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1.0"]);
        t.row(vec!["longer", "2.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####     ");
        assert_eq!(bar(0.0, 10.0, 4), "    ");
        assert_eq!(bar(20.0, 10.0, 4), "####", "clamped at full");
    }

    #[test]
    fn shade_ramps() {
        assert_eq!(shade(0.0), ' ');
        assert_eq!(shade(1.0), '#');
        assert!(shade(0.5) != ' ' && shade(0.5) != '#');
    }

    #[test]
    fn err_formatting() {
        assert_eq!(err_pct(0.0), "0");
        assert_eq!(err_pct(1.234), "1.234%");
        assert!(err_pct(0.0001).contains('e'));
    }
}

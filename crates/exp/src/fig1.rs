//! Figure 1: raw vs effective compression ratio of BDI, FPC, C-PACK and
//! E2MC at MAG 32 B — plus BPC, which the paper only argues about
//! qualitatively (Section II-A) and we measure.

use crate::report::{f3, TextTable};
use slc_compress::bdi::Bdi;
use slc_compress::bpc::Bpc;
use slc_compress::cpack::Cpack;
use slc_compress::fpc::Fpc;
use slc_compress::ratio::{geometric_mean, RatioAccumulator};
use slc_compress::{BlockCompressor, Mag, BLOCK_BYTES};
use slc_workloads::{all_workloads, Harness, Scale};

/// Per-benchmark, per-codec ratio pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioPair {
    /// MAG-oblivious ratio.
    pub raw: f64,
    /// Ratio after rounding block sizes up to MAG multiples.
    pub effective: f64,
}

/// The codecs of Fig. 1 (+ BPC).
pub const CODECS: [&str; 5] = ["BDI", "FPC", "CPACK", "E2MC", "BPC"];

/// One benchmark's row.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Benchmark name.
    pub name: String,
    /// Ratios in `CODECS` order.
    pub ratios: Vec<RatioPair>,
}

/// The whole figure.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig1Row>,
    /// Geometric means in `CODECS` order.
    pub gm: Vec<RatioPair>,
    /// The MAG used.
    pub mag: Mag,
}

/// Computes Fig. 1 at `scale` under `mag`.
pub fn compute(scale: Scale, mag: Mag) -> Fig1 {
    let harness = Harness::new(scale);
    // Benchmarks are independent: measure them in parallel, paper order
    // preserved by the order-preserving map.
    let rows = slc_par::par_map(all_workloads(scale), |w| {
        let artifacts = harness.prepare(w.as_ref());
        let bdi = Bdi::new();
        let fpc = Fpc::new();
        let cpack = Cpack::new();
        let bpc = Bpc::new();
        let codecs: [&dyn BlockCompressor; 5] = [&bdi, &fpc, &cpack, &artifacts.e2mc, &bpc];
        let mut accs: Vec<RatioAccumulator> =
            (0..codecs.len()).map(|_| RatioAccumulator::new(mag, BLOCK_BYTES as u32)).collect();
        for (_, block) in artifacts.exact_memory.all_blocks() {
            for (codec, acc) in codecs.iter().zip(accs.iter_mut()) {
                acc.record_bits(codec.size_bits(&block));
            }
        }
        Fig1Row {
            name: artifacts.name.clone(),
            ratios: accs
                .iter()
                .map(|a| RatioPair { raw: a.raw_ratio(), effective: a.effective_ratio() })
                .collect(),
        }
    });
    let gm = (0..CODECS.len())
        .map(|c| RatioPair {
            raw: geometric_mean(&rows.iter().map(|r| r.ratios[c].raw).collect::<Vec<_>>()),
            effective: geometric_mean(
                &rows.iter().map(|r| r.ratios[c].effective).collect::<Vec<_>>(),
            ),
        })
        .collect();
    Fig1 { rows, gm, mag }
}

impl Fig1 {
    /// Percentage by which the effective GM trails the raw GM per codec
    /// (the paper reports 22 / 19 / 18 / 23 % for BDI/FPC/C-PACK/E2MC).
    pub fn gm_gap_pct(&self) -> Vec<f64> {
        self.gm.iter().map(|p| (1.0 - p.effective / p.raw) * 100.0).collect()
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let mut header = vec!["Bench".to_owned()];
        for c in CODECS {
            header.push(format!("{c}-Raw"));
            header.push(format!("{c}-Eff"));
        }
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let mut cells = vec![row.name.clone()];
            for p in &row.ratios {
                cells.push(f3(p.raw));
                cells.push(f3(p.effective));
            }
            t.row(cells);
        }
        let mut cells = vec!["GM".to_owned()];
        for p in &self.gm {
            cells.push(f3(p.raw));
            cells.push(f3(p.effective));
        }
        t.row(cells);
        let mut out = format!("Fig. 1: raw vs effective compression ratio (MAG {})\n", self.mag);
        out.push_str(&t.render());
        out.push_str("\nGM effective-vs-raw gap per codec (paper: BDI 22%, FPC 19%, C-PACK 18%, E2MC 23%):\n");
        for (c, gap) in CODECS.iter().zip(self.gm_gap_pct()) {
            out.push_str(&format!("  {c}: {gap:.1}%\n"));
        }
        out
    }
}

/// Section II-A check: the paper argues SC2, HyComp and FP-H also suffer
/// from MAG, qualitatively. This measures them.
pub fn compute_section2a(scale: Scale, mag: Mag) -> Fig1 {
    use slc_compress::hycomp::{FpH, HyComp};
    use slc_compress::sc2::Sc2;
    let harness = Harness::new(scale);
    let rows = slc_par::par_map(all_workloads(scale), |w| {
        let artifacts = harness.prepare(w.as_ref());
        let training: Vec<u8> =
            artifacts.exact_memory.all_blocks().flat_map(|(_, b)| b.to_vec()).collect();
        let sc2 = Sc2::train_on_bytes(&training, slc_compress::sc2::DEFAULT_TOP_K);
        let fph = FpH::train_on_bytes(&training);
        let hycomp = HyComp::train_on_bytes(&training);
        let codecs: [&dyn BlockCompressor; 3] = [&sc2, &fph, &hycomp];
        let mut accs: Vec<RatioAccumulator> =
            (0..codecs.len()).map(|_| RatioAccumulator::new(mag, BLOCK_BYTES as u32)).collect();
        for (_, block) in artifacts.exact_memory.all_blocks() {
            for (codec, acc) in codecs.iter().zip(accs.iter_mut()) {
                acc.record_bits(codec.size_bits(&block));
            }
        }
        Fig1Row {
            name: artifacts.name.clone(),
            ratios: accs
                .iter()
                .map(|a| RatioPair { raw: a.raw_ratio(), effective: a.effective_ratio() })
                .collect(),
        }
    });
    let gm = (0..3)
        .map(|c| RatioPair {
            raw: geometric_mean(&rows.iter().map(|r| r.ratios[c].raw).collect::<Vec<_>>()),
            effective: geometric_mean(
                &rows.iter().map(|r| r.ratios[c].effective).collect::<Vec<_>>(),
            ),
        })
        .collect();
    Fig1 { rows, gm, mag }
}

/// Renders the Section II-A table (SC2 / FP-H / HyComp).
pub fn render_section2a(fig: &Fig1) -> String {
    const NAMES: [&str; 3] = ["SC2", "FP-H", "HyComp"];
    let mut header = vec!["Bench".to_owned()];
    for c in NAMES {
        header.push(format!("{c}-Raw"));
        header.push(format!("{c}-Eff"));
    }
    let mut t = TextTable::new(header);
    for row in &fig.rows {
        let mut cells = vec![row.name.clone()];
        for p in &row.ratios {
            cells.push(f3(p.raw));
            cells.push(f3(p.effective));
        }
        t.row(cells);
    }
    let mut cells = vec!["GM".to_owned()];
    for p in &fig.gm {
        cells.push(f3(p.raw));
        cells.push(f3(p.effective));
    }
    t.row(cells);
    let mut out = format!(
        "Section II-A quantified: SC2 / FP-H / HyComp under MAG {} (paper: argued qualitatively)\n",
        fig.mag
    );
    out.push_str(&t.render());
    out.push_str("\nEffective-vs-raw GM gap:\n");
    for (c, p) in NAMES.iter().zip(&fig.gm) {
        out.push_str(&format!("  {c}: {:.1}%\n", (1.0 - p.effective / p.raw) * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section2a_codecs_also_suffer_from_mag() {
        let fig = compute_section2a(Scale::Tiny, Mag::GDDR5);
        assert_eq!(fig.rows.len(), 9);
        for (c, p) in ["SC2", "FP-H", "HyComp"].iter().zip(&fig.gm) {
            assert!(p.raw >= 1.0, "{c} raw {}", p.raw);
            assert!(p.effective <= p.raw + 1e-12, "{c} gains from rounding?");
        }
        // The paper's claim: these techniques suffer due to MAG too.
        let max_gap = fig.gm.iter().map(|p| 1.0 - p.effective / p.raw).fold(0.0f64, f64::max);
        assert!(max_gap > 0.03, "MAG gap {max_gap:.3} too small to support §II-A");
        assert!(render_section2a(&fig).contains("HyComp"));
    }

    #[test]
    fn fig1_tiny_has_expected_shape() {
        let fig = compute(Scale::Tiny, Mag::GDDR5);
        assert_eq!(fig.rows.len(), 9);
        assert_eq!(fig.gm.len(), 5);
        for row in &fig.rows {
            for p in &row.ratios {
                assert!(p.raw >= 1.0, "{}: raw {}", row.name, p.raw);
                assert!(p.effective <= p.raw + 1e-9, "{}: eff > raw", row.name);
                assert!(p.effective >= 1.0);
            }
        }
        // Among the four Fig. 1 codecs, E2MC achieves the best raw GM, as
        // in the paper ("E2MC provides the highest compression ratio").
        // BPC is outside Fig. 1 and may win on delta-friendly data.
        let e2mc_gm = fig.gm[3].raw;
        for (name, gm) in CODECS.iter().zip(&fig.gm).take(3) {
            assert!(e2mc_gm >= gm.raw * 0.95, "E2MC GM {} vs {} {}", e2mc_gm, name, gm.raw);
        }
        // The MAG gap is material (the paper's headline motivation).
        let gaps = fig.gm_gap_pct();
        assert!(gaps[3] > 5.0, "E2MC gap {:.1}% too small to motivate SLC", gaps[3]);
        let render = fig.render();
        assert!(render.contains("GM"));
    }
}

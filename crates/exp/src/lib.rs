//! Experiment harness: regenerates every table and figure of the SLC
//! paper (see DESIGN.md's per-experiment index).
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Fig. 1 (raw vs effective ratio) | [`fig1`] | `fig1_compression_ratio` |
//! | Fig. 2 (heat map) | [`fig2`] | `fig2_heatmap` |
//! | Figs. 7a/7b (speedup, error) | [`eval`] | `fig7_speedup_error` |
//! | Figs. 8a/8b (bandwidth, energy, EDP) | [`eval`] | `fig8_bandwidth_energy` |
//! | Figs. 9a/9b + §V-C (MAG sensitivity) | [`fig9`] | `fig9_mag_sensitivity` |
//! | Table I (hardware cost) | [`tables`] | `table1_hardware` |
//! | Table II (simulator config) | [`tables`] | `table2_config` |
//! | Table III (benchmarks) | [`tables`] | `table3_benchmarks` |
//!
//! Binaries read `SLC_SCALE` (`tiny` / `small` / `full`, default `small`)
//! and print paper-reference values next to measured ones.

#![forbid(unsafe_code)]

pub mod eval;
pub mod fig1;
pub mod fig2;
pub mod fig9;
pub mod report;
pub mod tables;

pub use eval::{evaluate, Eval};
pub use report::TextTable;

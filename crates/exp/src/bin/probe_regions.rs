//! Diagnostic: per-region mean compressed sizes and Fig. 4 mode rates
//! (lossy / capacity-miss / lossless / verbatim), for the initial and
//! final memory images. Not a paper figure — a tuning aid.
use slc_compress::{BlockCompressor, BLOCK_BYTES};
use slc_core::budget::ModeChoice;
use slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant};
use slc_workloads::{all_workloads, Harness, Scale};

fn main() {
    let scale = Scale::Small;
    let h = Harness::new(scale);
    let mag = h.config.mag();
    for w in all_workloads(scale) {
        let a = h.prepare(w.as_ref());
        let slc = SlcCompressor::new(a.e2mc.clone(), SlcConfig::new(mag, 16, SlcVariant::TslcOpt));
        println!("{}:", a.name);
        let initial = w.build(42);
        for (which, memref) in [("init", &initial), ("final", &a.exact_memory)] {
            for region in memref.regions() {
                let bytes = memref.region_bytes(region);
                let mut sizes = 0u64;
                let mut n = 0u64;
                let (mut lossy, mut lossless, mut uncomp, mut missed) = (0u64, 0u64, 0u64, 0u64);
                for chunk in bytes.chunks_exact(BLOCK_BYTES) {
                    let mut b = [0u8; BLOCK_BYTES];
                    b.copy_from_slice(chunk);
                    sizes += a.e2mc.size_bits(&b) as u64 / 8;
                    n += 1;
                    let (d, sel) = slc.analyze(&b);
                    match (d.mode, sel) {
                        (ModeChoice::Lossy, Some(_)) => lossy += 1,
                        (ModeChoice::Lossy, None) => missed += 1,
                        (ModeChoice::Uncompressed, _) => uncomp += 1,
                        _ => lossless += 1,
                    }
                }
                println!("  {which:>5} {:>20} mean {:>5.1}B  lossy {:>4.1}%  capacity-miss {:>4.1}%  lossless {:>4.1}%  uncomp {:>4.1}%",
                region.label, sizes as f64 / n as f64,
                100.0 * lossy as f64 / n as f64, 100.0 * missed as f64 / n as f64,
                100.0 * lossless as f64 / n as f64, 100.0 * uncomp as f64 / n as f64);
            }
        }
    }
}

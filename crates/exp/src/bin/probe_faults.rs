//! Diagnostic: fault-capacity curves of the degradation ladder. Not a
//! paper figure — the resilience study the fault-injection subsystem
//! exists for.
//!
//! For every benchmark, a density sweep of randomly failed DRAM rows
//! (fixed seed, so the fault sets nest and every curve is monotone by
//! construction) under TSLC-OPT at the paper-default 16 B threshold:
//! the fraction of blocks in failed rows, the ladder counters, the
//! surviving-capacity fraction `1 - uncorrectable/total`, output
//! quality (PSNR / max absolute error) and the slowdown against the
//! same scheme on healthy DRAM.

use slc_core::slc::SlcVariant;
use slc_sim::{FaultConfig, FaultMap, FaultPattern};
use slc_workloads::{all_workloads, Harness, Scale, Scheme};

/// Swept row-failure densities (nested under the fixed seed).
const DENSITIES: [f64; 7] = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4];
/// Fault-set seed; any fixed value gives a reproducible sweep.
const SEED: u64 = 7;

fn main() {
    let scale = Scale::from_env();
    let h = Harness::new(scale);
    println!("Fault-capacity sweep: RandomRows, seed {SEED}, TSLC-OPT/16 (scale {scale:?})");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10} {:>9}",
        "bench",
        "density",
        "faulty%",
        "escal",
        "remaps",
        "uncorr",
        "capacity",
        "psnr_db",
        "max_err",
        "slowdown"
    );
    for w in all_workloads(scale) {
        let a = h.prepare(w.as_ref());
        let scheme = Scheme::slc(a.e2mc.clone(), h.config.mag(), 16, SlcVariant::TslcOpt);
        let (_, t0) = h.evaluate(w.as_ref(), &a, &scheme);
        let total = a.exact_memory.blocks_with_addr().count() as u64;
        for density in DENSITIES {
            let fault = FaultConfig::new(FaultPattern::RandomRows, density, SEED);
            let cfg = h.config.clone().with_faults(fault);
            let hf = h.clone().with_config(cfg.clone());
            let (f, t) = hf.evaluate(w.as_ref(), &a, &scheme);
            let map = FaultMap::from_config(&cfg).expect("fault config is set");
            let faulty =
                map.count_faulty(a.exact_memory.blocks_with_addr().map(|(_, addr, _)| addr));
            let s = &t.stats;
            let capacity = 1.0 - s.uncorrectable_blocks as f64 / total.max(1) as f64;
            println!(
                "{:>6} {:>8.3} {:>8.2} {:>8} {:>8} {:>8} {:>9.4} {:>9.1} {:>10.4} {:>9.4}",
                a.name,
                density,
                100.0 * faulty as f64 / total.max(1) as f64,
                s.fault_escalations,
                s.remaps,
                s.uncorrectable_blocks,
                capacity,
                f.psnr_db,
                f.max_abs_err,
                s.cycles as f64 / t0.stats.cycles.max(1) as f64,
            );
        }
    }
}

//! Regenerates Table I: SLC hardware cost at 32 nm.

fn main() {
    println!("{}", slc_exp::tables::table1());
}

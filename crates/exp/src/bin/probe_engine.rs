//! Diagnostic: every benchmark's exact snapshot through the batch
//! engine. Not a paper figure — the end-to-end smoke for the framed
//! container path that CI runs at tiny scale.
//!
//! For each workload the probe concatenates the exact-region byte image
//! ([`snapshot_bytes`]), compresses it twice — once from scratch and
//! once through the cached-size fast path ([`compress_snapshot`]) — and
//! checks the two containers are byte-identical, that parallel decode
//! equals serial decode equals the original image, and prints the
//! container's compression ratio plus wall-clock GB/s for both
//! directions. Any contract violation aborts the process, so a plain
//! exit-0 run is the pass signal.

use std::time::Instant;

use slc_engine::{frame_info, Threads};
use slc_workloads::{all_workloads, compress_snapshot, snapshot_bytes, snapshot_engine};
use slc_workloads::{Harness, Scale, SnapshotAnalysis};

/// Wall-clock GB/s for `bytes` processed in `seconds` (1 byte/ns = 1 GB/s).
fn gbps(bytes: usize, seconds: f64) -> f64 {
    bytes as f64 / seconds / 1e9
}

fn main() {
    let scale = Scale::from_env();
    let h = Harness::new(scale);
    println!("Engine snapshot probe: framed container end-to-end (scale {scale:?})");
    println!(
        "{:>6} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "bench", "bytes", "chunks", "ratio", "comp_GB/s", "decomp_GB/s"
    );
    for w in all_workloads(scale) {
        let a = h.prepare(w.as_ref());
        let bytes = snapshot_bytes(&a.exact_memory);
        let engine = snapshot_engine(&a.e2mc);
        let snapshot = SnapshotAnalysis::capture(&a.e2mc, &a.exact_memory);

        let t = Instant::now();
        let container = engine.compress_threads(&bytes, Threads::Auto);
        let comp_s = t.elapsed().as_secs_f64();

        let cached = compress_snapshot(&engine, &a.e2mc, &bytes, &snapshot, Threads::Auto);
        assert_eq!(
            container, cached,
            "{}: cached-size container differs from the from-scratch one",
            a.name
        );

        let t = Instant::now();
        let parallel = engine
            .decompress_threads(&container, Threads::Auto)
            .expect("engine-produced container must decode");
        let decomp_s = t.elapsed().as_secs_f64();
        let serial = engine
            .decompress_threads(&container, Threads::Serial)
            .expect("engine-produced container must decode serially");
        assert_eq!(parallel, serial, "{}: parallel decode diverged from serial", a.name);
        assert_eq!(parallel, bytes, "{}: roundtrip is not byte-identical", a.name);

        let info = frame_info(&container).expect("engine-produced container must parse");
        println!(
            "{:>6} {:>10} {:>8} {:>8.3} {:>12.3} {:>12.3}",
            a.name,
            bytes.len(),
            info.chunk_count,
            info.ratio(),
            gbps(bytes.len(), comp_s),
            gbps(bytes.len(), decomp_s),
        );
    }
    println!("all snapshots roundtripped byte-identically (parallel == serial == original)");
}

//! Diagnostic: every benchmark's exact snapshot through the batch
//! engine. Not a paper figure — the end-to-end smoke for the framed
//! container path that CI runs at tiny scale.
//!
//! For each workload the probe concatenates the exact-region byte image
//! ([`snapshot_bytes`]), compresses it twice — once from scratch and
//! once through the cached-size fast path ([`compress_snapshot`]) — and
//! checks the two containers are byte-identical, that parallel decode
//! equals serial decode equals the original image, and prints the
//! container's compression ratio plus wall-clock GB/s for both
//! directions. Any contract violation aborts the process, so a plain
//! exit-0 run is the pass signal.
//!
//! `--codec <name>` swaps the substrate: `e2mc` (default) probes the
//! trained snapshot codec, `rans` the whole-chunk entropy coder and
//! `bdi` the base+delta codec. The cached-size identity is asserted for
//! every substrate — chunk coders document that they ignore the size
//! hints, and this is where that contract is exercised end to end.
//!
//! After the per-workload sweep the probe re-runs the largest snapshot
//! under `Threads::Exact(n)` for n = 1, 2, 4, 8, printing per-worker-
//! count GB/s (and asserting the containers stay byte-identical), so a
//! scheduling regression shows up as a flat or inverted scaling column
//! rather than a silent slowdown.

use std::sync::Arc;
use std::time::Instant;

use slc_compress::rans::Rans;
use slc_compress::{bdi::Bdi, BlockCodec};
use slc_engine::{frame_info, Engine, Threads};
use slc_workloads::{all_workloads, compress_snapshot, snapshot_bytes, snapshot_engine};
use slc_workloads::{Harness, Scale, SnapshotAnalysis};

/// Wall-clock GB/s for `bytes` processed in `seconds` (1 byte/ns = 1 GB/s).
fn gbps(bytes: usize, seconds: f64) -> f64 {
    bytes as f64 / seconds / 1e9
}

/// Substrate selected by `--codec`; `None` means the per-workload
/// trained E2MC snapshot codec.
fn codec_arg() -> Option<Arc<dyn BlockCodec>> {
    let mut args = std::env::args().skip(1);
    if let Some(a) = args.next() {
        if a == "--codec" {
            let name = args.next().unwrap_or_else(|| {
                eprintln!("--codec needs a name (e2mc, rans, bdi)");
                std::process::exit(2);
            });
            return match name.as_str() {
                "e2mc" => None,
                "rans" => Some(Arc::new(Rans::new())),
                "bdi" => Some(Arc::new(Bdi::new())),
                other => {
                    eprintln!("unknown --codec {other:?} (expected e2mc, rans or bdi)");
                    std::process::exit(2);
                }
            };
        }
        eprintln!("unknown argument {a:?} (usage: probe_engine [--codec e2mc|rans|bdi])");
        std::process::exit(2);
    }
    None
}

fn main() {
    let scale = Scale::from_env();
    let override_codec = codec_arg();
    let codec_name = override_codec.as_ref().map_or("e2mc", |c| c.name());
    let h = Harness::new(scale);
    println!(
        "Engine snapshot probe: framed container end-to-end (scale {scale:?}, codec {codec_name})"
    );
    println!(
        "{:>6} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "bench", "bytes", "chunks", "ratio", "comp_GB/s", "decomp_GB/s"
    );
    let mut largest: Option<(Vec<u8>, Engine)> = None;
    for w in all_workloads(scale) {
        let a = h.prepare(w.as_ref());
        let bytes = snapshot_bytes(&a.exact_memory);
        let engine = match &override_codec {
            Some(codec) => Engine::new(Arc::clone(codec)),
            None => snapshot_engine(&a.e2mc),
        };
        let snapshot = SnapshotAnalysis::capture(&a.e2mc, &a.exact_memory);

        let t = Instant::now();
        let container = engine.compress_threads(&bytes, Threads::Auto);
        let comp_s = t.elapsed().as_secs_f64();

        // The cached-size fast path must reproduce the container exactly:
        // per-block codecs because the hints equal their own size_bits,
        // chunk coders (rANS) because they ignore the hints entirely.
        let cached = compress_snapshot(&engine, &a.e2mc, &bytes, &snapshot, Threads::Auto);
        assert_eq!(
            container, cached,
            "{}: cached-size container differs from the from-scratch one",
            a.name
        );

        let t = Instant::now();
        let parallel = engine
            .decompress_threads(&container, Threads::Auto)
            .expect("engine-produced container must decode");
        let decomp_s = t.elapsed().as_secs_f64();
        let serial = engine
            .decompress_threads(&container, Threads::Serial)
            .expect("engine-produced container must decode serially");
        assert_eq!(parallel, serial, "{}: parallel decode diverged from serial", a.name);
        assert_eq!(parallel, bytes, "{}: roundtrip is not byte-identical", a.name);

        let info = frame_info(&container).expect("engine-produced container must parse");
        println!(
            "{:>6} {:>10} {:>8} {:>8.3} {:>12.3} {:>12.3}",
            a.name,
            bytes.len(),
            info.chunk_count,
            info.ratio(),
            gbps(bytes.len(), comp_s),
            gbps(bytes.len(), decomp_s),
        );
        if largest.as_ref().is_none_or(|(b, _)| b.len() < bytes.len()) {
            largest = Some((bytes, engine));
        }
    }

    // Worker-count scaling on the largest snapshot: output bytes are
    // policy-independent (asserted), only the wall clock may move.
    let (bytes, engine) = largest.expect("at least one workload at every scale");
    let reference = engine.compress_threads(&bytes, Threads::Serial);
    println!("worker scaling on largest snapshot ({} bytes, codec {codec_name}):", bytes.len());
    println!("{:>8} {:>12} {:>12}", "workers", "comp_GB/s", "decomp_GB/s");
    for n in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let container = engine.compress_threads(&bytes, Threads::Exact(n));
        let comp_s = t.elapsed().as_secs_f64();
        assert_eq!(container, reference, "Exact({n}) container diverged from serial");
        let t = Instant::now();
        let decoded = engine
            .decompress_threads(&container, Threads::Exact(n))
            .expect("engine-produced container must decode at any worker count");
        let decomp_s = t.elapsed().as_secs_f64();
        assert_eq!(decoded, bytes, "Exact({n}) decode is not byte-identical");
        println!(
            "{:>8} {:>12.3} {:>12.3}",
            n,
            gbps(bytes.len(), comp_s),
            gbps(bytes.len(), decomp_s)
        );
    }
    println!("all snapshots roundtripped byte-identically (parallel == serial == original)");
}

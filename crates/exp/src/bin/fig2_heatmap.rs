//! Regenerates Fig. 2: distribution of compressed blocks above MAG.

use slc_compress::Mag;
use slc_workloads::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", slc_exp::fig2::compute(scale, Mag::GDDR5).render());
}

//! Diagnostic: per-benchmark burst counts, bandwidth utilisation and
//! TSLC-OPT speedup at a glance. Not a paper figure — a tuning aid.
use slc_core::slc::SlcVariant;
use slc_workloads::{all_workloads, Harness, Scale, Scheme};

fn main() {
    let scale = Scale::Small;
    let h = Harness::new(scale);
    let mag = h.config.mag();
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "bench", "e2mc_bur", "slc_bur", "nocomp", "bw_no", "bw_e2mc", "bw_slc", "speedup"
    );
    for w in all_workloads(scale) {
        let a = h.prepare(w.as_ref());
        let (f0, t0) = h.evaluate(w.as_ref(), &a, &Scheme::Uncompressed);
        let e = Scheme::E2mc(a.e2mc.clone());
        let (f1, t1) = h.evaluate(w.as_ref(), &a, &e);
        let s = Scheme::slc(a.e2mc.clone(), mag, 16, SlcVariant::TslcOpt);
        let (f2, t2) = h.evaluate(w.as_ref(), &a, &s);
        let bw = |st: &slc_sim::SimStats| {
            st.achieved_bandwidth_gbps(mag.bytes(), h.config.sm_clock_mhz)
                / h.config.bandwidth_gbps()
        };
        println!(
            "{:>6} {:>9.3} {:>9.3} {:>9} {:>8.2} {:>8.2} {:>8.2} {:>7.3}",
            a.name,
            f1.bursts.mean_bursts(),
            f2.bursts.mean_bursts(),
            4,
            bw(&t0.stats),
            bw(&t1.stats),
            bw(&t2.stats),
            t1.stats.cycles as f64 / t2.stats.cycles as f64
        );
        let _ = f0;
    }
}

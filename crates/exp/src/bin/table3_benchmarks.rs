//! Regenerates Table III: the benchmark inventory.

use slc_workloads::Scale;

fn main() {
    println!("{}", slc_exp::tables::table3(Scale::from_env()));
}

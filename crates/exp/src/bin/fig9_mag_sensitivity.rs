//! Regenerates Fig. 9 and the §V-C ratio study: MAG sensitivity.

use slc_workloads::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", slc_exp::fig9::compute(scale).render());
}

//! Regenerates Table II: baseline simulator configuration.

fn main() {
    println!("{}", slc_exp::tables::table2());
}

//! Runs every figure and table in sequence (the full reproduction).

use slc_compress::Mag;
use slc_core::slc::SlcVariant;
use slc_workloads::{Harness, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("=== SLC reproduction, scale {scale:?} ===\n");
    println!("{}", slc_exp::tables::table2());
    println!("{}", slc_exp::tables::table3(scale));
    println!("{}", slc_exp::tables::table1());
    println!("{}", slc_exp::fig1::compute(scale, Mag::GDDR5).render());
    println!("{}", slc_exp::fig2::compute(scale, Mag::GDDR5).render());
    let harness = Harness::new(scale);
    let eval = slc_exp::evaluate(
        scale,
        &harness,
        16,
        &[SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt],
    );
    println!("{}", eval.render_fig7());
    println!("{}", eval.render_fig8());
    println!("{}", slc_exp::fig9::compute(scale).render());
}

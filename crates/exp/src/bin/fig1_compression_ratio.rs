//! Regenerates Fig. 1: raw vs effective compression ratio at MAG 32 B.

use slc_compress::Mag;
use slc_workloads::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", slc_exp::fig1::compute(scale, Mag::GDDR5).render());
    let ext = slc_exp::fig1::compute_section2a(scale, Mag::GDDR5);
    println!("{}", slc_exp::fig1::render_section2a(&ext));
}

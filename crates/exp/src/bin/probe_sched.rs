//! Diagnostic: timing under the scheduler-policy matrix. Not a paper
//! figure — the tuning aid that attributes PR 5's model changes.
//!
//! For every benchmark, NOCOMP cycles under {InOrder, FR-FCFS} × {MDC,
//! no MDC} (the pre-PR baseline is InOrder + MDC; the fixed baseline is
//! FR-FCFS without an MDC) and E2MC cycles under both policies, plus the
//! FR-FCFS write-drain telemetry of the E2MC run.

use slc_sim::mc::UniformBursts;
use slc_sim::{Engine, SchedPolicy};
use slc_workloads::{all_workloads, Harness, Scale, Scheme};

fn main() {
    let scale = Scale::from_env();
    let h = Harness::new(scale);
    println!("NOCOMP cycles per policy x MDC, E2MC cycles per policy (scale {scale:?})");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8} {:>8}",
        "bench",
        "no_in_mdc",
        "no_in",
        "no_fr_mdc",
        "no_fr",
        "e2mc_in",
        "e2mc_fr",
        "drains",
        "forced"
    );
    for w in all_workloads(scale) {
        let a = h.prepare(w.as_ref());
        let max = h.config.max_bursts();
        let nocomp = |policy: SchedPolicy, mdc: bool| {
            let mut cfg = h.config.clone().with_sched_policy(policy);
            if !mdc {
                cfg = cfg.without_mdc();
            }
            Engine::new(cfg).run(&a.trace, &UniformBursts(max)).cycles
        };
        let e2mc = Scheme::E2mc(a.e2mc.clone());
        let run_e2mc = |policy: SchedPolicy| {
            let h2 = h.clone().with_config(h.config.clone().with_sched_policy(policy));
            let f = h2.run_functional(w.as_ref(), &a, &e2mc);
            h2.run_timing(&a, &f, &e2mc).stats
        };
        let e2mc_in = run_e2mc(SchedPolicy::InOrder);
        let e2mc_fr = run_e2mc(SchedPolicy::FrFcfs);
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8} {:>8}",
            a.name,
            nocomp(SchedPolicy::InOrder, true),
            nocomp(SchedPolicy::InOrder, false),
            nocomp(SchedPolicy::FrFcfs, true),
            nocomp(SchedPolicy::FrFcfs, false),
            e2mc_in.cycles,
            e2mc_fr.cycles,
            e2mc_fr.write_drains,
            e2mc_fr.write_drain_forced
        );
    }
}

//! Regenerates Fig. 8: bandwidth, energy and EDP vs E2MC.

use slc_core::slc::SlcVariant;
use slc_workloads::{Harness, Scale};

fn main() {
    let scale = Scale::from_env();
    let harness = Harness::new(scale);
    let eval = slc_exp::evaluate(
        scale,
        &harness,
        16,
        &[SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt],
    );
    println!("{}", eval.render_fig8());
}

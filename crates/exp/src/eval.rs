//! The main SLC evaluation: every benchmark under E2MC and the TSLC
//! variants. Figures 7 and 8 are two views of these runs.

use crate::report::{err_pct, f3, TextTable};
use slc_compress::ratio::geometric_mean;
use slc_core::slc::SlcVariant;
use slc_power::{EnergyBreakdown, EnergyModel};
use slc_sim::SimStats;
use slc_workloads::harness::BenchmarkArtifacts;
use slc_workloads::harness::{normalized_bandwidth, speedup};
use slc_workloads::{all_workloads, Harness, Scale, Scheme, SchemeKind, Workload};

/// One scheme's results on one benchmark, normalised to the E2MC baseline.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Scheme identity.
    pub kind: SchemeKind,
    /// Speedup over E2MC (>1 = faster).
    pub speedup: f64,
    /// Application-specific error (percent).
    pub error_pct: f64,
    /// Uniform MRE (percent) for the cross-benchmark GM.
    pub mre_pct: f64,
    /// DRAM traffic normalised to E2MC (<1 = less).
    pub norm_bandwidth: f64,
    /// Energy normalised to E2MC.
    pub norm_energy: f64,
    /// EDP normalised to E2MC.
    pub norm_edp: f64,
    /// Raw counters.
    pub stats: SimStats,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

/// One benchmark's full evaluation.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Benchmark name.
    pub name: String,
    /// E2MC baseline counters.
    pub baseline: SimStats,
    /// E2MC baseline energy.
    pub baseline_energy: EnergyBreakdown,
    /// Speedup of E2MC over *no compression* (context).
    pub e2mc_vs_nocomp: f64,
    /// TSLC variants in the requested order.
    pub variants: Vec<VariantResult>,
}

/// The full evaluation.
#[derive(Debug, Clone)]
pub struct Eval {
    /// Per-benchmark rows in paper order.
    pub rows: Vec<EvalRow>,
    /// Variant order used.
    pub variants: Vec<SlcVariant>,
    /// Lossy threshold in bytes.
    pub threshold_bytes: u32,
    /// MAG in bytes.
    pub mag_bytes: u32,
}

/// Runs the evaluation at `scale` for the given TSLC variants.
///
/// `config` fixes the MAG; the threshold follows the paper (16 B at MAG
/// 32 B in Figs. 7–8, MAG/2 in Fig. 9).
///
/// The nine benchmarks are independent, so they evaluate in parallel
/// ([`slc_par::par_map`]); results come back in paper order regardless of
/// which workload finishes first, keeping reports byte-identical to a
/// serial run.
pub fn evaluate(
    scale: Scale,
    harness: &Harness,
    threshold_bytes: u32,
    variants: &[SlcVariant],
) -> Eval {
    evaluate_prepared(harness, threshold_bytes, variants, &prepare_all(scale, harness))
}

/// Step 1+2 (exact run + table training) for every benchmark, in
/// parallel. Callers that need the artifacts for their own studies (e.g.
/// Fig. 9's ratio sweep) prepare once and pass the result to
/// [`evaluate_prepared`] instead of paying a second full prepare pass.
///
/// The artifacts also lazily cache the exact run's per-snapshot E2MC
/// stored sizes ([`BenchmarkArtifacts::exact_size_snapshots`]): the
/// artifacts are MAG- and threshold-independent, so one prepared set
/// serves any number of [`evaluate_prepared`] sweeps and the E2MC
/// baseline inside each is a cheap decision sweep over the shared sizes,
/// not a re-encode.
pub fn prepare_all(
    scale: Scale,
    harness: &Harness,
) -> Vec<(Box<dyn Workload>, BenchmarkArtifacts)> {
    slc_par::par_map(all_workloads(scale), |w| {
        let artifacts = harness.prepare(w.as_ref());
        (w, artifacts)
    })
}

/// [`evaluate`] over benchmarks that are already prepared.
pub fn evaluate_prepared(
    harness: &Harness,
    threshold_bytes: u32,
    variants: &[SlcVariant],
    prepared: &[(Box<dyn Workload>, BenchmarkArtifacts)],
) -> Eval {
    let energy_model = EnergyModel::default();
    let mag = harness.config.mag();
    let rows = slc_par::par_map_ref(prepared, |(w, artifacts)| {
        // Baselines. Cloning `artifacts.e2mc` into a scheme is an Arc
        // refcount bump (the trained table is shared), so every worker
        // and every variant below reuses the one trained model; the E2MC
        // baseline additionally sweeps the artifacts' cached exact-run
        // analyses instead of replaying the kernels (see
        // `Harness::run_functional`).
        let nocomp = Scheme::Uncompressed;
        let (_, t_nocomp) = harness.evaluate(w.as_ref(), artifacts, &nocomp);
        let e2mc_scheme = Scheme::E2mc(artifacts.e2mc.clone());
        let (_, t_e2mc) = harness.evaluate(w.as_ref(), artifacts, &e2mc_scheme);
        let baseline_energy = energy_model.evaluate(&t_e2mc.stats, &harness.config);
        // Variants.
        let mut results = Vec::new();
        for &variant in variants {
            let scheme = Scheme::slc(artifacts.e2mc.clone(), mag, threshold_bytes, variant);
            let (f, t) = harness.evaluate(w.as_ref(), artifacts, &scheme);
            let energy = energy_model.evaluate(&t.stats, &harness.config);
            results.push(VariantResult {
                kind: t.kind,
                speedup: speedup(&t_e2mc.stats, &t.stats),
                error_pct: f.error_pct,
                mre_pct: f.mre_pct,
                norm_bandwidth: normalized_bandwidth(&t_e2mc.stats, &t.stats),
                norm_energy: energy.total_mj() / baseline_energy.total_mj(),
                norm_edp: energy.edp() / baseline_energy.edp(),
                stats: t.stats,
                energy,
            });
        }
        EvalRow {
            name: artifacts.name.clone(),
            baseline: t_e2mc.stats.clone(),
            baseline_energy,
            e2mc_vs_nocomp: speedup(&t_nocomp.stats, &t_e2mc.stats),
            variants: results,
        }
    });
    Eval { rows, variants: variants.to_vec(), threshold_bytes, mag_bytes: mag.bytes() }
}

impl Eval {
    /// Geometric-mean speedup of variant `v` across benchmarks.
    pub fn gm_speedup(&self, v: usize) -> f64 {
        geometric_mean(&self.rows.iter().map(|r| r.variants[v].speedup).collect::<Vec<_>>())
    }

    /// Geometric-mean normalised bandwidth of variant `v`.
    pub fn gm_bandwidth(&self, v: usize) -> f64 {
        geometric_mean(&self.rows.iter().map(|r| r.variants[v].norm_bandwidth).collect::<Vec<_>>())
    }

    /// Geometric-mean normalised energy of variant `v`.
    pub fn gm_energy(&self, v: usize) -> f64 {
        geometric_mean(&self.rows.iter().map(|r| r.variants[v].norm_energy).collect::<Vec<_>>())
    }

    /// Geometric-mean normalised EDP of variant `v`.
    pub fn gm_edp(&self, v: usize) -> f64 {
        geometric_mean(&self.rows.iter().map(|r| r.variants[v].norm_edp).collect::<Vec<_>>())
    }

    /// Geometric mean of the per-benchmark MREs of variant `v`, in percent
    /// (the paper reports 0.99 % for TSLC-OPT); zero errors are clamped to
    /// a 1e-6 % floor so the GM stays defined.
    pub fn gm_mre(&self, v: usize) -> f64 {
        geometric_mean(
            &self.rows.iter().map(|r| r.variants[v].mre_pct.max(1e-6)).collect::<Vec<_>>(),
        )
    }

    /// Renders Fig. 7 (speedup + error).
    pub fn render_fig7(&self) -> String {
        let labels: Vec<&str> = self.variants.iter().map(|v| v.label()).collect();
        let mut header = vec!["Bench".to_owned()];
        for l in &labels {
            header.push(format!("{l} speedup"));
        }
        for l in &labels {
            header.push(format!("{l} err"));
        }
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let mut cells = vec![row.name.clone()];
            for v in &row.variants {
                cells.push(f3(v.speedup));
            }
            for v in &row.variants {
                cells.push(err_pct(v.error_pct));
            }
            t.row(cells);
        }
        let mut cells = vec!["GM".to_owned()];
        for v in 0..self.variants.len() {
            cells.push(f3(self.gm_speedup(v)));
        }
        for v in 0..self.variants.len() {
            cells.push(err_pct(self.gm_mre(v)));
        }
        t.row(cells);
        let mut out = format!(
            "Fig. 7: speedup and error vs E2MC (MAG {} B, threshold {} B)\n",
            self.mag_bytes, self.threshold_bytes
        );
        out.push_str(&t.render());
        out.push_str(
            "\n(GM error row shows the geometric mean of per-benchmark MREs;\n paper: GM speedups 1.090/1.098/1.097, GM MRE 0.99% for TSLC-OPT)\n",
        );
        out
    }

    /// Renders Fig. 8 (bandwidth, energy, EDP).
    pub fn render_fig8(&self) -> String {
        let labels: Vec<&str> = self.variants.iter().map(|v| v.label()).collect();
        let mut header = vec!["Bench".to_owned()];
        for l in &labels {
            header.push(format!("{l} BW"));
        }
        for l in &labels {
            header.push(format!("{l} E"));
        }
        for l in &labels {
            header.push(format!("{l} EDP"));
        }
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let mut cells = vec![row.name.clone()];
            for v in &row.variants {
                cells.push(f3(v.norm_bandwidth));
            }
            for v in &row.variants {
                cells.push(f3(v.norm_energy));
            }
            for v in &row.variants {
                cells.push(f3(v.norm_edp));
            }
            t.row(cells);
        }
        let mut cells = vec!["GM".to_owned()];
        for v in 0..self.variants.len() {
            cells.push(f3(self.gm_bandwidth(v)));
        }
        for v in 0..self.variants.len() {
            cells.push(f3(self.gm_energy(v)));
        }
        for v in 0..self.variants.len() {
            cells.push(f3(self.gm_edp(v)));
        }
        t.row(cells);
        let mut out = format!(
            "Fig. 8: bandwidth, energy and EDP normalised to E2MC (MAG {} B, threshold {} B)\n",
            self.mag_bytes, self.threshold_bytes
        );
        out.push_str(&t.render());
        out.push_str("\n(paper GMs: bandwidth ~0.86, energy ~0.917, EDP ~0.825)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_eval_produces_sane_numbers() {
        let harness = Harness::new(Scale::Tiny);
        let eval = evaluate(Scale::Tiny, &harness, 16, &[SlcVariant::TslcOpt]);
        assert_eq!(eval.rows.len(), 9);
        for row in &eval.rows {
            let v = &row.variants[0];
            assert!(v.speedup > 0.85, "{}: speedup {}", row.name, v.speedup);
            assert!(
                v.norm_bandwidth <= 1.02,
                "{}: TSLC must not add traffic ({})",
                row.name,
                v.norm_bandwidth
            );
            assert!(v.error_pct >= 0.0);
            assert!(v.norm_edp <= v.norm_energy + 1e-9 || v.speedup < 1.0);
        }
        let gm = eval.gm_speedup(0);
        assert!(gm >= 0.98, "GM speedup {gm}");
        let fig7 = eval.render_fig7();
        assert!(fig7.contains("GM"));
        let fig8 = eval.render_fig8();
        assert!(fig8.contains("EDP"));
    }
}

//! A present-but-zero-density fault map must leave every figure
//! byte-identical: the fault subsystem, when it has nothing to inject,
//! is indistinguishable from its absence across the full evaluation
//! pipeline (harness caches bypassed included).

use slc_core::slc::SlcVariant;
use slc_exp::eval::evaluate;
use slc_sim::{FaultConfig, FaultPattern};
use slc_workloads::{Harness, Scale};

#[test]
fn figures_are_byte_identical_under_a_zero_density_fault_map() {
    let scale = Scale::Tiny;
    let plain = Harness::new(scale);
    let zero = plain.clone().with_config(plain.config.clone().with_faults(FaultConfig::new(
        FaultPattern::RandomRows,
        0.0,
        42,
    )));
    let variants = [SlcVariant::TslcOpt];
    let eval_plain = evaluate(scale, &plain, 16, &variants);
    let eval_zero = evaluate(scale, &zero, 16, &variants);
    assert_eq!(
        eval_plain.render_fig7(),
        eval_zero.render_fig7(),
        "Fig. 7 must not notice a zero-density fault map"
    );
    assert_eq!(
        eval_plain.render_fig8(),
        eval_zero.render_fig8(),
        "Fig. 8 must not notice a zero-density fault map"
    );
}

#[test]
fn evaluation_is_deterministic_with_faults_injected() {
    // The figure pipeline itself must replay exactly under a fixed
    // fault seed (the sweep binaries rely on it).
    let scale = Scale::Tiny;
    let h =
        Harness::new(scale).with_config(Harness::new(scale).config.with_faults(FaultConfig::new(
            FaultPattern::ChannelSkew,
            0.15,
            5,
        )));
    let variants = [SlcVariant::TslcOpt];
    let a = evaluate(scale, &h, 16, &variants);
    let b = evaluate(scale, &h, 16, &variants);
    assert_eq!(a.render_fig7(), b.render_fig7());
    assert_eq!(a.render_fig8(), b.render_fig8());
}

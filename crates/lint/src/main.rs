//! CLI: `cargo run --release -p slc-lint [-- --update-wire-lock]`.
//!
//! Exit status is non-zero when any check produced a finding, so CI can
//! gate on it directly. `--update-wire-lock` re-extracts the wire
//! snapshot and rewrites `tools/lint/wire_format.lock` instead of
//! diffing — for intentional, documented wire changes only.

use slc_lint::{graph, hygiene, rows, waiver_hint, wire, Finding, Workspace};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const HOT_PATHS_MANIFEST: &str = "tools/lint/hot_paths.txt";

fn main() -> ExitCode {
    let update_lock = std::env::args().any(|a| a == "--update-wire-lock");
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!(
                "slc-lint: cannot locate the workspace root (no Cargo.toml with [workspace])"
            );
            return ExitCode::FAILURE;
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("slc-lint: failed to load workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    println!("slc-lint: scanned {} files in {}", ws.files.len(), root.display());

    let snapshot = wire::snapshot(&ws);
    if update_lock {
        let lock_path = root.join(wire::LOCK_PATH);
        if let Err(e) = std::fs::write(&lock_path, wire::render_lock(&snapshot)) {
            eprintln!("slc-lint: failed to write {}: {e}", lock_path.display());
            return ExitCode::FAILURE;
        }
        println!("slc-lint: wrote {} wire keys to {}", snapshot.len(), wire::LOCK_PATH);
        return ExitCode::SUCCESS;
    }

    let mut findings: Vec<Finding> = Vec::new();

    // 1 + 4: hot-path audit and assert policy share the call graph.
    match std::fs::read_to_string(root.join(HOT_PATHS_MANIFEST)) {
        Ok(text) => {
            let manifest = graph::parse_manifest(&text);
            println!("slc-lint: auditing {} hot-path roots", manifest.len());
            findings.extend(graph::check_hot_paths(&ws, &manifest));
        }
        Err(e) => findings.push(Finding {
            check: graph::HOT_PATH,
            file: HOT_PATHS_MANIFEST.to_string(),
            line: 0,
            message: format!("cannot read hot-path manifest: {e}"),
        }),
    }

    // 2: unsafe hygiene + the always-printed inventory.
    findings.extend(hygiene::check_unsafe(&ws));
    let inventory = hygiene::inventory(&ws);
    println!("slc-lint: unsafe inventory ({} sites)", inventory.len());
    for line in &inventory {
        println!("  {line}");
    }

    // 3: wire-format freeze.
    match std::fs::read_to_string(root.join(wire::LOCK_PATH)) {
        Ok(text) => findings.extend(wire::check_lock(&snapshot, &wire::parse_lock(&text))),
        Err(e) => findings.push(Finding {
            check: wire::WIRE,
            file: wire::LOCK_PATH.to_string(),
            line: 0,
            message: format!("cannot read wire lock: {e} — generate it with --update-wire-lock"),
        }),
    }

    // 5: bench-row cross-check.
    let mut manifests = Vec::new();
    for path in ["tools/bench_rows.txt", "tools/eval_rows.txt"] {
        match std::fs::read_to_string(root.join(path)) {
            Ok(text) => manifests.push((path.to_string(), rows::parse_rows(&text))),
            Err(e) => findings.push(Finding {
                check: rows::BENCH_ROWS,
                file: path.to_string(),
                line: 0,
                message: format!("cannot read row manifest: {e}"),
            }),
        }
    }
    findings.extend(rows::check_rows(&ws, &manifests));

    if findings.is_empty() {
        println!("slc-lint: all checks clean");
        return ExitCode::SUCCESS;
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.check).cmp(&(&b.file, b.line, b.check)));
    eprintln!("slc-lint: {} finding(s)", findings.len());
    for f in &findings {
        eprintln!("{f}");
    }
    let checks: BTreeSet<&str> = findings.iter().map(|f| f.check).collect();
    for check in checks {
        eprintln!("note: {}", waiver_hint(check));
    }
    ExitCode::FAILURE
}

/// The workspace root: walk up from `CARGO_MANIFEST_DIR` (when run via
/// cargo) or the current directory until a `Cargo.toml` containing
/// `[workspace]` appears.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
        }
        dir = dir.parent()?;
    }
}

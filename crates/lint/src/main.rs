//! CLI: `cargo run --release -p slc-lint [-- FLAGS]`.
//!
//! Flags:
//!
//! * `--format json` — print one machine-readable JSON object (findings,
//!   unsafe inventory, waiver inventory, scan stats) to stdout instead
//!   of the human report; CI uploads it as an artifact.
//! * `--update-wire-lock` — re-extract the wire snapshot and rewrite
//!   `tools/lint/wire_format.lock` instead of diffing. For intentional,
//!   documented wire changes only.
//! * `--update-waiver-lock` — re-count the workspace's waivers and
//!   rewrite `tools/lint/waivers.lock`. For commits whose new waivers
//!   have been reviewed.
//!
//! Exit status is non-zero when any check produced a finding (or the
//! tool could not do its job — also surfaced as findings), so CI can
//! gate on it directly; see the crate docs for the full taxonomy.

use slc_lint::{debt, graph, hygiene, rows, taint, waiver_hint, wire, Finding, Workspace};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const HOT_PATHS_MANIFEST: &str = "tools/lint/hot_paths.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update_wire_lock = args.iter().any(|a| a == "--update-wire-lock");
    let update_waiver_lock = args.iter().any(|a| a == "--update-waiver-lock");
    let json = args.iter().any(|a| a == "--format=json")
        || args.windows(2).any(|w| w[0] == "--format" && w[1] == "json");
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!(
                "slc-lint: cannot locate the workspace root (no Cargo.toml with [workspace])"
            );
            return ExitCode::FAILURE;
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("slc-lint: failed to load workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    // Progress chatter goes to stderr in JSON mode so stdout stays one
    // parseable document.
    let note = |line: &str| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    note(&format!("slc-lint: scanned {} files in {}", ws.files.len(), root.display()));

    let snapshot = wire::snapshot(&ws);
    if update_wire_lock {
        let lock_path = root.join(wire::LOCK_PATH);
        if let Err(e) = std::fs::write(&lock_path, wire::render_lock(&snapshot)) {
            eprintln!("slc-lint: failed to write {}: {e}", lock_path.display());
            return ExitCode::FAILURE;
        }
        note(&format!("slc-lint: wrote {} wire keys to {}", snapshot.len(), wire::LOCK_PATH));
        return ExitCode::SUCCESS;
    }
    let debt_snapshot = debt::snapshot(&ws);
    if update_waiver_lock {
        let lock_path = root.join(debt::LOCK_PATH);
        if let Err(e) = std::fs::write(&lock_path, debt::render_lock(&debt_snapshot)) {
            eprintln!("slc-lint: failed to write {}: {e}", lock_path.display());
            return ExitCode::FAILURE;
        }
        let total: usize = debt_snapshot.values().sum();
        note(&format!("slc-lint: wrote {total} waiver(s) to {}", debt::LOCK_PATH));
        return ExitCode::SUCCESS;
    }

    let mut findings: Vec<Finding> = Vec::new();

    // 1 + 4: hot-path audit and assert policy share the call graph.
    match std::fs::read_to_string(root.join(HOT_PATHS_MANIFEST)) {
        Ok(text) => {
            let manifest = graph::parse_manifest(&text);
            note(&format!("slc-lint: auditing {} hot-path roots", manifest.len()));
            findings.extend(graph::check_hot_paths(&ws, &manifest));
        }
        Err(e) => findings.push(Finding {
            check: graph::HOT_PATH,
            file: HOT_PATHS_MANIFEST.to_string(),
            line: 0,
            message: format!("cannot read hot-path manifest: {e}"),
        }),
    }

    // 2: unsafe hygiene + the always-reported inventory.
    findings.extend(hygiene::check_unsafe(&ws));
    let inventory = hygiene::inventory(&ws);
    if !json {
        println!("slc-lint: unsafe inventory ({} sites)", inventory.len());
        for line in &inventory {
            println!("  {line}");
        }
    }

    // 3: wire-format freeze.
    match std::fs::read_to_string(root.join(wire::LOCK_PATH)) {
        Ok(text) => findings.extend(wire::check_lock(&snapshot, &wire::parse_lock(&text))),
        Err(e) => findings.push(Finding {
            check: wire::WIRE,
            file: wire::LOCK_PATH.to_string(),
            line: 0,
            message: format!("cannot read wire lock: {e} — generate it with --update-wire-lock"),
        }),
    }

    // 5: bench-row cross-check.
    let mut manifests = Vec::new();
    for path in ["tools/bench_rows.txt", "tools/eval_rows.txt"] {
        match std::fs::read_to_string(root.join(path)) {
            Ok(text) => manifests.push((path.to_string(), rows::parse_rows(&text))),
            Err(e) => findings.push(Finding {
                check: rows::BENCH_ROWS,
                file: path.to_string(),
                line: 0,
                message: format!("cannot read row manifest: {e}"),
            }),
        }
    }
    findings.extend(rows::check_rows(&ws, &manifests));

    // 6 + 7: wire-taint dataflow + tainted arithmetic.
    match std::fs::read_to_string(root.join(taint::MANIFEST)) {
        Ok(text) => {
            let manifest = taint::parse_manifest(&text);
            note(&format!("slc-lint: tracking {} taint sources/sanitizers", manifest.len()));
            findings.extend(taint::check_taint(&ws, &manifest));
        }
        Err(e) => findings.push(Finding {
            check: taint::WIRE_TAINT,
            file: taint::MANIFEST.to_string(),
            line: 0,
            message: format!("cannot read taint manifest: {e}"),
        }),
    }

    // 8: waiver-debt lock.
    match std::fs::read_to_string(root.join(debt::LOCK_PATH)) {
        Ok(text) => {
            findings.extend(debt::check_lock(&debt_snapshot, &debt::parse_lock(&text)));
        }
        Err(e) => findings.push(Finding {
            check: debt::WAIVER_DEBT,
            file: debt::LOCK_PATH.to_string(),
            line: 0,
            message: format!(
                "cannot read waiver lock: {e} — generate it with --update-waiver-lock"
            ),
        }),
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.check).cmp(&(&b.file, b.line, b.check)));
    if json {
        println!("{}", render_json(&ws, &findings, &inventory));
        return if findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    if findings.is_empty() {
        println!("slc-lint: all checks clean");
        return ExitCode::SUCCESS;
    }
    eprintln!("slc-lint: {} finding(s)", findings.len());
    for f in &findings {
        eprintln!("{f}");
    }
    let checks: BTreeSet<&str> = findings.iter().map(|f| f.check).collect();
    for check in checks {
        eprintln!("note: {}", waiver_hint(check));
    }
    ExitCode::FAILURE
}

/// Renders the machine-readable report: findings, the unsafe inventory,
/// the waiver inventory, and scan stats, as one JSON object.
///
/// Hand-rolled on purpose — the lint ships zero external dependencies
/// (offline build container), and the document is flat enough that a
/// serializer would buy nothing but a dependency.
fn render_json(ws: &Workspace, findings: &[Finding], unsafe_inventory: &[String]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", ws.files.len()));
    let fn_count: usize = ws.files.iter().map(|f| f.fns.len()).sum();
    out.push_str(&format!("  \"functions\": {fn_count},\n"));

    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"check\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(f.check),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "],\n" } else { "\n  ],\n" });

    out.push_str("  \"unsafe_inventory\": [");
    for (i, line) in unsafe_inventory.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}", json_str(line)));
    }
    out.push_str(if unsafe_inventory.is_empty() { "],\n" } else { "\n  ],\n" });

    let mut waiver_count = 0usize;
    out.push_str("  \"waivers\": [");
    for file in &ws.files {
        for w in slc_lint::waivers(file) {
            if waiver_count > 0 {
                out.push(',');
            }
            waiver_count += 1;
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"check\": {}, \"reason\": {}}}",
                json_str(&file.path),
                w.target_line,
                json_str(&w.check),
                json_str(&w.reason)
            ));
        }
    }
    out.push_str(if waiver_count == 0 { "],\n" } else { "\n  ],\n" });
    out.push_str(&format!("  \"waiver_count\": {waiver_count}\n"));
    out.push_str("}\n");
    out
}

/// Escapes one JSON string (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The workspace root: walk up from `CARGO_MANIFEST_DIR` (when run via
/// cargo) or the current directory until a `Cargo.toml` containing
/// `[workspace]` appears.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
        }
        dir = dir.parent()?;
    }
}

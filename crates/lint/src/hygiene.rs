//! Unsafe hygiene: every `unsafe` occurrence needs a `// SAFETY:`
//! comment, and the tool always prints the full unsafe inventory so the
//! workspace's unsafe surface is visible in every CI run.

use crate::scan::UnsafeKind;
use crate::{Finding, Workspace};

/// Check name for the SAFETY-comment requirement.
pub const UNSAFE: &str = "unsafe";

/// Flags `unsafe` sites without a `SAFETY:` comment on the same line or
/// in the contiguous comment block directly above.
pub fn check_unsafe(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        for site in &file.unsafes {
            if has_safety_comment(file, site.line) || crate::is_waived(file, UNSAFE, site.line) {
                continue;
            }
            findings.push(Finding {
                check: UNSAFE,
                file: file.path.clone(),
                line: site.line,
                message: format!(
                    "{} without a `// SAFETY:` comment (same line or directly above)",
                    describe(site.kind),
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// The full unsafe inventory, one rendered line per site — printed even
/// on clean runs so the unsafe surface never grows unnoticed.
pub fn inventory(ws: &Workspace) -> Vec<String> {
    let mut out = Vec::new();
    for file in &ws.files {
        for site in &file.unsafes {
            let mut line = format!("{}:{}: {}", file.path, site.line, describe(site.kind));
            if let Some(in_fn) = &site.in_fn {
                line.push_str(&format!(" in fn `{in_fn}`"));
            }
            if site.is_test {
                line.push_str(" [test]");
            }
            out.push(line);
        }
    }
    out.sort();
    out
}

fn describe(kind: UnsafeKind) -> &'static str {
    match kind {
        UnsafeKind::Block => "unsafe block",
        UnsafeKind::Fn => "unsafe fn",
        UnsafeKind::Impl => "unsafe impl",
        UnsafeKind::Trait => "unsafe trait",
    }
}

/// True when `line` carries a `SAFETY:` comment — trailing on the line
/// itself, or anywhere in the unbroken run of comment lines above it.
fn has_safety_comment(file: &crate::scan::FileIndex, line: u32) -> bool {
    if file.comments_on_line(line).any(is_safety) {
        return true;
    }
    let mut ln = line.saturating_sub(1);
    while ln > 0 {
        let mut any = false;
        for c in file.comments_on_line(ln) {
            any = true;
            if is_safety(c) {
                return true;
            }
            ln = c.line; // jump to the top of a multi-line block comment
        }
        if !any {
            return false;
        }
        ln = ln.saturating_sub(1);
    }
    false
}

fn is_safety(c: &crate::lexer::Comment) -> bool {
    c.text.contains("SAFETY:")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(&[("crates/x/src/lib.rs", "x", src)])
    }

    #[test]
    fn commented_sites_pass_and_bare_sites_flag() {
        let w = ws("fn a() {\n    // SAFETY: bounds checked above\n    unsafe { go(); }\n}\n\
             fn b() {\n    unsafe { go(); }\n}\n\
             fn c() {\n    unsafe { go(); } // SAFETY: trailing form\n}\n");
        let f = check_unsafe(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn comment_block_may_be_multiple_lines() {
        let w = ws("fn a() {\n    // SAFETY: lanes are 16-byte aligned because the\n    \
             // caller rounds the buffer up.\n    unsafe { go(); }\n}\n");
        assert!(check_unsafe(&w).is_empty());
    }

    #[test]
    fn unrelated_comment_does_not_count() {
        let w = ws("fn a() {\n    // fast path\n    unsafe { go(); }\n}\n");
        assert_eq!(check_unsafe(&w).len(), 1);
    }

    #[test]
    fn unsafe_fn_and_impl_are_covered_and_inventoried() {
        let w = ws("// SAFETY: no shared state\nunsafe fn raw() {}\n\
             unsafe impl Send for X {}\n");
        let f = check_unsafe(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unsafe impl"));
        let inv = inventory(&w);
        assert_eq!(inv.len(), 2);
        assert!(inv.iter().any(|l| l.contains("unsafe fn in fn `raw`")));
    }
}

//! Wire-format freeze: extracts the on-disk/wire constants from source
//! and diffs them against `tools/lint/wire_format.lock`.
//!
//! The frozen surface is everything a reader of a persisted container or
//! a compressed stream depends on: `CodecId` discriminants (append-only
//! by contract), the container magic/version/geometry, header and
//! directory-entry field layouts, the `StorageMode` wire mapping, the
//! chunk-directory tag bit, and the block geometry the per-block codecs
//! assume. Changing any of these without regenerating the lock (and
//! documenting the break) fails CI.

use crate::lexer::Token;
use crate::scan::normalize;
use crate::{Finding, Workspace};
use std::collections::BTreeMap;

/// Check name for lock drift.
pub const WIRE: &str = "wire-format";

/// Path of the committed lock, workspace-relative.
pub const LOCK_PATH: &str = "tools/lint/wire_format.lock";

/// One extracted wire fact: normalized value plus source attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireKey {
    pub value: String,
    pub file: String,
    pub line: u32,
}

/// Extracts the full wire snapshot from the loaded workspace.
///
/// Keys are stable dotted names (`codec_id.Bdi`, `container.MAGIC`,
/// `header.fields`, …). A source item that has disappeared simply
/// produces no key — the lock diff then reports it as vanished.
pub fn snapshot(ws: &Workspace) -> BTreeMap<String, WireKey> {
    let mut out = BTreeMap::new();

    // CodecId discriminants: the compressed-stream codec tags.
    if let Some(f) = ws.file("crates/compress/src/codec.rs") {
        for e in &f.enums {
            if e.name == "CodecId" {
                for (variant, disc) in &e.variants {
                    out.insert(
                        format!("codec_id.{variant}"),
                        WireKey { value: disc.clone(), file: f.path.clone(), line: e.line },
                    );
                }
            }
        }
    }

    // Container geometry + header/dir-entry layouts.
    if let Some(f) = ws.file("crates/engine/src/container.rs") {
        for name in ["MAGIC", "VERSION", "HEADER_BYTES", "DIR_ENTRY_BYTES", "MAX_CHUNK_BYTES"] {
            for c in &f.consts {
                if c.name == name {
                    out.insert(
                        format!("container.{name}"),
                        WireKey { value: c.expr.clone(), file: f.path.clone(), line: c.line },
                    );
                }
            }
        }
        for (struct_name, key) in [("Header", "header.fields"), ("DirEntry", "dir_entry.fields")] {
            for s in &f.structs {
                if s.name == struct_name {
                    let fields = s
                        .fields
                        .iter()
                        .map(|(n, t)| format!("{n}: {t}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.insert(
                        key.to_string(),
                        WireKey { value: fields, file: f.path.clone(), line: s.line },
                    );
                }
            }
        }
        // StorageMode wire mapping, read out of `fn as_u8`'s match arms.
        for def in &f.fns {
            if def.name == "as_u8" && def.owner.as_deref() == Some("StorageMode") {
                for (variant, value, _) in match_arms(&f.lexed.tokens[def.body.clone()]) {
                    out.insert(
                        format!("storage_mode.{variant}"),
                        WireKey { value, file: f.path.clone(), line: def.line },
                    );
                }
            }
        }
    }

    // The chunk-directory "coded" tag bit.
    if let Some(f) = ws.file("crates/engine/src/lib.rs") {
        for c in &f.consts {
            if c.name == "TAG_CODED" {
                out.insert(
                    "engine.TAG_CODED".to_string(),
                    WireKey { value: c.expr.clone(), file: f.path.clone(), line: c.line },
                );
            }
        }
    }

    // Block geometry every per-block codec bakes into its bitstream.
    if let Some(f) = ws.file("crates/compress/src/lib.rs") {
        for name in ["BLOCK_BYTES", "BLOCK_BITS"] {
            for c in &f.consts {
                if c.name == name {
                    out.insert(
                        format!("compress.{name}"),
                        WireKey { value: c.expr.clone(), file: f.path.clone(), line: c.line },
                    );
                }
            }
        }
    }

    out
}

/// `Variant => literal` arms of a match body, in source order.
fn match_arms(toks: &[Token]) -> Vec<(String, String, u32)> {
    use crate::lexer::TokenKind;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 3 < toks.len() {
        if let TokenKind::Ident(w) = &toks[i].kind {
            if toks[i + 1].is_punct('=') && toks[i + 2].is_punct('>') {
                if let TokenKind::Num(n) = &toks[i + 3].kind {
                    out.push((w.clone(), n.clone(), toks[i].line));
                    i += 4;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Parses lock-file text into `key → value`.
pub fn parse_lock(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            out.insert(k.trim().to_string(), v.trim().to_string());
        }
    }
    out
}

/// Renders a snapshot in lock-file form (what `--update-wire-lock`
/// writes).
pub fn render_lock(snapshot: &BTreeMap<String, WireKey>) -> String {
    let mut out = String::from(
        "# slc wire-format freeze. Extracted from source by slc-lint; CI diffs\n\
         # this file against a fresh extraction. Regenerate with\n\
         #   cargo run --release -p slc-lint -- --update-wire-lock\n\
         # ONLY when a wire change is intentional and documented.\n",
    );
    for (k, v) in snapshot {
        out.push_str(&format!("{k} = {}\n", v.value));
    }
    out
}

/// Diffs the fresh snapshot against the committed lock.
pub fn check_lock(
    snapshot: &BTreeMap<String, WireKey>,
    lock: &BTreeMap<String, String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (k, locked) in lock {
        match snapshot.get(k) {
            None => findings.push(Finding {
                check: WIRE,
                file: LOCK_PATH.to_string(),
                line: 0,
                message: format!(
                    "`{k}` is locked as `{locked}` but no longer extractable from source \
                     — wire items are append-only; restore it or regenerate the lock"
                ),
            }),
            Some(cur) if cur.value != *locked => findings.push(Finding {
                check: WIRE,
                file: cur.file.clone(),
                line: cur.line,
                message: format!(
                    "wire drift: `{k}` is `{}` in source but locked as `{locked}`",
                    cur.value
                ),
            }),
            Some(_) => {}
        }
    }
    for (k, cur) in snapshot {
        if !lock.contains_key(k) {
            findings.push(Finding {
                check: WIRE,
                file: cur.file.clone(),
                line: cur.line,
                message: format!(
                    "new wire key `{k}` = `{}` is not in {LOCK_PATH} — regenerate the lock \
                     in the change that introduces it",
                    cur.value
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    findings
}

/// Normalization helper re-exported for tests that build expected values.
pub fn normalized(tokens: &[Token]) -> String {
    normalize(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODEC_SRC: &str = "#[repr(u8)]\npub enum CodecId { Bdi = 0, Fpc = 1, Rans = 7 }\n";
    const CONTAINER_SRC: &str = "pub const MAGIC: [u8; 4] = *b\"SLC1\";\n\
        pub const VERSION: u16 = 1;\n\
        pub struct Header { pub codec: CodecId, pub total_len: u64 }\n\
        pub enum StorageMode { Raw, Coded }\n\
        impl StorageMode {\n    pub fn as_u8(self) -> u8 {\n        match self {\n            \
        StorageMode::Raw => 0,\n            StorageMode::Coded => 1,\n        }\n    }\n}\n";

    fn ws() -> Workspace {
        Workspace::from_sources(&[
            ("crates/compress/src/codec.rs", "slc-compress", CODEC_SRC),
            ("crates/engine/src/container.rs", "slc-engine", CONTAINER_SRC),
        ])
    }

    #[test]
    fn snapshot_extracts_discriminants_consts_fields_and_mode_map() {
        let snap = snapshot(&ws());
        assert_eq!(snap["codec_id.Bdi"].value, "0");
        assert_eq!(snap["codec_id.Rans"].value, "7");
        assert_eq!(snap["container.MAGIC"].value, "* \"SLC1\"");
        assert_eq!(snap["container.VERSION"].value, "1");
        assert_eq!(snap["header.fields"].value, "codec: CodecId, total_len: u64");
        assert_eq!(snap["storage_mode.Raw"].value, "0");
        assert_eq!(snap["storage_mode.Coded"].value, "1");
    }

    #[test]
    fn lock_roundtrip_is_clean() {
        let snap = snapshot(&ws());
        let lock = parse_lock(&render_lock(&snap));
        assert!(check_lock(&snap, &lock).is_empty());
    }

    #[test]
    fn mutated_discriminant_fails_the_diff() {
        let snap = snapshot(&ws());
        let lock = parse_lock(&render_lock(&snap));
        let mutated = Workspace::from_sources(&[
            (
                "crates/compress/src/codec.rs",
                "slc-compress",
                "#[repr(u8)]\npub enum CodecId { Bdi = 0, Fpc = 2, Rans = 7 }\n",
            ),
            ("crates/engine/src/container.rs", "slc-engine", CONTAINER_SRC),
        ]);
        let f = check_lock(&snapshot(&mutated), &lock);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("codec_id.Fpc"));
        assert!(f[0].message.contains("`2`"));
        assert_eq!(f[0].file, "crates/compress/src/codec.rs");
    }

    #[test]
    fn vanished_and_new_keys_both_flag() {
        let snap = snapshot(&ws());
        let mut lock = parse_lock(&render_lock(&snap));
        lock.insert("codec_id.Ghost".to_string(), "9".to_string());
        lock.remove("container.VERSION");
        let f = check_lock(&snap, &lock);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("no longer extractable")));
        assert!(f.iter().any(|x| x.message.contains("new wire key `container.VERSION`")));
    }
}

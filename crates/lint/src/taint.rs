//! Wire-taint dataflow analysis (checks 6 and 7).
//!
//! The dynamic hardening barrages (fault-injection, truncation/bit-flip
//! sweeps) *sample* the property "no wire byte steers memory unvalidated";
//! this pass states it statically. Taint **sources** are the functions
//! registered in `tools/lint/untrusted.txt` that read raw container bytes
//! (LE field helpers, block-tag reads, rANS table field reads).
//! **Sanitizers** are the validation gates whose results are trusted by
//! construction (`Frame::parse`, `parse_table`): a call to one contributes
//! no taint, while its *body* is still analysed — that body is exactly
//! where untrusted bytes must be checked.
//!
//! Propagation is intraprocedural over let-bindings, assignments and
//! expressions, on top of the [`lexer`](crate::lexer) token stream and
//! the [`scan`](crate::scan)ned function spans, plus interprocedural
//! summaries (tainted-param → tainted-return, source-in-return-position)
//! iterated to a fixpoint over the [`graph`](crate::graph) call graph.
//!
//! Two checks share the substrate:
//!
//! * [`WIRE_TAINT`] — a tainted, unguarded value reaches a dangerous
//!   sink: a slice/array index, a size/length argument of
//!   `with_capacity` / `reserve` / `resize` / `get_unchecked` /
//!   `copy_from_slice` / `set_len`, a `for` range bound, or a shift
//!   amount.
//! * [`TAINT_ARITH`] — a tainted, unguarded value feeds bare `+`/`-`/`*`
//!   (or `+=`/`-=`/`*=`): silent wrap on an untrusted length. Use
//!   `checked_*` / `saturating_*`, or range-guard the value first.
//!
//! A value is **guarded** once it appears as an operand of a comparison
//! (`==`, `!=`, `<`, `<=`, `>`, `>=`) — the idiom `if n > MAX { return
//! Err(..) }` — or is passed through `.min(..)` / `.clamp(..)`.
//! Reassignment from an untainted expression also clears taint.
//!
//! The analysis is deliberately best-effort and *under*-approximate
//! where precision is impossible without types: struct fields are not
//! tracked across functions (the container directory is validated
//! inside the `Frame::parse` sanitizer, whose body is audited), match
//! bindings do not inherit scrutinee taint, and guarding is
//! flow-insensitive after the guard point. Reviewed sites are waived
//! with `// slc-lint: trusted(<reason>)` (see crate docs).

use crate::graph::{CallGraph, NodeId};
use crate::lexer::{Token, TokenKind};
use crate::scan::{CallKind, CallSite, FileIndex, FnDef};
use crate::{Finding, Workspace, TRUSTED};
use std::collections::{BTreeMap, BTreeSet};

/// Check name for tainted-value-reaches-sink.
pub const WIRE_TAINT: &str = "wire-taint";
/// Check name for unchecked arithmetic on tainted values.
pub const TAINT_ARITH: &str = "taint-arith";
/// Workspace-relative path of the source/sanitizer registry.
pub const MANIFEST: &str = "tools/lint/untrusted.txt";

/// Std call names whose arguments are size/length sinks.
const SINK_CALLS: &[&str] = &[
    "with_capacity",
    "reserve",
    "resize",
    "get_unchecked",
    "get_unchecked_mut",
    "copy_from_slice",
    "set_len",
];

/// Methods whose result is bounded regardless of receiver taint.
const BOUNDED_METHODS: &[&str] = &["min", "clamp"];

/// What a manifest entry registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Function whose return value is untrusted wire data.
    Source,
    /// Validation gate: call results are trusted, body still audited.
    Sanitizer,
}

/// One parsed registry line: `source path/to/file.rs::fn_name` or
/// `sanitizer path/to/file.rs::fn_name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub kind: EntryKind,
    pub file: String,
    pub func: String,
}

/// Parses `tools/lint/untrusted.txt` content. Unparseable non-comment
/// lines are returned as `Err` findings fodder by [`check_taint`]; here
/// they are simply skipped, so the caller must pass the same text.
pub fn parse_manifest(text: &str) -> Vec<Entry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (kind, rest) = l.split_once(char::is_whitespace)?;
            let kind = match kind {
                "source" => EntryKind::Source,
                "sanitizer" => EntryKind::Sanitizer,
                _ => return None,
            };
            let (file, func) = rest.trim().split_once("::")?;
            Some(Entry { kind, file: file.trim().to_string(), func: func.trim().to_string() })
        })
        .collect()
}

/// Taint provenance: the value came from a wire source, or from the
/// n-th parameter (summary computation only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Label {
    Source,
    Param(usize),
}

type Labels = BTreeSet<Label>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Source,
    Sanitizer,
}

/// Runs both taint checks over the workspace. `manifest` comes from
/// [`parse_manifest`] on the registry file.
pub fn check_taint(ws: &Workspace, manifest: &[Entry]) -> Vec<Finding> {
    let graph = CallGraph::build(ws);
    let mut findings = Vec::new();

    // Resolve the registry to function nodes; a stale entry is itself a
    // finding so the manifest cannot rot silently.
    let mut roles: BTreeMap<NodeId, Role> = BTreeMap::new();
    for entry in manifest {
        let mut matched = false;
        for (fi, file) in ws.files.iter().enumerate() {
            if file.path != entry.file {
                continue;
            }
            for (di, def) in file.fns.iter().enumerate() {
                if def.name == entry.func && !def.is_test {
                    matched = true;
                    let role = match entry.kind {
                        EntryKind::Source => Role::Source,
                        EntryKind::Sanitizer => Role::Sanitizer,
                    };
                    roles.insert((fi, di), role);
                }
            }
        }
        if !matched {
            let kind = match entry.kind {
                EntryKind::Source => "source",
                EntryKind::Sanitizer => "sanitizer",
            };
            findings.push(Finding {
                check: WIRE_TAINT,
                file: entry.file.clone(),
                line: 0,
                message: format!(
                    "manifest entry `{kind} {}::{}` does not resolve to any function — \
                     update {MANIFEST}",
                    entry.file, entry.func
                ),
            });
        }
    }
    if !roles.values().any(|r| *r == Role::Source) {
        // No sources resolved: nothing can be tainted.
        return findings;
    }

    // Interprocedural fixpoint: per-fn summary = set of labels reaching
    // its return positions. Sources return `Source`, sanitizer results
    // are clean by definition; everything else starts empty and grows
    // monotonically as callee summaries land.
    let mut summaries: BTreeMap<NodeId, Labels> = BTreeMap::new();
    for id in graph.nodes() {
        let init = match roles.get(&id) {
            Some(Role::Source) => [Label::Source].into_iter().collect(),
            _ => Labels::new(),
        };
        summaries.insert(id, init);
    }
    for _round in 0..10 {
        let mut changed = false;
        for id in graph.nodes() {
            if roles.contains_key(&id) {
                continue; // registry roles have fixed summaries
            }
            let def = graph.def(id);
            if def.body.is_empty() {
                continue;
            }
            let file = &ws.files[id.0];
            let mut a = Analyzer::new(ws, &graph, &roles, &summaries, file, def, Mode::Summary);
            a.run();
            if summaries.get(&id) != Some(&a.ret) {
                summaries.insert(id, a.ret);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: analyse every body (including sanitizers — that is
    // where the validation lives) and report unwaived sink reaches.
    for id in graph.nodes() {
        let file = &ws.files[id.0];
        let def = graph.def(id);
        if def.body.is_empty() {
            continue;
        }
        // A `trusted(..)` waiver on the fn line exempts the whole body.
        if crate::is_waived(file, TRUSTED, def.line) {
            continue;
        }
        let mut a = Analyzer::new(ws, &graph, &roles, &summaries, file, def, Mode::Findings);
        a.run();
        for f in a.findings {
            if !crate::is_waived(file, TRUSTED, f.line) {
                findings.push(f);
            }
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.check, &a.message).cmp(&(&b.file, b.line, b.check, &b.message))
    });
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    findings
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Emit findings; taint enters only through source calls.
    Findings,
    /// Compute the return-labels summary; parameters start tainted with
    /// their index, no findings are emitted.
    Summary,
}

/// One function's linear dataflow walk.
struct Analyzer<'a> {
    graph: &'a CallGraph<'a>,
    roles: &'a BTreeMap<NodeId, Role>,
    summaries: &'a BTreeMap<NodeId, Labels>,
    file: &'a FileIndex,
    def: &'a FnDef,
    toks: &'a [Token],
    mode: Mode,
    /// Variable name → taint labels.
    tainted: BTreeMap<String, Labels>,
    /// Variables that appeared as a comparison operand (range-checked).
    guarded: BTreeSet<String>,
    findings: Vec<Finding>,
    /// Labels reaching return positions (summary mode).
    ret: Labels,
}

impl<'a> Analyzer<'a> {
    fn new(
        _ws: &'a Workspace,
        graph: &'a CallGraph<'a>,
        roles: &'a BTreeMap<NodeId, Role>,
        summaries: &'a BTreeMap<NodeId, Labels>,
        file: &'a FileIndex,
        def: &'a FnDef,
        mode: Mode,
    ) -> Self {
        let mut a = Analyzer {
            graph,
            roles,
            summaries,
            file,
            def,
            toks: &file.lexed.tokens,
            mode,
            tainted: BTreeMap::new(),
            guarded: BTreeSet::new(),
            findings: Vec::new(),
            ret: Labels::new(),
        };
        if mode == Mode::Summary {
            for (i, p) in def.params.iter().enumerate() {
                a.tainted.insert(p.clone(), [Label::Param(i)].into_iter().collect());
            }
        }
        a
    }

    fn run(&mut self) {
        let body = self.def.body.clone();
        let mut i = body.start;
        while i < body.end {
            i = self.step(i, body.end);
        }
        if self.mode == Mode::Summary {
            // The trailing expression (tokens after the last top-level
            // `;`, or the whole body when there is none) is a return
            // position.
            let mut depth = 0i32;
            let mut last_semi = None;
            for k in body.clone() {
                match &self.toks[k].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                        depth += 1
                    }
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                        depth -= 1
                    }
                    TokenKind::Punct(';') if depth == 0 => last_semi = Some(k),
                    _ => {}
                }
            }
            let start = last_semi.map(|k| k + 1).unwrap_or(body.start);
            if start < body.end {
                let (labels, _) = self.eval(start, body.end);
                self.ret.extend(labels);
            }
        }
    }

    /// Processes the token at `i`; returns the next index.
    fn step(&mut self, i: usize, end: usize) -> usize {
        match &self.toks[i].kind {
            TokenKind::Ident(w) => match w.as_str() {
                "let" => self.handle_let(i, end),
                "for" => self.handle_for(i, end),
                "return" => {
                    if self.mode == Mode::Summary {
                        let stop = self.stmt_end(i + 1, end);
                        let (labels, _) = self.eval(i + 1, stop);
                        self.ret.extend(labels);
                    }
                    i + 1
                }
                _ => self.handle_ident(i, end),
            },
            TokenKind::Punct('=') => self.handle_eq(i, end),
            TokenKind::Punct('!') => {
                if self.peek_punct(i + 1, '=') {
                    self.mark_cmp_operands(i, i + 2, end);
                }
                i + 1
            }
            TokenKind::Punct('<') | TokenKind::Punct('>') => self.handle_angle(i, end),
            TokenKind::Punct('+') | TokenKind::Punct('-') | TokenKind::Punct('*') => {
                self.handle_arith(i, end)
            }
            TokenKind::Punct('[') => self.handle_index(i, end),
            _ => i + 1,
        }
    }

    fn peek_punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    fn prev_punct(&self, i: usize, c: char) -> bool {
        i > 0 && self.toks[i - 1].is_punct(c)
    }

    /// `let <pattern>(: <ty>)? = <expr>;` — binds pattern names to the
    /// RHS labels (empty RHS labels clear any previous taint).
    fn handle_let(&mut self, i: usize, end: usize) -> usize {
        let mut names: Vec<String> = Vec::new();
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_type = false;
        while j < end {
            match &self.toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct(':') => {
                    if self.peek_punct(j + 1, ':') {
                        j += 1; // path separator in an enum pattern
                    } else if depth == 0 {
                        in_type = true;
                    }
                }
                TokenKind::Punct('=') if depth == 0 => break,
                TokenKind::Punct(';') => {
                    // `let x;` — a fresh, unassigned binding.
                    for n in &names {
                        self.tainted.remove(n);
                        self.guarded.remove(n);
                    }
                    return i + 1;
                }
                TokenKind::Punct('{') => break, // scanner confusion; bail
                // Skip binding modes and constructor/type names
                // (`Some`, `Ok` — uppercase by convention).
                TokenKind::Ident(w)
                    if !in_type
                        && w != "mut"
                        && w != "ref"
                        && !w.chars().next().is_some_and(|c| c.is_ascii_uppercase()) =>
                {
                    names.push(w.clone());
                }
                _ => {}
            }
            j += 1;
        }
        if j >= end || !self.toks[j].is_punct('=') {
            return i + 1;
        }
        let rhs_end = self.stmt_end(j + 1, end);
        let (labels, _) = self.eval(j + 1, rhs_end);
        for n in names {
            self.guarded.remove(&n);
            if labels.is_empty() {
                self.tainted.remove(&n);
            } else {
                self.tainted.insert(n, labels.clone());
            }
        }
        i + 1
    }

    /// `for <pat> in <expr> {` — a tainted *range* bound is a sink; the
    /// pattern inherits the iterated expression's labels.
    fn handle_for(&mut self, i: usize, end: usize) -> usize {
        // Find `in` at pattern depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut names: Vec<String> = Vec::new();
        while j < end {
            match &self.toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Ident(w) if w == "in" && depth == 0 => break,
                TokenKind::Ident(w)
                    if w != "mut"
                        && w != "ref"
                        && !w.chars().next().is_some_and(|c| c.is_ascii_uppercase()) =>
                {
                    names.push(w.clone());
                }
                TokenKind::Punct('{') => return i + 1, // not a for-in
                _ => {}
            }
            j += 1;
        }
        if j >= end {
            return i + 1;
        }
        // Iterated expression: from past `in` to the body `{` at depth 0.
        let expr_start = j + 1;
        let mut k = expr_start;
        let mut depth = 0i32;
        let mut is_range = false;
        while k < end {
            match &self.toks[k].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('.') if depth == 0 && self.peek_punct(k + 1, '.') => {
                    is_range = true;
                    k += 1;
                }
                TokenKind::Punct('{') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let (labels, witness) = self.eval(expr_start, k);
        if !labels.is_empty() {
            if is_range {
                self.push_finding(
                    WIRE_TAINT,
                    self.toks[i].line,
                    format!(
                        "tainted value `{}` bounds a `for` range",
                        witness.as_deref().unwrap_or("?")
                    ),
                );
            }
            for n in names {
                self.guarded.remove(&n);
                self.tainted.insert(n, labels.clone());
            }
        }
        i + 1
    }

    /// `=`: comparison (`==`), skip (compound tail / fat arrow), or
    /// plain assignment / compound propagation.
    fn handle_eq(&mut self, i: usize, end: usize) -> usize {
        if self.peek_punct(i + 1, '=') {
            self.mark_cmp_operands(i, i + 2, end);
            return i + 2;
        }
        if self.prev_punct(i, '=') || self.peek_punct(i + 1, '>') {
            return i + 1; // second `=` of `==`, or `=>`
        }
        if i > 0 {
            match &self.toks[i - 1].kind {
                // `<=` / `>=` operands are handled by handle_angle.
                TokenKind::Punct('<') | TokenKind::Punct('>') | TokenKind::Punct('!') => {
                    return i + 1
                }
                // Compound assignment `x op= rhs`: union RHS labels in.
                TokenKind::Punct('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^') => {
                    if i >= 2 {
                        if let TokenKind::Ident(name) = &self.toks[i - 2].kind {
                            let rhs_end = self.stmt_end(i + 1, end);
                            let (labels, _) = self.eval(i + 1, rhs_end);
                            if !labels.is_empty() {
                                let name = name.clone();
                                self.guarded.remove(&name);
                                self.tainted.entry(name).or_default().extend(labels);
                            }
                        }
                    }
                    return i + 1;
                }
                TokenKind::Ident(name) => {
                    // Plain reassignment: replace the variable's labels.
                    let name = name.clone();
                    let rhs_end = self.stmt_end(i + 1, end);
                    let (labels, _) = self.eval(i + 1, rhs_end);
                    self.guarded.remove(&name);
                    if labels.is_empty() {
                        self.tainted.remove(&name);
                    } else {
                        self.tainted.insert(name, labels);
                    }
                    return i + 1;
                }
                _ => return i + 1, // `v[i] =`, `s.field =`: untracked
            }
        }
        i + 1
    }

    /// `<` / `>`: comparison (guards operands) or shift (RHS is a sink).
    fn handle_angle(&mut self, i: usize, end: usize) -> usize {
        let c = match &self.toks[i].kind {
            TokenKind::Punct(c) => *c,
            _ => return i + 1,
        };
        // Second character of a shift, arrow, or fat arrow.
        if self.prev_punct(i, c)
            || (c == '>' && (self.prev_punct(i, '-') || self.prev_punct(i, '=')))
        {
            return i + 1;
        }
        if self.peek_punct(i + 1, c) {
            // Shift `<<` / `>>` (possibly `<<=`): the amount is a sink.
            let rhs = if self.peek_punct(i + 2, '=') { i + 3 } else { i + 2 };
            if let Some(TokenKind::Ident(w)) = self.toks.get(rhs).map(|t| &t.kind) {
                if self.is_hot(w) {
                    let w = w.clone();
                    self.push_finding(
                        WIRE_TAINT,
                        self.toks[i].line,
                        format!("tainted value `{w}` used as a shift amount"),
                    );
                }
            }
            return i + 2;
        }
        // Turbofish / generic-argument `<` — not a comparison.
        if c == '<' && self.prev_punct(i, ':') {
            return i + 1;
        }
        let right = if self.peek_punct(i + 1, '=') { i + 2 } else { i + 1 };
        self.mark_cmp_operands(i, right, end);
        i + 1
    }

    /// Marks tainted identifiers on both sides of a comparison operator
    /// as guarded. Scans stop at statement-ish boundaries and at the
    /// enclosing group, so `f(a, n < m)` guards only `n` and `m`.
    fn mark_cmp_operands(&mut self, op_at: usize, right_from: usize, end: usize) {
        let body_start = self.def.body.start;
        // Left of the operator.
        let mut depth = 0i32;
        let mut j = op_at;
        while j > body_start {
            j -= 1;
            match &self.toks[j].kind {
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth += 1,
                TokenKind::Punct('(') | TokenKind::Punct('[') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                TokenKind::Punct(';')
                | TokenKind::Punct('{')
                | TokenKind::Punct('}')
                | TokenKind::Punct(',')
                | TokenKind::Punct('=')
                | TokenKind::Punct('&')
                | TokenKind::Punct('|')
                    if depth == 0 =>
                {
                    break
                }
                TokenKind::Ident(w) if self.tainted.contains_key(w) => {
                    self.guarded.insert(w.clone());
                }
                _ => {}
            }
        }
        // Right of the operator.
        let mut depth = 0i32;
        let mut j = right_from;
        while j < end {
            match &self.toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                TokenKind::Punct(';')
                | TokenKind::Punct('{')
                | TokenKind::Punct('}')
                | TokenKind::Punct(',')
                | TokenKind::Punct('=')
                | TokenKind::Punct('&')
                | TokenKind::Punct('|')
                    if depth == 0 =>
                {
                    break
                }
                TokenKind::Ident(w) if self.tainted.contains_key(w) => {
                    self.guarded.insert(w.clone());
                }
                _ => {}
            }
            j += 1;
        }
    }

    /// Bare `+` / `-` / `*` (or the compound form) with an immediately
    /// adjacent tainted operand: silent-wrap hazard.
    fn handle_arith(&mut self, i: usize, _end: usize) -> usize {
        let op = match &self.toks[i].kind {
            TokenKind::Punct(c) => *c,
            _ => return i + 1,
        };
        if op == '-' && self.peek_punct(i + 1, '>') {
            return i + 2; // `->`
        }
        let compound = self.peek_punct(i + 1, '=');
        // Binary context: something value-like on the left. Otherwise
        // this is unary minus, a deref, or `&*` — not arithmetic.
        let binary = i > 0
            && matches!(
                &self.toks[i - 1].kind,
                TokenKind::Ident(_)
                    | TokenKind::Num(_)
                    | TokenKind::Punct(')')
                    | TokenKind::Punct(']')
            );
        if !binary {
            return i + 1;
        }
        let mut offender: Option<String> = None;
        if let TokenKind::Ident(w) = &self.toks[i - 1].kind {
            if self.is_hot(w) {
                offender = Some(w.clone());
            }
        }
        if offender.is_none() {
            let rhs = if compound { i + 2 } else { i + 1 };
            if let Some(TokenKind::Ident(w)) = self.toks.get(rhs).map(|t| &t.kind) {
                // `n.min(cap)` on the right is bounded, not an offender.
                if self.is_hot(w) && !self.bounded_ahead(rhs) {
                    offender = Some(w.clone());
                }
            }
        }
        if let Some(w) = offender {
            let shown = if compound { format!("{op}=") } else { op.to_string() };
            self.push_finding(
                TAINT_ARITH,
                self.toks[i].line,
                format!(
                    "unchecked `{shown}` on tainted value `{w}` — use \
                     `checked_*`/`saturating_*` or range-guard it first"
                ),
            );
        }
        i + 1
    }

    /// `expr[...]`: tainted identifiers inside an index expression.
    fn handle_index(&mut self, i: usize, _end: usize) -> usize {
        let indexing = i > 0
            && matches!(
                &self.toks[i - 1].kind,
                TokenKind::Ident(_) | TokenKind::Punct(')') | TokenKind::Punct(']')
            )
            && !self.toks[i - 1].ident().is_some_and(|w| w == "mut" || w == "dyn");
        if !indexing {
            return i + 1;
        }
        let close = self.matching_close(i);
        let (labels, witness) = self.eval(i + 1, close);
        if !labels.is_empty() {
            self.push_finding(
                WIRE_TAINT,
                self.toks[i].line,
                format!(
                    "tainted value `{}` reaches a slice index — bound or validate it first",
                    witness.as_deref().unwrap_or("?")
                ),
            );
        }
        i + 1
    }

    /// Identifier in statement position: sink calls and sanitizer-call
    /// skipping. Taint *contribution* is eval()'s job.
    fn handle_ident(&mut self, i: usize, _end: usize) -> usize {
        let (path, j) = self.read_path(i);
        if !self.peek_punct(j + 1, '(') {
            return i + 1;
        }
        let name = path.last().cloned().unwrap_or_default();
        if SINK_CALLS.contains(&name.as_str()) {
            let close = self.matching_close(j + 1);
            let (labels, witness) = self.eval(j + 2, close);
            if !labels.is_empty() {
                self.push_finding(
                    WIRE_TAINT,
                    self.toks[i].line,
                    format!(
                        "tainted value `{}` reaches `{name}` as a size/length argument",
                        witness.as_deref().unwrap_or("?")
                    ),
                );
            }
            return i + 1;
        }
        // A sanitizer call's arguments are its own concern (the gate's
        // body is audited separately): skip them in the statement walk.
        if self.call_role(&path, i, j) == Some(Role::Sanitizer) {
            return self.matching_close(j + 1) + 1;
        }
        i + 1
    }

    /// Resolves a call through the graph; `Some(role)` when any
    /// candidate definition carries a registry role (sanitizer wins).
    fn call_role(&self, path: &[String], name_at: usize, path_end: usize) -> Option<Role> {
        let kind = if path.len() > 1 {
            CallKind::Path
        } else if self.prev_punct(name_at, '.') {
            CallKind::Method
        } else {
            CallKind::Bare
        };
        let cs = CallSite { path: path.to_vec(), line: self.toks[name_at].line, kind };
        let _ = path_end;
        let nodes = self.graph.resolve(&self.file.crate_name, &cs);
        let mut role = None;
        for id in nodes {
            match self.roles.get(&id) {
                Some(Role::Sanitizer) => return Some(Role::Sanitizer),
                Some(Role::Source) => role = Some(Role::Source),
                None => {}
            }
        }
        role
    }

    /// Summaries of all workspace definitions a call resolves to, or
    /// `None` when it resolves to nothing (std / unknown).
    fn call_summaries(&self, path: &[String], name_at: usize) -> Option<Labels> {
        let kind = if path.len() > 1 {
            CallKind::Path
        } else if self.prev_punct(name_at, '.') {
            CallKind::Method
        } else {
            CallKind::Bare
        };
        let cs = CallSite { path: path.to_vec(), line: self.toks[name_at].line, kind };
        let nodes = self.graph.resolve(&self.file.crate_name, &cs);
        if nodes.is_empty() {
            return None;
        }
        let mut out = Labels::new();
        for id in nodes {
            if let Some(s) = self.summaries.get(&id) {
                out.extend(s.iter().copied());
            }
        }
        Some(out)
    }

    /// Evaluates an expression span's taint labels. `witness` is the
    /// first contributing identifier (for diagnostics).
    fn eval(&self, start: usize, end: usize) -> (Labels, Option<String>) {
        let mut labels = Labels::new();
        let mut witness: Option<String> = None;
        let mut i = start;
        while i < end {
            let TokenKind::Ident(w) = &self.toks[i].kind else {
                i += 1;
                continue;
            };
            let (path, j) = self.read_path(i);
            if self.peek_punct(j + 1, '!') {
                // Macro: walk its arguments linearly.
                i = j + 2;
                continue;
            }
            if self.peek_punct(j + 1, '(') {
                let close = self.matching_close(j + 1).min(end);
                let name = path.last().cloned().unwrap_or_default();
                match self.call_role(&path, i, j) {
                    Some(Role::Sanitizer) => {
                        i = close + 1;
                        continue;
                    }
                    Some(Role::Source) => {
                        labels.insert(Label::Source);
                        if witness.is_none() {
                            witness = Some(format!("{name}(..)"));
                        }
                        i = close + 1;
                        continue;
                    }
                    None => {}
                }
                if let Some(summary) = self.call_summaries(&path, i) {
                    // Workspace callee: substitute argument labels into
                    // its tainted-param → tainted-return summary.
                    let args = self.split_args(j + 1, close);
                    let arg_results: Vec<(Labels, Option<String>)> =
                        args.iter().map(|r| self.eval(r.start, r.end)).collect();
                    for label in summary {
                        match label {
                            Label::Source => {
                                labels.insert(Label::Source);
                                if witness.is_none() {
                                    witness = Some(format!("{name}(..)"));
                                }
                            }
                            Label::Param(k) => {
                                if let Some((l, wit)) = arg_results.get(k) {
                                    if !l.is_empty() {
                                        labels.extend(l.iter().copied());
                                        if witness.is_none() {
                                            witness = wit.clone();
                                        }
                                    }
                                }
                            }
                        }
                    }
                    i = close + 1;
                    continue;
                }
                // Bounded std methods clean whatever flows through them.
                if BOUNDED_METHODS.contains(&name.as_str()) && self.prev_punct(i, '.') {
                    i = close + 1;
                    continue;
                }
                // Unknown call: the name itself contributes nothing; the
                // arguments contribute linearly (conservative pass-through).
                i = j + 1;
                continue;
            }
            // Plain variable use.
            if path.len() == 1 && self.is_hot(w) {
                if self.bounded_ahead(i) {
                    // `x.min(..)` / `x.clamp(..)`: skip the bounded call.
                    i = self.matching_close(i + 3).min(end) + 1;
                    continue;
                }
                labels.extend(self.tainted[w].iter().copied());
                if witness.is_none() {
                    witness = Some(w.clone());
                }
            }
            i = j + 1;
        }
        (labels, witness)
    }

    /// True when `w` is tainted and not guarded.
    fn is_hot(&self, w: &str) -> bool {
        self.tainted.contains_key(w) && !self.guarded.contains(w)
    }

    /// True when the identifier at `i` is the receiver of a bounding
    /// method call (`x.min(..)`).
    fn bounded_ahead(&self, i: usize) -> bool {
        self.peek_punct(i + 1, '.')
            && self
                .toks
                .get(i + 2)
                .and_then(|t| t.ident())
                .is_some_and(|m| BOUNDED_METHODS.contains(&m))
            && self.peek_punct(i + 3, '(')
    }

    /// Reads a `::`-separated path starting at identifier `i`; returns
    /// the segments and the index of the last path token (turbofish
    /// generic arguments are skipped).
    fn read_path(&self, i: usize) -> (Vec<String>, usize) {
        let mut segments = vec![match &self.toks[i].kind {
            TokenKind::Ident(w) => w.clone(),
            _ => String::new(),
        }];
        let mut j = i;
        loop {
            if self.peek_punct(j + 1, ':') && self.peek_punct(j + 2, ':') {
                match self.toks.get(j + 3).map(|t| &t.kind) {
                    Some(TokenKind::Ident(w)) => {
                        segments.push(w.clone());
                        j += 3;
                    }
                    Some(TokenKind::Punct('<')) => {
                        // Turbofish: skip the angle group, stay on path.
                        j = self.skip_angles(j + 3);
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        (segments, j)
    }

    /// Index of the closing `>` matching the `<` at `open`.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                TokenKind::Punct(';') | TokenKind::Punct('{') => return open,
                _ => {}
            }
            j += 1;
        }
        open
    }

    /// Index of the delimiter closing the group opened at `open`
    /// (clamped to the body end on malformed input).
    fn matching_close(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.def.body.end {
            match &self.toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.def.body.end
    }

    /// End of the statement starting at `start`: the index of the first
    /// `;` at group depth 0, or where the enclosing block closes.
    fn stmt_end(&self, start: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = start;
        while j < end {
            match &self.toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Top-level comma-separated argument spans of a call whose `(` is
    /// at `open` and `)` at `close`.
    fn split_args(&self, open: usize, close: usize) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        let mut arg_start = open + 1;
        let mut j = open + 1;
        while j < close {
            match &self.toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
                TokenKind::Punct(',') if depth == 0 => {
                    out.push(arg_start..j);
                    arg_start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        if arg_start < close {
            out.push(arg_start..close);
        }
        out
    }

    fn push_finding(&mut self, check: &'static str, line: u32, message: String) {
        if self.mode != Mode::Findings {
            return;
        }
        self.findings.push(Finding {
            check,
            file: self.file.path.clone(),
            line,
            message: format!("in `{}`: {message}", self.def.name),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-crate workspace with `wire()` registered as a source and
    /// `gate()` as a sanitizer.
    fn check(body_src: &str) -> Vec<Finding> {
        let src = format!(
            "fn wire(b: &[u8]) -> u32 {{ b[0] as u32 }}\n\
             fn gate(b: &[u8]) -> u32 {{ let n = wire(b); if n > 4 {{ 0 }} else {{ n }} }}\n\
             {body_src}\n"
        );
        let ws = Workspace::from_sources(&[("crates/a/src/lib.rs", "a", &src)]);
        let manifest = parse_manifest(
            "source crates/a/src/lib.rs::wire\nsanitizer crates/a/src/lib.rs::gate\n",
        );
        check_taint(&ws, &manifest)
    }

    #[test]
    fn manifest_parses_kinds_and_comments() {
        let m = parse_manifest(
            "# registry\nsource crates/e/src/c.rs::le_u32\n\nsanitizer crates/e/src/c.rs::parse\n",
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].kind, EntryKind::Source);
        assert_eq!(m[0].func, "le_u32");
        assert_eq!(m[1].kind, EntryKind::Sanitizer);
    }

    #[test]
    fn stale_manifest_entry_is_a_finding() {
        let ws = Workspace::from_sources(&[("crates/a/src/lib.rs", "a", "fn f() {}")]);
        let f = check_taint(&ws, &parse_manifest("source crates/a/src/lib.rs::gone"));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("does not resolve"));
    }

    #[test]
    fn source_to_index_sink_flags() {
        let f = check("fn use_it(b: &[u8], v: &[u8]) -> u8 { let n = wire(b) as usize; v[n] }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].check, WIRE_TAINT);
        assert!(f[0].message.contains("slice index"), "{f:?}");
    }

    #[test]
    fn comparison_guard_clears() {
        let f = check(
            "fn use_it(b: &[u8], v: &[u8]) -> u8 {\n    let n = wire(b) as usize;\n    \
             if n >= v.len() { return 0; }\n    v[n]\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn min_bound_clears() {
        let f =
            check("fn use_it(b: &[u8], v: &[u8]) -> u8 { let n = wire(b) as usize; v[n.min(7)] }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn sanitizer_result_is_clean() {
        let f = check("fn use_it(b: &[u8], v: &[u8]) -> u8 { let n = gate(b) as usize; v[n] }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn interprocedural_param_to_return() {
        let f = check(
            "fn widen(x: u32) -> usize { x as usize }\n\
             fn use_it(b: &[u8], v: &[u8]) -> u8 { let n = widen(wire(b)); v[n] }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("slice index"));
    }

    #[test]
    fn interprocedural_source_in_return() {
        let f = check(
            "fn relay(b: &[u8]) -> u32 { wire(b) }\n\
             fn use_it(b: &[u8], v: &[u8]) -> u8 { let n = relay(b) as usize; v[n] }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn alloc_sink_flags() {
        let f = check(
            "fn use_it(b: &[u8]) -> Vec<u8> { let n = wire(b) as usize; Vec::with_capacity(n) }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("with_capacity"), "{f:?}");
    }

    #[test]
    fn shift_amount_flags() {
        let f = check("fn use_it(b: &[u8]) -> u32 { let n = wire(b); 1u32 << n }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("shift"), "{f:?}");
    }

    #[test]
    fn range_loop_bound_flags() {
        let f = check(
            "fn use_it(b: &[u8]) -> u32 {\n    let n = wire(b) as usize;\n    \
             let mut s = 0;\n    for _i in 0..n { s += 1; }\n    s\n}",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("range"), "{f:?}");
    }

    #[test]
    fn slice_iteration_is_not_a_loop_bound() {
        let f = check(
            "fn use_it(b: &[u8]) -> u32 {\n    let n = wire(b) as usize;\n    \
             if n > b.len() { return 0; }\n    let s = &b[..n];\n    \
             let mut t = 0u32;\n    for &x in s { t |= x as u32; }\n    t\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn tainted_arith_flags_and_checked_passes() {
        let f = check(
            "fn bad(b: &[u8]) -> u32 { let n = wire(b); n + 1 }\n\
             fn good(b: &[u8]) -> Option<u32> { let n = wire(b); n.checked_add(1) }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].check, TAINT_ARITH);
        assert!(f[0].message.contains("`+`"), "{f:?}");
    }

    #[test]
    fn compound_arith_flags() {
        let f = check("fn bad(b: &[u8]) -> u32 { let mut s = 0u32; let n = wire(b); s += n; s }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].check, TAINT_ARITH);
        assert!(f[0].message.contains("`+=`"), "{f:?}");
    }

    #[test]
    fn trusted_waiver_silences_site() {
        let f = check(
            "fn bad(b: &[u8]) -> u32 {\n    let n = wire(b);\n    \
             n + 1 // slc-lint: trusted(n is a u8 read, sum fits u32)\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fn_level_trusted_waiver_exempts_body() {
        let f = check(
            "// slc-lint: trusted(reviewed: all reads bounded by construction)\n\
             fn bad(b: &[u8], v: &[u8]) -> u8 { let n = wire(b) as usize; v[n + 1] }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn reassignment_clears_taint() {
        let f = check(
            "fn use_it(b: &[u8], v: &[u8]) -> u8 {\n    let mut n = wire(b) as usize;\n    \
             n = 0;\n    v[n]\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_calls_propagate_taint() {
        let f = check(
            "fn use_it(b: &[u8], v: &[u8]) -> u8 { let n = usize::from(wire(b) as u16); v[n] }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }
}

//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The container is offline, so `slc-lint` cannot lean on `syn` or
//! `proc-macro2`; instead this module tokenises Rust source by hand. It
//! handles everything that would otherwise corrupt a naive scan:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, byte strings, and raw strings with an
//!   arbitrary `#` guard count (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * the lifetime-vs-char-literal ambiguity (`'a` vs `'a'` vs `'\n'`),
//! * numeric literals including hex, underscores, suffixes and floats
//!   (without swallowing `..` range dots).
//!
//! Comments are lexed into a side channel ([`Lexed::comments`]) rather
//! than the main token stream, so item scanning stays simple while the
//! waiver / `SAFETY:` checks still see every comment with its line.

/// What a token is, coarsely. The scanner works on identifier text and
/// single-character punctuation; literal *values* are kept only where a
/// check needs them (string contents for the wire-format freeze and the
/// bench-row cross-check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident(String),
    /// A lifetime such as `'a` (the text excludes the quote).
    Lifetime(String),
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    CharLit,
    /// String literal of any flavour; the cooked value is best-effort
    /// (escapes resolved for plain strings, verbatim for raw strings).
    StrLit(String),
    /// Numeric literal, verbatim text (`0x1f`, `1_000u64`, `2.5`).
    Num(String),
    /// Single punctuation character (`{`, `!`, `:`, …).
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// One comment with its starting line. `text` excludes the `//` / `/*`
/// markers for line comments but keeps interior text verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    /// First line of the comment.
    pub line: u32,
    /// Last line (block comments can span several).
    pub end_line: u32,
    /// True when nothing but whitespace precedes the comment on its line
    /// (a "standalone" comment, eligible to annotate the line below).
    pub own_line: bool,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Tokenises `src`. Unterminated constructs (a corrupt file) end the
/// current token at EOF rather than panicking — the lint must never
/// crash on the code it audits.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether anything other than whitespace has appeared on the
    // current line, to classify standalone comments.
    let mut line_has_code = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    end_line: line,
                    own_line: !line_has_code,
                });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let own = !line_has_code;
                let text_start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = if depth == 0 { i - 2 } else { i };
                out.comments.push(Comment {
                    text: src[text_start..text_end.max(text_start)].to_string(),
                    line: start_line,
                    end_line: line,
                    own_line: own,
                });
                line_has_code = true;
            }
            '\'' => {
                line_has_code = true;
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime (or loop label).
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j].is_ascii_alphabetic() || bytes[j] == b'_') {
                    let id_start = j;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if bytes.get(j) != Some(&b'\'') {
                        out.tokens.push(Token {
                            kind: TokenKind::Lifetime(src[id_start..j].to_string()),
                            line,
                        });
                        i = j;
                        continue;
                    }
                }
                // Char literal: skip escapes until the closing quote.
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        b'\n' => break, // corrupt literal; resync at newline
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token { kind: TokenKind::CharLit, line });
            }
            '"' => {
                line_has_code = true;
                let (value, next, nl) = cooked_string(src, i + 1);
                out.tokens.push(Token { kind: TokenKind::StrLit(value), line });
                line += nl;
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                line_has_code = true;
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // Raw strings / byte strings: the prefix is lexically an
                // identifier glued to the quote.
                if matches!(word, "r" | "b" | "br" | "rb" | "c" | "cr") {
                    if let Some((tok, next, nl)) = string_after_prefix(src, word, i) {
                        out.tokens.push(Token { kind: tok, line });
                        line += nl;
                        i = next;
                        continue;
                    }
                }
                // Raw identifier `r#ident`.
                if word == "r"
                    && bytes.get(i) == Some(&b'#')
                    && bytes.get(i + 1).is_some_and(|&b| b.is_ascii_alphabetic() || b == b'_')
                {
                    let start = i + 1;
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.tokens
                        .push(Token { kind: TokenKind::Ident(src[start..i].to_string()), line });
                    continue;
                }
                out.tokens.push(Token { kind: TokenKind::Ident(word.to_string()), line });
            }
            c if c.is_ascii_digit() => {
                line_has_code = true;
                let start = i;
                i += 1;
                let mut seen_dot = false;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        // Exponent sign: `1e-5` / `2E+3`.
                        if (b == b'e' || b == b'E')
                            && !src[start..i].starts_with("0x")
                            && matches!(bytes.get(i + 1), Some(b'+') | Some(b'-'))
                            && bytes.get(i + 2).is_some_and(|d| d.is_ascii_digit())
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if b == b'.'
                        && !seen_dot
                        && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                    {
                        // A dot only joins the number when a digit follows,
                        // so `0..10` stays a range, not a float.
                        seen_dot = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokenKind::Num(src[start..i].to_string()), line });
            }
            c => {
                line_has_code = true;
                out.tokens.push(Token { kind: TokenKind::Punct(c), line });
                i += c.len_utf8();
            }
        }
    }
    out
}

/// Lexes a plain (cooked) string body starting just past the opening
/// quote. Returns `(value, index past closing quote, newlines crossed)`.
fn cooked_string(src: &str, mut i: usize) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut value = String::new();
    let mut nl = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                if let Some(&esc) = bytes.get(i + 1) {
                    match esc {
                        b'n' => value.push('\n'),
                        b't' => value.push('\t'),
                        b'r' => value.push('\r'),
                        b'0' => value.push('\0'),
                        b'\\' => value.push('\\'),
                        b'"' => value.push('"'),
                        b'\'' => value.push('\''),
                        b'\n' => nl += 1, // line-continuation escape
                        // \x.. and \u{..}: keep verbatim; no check needs
                        // the exact code point.
                        _ => {
                            value.push('\\');
                            value.push(esc as char);
                        }
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            b'"' => return (value, i + 1, nl),
            b'\n' => {
                nl += 1;
                value.push('\n');
                i += 1;
            }
            b => {
                value.push(b as char);
                i += 1;
            }
        }
    }
    (value, i, nl)
}

/// After an identifier-like prefix (`r`, `b`, `br`, …), tries to lex the
/// rest of a string literal starting at `i`. Returns the token, the index
/// past its end, and newlines crossed — or `None` when no string follows
/// (then the prefix was an ordinary identifier).
fn string_after_prefix(src: &str, prefix: &str, i: usize) -> Option<(TokenKind, usize, u32)> {
    let bytes = src.as_bytes();
    let raw = prefix.contains('r');
    if raw {
        // Count `#` guards, then require a quote.
        let mut j = i;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        let guards = j - i;
        if bytes.get(j) != Some(&b'"') {
            return None;
        }
        j += 1;
        let body_start = j;
        let closer: Vec<u8> =
            std::iter::once(b'"').chain(std::iter::repeat_n(b'#', guards)).collect();
        let mut nl = 0u32;
        while j < bytes.len() {
            if bytes[j] == b'\n' {
                nl += 1;
            }
            if bytes[j] == b'"' && bytes[j..].starts_with(&closer) {
                let value = src[body_start..j].to_string();
                return Some((TokenKind::StrLit(value), j + closer.len(), nl));
            }
            j += 1;
        }
        Some((TokenKind::StrLit(src[body_start..j].to_string()), j, nl))
    } else if bytes.get(i) == Some(&b'"') {
        let (value, next, nl) = cooked_string(src, i + 1);
        Some((TokenKind::StrLit(value), next, nl))
    } else if prefix == "b" && bytes.get(i) == Some(&b'\'') {
        // Byte-char literal b'x'.
        let mut j = i + 1;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some((TokenKind::CharLit, j + 1, 0)),
                b'\n' => break,
                _ => j += 1,
            }
        }
        Some((TokenKind::CharLit, j, 0))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes =
            l.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Lifetime(_))).count();
        let chars = l.tokens.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let a = '\''; let b = '\n'; let c = b'\\';");
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokenKind::CharLit).count(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(idents("a /* outer /* inner */ still comment */ b"), ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let l = lex(r####"let s = r#"has "quotes" and // no comment"#;"####);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::StrLit(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, [r#"has "quotes" and // no comment"#]);
        assert!(l.comments.is_empty(), "comment marker inside raw string must not lex");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let l = lex(r##"let m = *b"SLC1"; let r = br#"raw"#;"##);
        let strs = l.tokens.iter().filter(|t| matches!(t.kind, TokenKind::StrLit(_))).count();
        assert_eq!(strs, 2);
    }

    #[test]
    fn string_escapes_cook() {
        let l = lex(r#"let s = "a\"b\n";"#);
        match &l.tokens.iter().find(|t| matches!(t.kind, TokenKind::StrLit(_))).unwrap().kind {
            TokenKind::StrLit(s) => assert_eq!(s, "a\"b\n"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let l = lex("for i in 0..10 { let f = 2.5e-3f64; let h = 0xff_u32; }");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["0", "10", "2.5e-3f64", "0xff_u32"]);
    }

    #[test]
    fn comment_lines_and_ownership() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(!l.comments[0].own_line);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.comments[1].own_line);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("let s = \"unterminated");
        lex("/* never closed");
        lex("let c = 'x");
        lex("let r = r#\"no close");
    }
}

//! `slc-lint` — the workspace's static-analysis pass.
//!
//! The repo's load-bearing invariants are enforced *dynamically* by
//! corruption barrages and bench gates; this crate turns them into
//! CI-time compile gates. It has no external dependencies (the build
//! container is offline), shipping its own hand-rolled Rust [`lexer`], a
//! shallow item [`scan`]ner, and a best-effort intra-workspace call
//! graph; the per-file scan fans out through the workspace's `slc-par`.
//! Seven checks run over the whole workspace:
//!
//! 1. **`hot-path`** — functions rooted at the committed manifest
//!    `tools/lint/hot_paths.txt` must not transitively reach `panic!`,
//!    `unreachable!`, `todo!`, `unimplemented!`, `.unwrap()`,
//!    `.expect(…)`, `vec![…]`, `Vec::new`, `.to_vec()`, `format!`,
//!    `Box::new` or `.collect()`.
//! 2. **`unsafe`** — every `unsafe` block/fn/impl must carry a
//!    `// SAFETY:` comment (same line or the comment block directly
//!    above); the tool always prints the full unsafe inventory.
//! 3. **`wire-format`** — `CodecId` discriminants, the container
//!    magic/version/geometry constants and header field layouts are
//!    extracted from source and diffed against
//!    `tools/lint/wire_format.lock`.
//! 4. **`assert`** — hard `assert!`/`assert_eq!`/`assert_ne!` in
//!    manifest hot paths flags (repo convention: `debug_assert!` on hot
//!    paths); `debug_assert*` never flags.
//! 5. **`bench-rows`** — bench ids registered in `crates/bench` sources
//!    must match `tools/bench_rows.txt` / `tools/eval_rows.txt` in both
//!    directions, catching dropped rows at lint time.
//! 6. **`wire-taint`** — dataflow: a value returned by a taint *source*
//!    (the wire-read helpers registered in `tools/lint/untrusted.txt`)
//!    must not reach a dangerous sink — slice indexing, allocation
//!    sizes (`with_capacity`/`resize`/`reserve`), `copy_from_slice`/
//!    `get_unchecked` arguments, `for`-loop range bounds, or shift
//!    amounts — without first passing a registered *sanitizer* or a
//!    visible range comparison. See [`taint`].
//! 7. **`taint-arith`** — bare `+`/`-`/`*` (and their compound-assign
//!    forms) on a still-unguarded tainted integer flags: arithmetic on
//!    untrusted lengths must be `checked_*`/`saturating_*` or follow a
//!    range guard, so silent wraparound cannot size a later access.
//!
//! # Waiver syntax
//!
//! A finding is waived by an inline comment at the site — on the same
//! line, or in the standalone comment block directly above it:
//!
//! ```text
//! // slc-lint: allow(hot-path): guard panic, contained by the engine's
//! // per-chunk catch_unwind
//! ```
//!
//! The check name in `allow(…)` must match the finding's check
//! (`hot-path`, `assert`, `unsafe`, …) and the reason after the second
//! colon must be non-empty. A waiver placed on the line of an `fn`
//! definition (or directly above it) exempts the *whole function*: its
//! body is not audited and the call graph does not traverse through it —
//! the escape hatch for cold entry wrappers that share a name with hot
//! code.
//!
//! The taint checks use a dedicated marker with the same placement
//! rules (trailing or standalone-above; on an `fn` line it exempts the
//! whole function from taint analysis):
//!
//! ```text
//! // slc-lint: trusted(count is a u8 wire field, the sum cannot wrap)
//! ```
//!
//! `trusted(…)` covers **both** `wire-taint` and `taint-arith` at its
//! target line — a reviewed site is trusted as a whole, not per check —
//! and the reason must be non-empty.
//!
//! Every `allow(…)`/`trusted(…)` waiver in the workspace is additionally
//! pinned by `tools/lint/waivers.lock` (check **`waiver-debt`**, see
//! [`debt`]): a new waiver fails CI until the lock is regenerated with
//! `--update-waiver-lock`, so waiver debt cannot grow silently.
//!
//! # Hot-path manifest format (`tools/lint/hot_paths.txt`)
//!
//! One root per line, `#` comments allowed:
//!
//! ```text
//! crates/engine/src/lib.rs::decode_chunk
//! crates/compress/src/bdi.rs::encode_into
//! ```
//!
//! The path is workspace-relative; the name matches every function of
//! that name in the file (so `cfg`-duplicated definitions are all
//! audited). A root that no longer resolves is itself a finding — the
//! manifest cannot silently rot.
//!
//! # Taint manifest format (`tools/lint/untrusted.txt`)
//!
//! One entry per line, `#` comments allowed:
//!
//! ```text
//! source    crates/engine/src/container.rs::le_u32
//! sanitizer crates/engine/src/container.rs::parse
//! ```
//!
//! A `source` is a function whose return value is wire-controlled; a
//! `sanitizer` is a validation gate whose return value is clean no
//! matter what went in. Entries resolve through the call graph (path
//! and file must both match), and an entry that no longer resolves is
//! itself a finding — the manifest cannot silently rot.
//!
//! # Regenerating the locks
//!
//! `cargo run --release -p slc-lint -- --update-wire-lock` re-extracts
//! the wire constants from source and rewrites
//! `tools/lint/wire_format.lock`. Do this **only** when a wire-format
//! change is intentional, in the same commit that documents it;
//! `-- --update-waiver-lock` does the same for `tools/lint/waivers.lock`
//! when a new waiver has been reviewed. CI runs the lint read-only, so
//! unreviewed drift fails the build.
//!
//! # CLI output and exit codes
//!
//! `cargo run --release -p slc-lint [-- --format json]` — the default
//! output is human-readable findings plus the unsafe inventory; with
//! `--format json` a single machine-readable object (findings, unsafe
//! inventory, waiver inventory, scan stats) is printed to stdout — CI
//! uploads it as an artifact. The exit-code taxonomy:
//!
//! * **0** — every check ran and produced no findings (or a
//!   `--update-*-lock` rewrite succeeded).
//! * **1** — at least one finding, **or** the tool could not do its job
//!   (workspace root not found, unreadable source tree, missing or
//!   unreadable manifest/lock files — each of which is also reported as
//!   a finding so it shows up in the JSON artifact).
//!
//! There are deliberately no other codes: CI treats the gate as binary,
//! and partial-failure taxonomies rot.

#![forbid(unsafe_code)]

pub mod debt;
pub mod graph;
pub mod hygiene;
pub mod lexer;
pub mod rows;
pub mod scan;
pub mod taint;
pub mod wire;

use scan::FileIndex;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One diagnostic. Rendered as `file:line: [check] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub check: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.check, self.message)
    }
}

/// The loaded workspace: every scanned source file plus the crate
/// dependency closure the call-graph resolver filters through.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<FileIndex>,
    /// crate name → transitive workspace dependencies (including itself).
    pub deps: BTreeMap<String, BTreeSet<String>>,
}

impl Workspace {
    /// Walks `root` and scans every workspace `.rs` file.
    ///
    /// Skips `target/`, the vendored dependency shims' *call-graph* role
    /// is neutralised by the dependency filter (they are dev-deps), and
    /// `crates/lint/tests/fixtures/` is data, not code.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut sources = Vec::new();
        let crate_dirs = list_crate_dirs(root)?;
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut names = Vec::new();
        for (dir, name) in &crate_dirs {
            names.push(name.clone());
            let direct = parse_deps(&root.join(dir).join("Cargo.toml"));
            deps.insert(name.clone(), direct);
        }
        transitive_close(&mut deps);
        for (dir, name) in &crate_dirs {
            for sub in ["src", "tests", "benches", "examples"] {
                collect_rs(&root.join(dir).join(sub), root, name, &mut sources)?;
            }
        }
        // The umbrella crate at the workspace root.
        for sub in ["src", "tests", "examples"] {
            collect_rs(&root.join(sub), root, "slc", &mut sources)?;
        }
        let mut umbrella: BTreeSet<String> = names.iter().cloned().collect();
        umbrella.insert("slc".to_string());
        deps.insert("slc".to_string(), umbrella);
        // IO above is serial; the lex + scan of independent files fans
        // out (order-preserving, so the sort below is deterministic
        // regardless of thread count).
        let mut files = slc_par::par_map(sources, |(path, crate_name, src)| {
            FileIndex::build(&path, &crate_name, &src)
        });
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { root: root.to_path_buf(), files, deps })
    }

    /// Builds a workspace directly from `(path, crate, source)` triples —
    /// how the fixture tests drive the checks without touching disk.
    pub fn from_sources(sources: &[(&str, &str, &str)]) -> Self {
        let files = slc_par::par_map(sources.to_vec(), |(p, c, s)| FileIndex::build(p, c, s));
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &files {
            deps.entry(f.crate_name.clone()).or_default();
        }
        // Fixtures assume full visibility; reachability precision is
        // exercised through the `deps` field directly when a test needs it.
        let all: BTreeSet<String> = deps.keys().cloned().collect();
        for set in deps.values_mut() {
            *set = all.clone();
        }
        Workspace { root: PathBuf::new(), files, deps }
    }

    /// The file at a workspace-relative path, if loaded.
    pub fn file(&self, path: &str) -> Option<&FileIndex> {
        self.files.iter().find(|f| f.path == path)
    }

    /// True when crate `from` may call into crate `to` (directly or
    /// transitively, or they are the same crate).
    pub fn can_reach(&self, from: &str, to: &str) -> bool {
        from == to || self.deps.get(from).is_some_and(|d| d.contains(to))
    }
}

/// The pseudo-check name under which `trusted(…)` waivers are recorded:
/// one `trusted` marker covers both taint checks at its target line.
pub const TRUSTED: &str = "trusted";

/// A parsed waiver: `// slc-lint: allow(<check>): <reason>`, or the
/// taint form `// slc-lint: trusted(<reason>)` (recorded with `check ==`
/// [`TRUSTED`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub check: String,
    pub reason: String,
    /// The source line the waiver applies to (the comment's own line for
    /// trailing waivers, the first code line below for standalone ones).
    pub target_line: u32,
}

/// Extracts every waiver in `file`, resolving which line each applies to.
///
/// Only plain `//` / `/* … */` comments carry waivers. Doc comments
/// (`///`, `//!`, `/** … */`, `/*! … */`) are prose: a waiver-grammar
/// example in rustdoc must neither mint debt in the waiver lock nor —
/// worse — silently exempt the item it documents.
pub fn waivers(file: &FileIndex) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &file.lexed.comments {
        // The lexed text keeps everything past the `//` / `/*` opener,
        // so a doc comment starts with a third `/`, a `!` or a `*`.
        if matches!(c.text.as_bytes().first(), Some(b'/' | b'!' | b'*')) {
            continue;
        }
        let Some((check, reason)) = parse_waiver_text(&c.text) else {
            continue;
        };
        let target_line = if c.own_line {
            // Standalone: applies to the first token line after the
            // comment (skipping further comment-only lines).
            file.lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.end_line)
                .unwrap_or(c.end_line + 1)
        } else {
            c.line
        };
        out.push(Waiver { check, reason, target_line });
    }
    out
}

/// Parses the waiver marker out of one comment's text.
fn parse_waiver_text(text: &str) -> Option<(String, String)> {
    if let Some(at) = text.find("slc-lint: allow(") {
        let rest = &text[at + "slc-lint: allow(".len()..];
        let close = rest.find(')')?;
        let check = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':')?.trim().to_string();
        if check.is_empty() || reason.is_empty() {
            return None;
        }
        return Some((check, reason));
    }
    // Taint form: the reason lives inside the parens (and may itself
    // contain parens, so match the *last* close on the comment line).
    let at = text.find("slc-lint: trusted(")?;
    let rest = &text[at + "slc-lint: trusted(".len()..];
    let close = rest.rfind(')')?;
    let reason = rest[..close].trim().to_string();
    if reason.is_empty() {
        return None;
    }
    Some((TRUSTED.to_string(), reason))
}

/// True when a finding of `check` at `line` in `file` is waived.
pub fn is_waived(file: &FileIndex, check: &str, line: u32) -> bool {
    waivers(file).iter().any(|w| w.check == check && w.target_line == line)
}

/// The exact syntax hint printed under failures, so a finding's fix is
/// copy-pasteable from CI output.
pub fn waiver_hint(check: &str) -> String {
    if check == taint::WIRE_TAINT || check == taint::TAINT_ARITH {
        return "to waive a reviewed site, annotate it with: \
                // slc-lint: trusted(<non-empty reason>)"
            .to_string();
    }
    if check == debt::WAIVER_DEBT {
        return "review the waiver change, then regenerate the lock with \
                `cargo run --release -p slc-lint -- --update-waiver-lock`"
            .to_string();
    }
    format!(
        "to waive a reviewed site, annotate it with: // slc-lint: allow({check}): <non-empty reason>"
    )
}

fn list_crate_dirs(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if !path.is_dir() {
                continue;
            }
            if path.join("Cargo.toml").is_file() {
                let name = package_name(&path.join("Cargo.toml"))
                    .unwrap_or_else(|| path.file_name().unwrap().to_string_lossy().into_owned());
                out.push((rel(&path, root), name));
            } else {
                // `crates/vendor/` holds nested packages.
                stack.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn package_name(cargo_toml: &Path) -> Option<String> {
    let text = std::fs::read_to_string(cargo_toml).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Workspace-internal `[dependencies]` of one crate (by package name).
fn parse_deps(cargo_toml: &Path) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let Ok(text) = std::fs::read_to_string(cargo_toml) else {
        return out;
    };
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            // Only plain [dependencies]: dev-deps (proptest shims, bench
            // harnesses) must not open call-graph edges into hot paths.
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps {
            if let Some(name) = line.split(['=', '.']).next() {
                let name = name.trim();
                if !name.is_empty() && !name.starts_with('#') {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

fn transitive_close(deps: &mut BTreeMap<String, BTreeSet<String>>) {
    let names: Vec<String> = deps.keys().cloned().collect();
    loop {
        let mut changed = false;
        for name in &names {
            let current = deps.get(name).cloned().unwrap_or_default();
            let mut next = current.clone();
            for d in &current {
                if let Some(dd) = deps.get(d) {
                    next.extend(dd.iter().cloned());
                }
            }
            if next.len() != current.len() {
                deps.insert(name.clone(), next);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<(String, String, String)>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            let rel_path = rel(&path, root);
            // Fixture corpus is data for the lint's own tests — seeded
            // violations live there on purpose.
            if rel_path.contains("tests/fixtures") || rel_path.contains("target/") {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path)?;
                out.push((rel_path, crate_name.to_string(), src));
            }
        }
    }
    Ok(())
}

fn rel(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_parsing() {
        assert_eq!(
            parse_waiver_text(" slc-lint: allow(hot-path): guard panic is contained"),
            Some(("hot-path".to_string(), "guard panic is contained".to_string()))
        );
        assert_eq!(parse_waiver_text(" slc-lint: allow(hot-path):"), None, "empty reason");
        assert_eq!(parse_waiver_text(" slc-lint: allow(): reason"), None, "empty check");
        assert_eq!(parse_waiver_text(" nothing to see"), None);
    }

    #[test]
    fn trusted_waiver_parsing() {
        assert_eq!(
            parse_waiver_text(" slc-lint: trusted(n <= 256 (a u8 field) cannot wrap)"),
            Some((TRUSTED.to_string(), "n <= 256 (a u8 field) cannot wrap".to_string())),
            "reason may contain parens; the last close wins"
        );
        assert_eq!(parse_waiver_text(" slc-lint: trusted()"), None, "empty reason");
        assert_eq!(parse_waiver_text(" slc-lint: trusted"), None, "no parens");
    }

    #[test]
    fn trailing_and_standalone_waiver_targets() {
        let file = FileIndex::build(
            "crates/x/src/lib.rs",
            "x",
            "fn f() {\n    work(); // slc-lint: allow(hot-path): trailing reason\n    \
             // slc-lint: allow(assert): standalone reason\n    // continues\n    more();\n}\n",
        );
        let ws = waivers(&file);
        assert_eq!(ws.len(), 2);
        assert_eq!((ws[0].check.as_str(), ws[0].target_line), ("hot-path", 2));
        assert_eq!((ws[1].check.as_str(), ws[1].target_line), ("assert", 5));
        assert!(is_waived(&file, "hot-path", 2));
        assert!(!is_waived(&file, "hot-path", 5));
        assert!(is_waived(&file, "assert", 5));
    }

    #[test]
    fn doc_comments_never_carry_waivers() {
        // A rustdoc example of the grammar sits right above a fn: it must
        // not exempt that fn, and must not count as waiver debt.
        let file = FileIndex::build(
            "crates/x/src/lib.rs",
            "x",
            "/// Waive with `// slc-lint: allow(hot-path): <reason>`.\n\
             //! Or taint: // slc-lint: trusted(reviewed)\n\
             /** block doc: slc-lint: allow(assert): nope */\n\
             fn f() {\n    work();\n}\n",
        );
        assert!(waivers(&file).is_empty(), "{:?}", waivers(&file));
        assert!(!is_waived(&file, "hot-path", 4));
    }
}

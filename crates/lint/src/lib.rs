//! `slc-lint` — the workspace's static-analysis pass.
//!
//! The repo's load-bearing invariants are enforced *dynamically* by
//! corruption barrages and bench gates; this crate turns them into
//! CI-time compile gates. It is dependency-free (the build container is
//! offline), shipping its own hand-rolled Rust [`lexer`], a shallow item
//! [`scan`]ner, and a best-effort intra-workspace call graph. Five
//! checks run over the whole workspace:
//!
//! 1. **`hot-path`** — functions rooted at the committed manifest
//!    `tools/lint/hot_paths.txt` must not transitively reach `panic!`,
//!    `unreachable!`, `todo!`, `unimplemented!`, `.unwrap()`,
//!    `.expect(…)`, `vec![…]`, `Vec::new`, `.to_vec()`, `format!`,
//!    `Box::new` or `.collect()`.
//! 2. **`unsafe`** — every `unsafe` block/fn/impl must carry a
//!    `// SAFETY:` comment (same line or the comment block directly
//!    above); the tool always prints the full unsafe inventory.
//! 3. **`wire-format`** — `CodecId` discriminants, the container
//!    magic/version/geometry constants and header field layouts are
//!    extracted from source and diffed against
//!    `tools/lint/wire_format.lock`.
//! 4. **`assert`** — hard `assert!`/`assert_eq!`/`assert_ne!` in
//!    manifest hot paths flags (repo convention: `debug_assert!` on hot
//!    paths); `debug_assert*` never flags.
//! 5. **`bench-rows`** — bench ids registered in `crates/bench` sources
//!    must match `tools/bench_rows.txt` / `tools/eval_rows.txt` in both
//!    directions, catching dropped rows at lint time.
//!
//! # Waiver syntax
//!
//! A finding is waived by an inline comment at the site — on the same
//! line, or in the standalone comment block directly above it:
//!
//! ```text
//! // slc-lint: allow(hot-path): guard panic, contained by the engine's
//! // per-chunk catch_unwind
//! ```
//!
//! The check name in `allow(…)` must match the finding's check
//! (`hot-path`, `assert`, `unsafe`, …) and the reason after the second
//! colon must be non-empty. A waiver placed on the line of an `fn`
//! definition (or directly above it) exempts the *whole function*: its
//! body is not audited and the call graph does not traverse through it —
//! the escape hatch for cold entry wrappers that share a name with hot
//! code.
//!
//! # Hot-path manifest format (`tools/lint/hot_paths.txt`)
//!
//! One root per line, `#` comments allowed:
//!
//! ```text
//! crates/engine/src/lib.rs::decode_chunk
//! crates/compress/src/bdi.rs::encode_into
//! ```
//!
//! The path is workspace-relative; the name matches every function of
//! that name in the file (so `cfg`-duplicated definitions are all
//! audited). A root that no longer resolves is itself a finding — the
//! manifest cannot silently rot.
//!
//! # Regenerating the wire-format lock
//!
//! `cargo run --release -p slc-lint -- --update-wire-lock` re-extracts
//! the wire constants from source and rewrites
//! `tools/lint/wire_format.lock`. Do this **only** when a wire-format
//! change is intentional, in the same commit that documents it; CI runs
//! the lint read-only, so unreviewed drift fails the build.

#![forbid(unsafe_code)]

pub mod graph;
pub mod hygiene;
pub mod lexer;
pub mod rows;
pub mod scan;
pub mod wire;

use scan::FileIndex;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One diagnostic. Rendered as `file:line: [check] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub check: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.check, self.message)
    }
}

/// The loaded workspace: every scanned source file plus the crate
/// dependency closure the call-graph resolver filters through.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<FileIndex>,
    /// crate name → transitive workspace dependencies (including itself).
    pub deps: BTreeMap<String, BTreeSet<String>>,
}

impl Workspace {
    /// Walks `root` and scans every workspace `.rs` file.
    ///
    /// Skips `target/`, the vendored dependency shims' *call-graph* role
    /// is neutralised by the dependency filter (they are dev-deps), and
    /// `crates/lint/tests/fixtures/` is data, not code.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut files = Vec::new();
        let crate_dirs = list_crate_dirs(root)?;
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut names = Vec::new();
        for (dir, name) in &crate_dirs {
            names.push(name.clone());
            let direct = parse_deps(&root.join(dir).join("Cargo.toml"));
            deps.insert(name.clone(), direct);
        }
        transitive_close(&mut deps);
        for (dir, name) in &crate_dirs {
            for sub in ["src", "tests", "benches", "examples"] {
                collect_rs(&root.join(dir).join(sub), root, name, &mut files)?;
            }
        }
        // The umbrella crate at the workspace root.
        for sub in ["src", "tests", "examples"] {
            collect_rs(&root.join(sub), root, "slc", &mut files)?;
        }
        let mut umbrella: BTreeSet<String> = names.iter().cloned().collect();
        umbrella.insert("slc".to_string());
        deps.insert("slc".to_string(), umbrella);
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { root: root.to_path_buf(), files, deps })
    }

    /// Builds a workspace directly from `(path, crate, source)` triples —
    /// how the fixture tests drive the checks without touching disk.
    pub fn from_sources(sources: &[(&str, &str, &str)]) -> Self {
        let files = sources.iter().map(|(p, c, s)| FileIndex::build(p, c, s)).collect::<Vec<_>>();
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &files {
            deps.entry(f.crate_name.clone()).or_default();
        }
        // Fixtures assume full visibility; reachability precision is
        // exercised through the `deps` field directly when a test needs it.
        let all: BTreeSet<String> = deps.keys().cloned().collect();
        for set in deps.values_mut() {
            *set = all.clone();
        }
        Workspace { root: PathBuf::new(), files, deps }
    }

    /// The file at a workspace-relative path, if loaded.
    pub fn file(&self, path: &str) -> Option<&FileIndex> {
        self.files.iter().find(|f| f.path == path)
    }

    /// True when crate `from` may call into crate `to` (directly or
    /// transitively, or they are the same crate).
    pub fn can_reach(&self, from: &str, to: &str) -> bool {
        from == to || self.deps.get(from).is_some_and(|d| d.contains(to))
    }
}

/// A parsed waiver: `// slc-lint: allow(<check>): <reason>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub check: String,
    pub reason: String,
    /// The source line the waiver applies to (the comment's own line for
    /// trailing waivers, the first code line below for standalone ones).
    pub target_line: u32,
}

/// Extracts every waiver in `file`, resolving which line each applies to.
pub fn waivers(file: &FileIndex) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &file.lexed.comments {
        let Some((check, reason)) = parse_waiver_text(&c.text) else {
            continue;
        };
        let target_line = if c.own_line {
            // Standalone: applies to the first token line after the
            // comment (skipping further comment-only lines).
            file.lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.end_line)
                .unwrap_or(c.end_line + 1)
        } else {
            c.line
        };
        out.push(Waiver { check, reason, target_line });
    }
    out
}

/// Parses the waiver marker out of one comment's text.
fn parse_waiver_text(text: &str) -> Option<(String, String)> {
    let at = text.find("slc-lint: allow(")?;
    let rest = &text[at + "slc-lint: allow(".len()..];
    let close = rest.find(')')?;
    let check = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':')?.trim().to_string();
    if check.is_empty() || reason.is_empty() {
        return None;
    }
    Some((check, reason))
}

/// True when a finding of `check` at `line` in `file` is waived.
pub fn is_waived(file: &FileIndex, check: &str, line: u32) -> bool {
    waivers(file).iter().any(|w| w.check == check && w.target_line == line)
}

/// The exact syntax hint printed under failures, so a finding's fix is
/// copy-pasteable from CI output.
pub fn waiver_hint(check: &str) -> String {
    format!(
        "to waive a reviewed site, annotate it with: // slc-lint: allow({check}): <non-empty reason>"
    )
}

fn list_crate_dirs(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if !path.is_dir() {
                continue;
            }
            if path.join("Cargo.toml").is_file() {
                let name = package_name(&path.join("Cargo.toml"))
                    .unwrap_or_else(|| path.file_name().unwrap().to_string_lossy().into_owned());
                out.push((rel(&path, root), name));
            } else {
                // `crates/vendor/` holds nested packages.
                stack.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn package_name(cargo_toml: &Path) -> Option<String> {
    let text = std::fs::read_to_string(cargo_toml).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Workspace-internal `[dependencies]` of one crate (by package name).
fn parse_deps(cargo_toml: &Path) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let Ok(text) = std::fs::read_to_string(cargo_toml) else {
        return out;
    };
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            // Only plain [dependencies]: dev-deps (proptest shims, bench
            // harnesses) must not open call-graph edges into hot paths.
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps {
            if let Some(name) = line.split(['=', '.']).next() {
                let name = name.trim();
                if !name.is_empty() && !name.starts_with('#') {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

fn transitive_close(deps: &mut BTreeMap<String, BTreeSet<String>>) {
    let names: Vec<String> = deps.keys().cloned().collect();
    loop {
        let mut changed = false;
        for name in &names {
            let current = deps.get(name).cloned().unwrap_or_default();
            let mut next = current.clone();
            for d in &current {
                if let Some(dd) = deps.get(d) {
                    next.extend(dd.iter().cloned());
                }
            }
            if next.len() != current.len() {
                deps.insert(name.clone(), next);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<FileIndex>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            let rel_path = rel(&path, root);
            // Fixture corpus is data for the lint's own tests — seeded
            // violations live there on purpose.
            if rel_path.contains("tests/fixtures") || rel_path.contains("target/") {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path)?;
                out.push(FileIndex::build(&rel_path, crate_name, &src));
            }
        }
    }
    Ok(())
}

fn rel(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_parsing() {
        assert_eq!(
            parse_waiver_text(" slc-lint: allow(hot-path): guard panic is contained"),
            Some(("hot-path".to_string(), "guard panic is contained".to_string()))
        );
        assert_eq!(parse_waiver_text(" slc-lint: allow(hot-path):"), None, "empty reason");
        assert_eq!(parse_waiver_text(" slc-lint: allow(): reason"), None, "empty check");
        assert_eq!(parse_waiver_text(" nothing to see"), None);
    }

    #[test]
    fn trailing_and_standalone_waiver_targets() {
        let file = FileIndex::build(
            "crates/x/src/lib.rs",
            "x",
            "fn f() {\n    work(); // slc-lint: allow(hot-path): trailing reason\n    \
             // slc-lint: allow(assert): standalone reason\n    // continues\n    more();\n}\n",
        );
        let ws = waivers(&file);
        assert_eq!(ws.len(), 2);
        assert_eq!((ws[0].check.as_str(), ws[0].target_line), ("hot-path", 2));
        assert_eq!((ws[1].check.as_str(), ws[1].target_line), ("assert", 5));
        assert!(is_waived(&file, "hot-path", 2));
        assert!(!is_waived(&file, "hot-path", 5));
        assert!(is_waived(&file, "assert", 5));
    }
}

//! Bench-row cross-check: the regression-gate manifests
//! (`tools/bench_rows.txt`, `tools/eval_rows.txt`) and the bench ids
//! registered in `crates/bench` sources must agree.
//!
//! Two directions:
//!
//! * **A** — every manifest row `group/leaf` must be backed by a bench
//!   source: either a literal `bench_function("leaf")` under a
//!   `benchmark_group("group")` (or a literal `"group/leaf"` id), or —
//!   for loop-generated ids like `compress_block/bdi` — the group
//!   registered in a file that also contains the string literal
//!   `"leaf"` somewhere (the codec-name array).
//! * **B** — every *literal* bench id whose group appears in a manifest
//!   (a gated group) must itself be listed in the union of the
//!   manifests. Ungated figure benches (`fig1/…`, `ablation/…`) are
//!   not checked: the manifests gate regressions, they are not an
//!   exhaustive registry.

use crate::lexer::TokenKind;
use crate::{Finding, Workspace};
use std::collections::BTreeSet;

/// Check name for manifest drift.
pub const BENCH_ROWS: &str = "bench-rows";

/// One manifest row with its source line.
#[derive(Debug, Clone)]
pub struct Row {
    pub id: String,
    pub line: u32,
}

/// Parses a row manifest (one `group/leaf` per line, `#` comments).
pub fn parse_rows(text: &str) -> Vec<Row> {
    text.lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') {
                None
            } else {
                Some(Row { id: l.to_string(), line: i as u32 + 1 })
            }
        })
        .collect()
}

/// What one bench source file registers.
#[derive(Debug, Default)]
struct BenchFile {
    path: String,
    /// Groups opened via `benchmark_group("…")`.
    groups: BTreeSet<String>,
    /// Fully-literal ids: `(group/leaf, line)`.
    literal_ids: Vec<(String, u32)>,
    /// Every string literal in the file (covers loop-generated leaves).
    strings: BTreeSet<String>,
}

/// Token-walks the `crates/bench` sources for bench registrations.
fn bench_files(ws: &Workspace) -> Vec<BenchFile> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !file.path.starts_with("crates/bench/") {
            continue;
        }
        let toks = &file.lexed.tokens;
        let mut bf = BenchFile { path: file.path.clone(), ..BenchFile::default() };
        let mut current_group: Option<String> = None;
        for (i, t) in toks.iter().enumerate() {
            if let TokenKind::StrLit(s) = &t.kind {
                bf.strings.insert(s.clone());
            }
            let TokenKind::Ident(w) = &t.kind else { continue };
            let lit_arg =
                toks.get(i + 1).filter(|n| n.is_punct('(')).and_then(|_| toks.get(i + 2)).and_then(
                    |n| match &n.kind {
                        TokenKind::StrLit(s) => Some(s.clone()),
                        _ => None,
                    },
                );
            match w.as_str() {
                "benchmark_group" => {
                    if let Some(g) = lit_arg {
                        bf.groups.insert(g.clone());
                        current_group = Some(g);
                    } else {
                        current_group = None;
                    }
                }
                "bench_function" => {
                    if let Some(leaf) = lit_arg {
                        let id = if leaf.contains('/') {
                            // Direct `c.bench_function("group/leaf")`.
                            if let Some((g, _)) = leaf.split_once('/') {
                                bf.groups.insert(g.to_string());
                            }
                            leaf
                        } else {
                            match &current_group {
                                Some(g) => format!("{g}/{leaf}"),
                                None => leaf,
                            }
                        };
                        bf.literal_ids.push((id, t.line));
                    }
                }
                _ => {}
            }
        }
        out.push(bf);
    }
    out
}

/// Runs both directions. `manifests` is `(path, parsed rows)` for each
/// committed manifest.
pub fn check_rows(ws: &Workspace, manifests: &[(String, Vec<Row>)]) -> Vec<Finding> {
    let files = bench_files(ws);
    let mut findings = Vec::new();

    let union: BTreeSet<&str> =
        manifests.iter().flat_map(|(_, rows)| rows.iter().map(|r| r.id.as_str())).collect();
    let gated_groups: BTreeSet<&str> = union.iter().filter_map(|id| id.split('/').next()).collect();

    // Direction A: every required row must still be registered somewhere.
    for (path, rows) in manifests {
        for row in rows {
            let Some((group, leaf)) = row.id.split_once('/') else {
                findings.push(Finding {
                    check: BENCH_ROWS,
                    file: path.clone(),
                    line: row.line,
                    message: format!("malformed row `{}` (expected group/leaf)", row.id),
                });
                continue;
            };
            let backed = files.iter().any(|f| {
                f.literal_ids.iter().any(|(id, _)| id == &row.id)
                    || (f.groups.contains(group) && f.strings.contains(leaf))
            });
            if !backed {
                findings.push(Finding {
                    check: BENCH_ROWS,
                    file: path.clone(),
                    line: row.line,
                    message: format!(
                        "required row `{}` has no registration in crates/bench — \
                         the regression gate would fail; remove the row or restore the bench",
                        row.id
                    ),
                });
            }
        }
    }

    // Direction B: literal ids in gated groups must be listed.
    for f in &files {
        for (id, line) in &f.literal_ids {
            let group = id.split('/').next().unwrap_or("");
            if gated_groups.contains(group) && !union.contains(id.as_str()) {
                findings.push(Finding {
                    check: BENCH_ROWS,
                    file: f.path.clone(),
                    line: *line,
                    message: format!(
                        "bench `{id}` is in gated group `{group}` but listed in no row \
                         manifest — add it to tools/bench_rows.txt or tools/eval_rows.txt"
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifests(bench: &str, eval: &str) -> Vec<(String, Vec<Row>)> {
        vec![
            ("tools/bench_rows.txt".to_string(), parse_rows(bench)),
            ("tools/eval_rows.txt".to_string(), parse_rows(eval)),
        ]
    }

    const LOOPED: &str = "fn benches(c: &mut Criterion) {\n\
        let codecs = [(\"bdi\", x()), (\"fpc\", y())];\n\
        let mut g = c.benchmark_group(\"compress_block\");\n\
        for (name, codec) in codecs { g.bench_function(name, |b| b.iter(run)); }\n\
        g.finish();\n\
        let mut g = c.benchmark_group(\"slc\");\n\
        g.bench_function(\"roundtrip\", |b| b.iter(run));\n}\n";

    #[test]
    fn loop_generated_and_literal_rows_are_backed() {
        let ws = Workspace::from_sources(&[(
            "crates/bench/benches/codec_throughput.rs",
            "slc-bench",
            LOOPED,
        )]);
        let m = manifests("compress_block/bdi\ncompress_block/fpc\nslc/roundtrip\n", "");
        assert!(check_rows(&ws, &m).is_empty());
    }

    #[test]
    fn dropped_bench_flags_the_manifest_row() {
        let ws = Workspace::from_sources(&[(
            "crates/bench/benches/codec_throughput.rs",
            "slc-bench",
            LOOPED,
        )]);
        let m = manifests("compress_block/bdi\ncompress_block/cpack\n", "");
        let f = check_rows(&ws, &m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("compress_block/cpack"));
        assert_eq!(f[0].file, "tools/bench_rows.txt");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unlisted_bench_in_gated_group_flags_but_ungated_groups_pass() {
        let ws = Workspace::from_sources(&[(
            "crates/bench/benches/codec_throughput.rs",
            "slc-bench",
            "fn benches(c: &mut Criterion) {\n\
             let mut g = c.benchmark_group(\"slc\");\n\
             g.bench_function(\"roundtrip\", run);\n\
             g.bench_function(\"brand_new\", run);\n\
             let mut g = c.benchmark_group(\"fig1\");\n\
             g.bench_function(\"compute_tiny\", run);\n}\n",
        )]);
        let m = manifests("slc/roundtrip\n", "");
        let f = check_rows(&ws, &m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("slc/brand_new"));
    }

    #[test]
    fn direct_slash_ids_and_shared_src_registrations_count() {
        let ws = Workspace::from_sources(&[(
            "crates/bench/src/lib.rs",
            "slc-bench",
            "fn engine(c: &mut Criterion) {\n\
             c.bench_function(\"table1/gate_model\", run);\n\
             let mut g = c.benchmark_group(\"engine\");\n\
             g.bench_function(\"compress_e2e\", run);\n}\n",
        )]);
        let m = manifests("engine/compress_e2e\n", "engine/compress_e2e\n");
        assert!(check_rows(&ws, &m).is_empty());
    }
}

//! Best-effort intra-workspace call graph + the hot-path and assert
//! checks.
//!
//! The graph is token-level: nodes are `fn` definitions found by the
//! [`scan`](crate::scan)ner, edges come from call sites resolved by
//! name. Resolution is deliberately conservative in *shape* and
//! over-approximate in *targets*:
//!
//! * `Type::name(…)` resolves to methods of a workspace `impl Type` /
//!   `trait Type` when one exists; an unknown qualifier falls back to
//!   free functions of that name (module-qualified calls), never to
//!   methods — so `Vec::new(…)` does not fan out to every workspace
//!   `new`.
//! * `recv.name(…)` resolves to **every** workspace method of that name
//!   (receiver types are unknown) — exactly what a trait-object call
//!   like `codec.decompress(…)` needs to reach all codec impls.
//! * `name(…)` resolves to free functions of that name.
//!
//! Every resolution is filtered by the crate dependency closure: code in
//! `slc-compress` cannot grow an edge into `slc-sim`, because the crate
//! cannot name it. Test code (`#[cfg(test)]` modules, `tests/`,
//! `benches/`, `examples/`) is excluded from the def index entirely.

use crate::scan::{CallKind, CallSite, FnDef};
use crate::{waivers, Finding, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Check name for the panic/alloc audit.
pub const HOT_PATH: &str = "hot-path";
/// Check name for the hard-assert policy.
pub const ASSERT: &str = "assert";

/// Macro names that panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Macro names that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
/// Method names that panic or allocate.
const BANNED_METHODS: &[&str] = &["unwrap", "expect", "to_vec", "collect"];
/// `Type::fn` pairs that allocate.
const BANNED_PATHS: &[(&str, &str)] = &[("Vec", "new"), ("Box", "new")];
/// Hard asserts (the repo convention on hot paths is `debug_assert!`).
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// One parsed manifest root: `path/to/file.rs::fn_name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Root {
    pub file: String,
    pub func: String,
}

/// Parses `tools/lint/hot_paths.txt` content.
pub fn parse_manifest(text: &str) -> Vec<Root> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (file, func) = l.split_once("::")?;
            Some(Root { file: file.trim().to_string(), func: func.trim().to_string() })
        })
        .collect()
}

/// A function node in the graph: `(file index, fn index)` into
/// [`Workspace::files`] / [`crate::scan::FileIndex::fns`].
pub type NodeId = (usize, usize);

/// The resolved workspace call graph.
pub struct CallGraph<'a> {
    ws: &'a Workspace,
    /// Simple name → methods (fns with an owner).
    methods: BTreeMap<&'a str, Vec<NodeId>>,
    /// Simple name → free functions.
    free_fns: BTreeMap<&'a str, Vec<NodeId>>,
    /// `(owner, name)` → fns.
    qualified: BTreeMap<(&'a str, &'a str), Vec<NodeId>>,
}

impl<'a> CallGraph<'a> {
    /// Indexes every non-test function of the workspace.
    pub fn build(ws: &'a Workspace) -> Self {
        let mut g = CallGraph {
            ws,
            methods: BTreeMap::new(),
            free_fns: BTreeMap::new(),
            qualified: BTreeMap::new(),
        };
        for (fi, file) in ws.files.iter().enumerate() {
            if file.is_external_test {
                continue;
            }
            for (di, def) in file.fns.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                let id = (fi, di);
                match &def.owner {
                    Some(owner) => {
                        g.methods.entry(def.name.as_str()).or_default().push(id);
                        g.qualified
                            .entry((owner.as_str(), def.name.as_str()))
                            .or_default()
                            .push(id);
                    }
                    None => g.free_fns.entry(def.name.as_str()).or_default().push(id),
                }
            }
        }
        g
    }

    /// The function definition behind a node id.
    pub fn def(&self, id: NodeId) -> &'a FnDef {
        &self.ws.files[id.0].fns[id.1]
    }

    /// Resolves one call site made from crate `from` to its candidate
    /// workspace definitions, dependency-filtered (see module docs for
    /// the resolution shape).
    pub fn resolve(&self, from: &str, call: &CallSite) -> Vec<NodeId> {
        let name = call.name();
        let candidates: Option<&Vec<NodeId>> = match call.kind {
            CallKind::Macro => None,
            CallKind::Path => {
                let q = call.qualifier().unwrap_or("");
                match self.qualified.get(&(q, name)) {
                    Some(v) => Some(v),
                    // Unknown qualifier: a module path (`rans::encode`)
                    // or a std type. Free functions only.
                    None => self.free_fns.get(name),
                }
            }
            CallKind::Method => self.methods.get(name),
            CallKind::Bare => self.free_fns.get(name),
        };
        let mut out = Vec::new();
        if let Some(candidates) = candidates {
            for &id in candidates {
                if self.ws.can_reach(from, &self.ws.files[id.0].crate_name) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// All nodes of the graph, in deterministic (file, fn) order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ws.files.iter().enumerate().flat_map(|(fi, file)| {
            let external = file.is_external_test;
            file.fns
                .iter()
                .enumerate()
                .filter(move |(_, d)| !external && !d.is_test)
                .map(move |(di, _)| (fi, di))
        })
    }

    /// Call targets of `def` (in crate `from`), dependency-filtered.
    fn targets(&self, from: &str, def: &'a FnDef) -> Vec<NodeId> {
        let mut out = Vec::new();
        for call in &def.calls {
            out.extend(self.resolve(from, call));
        }
        out
    }
}

/// Runs the hot-path audit (check 1) and the assert policy (check 4).
///
/// Roots come from the manifest; a root that resolves to no function is
/// itself a finding, so the manifest cannot rot silently. Functions
/// carrying a `slc-lint: allow(hot-path)` waiver on their `fn` line are
/// exempt entirely (body unaudited, not traversed through).
pub fn check_hot_paths(ws: &Workspace, manifest: &[Root]) -> Vec<Finding> {
    let graph = CallGraph::build(ws);
    let mut findings = Vec::new();
    let mut queue: VecDeque<(NodeId, String)> = VecDeque::new();
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();

    for root in manifest {
        let mut matched = false;
        for (fi, file) in ws.files.iter().enumerate() {
            if file.path != root.file {
                continue;
            }
            for (di, def) in file.fns.iter().enumerate() {
                if def.name == root.func && !def.is_test {
                    matched = true;
                    if seen.insert((fi, di)) {
                        queue.push_back(((fi, di), root.func.clone()));
                    }
                }
            }
        }
        if !matched {
            findings.push(Finding {
                check: HOT_PATH,
                file: root.file.clone(),
                line: 0,
                message: format!(
                    "manifest root `{}::{}` does not resolve to any function — \
                     update tools/lint/hot_paths.txt",
                    root.file, root.func
                ),
            });
        }
    }

    while let Some((id, root)) = queue.pop_front() {
        let file = &ws.files[id.0];
        let def = graph.def(id);
        // Function-level exemption: a hot-path waiver on the fn line.
        if crate::is_waived(file, HOT_PATH, def.line) {
            continue;
        }
        audit_body(ws, id, &root, &mut findings);
        for next in graph.targets(&file.crate_name, def) {
            if seen.insert(next) {
                queue.push_back((next, root.clone()));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Scans one hot function's body for banned constructs.
fn audit_body(ws: &Workspace, id: NodeId, root: &str, findings: &mut Vec<Finding>) {
    let file = &ws.files[id.0];
    let def = &file.fns[id.1];
    let file_waivers = waivers(file);
    let waived = |check: &str, line: u32| {
        file_waivers.iter().any(|w| w.check == check && w.target_line == line)
    };
    let via = if def.name == root {
        String::new()
    } else {
        format!(" (reachable from hot-path root `{root}`)")
    };
    for call in &def.calls {
        let name = call.name();
        let (check, what) = match call.kind {
            CallKind::Macro if PANIC_MACROS.contains(&name) => (HOT_PATH, format!("`{name}!`")),
            CallKind::Macro if ALLOC_MACROS.contains(&name) => (HOT_PATH, format!("`{name}!`")),
            CallKind::Macro if ASSERT_MACROS.contains(&name) => {
                (ASSERT, format!("hard `{name}!` (use `debug_assert` on hot paths)"))
            }
            CallKind::Method if BANNED_METHODS.contains(&name) => {
                (HOT_PATH, format!("`.{name}()`"))
            }
            CallKind::Path
                if call.qualifier().is_some_and(|q| BANNED_PATHS.contains(&(q, name))) =>
            {
                (HOT_PATH, format!("`{}::{}`", call.qualifier().unwrap_or(""), name))
            }
            _ => continue,
        };
        if waived(check, call.line) {
            continue;
        }
        findings.push(Finding {
            check,
            file: file.path.clone(),
            line: call.line,
            message: format!("hot fn `{}`{via} reaches {what}", def.name),
        });
    }
    let _ = ws;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parses_and_skips_comments() {
        let roots = parse_manifest(
            "# decode entry points\ncrates/engine/src/lib.rs::decode_chunk\n\n  \
             crates/compress/src/bdi.rs::encode_into  ",
        );
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[1].func, "encode_into");
    }

    #[test]
    fn transitive_reach_flags_and_waiver_silences() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() { helper(); }\n\
             fn helper() {\n    data.unwrap();\n    \
             ok.unwrap(); // slc-lint: allow(hot-path): reviewed, receiver is infallible\n}\n",
        )]);
        let roots = parse_manifest("crates/a/src/lib.rs::root");
        let f = check_hot_paths(&ws, &roots);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("unwrap"));
        assert!(f[0].message.contains("root `root`"));
    }

    #[test]
    fn unresolved_root_is_a_finding() {
        let ws = Workspace::from_sources(&[("crates/a/src/lib.rs", "a", "fn other() {}")]);
        let f = check_hot_paths(&ws, &parse_manifest("crates/a/src/lib.rs::gone"));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("does not resolve"));
    }

    #[test]
    fn method_calls_fan_out_to_all_impls_but_not_past_dep_graph() {
        let mut ws = Workspace::from_sources(&[
            ("crates/a/src/lib.rs", "a", "fn root(c: &dyn C) { c.decode(); }"),
            ("crates/b/src/lib.rs", "b", "impl C for B { fn decode(&self) { panic!(\"x\"); } }"),
            ("crates/z/src/lib.rs", "z", "impl C for Z { fn decode(&self) { panic!(\"z\"); } }"),
        ]);
        // a depends on b only.
        for (name, deps) in [("a", vec!["b"]), ("b", vec![]), ("z", vec![])] {
            ws.deps.insert(name.into(), deps.into_iter().map(String::from).collect());
        }
        let f = check_hot_paths(&ws, &parse_manifest("crates/a/src/lib.rs::root"));
        assert_eq!(f.len(), 1, "only the dep-reachable impl is audited: {f:?}");
        assert_eq!(f[0].file, "crates/b/src/lib.rs");
    }

    #[test]
    fn qualified_unknown_types_do_not_fan_out() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() { let x = Mutex::new(0); }\n\
             impl Pool { fn new() -> Self { let v = vec![1]; Pool { v } } }",
        )]);
        let f = check_hot_paths(&ws, &parse_manifest("crates/a/src/lib.rs::root"));
        assert!(f.is_empty(), "Mutex::new must not resolve to Pool::new: {f:?}");
    }

    #[test]
    fn banned_paths_and_macros_flag() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() {\n    let v = Vec::new();\n    let b = Box::new(1);\n    \
             let s = format!(\"x\");\n    let w = vec![0u8; 4];\n    panic!(\"no\");\n}\n",
        )]);
        let f = check_hot_paths(&ws, &parse_manifest("crates/a/src/lib.rs::root"));
        assert_eq!(f.len(), 5, "{f:?}");
    }

    #[test]
    fn hard_assert_flags_but_debug_assert_passes() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() {\n    assert!(x > 0);\n    debug_assert!(x > 0);\n    \
             assert_eq!(a, b); // slc-lint: allow(assert): cold validation gate\n}\n",
        )]);
        let f = check_hot_paths(&ws, &parse_manifest("crates/a/src/lib.rs::root"));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].check, ASSERT);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn fn_level_waiver_prunes_traversal() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() { cold(); }\n\
             // slc-lint: allow(hot-path): cold wrapper, allocates the output buffer once\n\
             fn cold() { let v = Vec::new(); deeper(); }\n\
             fn deeper() { panic!(\"never audited via cold\"); }\n",
        )]);
        let f = check_hot_paths(&ws, &parse_manifest("crates/a/src/lib.rs::root"));
        assert!(f.is_empty(), "waived fn is pruned, not traversed: {f:?}");
    }

    #[test]
    fn test_code_is_invisible_to_the_graph() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() { helper(); }\nfn helper() {}\n#[cfg(test)]\nmod tests {\n    \
             fn helper() { panic!(\"test-only twin\"); }\n}\n",
        )]);
        let f = check_hot_paths(&ws, &parse_manifest("crates/a/src/lib.rs::root"));
        assert!(f.is_empty(), "{f:?}");
    }
}

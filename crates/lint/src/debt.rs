//! Waiver-debt lock: pins the count of `slc-lint: allow(...)` /
//! `trusted(...)` waivers per `(file, check)` and diffs a fresh count
//! against `tools/lint/waivers.lock`.
//!
//! Waivers are reviewed exceptions; without a lock they accrete
//! silently — every new one looks local and harmless. With the lock, a
//! *new* waiver fails CI until the author regenerates the file with
//! `--update-waiver-lock`, which makes the added debt an explicit,
//! reviewable line in the diff. Shrinking debt fails the same way (the
//! lock is stale), so paying debt down is also recorded.
//!
//! Lock lines aggregate per `(file, check)` rather than pinning line
//! numbers, so unrelated edits that merely move a waiver around do not
//! churn the lock.

use crate::{waivers, Finding, Workspace, TRUSTED};
use std::collections::BTreeMap;

/// Check name for waiver-debt drift.
pub const WAIVER_DEBT: &str = "waiver-debt";

/// Path of the committed lock, workspace-relative.
pub const LOCK_PATH: &str = "tools/lint/waivers.lock";

/// Counts waivers in the loaded workspace, keyed by
/// `(file, check)` — the `check` is the waived check name for
/// `allow(...)` waivers and [`TRUSTED`] for `trusted(...)` ones.
pub fn snapshot(ws: &Workspace) -> BTreeMap<(String, String), usize> {
    let mut out: BTreeMap<(String, String), usize> = BTreeMap::new();
    for file in &ws.files {
        for w in waivers(file) {
            *out.entry((file.path.clone(), w.check.clone())).or_default() += 1;
        }
    }
    out
}

/// Parses lock-file text: `path kind(check) = count` lines, `#`
/// comments. `kind` is `allow` or `trusted` (display only — the check
/// name alone is the key).
pub fn parse_lock(text: &str) -> BTreeMap<(String, String), usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((lhs, count)) = line.split_once('=') else { continue };
        let Ok(count) = count.trim().parse::<usize>() else { continue };
        let Some((path, kinded)) = lhs.trim().rsplit_once(' ') else { continue };
        let check = kinded
            .strip_suffix(')')
            .and_then(|k| k.split_once('('))
            .map(|(_, check)| check.to_string());
        let Some(check) = check else { continue };
        out.insert((path.trim().to_string(), check), count);
    }
    out
}

/// Renders a snapshot in lock-file form (what `--update-waiver-lock`
/// writes).
pub fn render_lock(snapshot: &BTreeMap<(String, String), usize>) -> String {
    let mut out = String::from(
        "# slc waiver-debt lock. Counts every `slc-lint: allow(...)` and\n\
         # `trusted(...)` waiver per (file, check). CI fails when the fresh\n\
         # count differs — new waivers are reviewable debt. Regenerate with\n\
         #   cargo run --release -p slc-lint -- --update-waiver-lock\n",
    );
    for ((path, check), count) in snapshot {
        let kind = if check == TRUSTED { "trusted" } else { "allow" };
        out.push_str(&format!("{path} {kind}({check}) = {count}\n"));
    }
    out
}

/// Diffs the fresh waiver count against the committed lock.
pub fn check_lock(
    snapshot: &BTreeMap<(String, String), usize>,
    lock: &BTreeMap<(String, String), usize>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let keys: std::collections::BTreeSet<_> = snapshot.keys().chain(lock.keys()).collect();
    for key in keys {
        let (path, check) = key;
        let have = snapshot.get(key).copied().unwrap_or(0);
        let locked = lock.get(key).copied().unwrap_or(0);
        if have == locked {
            continue;
        }
        let message = if have > locked {
            format!(
                "waiver debt grew: {have} `{check}` waiver(s) in {path} but {LOCK_PATH} \
                 records {locked} — new waivers need review; regenerate the lock \
                 with --update-waiver-lock in the change that adds them"
            )
        } else {
            format!(
                "stale waiver lock: {have} `{check}` waiver(s) in {path} but {LOCK_PATH} \
                 records {locked} — debt was paid down; regenerate the lock"
            )
        };
        findings.push(Finding { check: WAIVER_DEBT, file: path.clone(), line: 0, message });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(&[("crates/a/src/lib.rs", "a", src)])
    }

    const SRC: &str = "fn f() {\n    \
        x.unwrap(); // slc-lint: allow(hot-path): reviewed, infallible\n    \
        y.unwrap(); // slc-lint: allow(hot-path): reviewed, also infallible\n    \
        n + 1; // slc-lint: trusted(n is a u8 read)\n}\n";

    #[test]
    fn snapshot_counts_per_file_and_check() {
        let snap = snapshot(&ws(SRC));
        assert_eq!(snap[&("crates/a/src/lib.rs".to_string(), "hot-path".to_string())], 2);
        assert_eq!(snap[&("crates/a/src/lib.rs".to_string(), TRUSTED.to_string())], 1);
    }

    #[test]
    fn lock_roundtrip_is_clean() {
        let snap = snapshot(&ws(SRC));
        let lock = parse_lock(&render_lock(&snap));
        assert_eq!(snap, lock);
        assert!(check_lock(&snap, &lock).is_empty());
    }

    #[test]
    fn grown_debt_flags() {
        let lock = parse_lock(&render_lock(&snapshot(&ws(SRC))));
        let grown =
            SRC.replace("}\n", "    z.unwrap(); // slc-lint: allow(hot-path): one more\n}\n");
        let f = check_lock(&snapshot(&ws(&grown)), &lock);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].check, WAIVER_DEBT);
        assert!(f[0].message.contains("waiver debt grew"), "{f:?}");
        assert!(f[0].message.contains("3") && f[0].message.contains("2"), "{f:?}");
    }

    #[test]
    fn paid_down_debt_flags_as_stale() {
        let lock = parse_lock(&render_lock(&snapshot(&ws(SRC))));
        let paid = SRC.replace("    n + 1; // slc-lint: trusted(n is a u8 read)\n", "");
        let f = check_lock(&snapshot(&ws(&paid)), &lock);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("stale waiver lock"), "{f:?}");
    }

    #[test]
    fn lock_lines_parse_kinds() {
        let lock = parse_lock(
            "# header\ncrates/a/src/lib.rs allow(hot-path) = 2\n\
             crates/a/src/lib.rs trusted(trusted) = 1\n",
        );
        assert_eq!(lock.len(), 2);
        assert_eq!(lock[&("crates/a/src/lib.rs".to_string(), "hot-path".to_string())], 2);
        assert_eq!(lock[&("crates/a/src/lib.rs".to_string(), "trusted".to_string())], 1);
    }
}

//! Shallow item and call-site scanner over the token stream.
//!
//! This is deliberately *not* a parser: it walks the [`lexer`] token
//! stream once, tracking brace depth and an `impl`/`trait`/`mod` context
//! stack, and extracts exactly what the checks need — function
//! definitions with body spans and per-body call sites, `unsafe`
//! occurrences, enums with discriminants, struct fields, and consts.
//! Anything it does not understand it skips, so macro-heavy or exotic
//! code degrades to "fewer facts", never to a crash.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// Where a call site points, syntactically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name!(…)` — macro invocation.
    Macro,
    /// `recv.name(…)` — method call (receiver type unknown).
    Method,
    /// `Seg::…::name(…)` — qualified path call.
    Path,
    /// `name(…)` — bare call (free function or tuple constructor).
    Bare,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments; the called name is the last segment. For `Macro`,
    /// `Method` and `Bare` this has exactly one segment.
    pub path: Vec<String>,
    pub line: u32,
    pub kind: CallKind,
}

impl CallSite {
    /// The called name (last path segment).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }

    /// The qualifying segment before the name, if any (`Vec` in
    /// `Vec::new`).
    pub fn qualifier(&self) -> Option<&str> {
        if self.path.len() >= 2 {
            Some(&self.path[self.path.len() - 2])
        } else {
            None
        }
    }
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`Bdi` for methods in
    /// `impl BlockCompressor for Bdi`).
    pub owner: Option<String>,
    pub line: u32,
    /// True for functions in `#[cfg(test)]` modules or `#[test]` fns.
    pub is_test: bool,
    pub is_unsafe: bool,
    /// Call sites found in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Token index range of the body (within [`FileIndex::lexed`]),
    /// empty for bodyless trait declarations.
    pub body: std::ops::Range<usize>,
    /// Parameter binding names, in declaration order (`self` and
    /// destructured patterns are skipped — the taint pass only needs
    /// plain `name: Type` bindings).
    pub params: Vec<String>,
}

/// What kind of `unsafe` occurrence a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
}

/// One `unsafe` occurrence.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub kind: UnsafeKind,
    pub line: u32,
    /// Name of the enclosing function, when inside one.
    pub in_fn: Option<String>,
    /// True when the site lives in test code.
    pub is_test: bool,
}

/// An enum definition with its variants and literal discriminants.
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub line: u32,
    /// `(variant, discriminant)`; the discriminant is the normalized
    /// token text of the `= …` expression when present, else the
    /// auto-assigned value (previous + 1, starting from 0) rendered as
    /// decimal — i.e. always the effective wire value for fieldless
    /// enums.
    pub variants: Vec<(String, String)>,
}

/// A struct definition with named fields and their type text.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    /// `(field, normalized type text)`, public and private alike.
    pub fields: Vec<(String, String)>,
}

/// A `const NAME: TYPE = expr;` item.
#[derive(Debug, Clone)]
pub struct ConstDef {
    pub name: String,
    pub line: u32,
    /// Normalized token text of the initialiser expression.
    pub expr: String,
}

/// Everything the checks need to know about one source file.
#[derive(Debug)]
pub struct FileIndex {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Owning crate (directory name under `crates/`, or the package name
    /// for the root crate).
    pub crate_name: String,
    pub lexed: Lexed,
    pub fns: Vec<FnDef>,
    pub unsafes: Vec<UnsafeSite>,
    pub enums: Vec<EnumDef>,
    pub structs: Vec<StructDef>,
    pub consts: Vec<ConstDef>,
    /// True for integration tests / benches / examples — code that never
    /// ships in the library, excluded from the hot-path call graph.
    pub is_external_test: bool,
}

impl FileIndex {
    /// Lexes and scans `src` as the file at `path` in `crate_name`.
    pub fn build(path: &str, crate_name: &str, src: &str) -> Self {
        let lexed = lex(src);
        let is_external_test = path.contains("/tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
            || path.starts_with("tests/")
            || path.starts_with("examples/");
        let mut idx = FileIndex {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            lexed,
            fns: Vec::new(),
            unsafes: Vec::new(),
            enums: Vec::new(),
            structs: Vec::new(),
            consts: Vec::new(),
            is_external_test,
        };
        idx.scan();
        idx
    }

    /// Comments overlapping 1-based source line `line`.
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.lexed.comments.iter().filter(move |c| c.line <= line && line <= c.end_line)
    }

    fn scan(&mut self) {
        let toks: Vec<Token> = self.lexed.tokens.clone();
        let mut ctx = ScanCtx::default();
        let mut i = 0usize;
        while i < toks.len() {
            i = self.scan_token(&toks, i, &mut ctx);
        }
    }

    /// Processes the token at `i`, returning the next index.
    fn scan_token(&mut self, toks: &[Token], i: usize, ctx: &mut ScanCtx) -> usize {
        let t = &toks[i];
        match &t.kind {
            TokenKind::Punct('{') => {
                ctx.depth += 1;
                i + 1
            }
            TokenKind::Punct('}') => {
                ctx.depth = ctx.depth.saturating_sub(1);
                while let Some(top) = ctx.stack.last() {
                    if top.close_depth == ctx.depth {
                        ctx.stack.pop();
                    } else {
                        break;
                    }
                }
                i + 1
            }
            TokenKind::Punct('#') => {
                // Attribute: `#[…]` or `#![…]`; capture its ident soup.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                    let (text, end) = bracket_text(toks, j);
                    ctx.pending_attrs.push(text);
                    return end;
                }
                i + 1
            }
            TokenKind::Ident(word) => match word.as_str() {
                "mod" => {
                    if let (Some(name), Some(open)) =
                        (toks.get(i + 1).and_then(Token::ident), toks.get(i + 2))
                    {
                        if open.is_punct('{') {
                            let attrs = std::mem::take(&mut ctx.pending_attrs);
                            let is_test = ctx.in_test()
                                || attrs.iter().any(|a| a.contains("cfg") && a.contains("test"));
                            ctx.stack.push(Scope { close_depth: ctx.depth, owner: None, is_test });
                            ctx.depth += 1;
                            let _ = name;
                            return i + 3;
                        }
                    }
                    ctx.pending_attrs.clear();
                    i + 1
                }
                "impl" | "trait" => {
                    ctx.pending_attrs.clear();
                    let (owner, open) = impl_self_type(toks, i + 1, word == "trait");
                    match open {
                        Some(open) => {
                            ctx.stack.push(Scope {
                                close_depth: ctx.depth,
                                owner,
                                is_test: ctx.in_test(),
                            });
                            ctx.depth += 1;
                            open + 1
                        }
                        None => i + 1,
                    }
                }
                "enum" => {
                    let attrs = std::mem::take(&mut ctx.pending_attrs);
                    let _ = attrs;
                    self.scan_enum(toks, i)
                }
                "struct" => {
                    ctx.pending_attrs.clear();
                    self.scan_struct(toks, i)
                }
                "const" => {
                    ctx.pending_attrs.clear();
                    self.scan_const(toks, i)
                }
                "unsafe" => {
                    let next = toks.get(i + 1);
                    let kind = match next.map(|t| &t.kind) {
                        Some(TokenKind::Punct('{')) => Some(UnsafeKind::Block),
                        Some(TokenKind::Ident(w)) => match w.as_str() {
                            "fn" => Some(UnsafeKind::Fn),
                            "impl" => Some(UnsafeKind::Impl),
                            "trait" => Some(UnsafeKind::Trait),
                            _ => None,
                        },
                        _ => None,
                    };
                    if let Some(kind) = kind {
                        // `unsafe fn` sites are recorded by scan_fn (it
                        // knows the fn name); blocks/impls/traits here.
                        if kind != UnsafeKind::Fn {
                            self.unsafes.push(UnsafeSite {
                                kind,
                                line: t.line,
                                in_fn: ctx.current_fn.clone(),
                                is_test: ctx.in_test(),
                            });
                        }
                    }
                    i + 1
                }
                "fn" => self.scan_fn(toks, i, ctx),
                _ => {
                    // Any other identifier at item position clears stale
                    // attrs only at item starters; leave them for `fn`.
                    i + 1
                }
            },
            _ => i + 1,
        }
    }

    fn scan_fn(&mut self, toks: &[Token], i: usize, ctx: &mut ScanCtx) -> usize {
        // `fn` in a function-pointer type (`fn(u32) -> u32`) has no name.
        let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
            return i + 1;
        };
        let attrs = std::mem::take(&mut ctx.pending_attrs);
        let is_unsafe = i > 0 && toks[i - 1].ident() == Some("unsafe");
        let is_test = ctx.in_test()
            || attrs.iter().any(|a| {
                a.split_whitespace().next() == Some("test")
                    || (a.contains("cfg") && a.contains("test"))
            });
        if is_unsafe {
            self.unsafes.push(UnsafeSite {
                kind: UnsafeKind::Fn,
                line: toks[i].line,
                in_fn: Some(name.to_string()),
                is_test,
            });
        }
        // Find the body `{` (or `;` for a bodyless declaration), skipping
        // balanced parens/brackets in the signature.
        let mut j = i + 2;
        let mut paren = 0i32;
        let body_open = loop {
            match toks.get(j).map(|t| &t.kind) {
                None => break None,
                Some(TokenKind::Punct('(')) | Some(TokenKind::Punct('[')) => paren += 1,
                Some(TokenKind::Punct(')')) | Some(TokenKind::Punct(']')) => paren -= 1,
                Some(TokenKind::Punct('{')) if paren == 0 => break Some(j),
                Some(TokenKind::Punct(';')) if paren == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let owner = ctx.stack.iter().rev().find_map(|s| s.owner.clone());
        let (body, end) = match body_open {
            Some(open) => {
                let close = matching_brace(toks, open);
                (open + 1..close, close + 1)
            }
            None => (0..0, j + 1),
        };
        let calls = collect_calls(toks, body.clone(), owner.as_deref());
        let params = collect_params(toks, i + 2, body_open.unwrap_or(j));
        // Nested fns inside this body are still scanned by the outer
        // loop; `current_fn` attribution for unsafe blocks uses the
        // innermost fn whose body covers them. A simple assignment is
        // enough: bodies are scanned strictly after their `fn` token.
        ctx.current_fn = Some(name.to_string());
        self.fns.push(FnDef {
            name: name.to_string(),
            owner,
            line: toks[i].line,
            is_test,
            is_unsafe,
            calls,
            body: body.clone(),
            params,
        });
        // Continue scanning *inside* the body (for nested items and
        // unsafe blocks) rather than skipping it.
        let _ = end;
        i + 2
    }

    fn scan_enum(&mut self, toks: &[Token], i: usize) -> usize {
        let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
            return i + 1;
        };
        // Find `{` (skip generics), bail on `;` (unit struct-like).
        let mut j = i + 2;
        let open = loop {
            match toks.get(j).map(|t| &t.kind) {
                None | Some(TokenKind::Punct(';')) => return i + 1,
                Some(TokenKind::Punct('{')) => break j,
                _ => j += 1,
            }
        };
        let close = matching_brace(toks, open);
        let mut variants = Vec::new();
        let mut k = open + 1;
        let mut next_auto: i64 = 0;
        while k < close {
            // Skip attributes and doc comments are not tokens; attributes
            // on variants: `#[…]`.
            if toks[k].is_punct('#') {
                if toks.get(k + 1).is_some_and(|t| t.is_punct('[')) {
                    let (_, end) = bracket_text(toks, k + 1);
                    k = end;
                    continue;
                }
                k += 1;
                continue;
            }
            let Some(vname) = toks[k].ident() else {
                k += 1;
                continue;
            };
            let vname = vname.to_string();
            k += 1;
            // Skip payloads: `(…)` or `{…}`.
            if k < close && toks[k].is_punct('(') {
                k = matching_delim(toks, k, '(', ')') + 1;
            } else if k < close && toks[k].is_punct('{') {
                k = matching_brace(toks, k) + 1;
            }
            let disc = if k < close && toks[k].is_punct('=') {
                let start = k + 1;
                while k < close && !toks[k].is_punct(',') {
                    k += 1;
                }
                let text = normalize(&toks[start..k]);
                if let Some(v) = parse_int(&text) {
                    next_auto = v + 1;
                }
                text
            } else {
                let v = next_auto;
                next_auto += 1;
                v.to_string()
            };
            variants.push((vname, disc));
            if k < close && toks[k].is_punct(',') {
                k += 1;
            }
        }
        self.enums.push(EnumDef { name: name.to_string(), line: toks[i].line, variants });
        close + 1
    }

    fn scan_struct(&mut self, toks: &[Token], i: usize) -> usize {
        let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
            return i + 1;
        };
        let mut j = i + 2;
        let open = loop {
            match toks.get(j).map(|t| &t.kind) {
                // Unit / tuple struct: no named fields to record.
                None | Some(TokenKind::Punct(';')) | Some(TokenKind::Punct('(')) => return i + 1,
                Some(TokenKind::Punct('{')) => break j,
                _ => j += 1,
            }
        };
        let close = matching_brace(toks, open);
        let mut fields = Vec::new();
        let mut k = open + 1;
        while k < close {
            if toks[k].is_punct('#') && toks.get(k + 1).is_some_and(|t| t.is_punct('[')) {
                let (_, end) = bracket_text(toks, k + 1);
                k = end;
                continue;
            }
            if toks[k].ident() == Some("pub") {
                k += 1;
                // `pub(crate)` etc.
                if k < close && toks[k].is_punct('(') {
                    k = matching_delim(toks, k, '(', ')') + 1;
                }
                continue;
            }
            let Some(fname) = toks[k].ident() else {
                k += 1;
                continue;
            };
            if k + 1 < close && toks[k + 1].is_punct(':') {
                let fname = fname.to_string();
                let start = k + 2;
                let mut depth = 0i32;
                k = start;
                while k < close {
                    match &toks[k].kind {
                        TokenKind::Punct('<') | TokenKind::Punct('(') | TokenKind::Punct('[') => {
                            depth += 1
                        }
                        TokenKind::Punct('>') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                            depth -= 1
                        }
                        TokenKind::Punct(',') if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                fields.push((fname, normalize(&toks[start..k])));
                if k < close && toks[k].is_punct(',') {
                    k += 1;
                }
            } else {
                k += 1;
            }
        }
        self.structs.push(StructDef { name: name.to_string(), line: toks[i].line, fields });
        close + 1
    }

    fn scan_const(&mut self, toks: &[Token], i: usize) -> usize {
        // `const NAME : TYPE = expr ;` — also matches associated consts.
        // `const fn` is a function, not a const item.
        let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
            return i + 1;
        };
        if name == "fn" || !toks.get(i + 2).is_some_and(|t| t.is_punct(':')) {
            return i + 1;
        }
        let mut j = i + 3;
        let mut depth = 0i32;
        // Skip the type, then `=`.
        while j < toks.len() {
            match &toks[j].kind {
                TokenKind::Punct('<') | TokenKind::Punct('[') | TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct('>') | TokenKind::Punct(']') | TokenKind::Punct(')') => depth -= 1,
                TokenKind::Punct('=') if depth == 0 => break,
                TokenKind::Punct(';') if depth == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            // `const N: usize` as a generic parameter — no initialiser.
            return i + 1;
        }
        let start = j + 1;
        j = start;
        let mut depth = 0i32;
        while j < toks.len() {
            match &toks[j].kind {
                TokenKind::Punct('[') | TokenKind::Punct('(') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(']') | TokenKind::Punct(')') | TokenKind::Punct('}') => depth -= 1,
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        self.consts.push(ConstDef {
            name: name.to_string(),
            line: toks[i].line,
            expr: normalize(&toks[start..j.min(toks.len())]),
        });
        j + 1
    }
}

#[derive(Debug, Default)]
struct ScanCtx {
    depth: u32,
    stack: Vec<Scope>,
    pending_attrs: Vec<String>,
    current_fn: Option<String>,
}

impl ScanCtx {
    fn in_test(&self) -> bool {
        self.stack.iter().any(|s| s.is_test)
    }
}

#[derive(Debug)]
struct Scope {
    /// Brace depth at which this scope's `}` closes.
    close_depth: u32,
    /// `impl`/`trait` self-type name, when this scope is one.
    owner: Option<String>,
    is_test: bool,
}

/// Extracts the self-type name of an `impl`/`trait` header starting at
/// `i` (just past the keyword) and the index of its opening `{`.
fn impl_self_type(toks: &[Token], i: usize, is_trait: bool) -> (Option<String>, Option<usize>) {
    let mut j = i;
    let mut angle = 0i32;
    let mut after_for: Option<String> = None;
    let mut first_type: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('{') if angle <= 0 => {
                let owner = if saw_for { after_for } else { first_type };
                return (owner, Some(j));
            }
            TokenKind::Punct(';') if angle <= 0 => return (None, None),
            TokenKind::Ident(w) if angle == 0 => {
                if w == "for" && !is_trait {
                    saw_for = true;
                } else if w != "where" && w != "dyn" && w != "const" && w != "mut" {
                    // Track the last *path* segment seen (`a::b::Type`
                    // updates through `::`), but never cross a single
                    // `:` — that is a trait's supertrait list.
                    let follows_path_sep =
                        j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':');
                    let name = Some(w.clone());
                    if saw_for {
                        if after_for.is_none() || follows_path_sep {
                            after_for = name;
                        }
                    } else if first_type.is_none() || follows_path_sep {
                        first_type = name;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    (None, None)
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> usize {
    matching_delim(toks, open, '{', '}')
}

fn matching_delim(toks: &[Token], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// Captures the ident soup of a `[…]` group starting at `open`,
/// returning `(text, index past the closing bracket)`.
fn bracket_text(toks: &[Token], open: usize) -> (String, usize) {
    let close = matching_delim(toks, open, '[', ']');
    (normalize(&toks[open + 1..close.min(toks.len())]), close + 1)
}

/// Renders tokens as canonical, whitespace-normalized text — the stable
/// form the wire-format lock stores.
pub fn normalize(toks: &[Token]) -> String {
    // Punct pairs rendered without an intervening space so multi-char
    // operators survive normalization (`1 << 15`, `a::b`, `0..=n`).
    const GLUED: &[(char, char)] = &[
        ('<', '<'),
        ('>', '>'),
        ('=', '='),
        ('!', '='),
        ('<', '='),
        ('>', '='),
        ('&', '&'),
        ('|', '|'),
        (':', ':'),
        ('-', '>'),
        ('=', '>'),
        ('.', '.'),
        ('.', '='),
        ('+', '='),
        ('-', '='),
        ('*', '='),
        ('/', '='),
        ('|', '='),
        ('&', '='),
        ('^', '='),
    ];
    let mut out = String::new();
    let mut prev_punct: Option<char> = None;
    for t in toks {
        let glue = matches!(
            (&t.kind, prev_punct),
            (TokenKind::Punct(c), Some(p)) if GLUED.contains(&(p, *c))
        );
        if !out.is_empty() && !glue {
            out.push(' ');
        }
        prev_punct = match &t.kind {
            TokenKind::Punct(c) => Some(*c),
            _ => None,
        };
        match &t.kind {
            TokenKind::Ident(s) => out.push_str(s),
            TokenKind::Lifetime(s) => {
                out.push('\'');
                out.push_str(s);
            }
            TokenKind::CharLit => out.push_str("'…'"),
            TokenKind::StrLit(s) => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
            TokenKind::Num(s) => out.push_str(s),
            TokenKind::Punct(c) => out.push(*c),
        }
    }
    out
}

/// Parses a decimal or hex integer literal (with `_` separators and an
/// optional type suffix).
pub fn parse_int(text: &str) -> Option<i64> {
    let t = text.trim().replace('_', "");
    if let Some(hex) = t.strip_prefix("0x") {
        let hex: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        return i64::from_str_radix(&hex, 16).ok();
    }
    // Leading digits only, so type suffixes (`7u8`) parse too; anything
    // non-literal (`1 << 15`) is None and the caller keeps its counter.
    let (sign, t) = match t.strip_prefix('-') {
        Some(rest) => (-1, rest.to_string()),
        None => (1, t),
    };
    let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
    let rest = &t[digits.len()..];
    // Only a bare literal (plus an optional type suffix) parses; an
    // expression like `1 << 15` is None and the caller keeps counting.
    if digits.is_empty() || !rest.chars().all(|c| c.is_ascii_alphanumeric()) {
        return None;
    }
    digits.parse::<i64>().ok().map(|v| sign * v)
}

/// Keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "fn", "let", "else", "move",
    "unsafe", "ref", "mut", "break", "continue", "where", "impl", "dyn", "pub", "use", "mod",
];

/// Extracts call sites from a body token range. `owner` substitutes for
/// `Self::` path heads so associated calls resolve to the impl type.
fn collect_calls(
    toks: &[Token],
    body: std::ops::Range<usize>,
    owner: Option<&str>,
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        let TokenKind::Ident(word) = &t.kind else {
            i += 1;
            continue;
        };
        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
        {
            out.push(CallSite { path: vec![word.clone()], line: t.line, kind: CallKind::Macro });
            i += 2;
            continue;
        }
        // Path call: gather `a::b::name` then require `(` (with optional
        // turbofish before it).
        let is_path_start = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !(i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':'));
        if is_path_start {
            let mut path = vec![word.clone()];
            let mut j = i + 1;
            while toks.get(j).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            {
                match toks.get(j + 2).map(|t| &t.kind) {
                    Some(TokenKind::Ident(seg)) => {
                        path.push(seg.clone());
                        j += 3;
                    }
                    // Turbofish in the middle of a path: `::<…>` — skip.
                    Some(TokenKind::Punct('<')) => {
                        let end = skip_angles(toks, j + 2);
                        j = end;
                    }
                    _ => break,
                }
            }
            if toks.get(j).is_some_and(|n| n.is_punct('(')) {
                if path.len() >= 2 {
                    if path[0] == "Self" {
                        if let Some(owner) = owner {
                            path[0] = owner.to_string();
                        }
                    }
                    out.push(CallSite { path, line: t.line, kind: CallKind::Path });
                } else if i > body.start && toks[i - 1].is_punct('.') {
                    // `.collect::<Vec<_>>()` — a turbofish method call
                    // looks like a one-segment path; it is a method.
                    out.push(CallSite { path, line: t.line, kind: CallKind::Method });
                }
            }
            i = j.max(i + 1);
            continue;
        }
        // Method call: `.name(…)` with optional turbofish.
        let is_method = i > body.start && toks[i - 1].is_punct('.');
        if is_method {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 2).is_some_and(|n| n.is_punct('<'))
            {
                j = skip_angles(toks, j + 2);
            }
            if toks.get(j).is_some_and(|n| n.is_punct('(')) {
                out.push(CallSite {
                    path: vec![word.clone()],
                    line: t.line,
                    kind: CallKind::Method,
                });
            }
            i += 1;
            continue;
        }
        // Bare call: `name(…)`, not a keyword, not preceded by `fn`.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !CALLISH_KEYWORDS.contains(&word.as_str())
            && !(i > 0 && toks[i - 1].ident() == Some("fn"))
        {
            out.push(CallSite { path: vec![word.clone()], line: t.line, kind: CallKind::Bare });
        }
        i += 1;
    }
    out
}

/// Extracts parameter binding names from a `fn` signature: the idents
/// immediately followed by `:` at paren depth 1 of the first `(…)`
/// group between `sig_start` (just past the fn name) and `sig_end` (the
/// body `{` / terminating `;`). `self` receivers and destructured
/// patterns contribute nothing — the taint pass only tracks plain
/// named bindings.
fn collect_params(toks: &[Token], sig_start: usize, sig_end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = sig_start;
    // Skip a generics group between the name and the parameter list
    // (`fn f<T: AsRef<[u8]>>(x: T)`).
    while j < sig_end {
        match &toks[j].kind {
            TokenKind::Punct('<') => j = skip_angles(toks, j),
            TokenKind::Punct('(') => break,
            _ => j += 1,
        }
    }
    if j >= sig_end {
        return out;
    }
    let mut depth = 0i32;
    while j < sig_end {
        match &toks[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Ident(w)
                if depth == 1
                    && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
                    && w != "self" =>
            {
                out.push(w.clone());
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Skips a balanced `<…>` group starting at the `<` at `i`, returning
/// the index just past the matching `>`.
fn skip_angles(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            TokenKind::Punct(';') | TokenKind::Punct('{') => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(src: &str) -> FileIndex {
        FileIndex::build("crates/x/src/lib.rs", "x", src)
    }

    #[test]
    fn fn_defs_with_impl_owner() {
        let idx = index(
            "impl BlockCompressor for Bdi {\n fn compress(&self) {}\n}\n\
             impl Engine { fn run(&self) {} }\n\
             trait Coder { fn code(&self) {} }\n\
             fn free() {}",
        );
        let owners: Vec<_> =
            idx.fns.iter().map(|f| (f.name.as_str(), f.owner.as_deref())).collect();
        assert_eq!(
            owners,
            [
                ("compress", Some("Bdi")),
                ("run", Some("Engine")),
                ("code", Some("Coder")),
                ("free", None)
            ]
        );
    }

    #[test]
    fn params_are_captured_by_name() {
        let idx = index(
            "fn f(a: u32, mut b: &[u8], c: std::ops::Range<usize>) {}\n\
             impl E { fn m<T: AsRef<[u8]>>(&mut self, src: T, at: usize) -> u8 { 0 } }\n\
             fn g() {}\n\
             trait T { fn decl(&self, n: usize); }",
        );
        let params: Vec<_> = idx.fns.iter().map(|f| (f.name.as_str(), f.params.clone())).collect();
        assert_eq!(
            params,
            [
                ("f", vec!["a".to_string(), "b".to_string(), "c".to_string()]),
                ("m", vec!["src".to_string(), "at".to_string()]),
                ("g", vec![]),
                ("decl", vec!["n".to_string()]),
            ]
        );
    }

    #[test]
    fn test_mod_fns_are_marked() {
        let idx = index(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn t() {}\n}",
        );
        let tests: Vec<_> = idx.fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(tests, [("prod", false), ("helper", true), ("t", true)]);
    }

    #[test]
    fn call_sites_by_kind() {
        let idx = index(
            "fn f(v: Vec<u8>) { panic!(\"x\"); v.to_vec(); Vec::new(); helper(); \
             it.collect::<Vec<_>>(); Self::assoc(); a != b; }",
        );
        let f = &idx.fns[0];
        let calls: Vec<_> = f.calls.iter().map(|c| (c.name().to_string(), c.kind)).collect();
        assert_eq!(
            calls,
            [
                ("panic".into(), CallKind::Macro),
                ("to_vec".into(), CallKind::Method),
                ("new".into(), CallKind::Path),
                ("helper".into(), CallKind::Bare),
                ("collect".into(), CallKind::Method),
                ("assoc".into(), CallKind::Path),
            ]
        );
        assert_eq!(f.calls[2].qualifier(), Some("Vec"));
    }

    #[test]
    fn self_paths_resolve_to_owner() {
        let idx = index("impl Frame { fn go() { Self::parse(); } }");
        assert_eq!(idx.fns[0].calls[0].path, ["Frame", "parse"]);
    }

    #[test]
    fn enum_discriminants_explicit_and_auto() {
        let idx = index("pub enum CodecId { Bdi = 0, Fpc = 1, Rans = 7, Next }");
        assert_eq!(
            idx.enums[0].variants,
            [
                ("Bdi".to_string(), "0".to_string()),
                ("Fpc".to_string(), "1".to_string()),
                ("Rans".to_string(), "7".to_string()),
                ("Next".to_string(), "8".to_string()),
            ]
        );
    }

    #[test]
    fn struct_fields_with_types() {
        let idx =
            index("pub struct Header { pub codec: CodecId, pub chunk_bytes: u32, total_len: u64 }");
        assert_eq!(
            idx.structs[0].fields,
            [
                ("codec".to_string(), "CodecId".to_string()),
                ("chunk_bytes".to_string(), "u32".to_string()),
                ("total_len".to_string(), "u64".to_string()),
            ]
        );
    }

    #[test]
    fn consts_capture_normalized_exprs() {
        let idx = index(
            "pub const MAGIC: [u8; 4] = *b\"SLC1\";\nconst TAG: u16 = 1 << 15;\n\
             pub const N: usize = (BLOCK_BYTES as u32) * 8;",
        );
        let m: Vec<_> = idx.consts.iter().map(|c| (c.name.as_str(), c.expr.as_str())).collect();
        assert_eq!(
            m,
            [("MAGIC", "* \"SLC1\""), ("TAG", "1 << 15"), ("N", "( BLOCK_BYTES as u32 ) * 8"),]
        );
    }

    #[test]
    fn unsafe_sites_are_recorded() {
        let idx =
            index("fn f() { unsafe { work(); } }\nunsafe fn g() {}\nunsafe impl Send for X {}");
        let kinds: Vec<_> = idx.unsafes.iter().map(|u| u.kind).collect();
        assert_eq!(kinds, [UnsafeKind::Block, UnsafeKind::Fn, UnsafeKind::Impl]);
        assert_eq!(idx.unsafes[0].in_fn.as_deref(), Some("f"));
    }

    #[test]
    fn bodyless_trait_fns() {
        let idx = index("trait T { fn decl(&self); fn with_default(&self) { decl(); } }");
        assert_eq!(idx.fns[0].body, 0..0);
        assert!(!idx.fns[1].body.is_empty());
    }
}

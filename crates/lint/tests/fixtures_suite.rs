//! End-to-end fixture suite: each check gets a true-positive fixture
//! (seeded violations must all be found, at the right lines) and a
//! true-negative twin (clean or waived code must stay silent).
//!
//! The fixture sources live under `tests/fixtures/` — `Workspace::load`
//! deliberately skips that directory, so the seeded violations never
//! leak into a real lint run. Here they are embedded with `include_str!`
//! and mounted at synthetic workspace paths via
//! `Workspace::from_sources`.

use slc_lint::debt;
use slc_lint::graph::{check_hot_paths, parse_manifest, ASSERT, HOT_PATH};
use slc_lint::hygiene::{check_unsafe, inventory};
use slc_lint::taint::{
    check_taint, parse_manifest as parse_taint_manifest, TAINT_ARITH, WIRE_TAINT,
};
use slc_lint::wire::{check_lock, parse_lock, render_lock, snapshot};
use slc_lint::{Finding, Workspace};
use std::path::{Path, PathBuf};

const HOT_VIOLATING: &str = include_str!("fixtures/hot_transitive_violating.rs");
const HOT_CLEAN: &str = include_str!("fixtures/hot_transitive_clean.rs");
const RAW_VIOLATING: &str = include_str!("fixtures/raw_strings_violating.rs");
const RAW_CLEAN: &str = include_str!("fixtures/raw_strings_clean.rs");
const NESTED_VIOLATING: &str = include_str!("fixtures/nested_comments_violating.rs");
const NESTED_CLEAN: &str = include_str!("fixtures/nested_comments_clean.rs");
const WAIVER_MALFORMED: &str = include_str!("fixtures/waiver_malformed_violating.rs");
const WAIVER_FN_LEVEL: &str = include_str!("fixtures/waiver_fn_level_clean.rs");
const UNSAFE_VIOLATING: &str = include_str!("fixtures/unsafe_violating.rs");
const UNSAFE_CLEAN: &str = include_str!("fixtures/unsafe_clean.rs");
const WIRE_CODEC_V1: &str = include_str!("fixtures/wire_codec_v1.rs");
const WIRE_CODEC_MUTATED: &str = include_str!("fixtures/wire_codec_mutated.rs");
const WIRE_CONTAINER_V1: &str = include_str!("fixtures/wire_container_v1.rs");
const TAINT_FLOW_VIOLATING: &str = include_str!("fixtures/taint_flow_violating.rs");
const TAINT_FLOW_CLEAN: &str = include_str!("fixtures/taint_flow_clean.rs");
const TAINT_INTERPROC_VIOLATING: &str = include_str!("fixtures/taint_interproc_violating.rs");
const TAINT_INTERPROC_CLEAN: &str = include_str!("fixtures/taint_interproc_clean.rs");
const TAINT_ARITH_VIOLATING: &str = include_str!("fixtures/taint_arith_violating.rs");
const TAINT_ARITH_CLEAN: &str = include_str!("fixtures/taint_arith_clean.rs");
const TAINT_WAIVED_CLEAN: &str = include_str!("fixtures/taint_waived_clean.rs");

/// Mounts one fixture at a synthetic path and runs the hot-path audit
/// with `root_fn` as the only manifest root.
fn audit(src: &str, root_fn: &str) -> Vec<Finding> {
    let ws = Workspace::from_sources(&[("crates/fix/src/hot.rs", "fix", src)]);
    check_hot_paths(&ws, &parse_manifest(&format!("crates/fix/src/hot.rs::{root_fn}")))
}

#[test]
fn hot_transitive_violating_finds_every_seeded_site() {
    let f = audit(HOT_VIOLATING, "encode");
    let lines: Vec<(u32, &str)> = f.iter().map(|x| (x.line, x.check)).collect();
    assert_eq!(lines, vec![(17, HOT_PATH), (18, HOT_PATH), (19, HOT_PATH), (20, ASSERT)], "{f:?}");
    // All four sit two call-graph hops from the root, and say so.
    for x in &f {
        assert!(x.message.contains("reachable from hot-path root `encode`"), "{x}");
    }
    // The panic! in the #[cfg(test)] module is invisible.
    assert!(!f.iter().any(|x| x.message.contains("panic")), "{f:?}");
}

#[test]
fn hot_transitive_clean_twin_is_silent() {
    let f = audit(HOT_CLEAN, "encode");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn raw_strings_do_not_mask_or_fake_findings() {
    let f = audit(RAW_VIOLATING, "hot");
    assert_eq!(f.len(), 1, "only the real unwrap flags: {f:?}");
    assert_eq!((f[0].line, f[0].check), (8, HOT_PATH));
    assert!(f[0].message.contains("unwrap"));

    let f = audit(RAW_CLEAN, "hot");
    assert!(f.is_empty(), "quoted banned text is not a finding: {f:?}");
}

#[test]
fn nested_comments_hide_banned_text_but_not_live_code() {
    let f = audit(NESTED_VIOLATING, "hot");
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!((f[0].line, f[0].check), (10, HOT_PATH));
    assert!(f[0].message.contains("panic"));

    let f = audit(NESTED_CLEAN, "hot");
    assert!(f.is_empty(), "a nested close must not reopen the code: {f:?}");
}

#[test]
fn malformed_waivers_suppress_nothing() {
    let f = audit(WAIVER_MALFORMED, "hot");
    let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![7, 9, 11], "{f:?}");
    assert!(f.iter().all(|x| x.check == HOT_PATH));
}

#[test]
fn fn_level_waiver_exempts_body_and_traversal() {
    let f = audit(WAIVER_FN_LEVEL, "encode");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn unsafe_fixture_pair() {
    let ws = Workspace::from_sources(&[
        ("crates/fix/src/bad.rs", "fix", UNSAFE_VIOLATING),
        ("crates/fix/src/good.rs", "fix", UNSAFE_CLEAN),
    ]);
    let f = check_unsafe(&ws);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].file, "crates/fix/src/bad.rs");
    assert!(f[0].message.contains("`// SAFETY:`"));
    // The inventory covers every site, commented or not.
    assert_eq!(inventory(&ws).len(), 3);
}

fn wire_ws(codec_src: &str) -> Workspace {
    // The snapshot extractor looks at fixed workspace paths; mount the
    // fixtures there.
    Workspace::from_sources(&[
        ("crates/compress/src/codec.rs", "slc-compress", codec_src),
        ("crates/engine/src/container.rs", "slc-engine", WIRE_CONTAINER_V1),
    ])
}

fn lock_fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wire_format_v1.lock")
}

/// The committed lock fixture must stay byte-identical to what
/// `--update-wire-lock` would emit for the v1 fixture sources.
/// Regenerate with `SLC_LINT_BLESS=1 cargo test -p slc-lint`.
#[test]
fn lock_fixture_matches_fresh_extraction() {
    let rendered = render_lock(&snapshot(&wire_ws(WIRE_CODEC_V1)));
    if std::env::var_os("SLC_LINT_BLESS").is_some() {
        std::fs::write(lock_fixture_path(), &rendered).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(lock_fixture_path()).unwrap();
    assert_eq!(committed, rendered);
    // And a committed lock that matches source yields no findings.
    let snap = snapshot(&wire_ws(WIRE_CODEC_V1));
    assert!(check_lock(&snap, &parse_lock(&committed)).is_empty());
}

/// Every taint fixture defines `wire_u16` (source) and `validate`
/// (sanitizer) at the mounted path, so one manifest serves them all.
const TAINT_MANIFEST: &str = "source    crates/fix/src/taint.rs::wire_u16\n\
                              sanitizer crates/fix/src/taint.rs::validate\n";

/// Mounts one taint fixture at a synthetic path and runs the wire-taint
/// pass with the shared fixture manifest.
fn taint(src: &str) -> Vec<Finding> {
    let ws = Workspace::from_sources(&[("crates/fix/src/taint.rs", "fix", src)]);
    check_taint(&ws, &parse_taint_manifest(TAINT_MANIFEST))
}

#[test]
fn taint_flow_violating_finds_every_seeded_sink() {
    let f = taint(TAINT_FLOW_VIOLATING);
    let lines: Vec<(u32, &str)> = f.iter().map(|x| (x.line, x.check)).collect();
    // Index, allocation size, loop bound, the index the tainted loop
    // variable feeds, and the shift amount.
    assert_eq!(
        lines,
        vec![
            (23, WIRE_TAINT),
            (24, WIRE_TAINT),
            (25, WIRE_TAINT),
            (26, WIRE_TAINT),
            (28, WIRE_TAINT),
        ],
        "{f:?}"
    );
}

#[test]
fn taint_flow_clean_twin_is_silent() {
    let f = taint(TAINT_FLOW_CLEAN);
    assert!(f.is_empty(), "sanitized, guarded and bounded uses stay silent: {f:?}");
}

#[test]
fn taint_crosses_helper_returns_interprocedurally() {
    let f = taint(TAINT_INTERPROC_VIOLATING);
    let lines: Vec<(u32, &str)> = f.iter().map(|x| (x.line, x.check)).collect();
    // The only finding is the caller's index — two summary hops away
    // from the source call.
    assert_eq!(lines, vec![(31, WIRE_TAINT)], "{f:?}");
}

#[test]
fn sanitizing_helper_clears_taint_interprocedurally() {
    let f = taint(TAINT_INTERPROC_CLEAN);
    assert!(f.is_empty(), "a helper that validates returns clean: {f:?}");
}

#[test]
fn unchecked_tainted_arithmetic_flags_each_operator() {
    let f = taint(TAINT_ARITH_VIOLATING);
    let lines: Vec<(u32, &str)> = f.iter().map(|x| (x.line, x.check)).collect();
    assert_eq!(lines, vec![(21, TAINT_ARITH), (23, TAINT_ARITH), (24, TAINT_ARITH)], "{f:?}");
}

#[test]
fn checked_or_guarded_tainted_arithmetic_is_silent() {
    let f = taint(TAINT_ARITH_CLEAN);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn trusted_waivers_silence_taint_findings() {
    let f = taint(TAINT_WAIVED_CLEAN);
    assert!(f.is_empty(), "site- and fn-level trusted() must both hold: {f:?}");
}

fn waiver_lock_ws() -> Workspace {
    Workspace::from_sources(&[
        ("crates/fix/src/taint.rs", "fix", TAINT_WAIVED_CLEAN),
        ("crates/fix/src/hot.rs", "fix", WAIVER_FN_LEVEL),
    ])
}

fn waiver_lock_fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/waiver_debt_v1.lock")
}

/// The committed waiver-debt lock fixture must stay byte-identical to
/// what `--update-waiver-lock` would emit for the fixture sources.
/// Regenerate with `SLC_LINT_BLESS=1 cargo test -p slc-lint`.
#[test]
fn waiver_lock_fixture_matches_fresh_snapshot() {
    let rendered = debt::render_lock(&debt::snapshot(&waiver_lock_ws()));
    if std::env::var_os("SLC_LINT_BLESS").is_some() {
        std::fs::write(waiver_lock_fixture_path(), &rendered).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(waiver_lock_fixture_path()).unwrap();
    assert_eq!(committed, rendered);
    // And a lock that matches source yields no findings.
    let snap = debt::snapshot(&waiver_lock_ws());
    assert!(debt::check_lock(&snap, &debt::parse_lock(&committed)).is_empty());
}

#[test]
fn new_waiver_fails_against_committed_waiver_lock() {
    let committed = std::fs::read_to_string(waiver_lock_fixture_path()).unwrap();
    let extra = "fn extra() -> u8 {\n    \
        // slc-lint: trusted(fixture: one more reviewed exception)\n    \
        [0u8; 4][9]\n}\n";
    let grown = format!("{TAINT_WAIVED_CLEAN}\n{extra}");
    let ws = Workspace::from_sources(&[
        ("crates/fix/src/taint.rs", "fix", &grown),
        ("crates/fix/src/hot.rs", "fix", WAIVER_FN_LEVEL),
    ]);
    let f = debt::check_lock(&debt::snapshot(&ws), &debt::parse_lock(&committed));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].check, debt::WAIVER_DEBT);
    assert_eq!(f[0].file, "crates/fix/src/taint.rs");
    assert!(f[0].message.contains("waiver debt grew"), "{f:?}");
}

#[test]
fn renumbered_discriminant_fails_against_committed_lock() {
    let committed = std::fs::read_to_string(lock_fixture_path()).unwrap();
    let snap = snapshot(&wire_ws(WIRE_CODEC_MUTATED));
    let f = check_lock(&snap, &parse_lock(&committed));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].file, "crates/compress/src/codec.rs");
    assert!(f[0].message.contains("codec_id.Cpack"));
    assert!(f[0].message.contains("`3`"), "drift message names the new value: {f:?}");
    assert!(f[0].message.contains("locked as `2`"), "{f:?}");
}

//! Fixture: a nested block comment hides banned text, but a real panic
//! sits *after* the outer comment closes. Never compiled.

pub fn hot(input: &[u8]) -> u8 {
    /* outer comment
       /* inner comment: .unwrap() and vec![0] live here */
       still inside the outer comment: panic!("not real")
    */
    if input.is_empty() {
        panic!("the one real finding");
    }
    input[0]
}

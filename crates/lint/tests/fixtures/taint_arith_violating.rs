//! Seeded tainted-arithmetic violations: bare `+`/`*` and a compound
//! `+=` on a still-unguarded wire value. Every operator line must flag
//! `taint-arith` — silent wraparound here could size a later access.

/// Registered taint source: reads a little-endian u16 from wire bytes.
fn wire_u16(b: &[u8]) -> usize {
    usize::from(b[0]) | usize::from(b[1]) << 8
}

/// Registered sanitizer; unused by the violating twin.
fn validate(n: usize, limit: usize) -> usize {
    if n < limit {
        n
    } else {
        0
    }
}

pub fn total(buf: &[u8]) -> usize {
    let n = wire_u16(buf);
    let padded = n + 7;
    let mut acc = 0usize;
    acc += n;
    acc * padded
}

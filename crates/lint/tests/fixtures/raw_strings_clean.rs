//! Fixture: every banned construct is quoted inside a raw string — the
//! lexer must see string literals, not calls. Never compiled.

pub fn hot(input: &[u8]) -> usize {
    let _doc = r#"call .unwrap() and panic!("boom") and vec![1, 2]"#;
    let _guarded = r##"a raw string with "# inside: Box::new(0).expect("x")"##;
    let _plain = "Vec::new() and format!(\"{}\", 1) and .collect()";
    input.len()
}

//! Fixture: a miniature container module carrying every wire-surface
//! shape the extractor knows — geometry consts, the header and
//! directory-entry layouts, and the `StorageMode` wire mapping.
//! Never compiled.

pub const MAGIC: [u8; 4] = *b"SLC1";
pub const VERSION: u16 = 1;
pub const HEADER_BYTES: usize = 24;
pub const DIR_ENTRY_BYTES: usize = 13;
pub const MAX_CHUNK_BYTES: usize = 1 << 24;

pub struct Header {
    pub codec: CodecId,
    pub chunk_bytes: u32,
    pub chunk_count: u32,
    pub total_len: u64,
}

pub struct DirEntry {
    pub offset: u64,
    pub encoded_bits: u32,
    pub mode: StorageMode,
}

pub enum StorageMode {
    Raw,
    Coded,
}

impl StorageMode {
    pub fn as_u8(self) -> u8 {
        match self {
            StorageMode::Raw => 0,
            StorageMode::Coded => 1,
        }
    }
}

//! Fixture: an `unsafe` block with no `// SAFETY:` comment anywhere
//! near it. Never compiled.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}

//! Fixture: every banned construct lives inside (possibly nested) block
//! comments — a naive non-nesting scanner would "close" the comment at
//! the inner `*/` and report the rest as live code. Never compiled.

pub fn hot(input: &[u8]) -> usize {
    /* outer
       /* inner: .unwrap() */
       after the inner close, still commented: panic!("x") and Vec::new()
    */
    input.len() /* trailing /* nested */ .expect("quoted") */
}

//! Clean twin of `taint_interproc_violating.rs`: the helper routes the
//! wire value through the registered sanitizer, so its summary is clean
//! and the caller's sink never sees taint. Must be silent.

/// Registered taint source: reads a little-endian u16 from wire bytes.
fn wire_u16(b: &[u8]) -> usize {
    usize::from(b[0]) | usize::from(b[1]) << 8
}

/// Registered sanitizer: clamps a wire length into the buffer.
fn validate(n: usize, limit: usize) -> usize {
    if n < limit {
        n
    } else {
        0
    }
}

/// Not registered: returns an already-validated length.
fn body_len(b: &[u8]) -> usize {
    validate(wire_u16(b), b.len())
}

pub fn decode(buf: &[u8]) -> u8 {
    let n = body_len(buf);
    buf[n]
}

//! Seeded violations, every one carrying a reviewed `trusted(…)`
//! waiver — site-level on the index, fn-level for the loop. Must be
//! silent; the suite's waiver-lock fixture pins this file's debt.

/// Registered taint source: reads a little-endian u16 from wire bytes.
fn wire_u16(b: &[u8]) -> usize {
    usize::from(b[0]) | usize::from(b[1]) << 8
}

/// Registered sanitizer; present so the shared manifest resolves.
fn validate(n: usize, limit: usize) -> usize {
    if n < limit {
        n
    } else {
        0
    }
}

pub fn decode(buf: &[u8]) -> u8 {
    let n = wire_u16(buf);
    // slc-lint: trusted(fixture: n indexes a caller-guaranteed 64 KiB arena)
    buf[n]
}

// slc-lint: trusted(fixture: whole fn reviewed, bounds come from the caller contract)
pub fn decode_sum(buf: &[u8]) -> usize {
    let n = wire_u16(buf);
    let mut sum = 0;
    for i in 0..n {
        sum += usize::from(buf[i]);
    }
    sum
}

//! Fixture: both accepted `// SAFETY:` placements — trailing on the
//! same line, and in the comment block directly above. Never compiled.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() } // SAFETY: caller guarantees non-empty
}

pub fn read_last(bytes: &[u8]) -> u8 {
    // SAFETY: the index is len - 1, in bounds for the non-empty slice
    // the public API contract requires.
    unsafe { *bytes.as_ptr().add(bytes.len() - 1) }
}

//! Fixture: a fn-level waiver exempts the whole function body and stops
//! call-graph traversal through it. Never compiled.

pub fn encode(input: &[u8]) -> Vec<u8> {
    cold_setup(input)
}

// slc-lint: allow(hot-path): fixture — cold setup wrapper, runs once per
// container, not per block
fn cold_setup(input: &[u8]) -> Vec<u8> {
    let staged: Vec<u8> = input.iter().copied().collect();
    staged.first().unwrap();
    staged
}

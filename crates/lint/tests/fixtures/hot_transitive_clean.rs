//! Fixture: the same call shape as `hot_transitive_violating.rs` with
//! every site either rewritten cleanly or carrying a reviewed waiver.

pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut out = plan(input);
    out.push(0);
    out
}

fn plan(input: &[u8]) -> Vec<u8> {
    stage(input)
}

fn stage(input: &[u8]) -> Vec<u8> {
    let first = match input.first() {
        Some(b) => *b,
        None => 0,
    };
    // slc-lint: allow(hot-path): fixture — output payload, one allocation
    let staged = vec![first];
    debug_assert!(!staged.is_empty());
    staged
}

//! Fixture: a hot-path root that reaches banned constructs only
//! *transitively*, through two call-graph hops. Never compiled.

pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut out = plan(input);
    out.push(0);
    out
}

fn plan(input: &[u8]) -> Vec<u8> {
    stage(input)
}

fn stage(input: &[u8]) -> Vec<u8> {
    // Three distinct violations: a banned method, a banned macro and a
    // banned qualified path, all reachable from `encode`.
    let first = input.first().unwrap();
    let staged = vec![*first];
    let _scratch: Vec<u8> = Vec::new();
    assert!(!staged.is_empty());
    staged
}

#[cfg(test)]
mod tests {
    // Test code is invisible to the hot-path audit even when it panics.
    #[test]
    fn panics_are_fine_here() {
        panic!("not a finding");
    }
}

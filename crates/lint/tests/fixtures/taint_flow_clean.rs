//! Clean twin of `taint_flow_violating.rs`: the same sink shapes, but
//! every wire value passes the registered sanitizer, a visible range
//! comparison, or a `.min(…)` bound first. Must be silent.

/// Registered taint source: reads a little-endian u16 from wire bytes.
fn wire_u16(b: &[u8]) -> usize {
    usize::from(b[0]) | usize::from(b[1]) << 8
}

/// Registered sanitizer: clamps a wire length into the buffer.
fn validate(n: usize, limit: usize) -> usize {
    if n < limit {
        n
    } else {
        0
    }
}

pub fn decode(buf: &[u8], out: &mut Vec<u8>) {
    let n = validate(wire_u16(buf), buf.len());
    let first = buf[n];
    out.reserve(n);
    for i in 0..n {
        out.push(buf[i]);
    }
    out.push(first << n);
}

pub fn decode_guarded(buf: &[u8]) -> u8 {
    let n = wire_u16(buf);
    if n >= buf.len() {
        return 0;
    }
    buf[n]
}

pub fn decode_bounded(buf: &[u8]) -> u8 {
    let n = wire_u16(buf);
    let n = n.min(buf.len() - 1);
    buf[n]
}

//! Seeded wire-taint violations: the registered source's return value
//! reaches an index, an allocation size, a loop bound and a shift
//! amount with no guard in between. Every sink below must flag.

/// Registered taint source (see the suite's manifest): reads a
/// little-endian u16 from wire bytes.
fn wire_u16(b: &[u8]) -> usize {
    usize::from(b[0]) | usize::from(b[1]) << 8
}

/// Registered sanitizer; unused here on purpose — the violating twin
/// takes the raw value straight to the sinks.
fn validate(n: usize, limit: usize) -> usize {
    if n < limit {
        n
    } else {
        0
    }
}

pub fn decode(buf: &[u8], out: &mut Vec<u8>) {
    let n = wire_u16(buf);
    let first = buf[n];
    out.reserve(n);
    for i in 0..n {
        out.push(buf[i]);
    }
    out.push(first << n);
}

//! Fixture: `wire_codec_v1.rs` with one discriminant silently renumbered
//! (Cpack 2 -> 3) — the drift the lock must catch. Never compiled.

#[repr(u8)]
pub enum CodecId {
    Bdi = 0,
    Fpc = 1,
    Cpack = 3,
    Rans = 7,
}

//! Seeded interprocedural violation: the wire value flows through two
//! plain helpers' returns into the caller's sink. The fixpoint summary
//! must carry the taint across both calls.

/// Registered taint source: reads a little-endian u16 from wire bytes.
fn wire_u16(b: &[u8]) -> usize {
    usize::from(b[0]) | usize::from(b[1]) << 8
}

/// Registered sanitizer; unused by the violating twin.
fn validate(n: usize, limit: usize) -> usize {
    if n < limit {
        n
    } else {
        0
    }
}

/// Not registered as anything: taint must flow through on its own.
fn body_len(b: &[u8]) -> usize {
    wire_u16(b)
}

/// Tainted parameter to tainted return, one more hop.
fn padded_len(n: usize) -> usize {
    n
}

pub fn decode(buf: &[u8]) -> u8 {
    let n = padded_len(body_len(buf));
    buf[n]
}

//! Clean twin of `taint_arith_violating.rs`: the same arithmetic, but
//! through `checked_*`/`saturating_*` forms or behind a range guard.
//! Must be silent.

/// Registered taint source: reads a little-endian u16 from wire bytes.
fn wire_u16(b: &[u8]) -> usize {
    usize::from(b[0]) | usize::from(b[1]) << 8
}

/// Registered sanitizer; unused — the checked forms carry the proof.
fn validate(n: usize, limit: usize) -> usize {
    if n < limit {
        n
    } else {
        0
    }
}

pub fn total(buf: &[u8]) -> usize {
    let n = wire_u16(buf);
    let padded = n.checked_add(7).unwrap_or(usize::MAX);
    let scaled = n.saturating_mul(3);
    let mut acc = 0usize;
    acc = acc.saturating_add(n);
    padded.max(scaled).max(acc)
}

pub fn total_guarded(buf: &[u8]) -> usize {
    let n = wire_u16(buf);
    if n > 4096 {
        return 0;
    }
    n * 2 + 1
}

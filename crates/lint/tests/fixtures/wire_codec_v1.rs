//! Fixture: the frozen codec-tag enum as the lock fixture knows it.
//! Never compiled.

#[repr(u8)]
pub enum CodecId {
    Bdi = 0,
    Fpc = 1,
    Cpack = 2,
    Rans = 7,
}

//! Fixture: waivers that do not parse must not suppress anything —
//! an empty reason, a wrong check name, and a missing second colon.
//! Never compiled.

pub fn hot(input: &[u8]) -> u8 {
    // slc-lint: allow(hot-path):
    let a = input.first().unwrap();
    // slc-lint: allow(assert): waives the wrong check for this site
    let b = input.last().unwrap();
    // slc-lint: allow(hot-path) forgot the reason separator
    let c = input.get(1).unwrap();
    a | b | c
}

//! Fixture: raw strings full of banned-looking text must not mask the
//! one *real* violation after them. Never compiled.

pub fn hot(input: &[u8]) -> usize {
    let _doc = r#"call .unwrap() and panic!("boom") and vec![1, 2]"#;
    let _guarded = r##"a raw string with "# inside: Box::new(0).expect("x")"##;
    // The only genuine finding in this file:
    input.first().unwrap();
    input.len()
}

//! Property tests for the channel request scheduler.
//!
//! Three contracts pin the FR-FCFS refactor:
//!
//! 1. the `InOrder` policy is **bit-identical** to the pre-scheduler
//!    `Channel` (single `free_at` horizon, every request serviced at
//!    arrival) on randomized access sequences — the refactor changed the
//!    plumbing, never the legacy arithmetic;
//! 2. FR-FCFS never reorders past the starvation cap: at every read
//!    arrival, no buffered write older than `sched_age_cap` survives the
//!    arbitration (the oldest request's completion is bounded);
//! 3. row-hit-first drain strictly reduces row activates against
//!    `InOrder` on bank-conflict write traffic.

use proptest::prelude::*;
use slc_sim::dram::sched::SchedPolicy;
use slc_sim::dram::Channel;
use slc_sim::GpuConfig;

/// The pre-scheduler channel model, reproduced verbatim from the PR 4
/// `Channel::access`: one bank array, one data-bus horizon, requests
/// serviced in arrival order with no read/write distinction.
struct LegacyChannel {
    open_row: Vec<Option<u64>>,
    ready_at: Vec<f64>,
    free_at: f64,
    burst_cycles: f64,
    row_hit_cycles: f64,
    row_miss_cycles: f64,
    row_blocks: u64,
}

impl LegacyChannel {
    fn new(cfg: &GpuConfig) -> Self {
        Self {
            open_row: vec![None; cfg.banks_per_channel],
            ready_at: vec![0.0; cfg.banks_per_channel],
            free_at: 0.0,
            burst_cycles: cfg.burst_sm_cycles(),
            row_hit_cycles: cfg.row_hit_sm_cycles(),
            row_miss_cycles: cfg.row_miss_sm_cycles(),
            row_blocks: cfg.row_blocks,
        }
    }

    fn access(&mut self, local_block: u64, bursts: u32, at: f64) -> (f64, bool) {
        let row_group = local_block / self.row_blocks;
        let bank = (row_group as usize) % self.open_row.len();
        let row = row_group / self.open_row.len() as u64;
        let start = at.max(self.ready_at[bank]);
        let row_hit = self.open_row[bank] == Some(row);
        let access_latency = if row_hit { self.row_hit_cycles } else { self.row_miss_cycles };
        let data_start = (start + access_latency).max(self.free_at);
        let done = data_start + self.burst_cycles * f64::from(bursts);
        self.free_at = done;
        self.open_row[bank] = Some(row);
        if !row_hit {
            self.ready_at[bank] = start + (self.row_miss_cycles - self.row_hit_cycles);
        }
        (done, row_hit)
    }
}

fn in_order_cfg() -> GpuConfig {
    GpuConfig { sched_policy: SchedPolicy::InOrder, ..GpuConfig::default() }
}

fn frfcfs_cfg() -> GpuConfig {
    GpuConfig { sched_policy: SchedPolicy::FrFcfs, ..GpuConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1: `InOrder` reproduces the pre-scheduler channel bit for
    /// bit — completion times, row outcomes and the bus horizon.
    #[test]
    fn prop_in_order_matches_legacy_channel(
        ops in proptest::collection::vec((any::<u16>(), any::<u8>(), any::<u16>(), any::<bool>()), 1..200)
    ) {
        let cfg = in_order_cfg();
        let mut legacy = LegacyChannel::new(&cfg);
        let mut channel = Channel::new(&cfg);
        let mut now = 0.0f64;
        for &(block, bursts, dt, is_write) in &ops {
            now += f64::from(dt % 256);
            let block = u64::from(block) % 4096;
            let bursts = u32::from(bursts % 4) + 1;
            let (want_done, want_hit) = legacy.access(block, bursts, now);
            let got = if is_write {
                channel.write(block, bursts, now).expect("InOrder writes service at arrival")
            } else {
                channel.read(block, bursts, now)
            };
            // Identical f64 arithmetic on identical state: exact equality.
            prop_assert_eq!(got.done.to_bits(), want_done.to_bits());
            prop_assert_eq!(got.row_hit, want_hit);
            prop_assert_eq!(channel.free_at().to_bits(), legacy.free_at.to_bits());
        }
        prop_assert_eq!(channel.pending_writes(), 0, "InOrder never buffers");
    }

    /// Contract 2: at every channel event (read *or* write arrival),
    /// every buffered write older than the age cap is forced out first —
    /// no request is reordered past its age bound while traffic flows,
    /// so the oldest request's completion stays within one drain of the
    /// cap.
    #[test]
    fn prop_age_cap_bounds_reordering(
        ops in proptest::collection::vec((any::<u16>(), any::<u8>(), any::<u16>(), any::<bool>()), 1..300)
    ) {
        let cfg = frfcfs_cfg();
        let cap = cfg.sched_age_cap as f64;
        let mut channel = Channel::new(&cfg);
        let mut now = 0.0f64;
        for &(block, bursts, dt, is_write) in &ops {
            now += f64::from(dt);
            let block = u64::from(block) % 4096;
            let bursts = u32::from(bursts % 4) + 1;
            if is_write {
                channel.write(block, bursts, now);
            } else {
                channel.read(block, bursts, now);
            }
            if let Some(oldest) = channel.oldest_pending_arrival() {
                prop_assert!(
                    now - oldest <= cap,
                    "write from {oldest} still buffered after event at {now} (cap {cap})"
                );
            }
            prop_assert!(channel.pending_writes() <= cfg.write_buffer_entries);
        }
    }

    /// Contract 3: on ping-pong write traffic between conflicting rows of
    /// one bank, the row-hit-first drain strictly reduces row activates
    /// vs servicing in order (the whole point of FR-FCFS).
    #[test]
    fn prop_row_hit_first_reduces_activates(
        rows in proptest::collection::vec(any::<bool>(), 4..12),
        offsets in proptest::collection::vec(any::<u8>(), 4..12),
    ) {
        let alternations = rows.windows(2).filter(|w| w[0] != w[1]).count();
        prop_assume!(alternations >= 3);
        let cfg_i = in_order_cfg();
        let cfg_f = frfcfs_cfg();
        // Two rows of bank 0: row 0 starts at block 0, row 1 after a full
        // sweep of every bank's first row group.
        let far = cfg_i.banks_per_channel as u64 * cfg_i.row_blocks;
        let mut in_order = Channel::new(&cfg_i);
        let mut frfcfs = Channel::new(&cfg_f);
        for (i, &second_row) in rows.iter().enumerate() {
            let offset = u64::from(offsets[i % offsets.len()]) % cfg_i.row_blocks;
            let block = if second_row { far + offset } else { offset };
            // Same-instant arrivals: the burst of write-backs an L2 flush
            // emits, which is exactly where drain grouping pays.
            in_order.write(block, 4, 0.0);
            frfcfs.write(block, 4, 0.0);
        }
        frfcfs.drain_writes(0.0);
        prop_assert_eq!(in_order.pending_writes(), 0);
        prop_assert_eq!(frfcfs.pending_writes(), 0);
        prop_assert!(
            frfcfs.telemetry().row_misses < in_order.telemetry().row_misses,
            "row-hit-first must save activates: {} vs {}",
            frfcfs.telemetry().row_misses,
            in_order.telemetry().row_misses
        );
    }
}

//! Simulation statistics.

/// Counters produced by one simulation run.
///
/// All times are SM cycles. Energy is derived from these counters by
/// `slc-power`; the figures divide them against a baseline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total execution time (max over SMs of their finish time).
    pub cycles: u64,
    /// Per-SM cycles spent stalled on a full MSHR file or a sync.
    pub stall_cycles: u64,
    /// Trace operations executed.
    pub ops: u64,
    /// Load requests issued by SMs.
    pub loads: u64,
    /// Store requests issued by SMs.
    pub stores: u64,
    /// L1 hits / misses (aggregated over SMs).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM read accesses (block fetches).
    pub dram_reads: u64,
    /// DRAM write accesses (write-backs).
    pub dram_writes: u64,
    /// Data bursts moved for reads.
    pub read_bursts: u64,
    /// Data bursts moved for writes.
    pub write_bursts: u64,
    /// Extra bursts spent fetching compression metadata on MDC misses.
    pub metadata_bursts: u64,
    /// Bursts spent writing dirty metadata lines back to DRAM (MDC
    /// evictions and the end-of-kernel drain).
    pub metadata_writeback_bursts: u64,
    /// Metadata cache hits.
    pub mdc_hits: u64,
    /// Metadata cache misses.
    pub mdc_misses: u64,
    /// Blocks that paid the decompression latency.
    pub decompressed_blocks: u64,
    /// Blocks that paid the compression latency.
    pub compressed_blocks: u64,
    /// DRAM row-buffer hits, over every access command issued to a
    /// channel — data blocks *and* metadata lines (an activate costs the
    /// same row cycle either way, and these counters feed the
    /// row-activation energy term).
    pub row_hits: u64,
    /// DRAM row-buffer misses (same population as `row_hits`).
    pub row_misses: u64,
    /// Sum over read requests of (completion - issue), for latency stats.
    pub read_latency_sum: u64,
    /// SM cycles DRAM requests spent queued on a busy bank or data bus
    /// beyond the pure access latency (buffered writes count from
    /// arrival), summed over all channels and truncated to whole cycles.
    pub queue_wait_cycles: u64,
    /// Writes serviced out of the FR-FCFS write buffers (0 under the
    /// `InOrder` policy, where writes never buffer).
    pub write_drains: u64,
    /// Of [`write_drains`](Self::write_drains), those forced by a full
    /// buffer (high watermark) or the starvation age cap rather than an
    /// idle bus or the end-of-kernel drain.
    pub write_drain_forced: u64,
    /// Fault ladder (see `slc_sim::fault`): per-(snapshot, block)
    /// decisions that degraded below the fault-free stored form to fit a
    /// faulty row's surviving capacity. 0 without injected faults.
    pub fault_escalations: u64,
    /// Distinct blocks remapped into the spare-region pool.
    pub remaps: u64,
    /// Peak spare-pool occupancy in blocks.
    pub spare_occupancy_peak: u64,
    /// Distinct blocks that neither fit the surviving capacity nor got a
    /// spare slot — lost on real hardware, counted here.
    pub uncorrectable_blocks: u64,
}

impl SimStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bursts over the pins (reads + writes + metadata fetches +
    /// metadata write-backs).
    pub fn total_bursts(&self) -> u64 {
        self.read_bursts + self.write_bursts + self.metadata_bursts + self.metadata_writeback_bursts
    }

    /// Bytes moved over the DRAM pins, given the MAG in bytes.
    pub fn dram_bytes(&self, mag_bytes: u32) -> u64 {
        self.total_bursts() * u64::from(mag_bytes)
    }

    /// Average read latency in cycles (0 when no reads completed).
    pub fn avg_read_latency(&self) -> f64 {
        if self.dram_reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.dram_reads as f64
        }
    }

    /// L2 miss rate in [0, 1].
    pub fn l2_miss_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_misses as f64 / total as f64
        }
    }

    /// MDC hit rate in [0, 1].
    pub fn mdc_hit_rate(&self) -> f64 {
        let total = self.mdc_hits + self.mdc_misses;
        if total == 0 {
            0.0
        } else {
            self.mdc_hits as f64 / total as f64
        }
    }

    /// Achieved DRAM bandwidth in GB/s for a run at `sm_clock_mhz`.
    pub fn achieved_bandwidth_gbps(&self, mag_bytes: u32, sm_clock_mhz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let seconds = self.cycles as f64 / (sm_clock_mhz * 1e6);
        self.dram_bytes(mag_bytes) as f64 / seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let s = SimStats {
            read_bursts: 10,
            write_bursts: 5,
            metadata_bursts: 1,
            l2_hits: 3,
            l2_misses: 1,
            mdc_hits: 9,
            mdc_misses: 1,
            dram_reads: 4,
            read_latency_sum: 400,
            cycles: 1000,
            ..Default::default()
        };
        assert_eq!(s.total_bursts(), 16);
        assert_eq!(s.dram_bytes(32), 512);
        assert!((s.l2_miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.mdc_hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.avg_read_latency() - 100.0).abs() < 1e-12);
        let bw = s.achieved_bandwidth_gbps(32, 822.0);
        assert!(bw > 0.0);
    }

    #[test]
    fn empty_stats_have_safe_rates() {
        let s = SimStats::new();
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.l2_miss_rate(), 0.0);
        assert_eq!(s.mdc_hit_rate(), 0.0);
        assert_eq!(s.achieved_bandwidth_gbps(32, 822.0), 0.0);
    }
}

//! Deterministic DRAM fault injection (RRCD-style, arXiv:2105.03859).
//!
//! A [`FaultMap`] marks DRAM rows as *permanently failed* at a configurable
//! density and spatial pattern. A block resident in a faulty row keeps only
//! the row's surviving capacity — a hard byte budget
//! ([`FaultConfig::budget_bytes`]) — so its data must compress below that
//! budget or move elsewhere. The workload harness walks a
//! *graceful-degradation ladder* per block (exact → lossless → deeper lossy
//! → remap to a bounded spare pool → uncorrectable) and records the outcome
//! in a [`FaultPlan`] that the timing side replays: remapped blocks pay an
//! extra pointer burst plus the spare region's own DRAM access through the
//! FR-FCFS channel model.
//!
//! # Seeding and determinism
//!
//! Faultiness is a pure function of `(seed, pattern, geometry key)`: the
//! key is hashed with a SplitMix64 chain and compared against
//! `density · 2^64`. Two properties follow by construction:
//!
//! * **Reproducible** — the same seed and configuration always yield the
//!   same fault set; no RNG state is threaded through the simulation.
//! * **Nested** — for a fixed seed, the fault set at density `d₁` is a
//!   subset of the set at any `d₂ ≥ d₁` (the hash is fixed, only the
//!   threshold moves). Capacity curves over a density sweep are therefore
//!   monotone by construction, never by luck.
//!
//! # Region granularity
//!
//! The geometry key mirrors the simulator's physical mapping exactly
//! (`Dram::map` + `Channel::locate`): channel = `block % channels`,
//! row-group = `(block / channels) / row_blocks`, bank =
//! `row_group % banks`, row = `row_group / banks`. [`FaultPattern`] picks
//! which level of that hierarchy fails as a unit.

use crate::config::GpuConfig;
use crate::dense::DenseAddrMap;
use crate::stats::SimStats;
use crate::BlockAddr;

/// Spatial distribution of the injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPattern {
    /// Each physical DRAM row (one `(channel, bank, row)` tuple) fails
    /// independently with probability `density`.
    RandomRows,
    /// Whole banks fail: every row of a failed `(channel, bank)` pair is
    /// faulty. Models a dead bank-level structure (e.g. a broken local
    /// row decoder).
    WholeBanks,
    /// Like [`RandomRows`](Self::RandomRows), but the per-row failure
    /// probability is skewed linearly across channels — channel `c` of
    /// `n` fails at `density · 2(c+1)/(n+1)` (mean `density` over the
    /// pool). Models one worse-binned DRAM device on the board.
    ChannelSkew,
}

/// Fault-injection configuration, carried on [`GpuConfig::fault`].
///
/// `None` on the config means the fault subsystem is entirely absent —
/// the harness and memory controller take their fault-free paths, which
/// tests pin byte-identical to a present-but-zero-density map.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Spatial fault pattern.
    pub pattern: FaultPattern,
    /// Fraction of rows (or banks) failed, in `[0, 1]`.
    pub density: f64,
    /// Seed for the deterministic fault set.
    pub seed: u64,
    /// Spare-region pool size in 128 B blocks. Blocks whose data cannot
    /// be degraded under the byte budget are remapped here first-come
    /// first-served; once the pool is exhausted they are uncorrectable.
    pub spare_blocks: u32,
    /// Surviving capacity of a faulty row, per resident block, in bytes.
    /// A block in a faulty row may only store a compressed form of at
    /// most this many bytes. Must be below the 128 B block size for the
    /// faults to bite.
    pub budget_bytes: u32,
}

impl FaultConfig {
    /// A configuration with the default spare pool (64 blocks) and
    /// surviving capacity (64 B — half of each faulty row survives).
    pub fn new(pattern: FaultPattern, density: f64, seed: u64) -> Self {
        Self { pattern, density, seed, spare_blocks: 64, budget_bytes: 64 }
    }

    /// Overrides the spare-pool size.
    pub fn with_spare_blocks(mut self, spare_blocks: u32) -> Self {
        self.spare_blocks = spare_blocks;
        self
    }

    /// Overrides the surviving capacity per faulty-row block.
    pub fn with_budget_bytes(mut self, budget_bytes: u32) -> Self {
        self.budget_bytes = budget_bytes;
        self
    }

    /// The hard bit budget of a block resident in a faulty row.
    pub fn budget_bits(&self) -> u32 {
        self.budget_bytes * 8
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a two-component geometry key under a tagged seed.
fn hash_key(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    let h = splitmix64(seed ^ tag);
    let h = splitmix64(h ^ a);
    splitmix64(h ^ b)
}

/// `hash < density · 2^64`, with exact short-circuits at the ends so
/// density 0.0 never fires and 1.0 always does.
fn below_threshold(hash: u64, density: f64) -> bool {
    if density <= 0.0 {
        false
    } else if density >= 1.0 {
        true
    } else {
        // The product is < 2^64 here, so the cast cannot saturate; the
        // cast truncates toward zero, keeping the threshold monotone in
        // `density`.
        hash < (density * 18_446_744_073_709_551_616.0) as u64
    }
}

const TAG_ROWS: u64 = 0x524f_5753; // "ROWS"
const TAG_BANK: u64 = 0x4241_4e4b; // "BANK"
const TAG_SKEW: u64 = 0x534b_4557; // "SKEW"

/// The deterministic fault set: which blocks sit in failed DRAM capacity
/// and how many bits of each such block survive.
///
/// Built from the geometry of a [`GpuConfig`] plus a [`FaultConfig`];
/// queries are pure (no interior state), so a map can be shared freely
/// between the functional ladder and analysis tooling.
#[derive(Debug, Clone)]
pub struct FaultMap {
    channels: u64,
    banks: u64,
    row_blocks: u64,
    config: FaultConfig,
}

impl FaultMap {
    /// Captures the geometry of `cfg` and the fault parameters of `fault`.
    pub fn build(cfg: &GpuConfig, fault: &FaultConfig) -> Self {
        Self {
            channels: cfg.channels() as u64,
            banks: cfg.banks_per_channel as u64,
            row_blocks: cfg.row_blocks,
            config: fault.clone(),
        }
    }

    /// Builds the map from the config's own `fault` field, if any.
    pub fn from_config(cfg: &GpuConfig) -> Option<Self> {
        cfg.fault.as_ref().map(|f| Self::build(cfg, f))
    }

    /// The fault parameters this map was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decomposes a block address into `(channel, bank, row, row_group)`
    /// exactly as the DRAM model does.
    fn locate(&self, block: BlockAddr) -> (u64, u64, u64, u64) {
        let channel = block % self.channels;
        let local = block / self.channels;
        let row_group = local / self.row_blocks;
        let bank = row_group % self.banks;
        let row = row_group / self.banks;
        (channel, bank, row, row_group)
    }

    /// Whether `block` resides in failed DRAM capacity.
    pub fn is_faulty(&self, block: BlockAddr) -> bool {
        let (channel, bank, _row, row_group) = self.locate(block);
        let fc = &self.config;
        match fc.pattern {
            FaultPattern::RandomRows => {
                below_threshold(hash_key(fc.seed, TAG_ROWS, channel, row_group), fc.density)
            }
            FaultPattern::WholeBanks => {
                below_threshold(hash_key(fc.seed, TAG_BANK, channel, bank), fc.density)
            }
            FaultPattern::ChannelSkew => {
                let weight = 2.0 * (channel + 1) as f64 / (self.channels + 1) as f64;
                below_threshold(
                    hash_key(fc.seed, TAG_SKEW, channel, row_group),
                    fc.density * weight,
                )
            }
        }
    }

    /// The surviving bit budget of `block`: `None` for a healthy block
    /// (full capacity), `Some(bits)` when it sits in a faulty row.
    pub fn block_budget_bits(&self, block: BlockAddr) -> Option<u32> {
        self.is_faulty(block).then(|| self.config.budget_bits())
    }

    /// Counts faulty blocks over an address population.
    pub fn count_faulty(&self, blocks: impl IntoIterator<Item = BlockAddr>) -> u64 {
        blocks.into_iter().filter(|&b| self.is_faulty(b)).count() as u64
    }
}

/// First-come first-served assignment of faulty blocks to spare slots.
///
/// Slots are never freed: a permanent fault stays remapped for the life
/// of the run, so `used` only grows and doubles as the pool's occupancy
/// peak.
#[derive(Debug, Clone)]
pub struct RemapTable {
    capacity: u32,
    slots: DenseAddrMap<u32>,
    used: u32,
}

impl RemapTable {
    /// An empty table with `capacity` spare slots.
    pub fn new(capacity: u32) -> Self {
        Self { capacity, slots: DenseAddrMap::new(u32::MAX), used: 0 }
    }

    /// The spare slot holding `block`'s data, if it was remapped.
    pub fn slot_of(&self, block: BlockAddr) -> Option<u32> {
        let slot = self.slots.get(block);
        (slot != u32::MAX).then_some(slot)
    }

    /// Assigns `block` a spare slot, idempotently: an already-remapped
    /// block returns its existing slot. `None` once the pool is full.
    pub fn assign(&mut self, block: BlockAddr) -> Option<u32> {
        if let Some(slot) = self.slot_of(block) {
            return Some(slot);
        }
        if self.used >= self.capacity {
            return None;
        }
        let slot = self.used;
        self.slots.set(block, slot);
        self.used += 1;
        Some(slot)
    }

    /// Slots handed out so far.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Total pool size.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

/// Ladder counters, one per [`SimStats`] fault field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Per-(snapshot, block) decisions that had to *degrade below the
    /// fault-free stored form* (a deeper lossy truncation) to fit the
    /// surviving capacity.
    pub fault_escalations: u64,
    /// Distinct blocks remapped into the spare pool.
    pub remaps: u64,
    /// Peak spare-pool occupancy in blocks. Slots are never freed, so
    /// this equals [`remaps`](Self::remaps); kept separate so the
    /// invariant is observable (and survives a future eviction policy).
    pub spare_occupancy_peak: u64,
    /// Distinct blocks that could neither degrade under the budget nor
    /// obtain a spare slot. Their data is lost on real hardware; the
    /// functional model keeps it intact and only counts them, so the
    /// capacity curve reads `(total - uncorrectable) / total`.
    pub uncorrectable_blocks: u64,
}

/// The functional ladder's verdict, handed to the timing side.
///
/// Carries the remap table (so the memory controller can charge remapped
/// blocks their pointer burst plus the spare region's own access) and the
/// final counters (folded into [`SimStats`] at harvest).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    table: RemapTable,
    counters: FaultCounters,
}

impl FaultPlan {
    /// Packages a finished ladder pass.
    pub fn new(table: RemapTable, counters: FaultCounters) -> Self {
        Self { table, counters }
    }

    /// The spare slot of `block`, if the ladder remapped it.
    pub fn slot_of(&self, block: BlockAddr) -> Option<u32> {
        self.table.slot_of(block)
    }

    /// The ladder counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Copies the counters into their [`SimStats`] fields.
    pub fn fold_into(&self, stats: &mut SimStats) {
        stats.fault_escalations = self.counters.fault_escalations;
        stats.remaps = self.counters.remaps;
        stats.spare_occupancy_peak = self.counters.spare_occupancy_peak;
        stats.uncorrectable_blocks = self.counters.uncorrectable_blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pattern: FaultPattern, density: f64, seed: u64) -> FaultMap {
        FaultMap::build(&GpuConfig::default(), &FaultConfig::new(pattern, density, seed))
    }

    const PATTERNS: [FaultPattern; 3] =
        [FaultPattern::RandomRows, FaultPattern::WholeBanks, FaultPattern::ChannelSkew];

    #[test]
    fn density_extremes() {
        for pattern in PATTERNS {
            let none = map(pattern, 0.0, 7);
            for block in 0..50_000u64 {
                assert!(!none.is_faulty(block), "{pattern:?} faulty at density 0");
            }
        }
        // Uniform patterns saturate completely at density 1.
        for pattern in [FaultPattern::RandomRows, FaultPattern::WholeBanks] {
            let all = map(pattern, 1.0, 7);
            for block in 0..50_000u64 {
                assert!(all.is_faulty(block), "{pattern:?} healthy at density 1");
            }
        }
        // ChannelSkew redistributes density across channels (weight
        // 2(c+1)/(n+1)), so only channels with weight >= 1 — the upper
        // half — are guaranteed saturated at density 1.
        let skew = map(FaultPattern::ChannelSkew, 1.0, 7);
        let channels = GpuConfig::default().channels() as u64;
        for group in 0..4_000u64 {
            assert!(
                skew.is_faulty(group * channels + (channels - 1)),
                "top skew channel must saturate at density 1"
            );
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        for pattern in PATTERNS {
            let a = map(pattern, 0.3, 42);
            let b = map(pattern, 0.3, 42);
            let c = map(pattern, 0.3, 43);
            let blocks = 0..50_000u64;
            assert_eq!(
                blocks.clone().map(|x| a.is_faulty(x)).collect::<Vec<_>>(),
                blocks.clone().map(|x| b.is_faulty(x)).collect::<Vec<_>>(),
            );
            assert_ne!(
                blocks.clone().map(|x| a.is_faulty(x)).collect::<Vec<_>>(),
                blocks.map(|x| c.is_faulty(x)).collect::<Vec<_>>(),
                "{pattern:?} ignores the seed"
            );
        }
    }

    #[test]
    fn fault_sets_nest_as_density_rises() {
        // The monotone-capacity guarantee: every block faulty at a lower
        // density stays faulty at any higher one (same seed and pattern).
        let densities = [0.0, 0.01, 0.05, 0.2, 0.5, 0.9, 1.0];
        for pattern in PATTERNS {
            for pair in densities.windows(2) {
                let lo = map(pattern, pair[0], 99);
                let hi = map(pattern, pair[1], 99);
                for block in 0..50_000u64 {
                    assert!(
                        !lo.is_faulty(block) || hi.is_faulty(block),
                        "{pattern:?}: block {block} faulty at {} but not {}",
                        pair[0],
                        pair[1],
                    );
                }
            }
        }
    }

    #[test]
    fn density_tracks_observed_fraction() {
        for pattern in PATTERNS {
            let m = map(pattern, 0.25, 123);
            let total = 200_000u64;
            let faulty = m.count_faulty(0..total);
            let frac = faulty as f64 / total as f64;
            assert!((frac - 0.25).abs() < 0.05, "{pattern:?}: observed {frac}");
        }
    }

    #[test]
    fn whole_banks_fail_as_a_unit() {
        let m = map(FaultPattern::WholeBanks, 0.3, 5);
        // All blocks of one (channel, bank) share a fate; walk row groups.
        let cfg = GpuConfig::default();
        let channels = cfg.channels() as u64;
        for channel in 0..channels {
            for bank in 0..cfg.banks_per_channel as u64 {
                let probe = |row: u64| {
                    let row_group = row * cfg.banks_per_channel as u64 + bank;
                    m.is_faulty((row_group * cfg.row_blocks) * channels + channel)
                };
                let fate = probe(0);
                for row in 1..64 {
                    assert_eq!(probe(row), fate, "bank fate split across rows");
                }
            }
        }
    }

    #[test]
    fn channel_skew_loads_high_channels() {
        let m = map(FaultPattern::ChannelSkew, 0.2, 11);
        let cfg = GpuConfig::default();
        let channels = cfg.channels() as u64;
        let count =
            |channel: u64| (0..20_000u64).filter(|g| m.is_faulty(g * channels + channel)).count();
        assert!(
            count(channels - 1) > 2 * count(0),
            "last channel should carry ~11x the first's fault rate"
        );
    }

    #[test]
    fn budget_reported_only_for_faulty_blocks() {
        let m = map(FaultPattern::RandomRows, 0.5, 3);
        for block in 0..10_000u64 {
            match m.block_budget_bits(block) {
                Some(bits) => {
                    assert!(m.is_faulty(block));
                    assert_eq!(bits, 64 * 8);
                }
                None => assert!(!m.is_faulty(block)),
            }
        }
    }

    #[test]
    fn remap_table_is_bounded_and_idempotent() {
        let mut t = RemapTable::new(2);
        assert_eq!(t.slot_of(10), None);
        assert_eq!(t.assign(10), Some(0));
        assert_eq!(t.assign(10), Some(0), "re-assignment must be idempotent");
        assert_eq!(t.assign(20), Some(1));
        assert_eq!(t.used(), 2);
        assert_eq!(t.assign(30), None, "pool exhausted");
        assert_eq!(t.slot_of(20), Some(1));
        assert_eq!(t.used(), 2);
    }

    #[test]
    fn plan_folds_counters_into_stats() {
        let counters = FaultCounters {
            fault_escalations: 4,
            remaps: 3,
            spare_occupancy_peak: 3,
            uncorrectable_blocks: 2,
        };
        let plan = FaultPlan::new(RemapTable::new(8), counters);
        let mut stats = SimStats::new();
        plan.fold_into(&mut stats);
        assert_eq!(stats.fault_escalations, 4);
        assert_eq!(stats.remaps, 3);
        assert_eq!(stats.spare_occupancy_peak, 3);
        assert_eq!(stats.uncorrectable_blocks, 2);
    }
}

//! Channel request scheduling: the policy enum and the FR-FCFS write
//! queue behind [`super::Channel`].
//!
//! The simulator resolves read completions synchronously (an SM needs its
//! load's completion time the moment it issues), so the reorder window a
//! real FR-FCFS scheduler holds is modelled asymmetrically:
//!
//! * **Reads** are serviced at arrival, ahead of any buffered write that
//!   has not yet exceeded the age cap (read-over-write priority).
//! * **Writes** are fire-and-forget and buffer in a bounded per-channel
//!   [`WriteQueue`]. The queue drains on the high watermark (capacity
//!   reached → drain to half), opportunistically whenever the data bus
//!   has been idle (the channel is read-idle), and fully at end of
//!   kernel. Drain order is FR-FCFS proper: row-hit-first against the
//!   banks' open rows, oldest-first among equals, and an age cap that
//!   promotes the oldest entry over any row hit so no write starves.
//!
//! [`SchedPolicy::InOrder`] bypasses the queue entirely and reproduces
//! the legacy single-horizon channel bit for bit — the policy a refactor
//! lands under before the default flips, so figure deltas stay
//! attributable to the scheduler and never to the plumbing.

/// Channel scheduling policy (a [`crate::GpuConfig`] knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Legacy model: every request is serviced immediately at arrival in
    /// program order; writes occupy the bus ahead of younger reads.
    InOrder,
    /// FR-FCFS arbitration: reads bypass buffered writes, the write queue
    /// drains row-hit-first with an age cap (see the module docs).
    FrFcfs,
}

/// One buffered write request.
#[derive(Debug, Clone, Copy)]
pub struct PendingWrite {
    /// Channel-local block index.
    pub local_block: u64,
    /// Data bursts the write moves.
    pub bursts: u32,
    /// When the write reached the channel (SM cycles).
    pub arrival: f64,
    /// Bank the block maps to (precomputed at enqueue).
    pub bank: usize,
    /// Row the block maps to (precomputed at enqueue).
    pub row: u64,
}

/// Bounded FR-FCFS write buffer of one channel.
///
/// Entries stay in arrival order; [`select`](Self::select) implements the
/// arbitration and returns an index for the channel to service.
#[derive(Debug, Clone, Default)]
pub struct WriteQueue {
    entries: Vec<PendingWrite>,
}

impl WriteQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffered writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Arrival time of the oldest buffered write.
    pub fn oldest_arrival(&self) -> Option<f64> {
        self.entries.first().map(|e| e.arrival)
    }

    /// Buffers one write. Entries are treated as age-ordered by insertion:
    /// arrivals are near-monotonic (the engine steps SMs laggard-first and
    /// only fixed codec-latency offsets jitter the order by a few dozen
    /// cycles), so insertion order is the age order FR-FCFS arbitrates on.
    pub fn push(&mut self, w: PendingWrite) {
        self.entries.push(w);
    }

    /// FR-FCFS arbitration at time `now`: the oldest entry when it has
    /// aged past `age_cap` (starvation guard), else the oldest row hit
    /// against the banks' open rows (`open_row(bank)`), else the oldest
    /// entry. `None` on an empty queue.
    pub fn select(
        &self,
        now: f64,
        age_cap: f64,
        open_row: impl Fn(usize) -> Option<u64>,
    ) -> Option<usize> {
        let oldest = self.entries.first()?;
        if now - oldest.arrival > age_cap {
            return Some(0);
        }
        self.entries.iter().position(|e| open_row(e.bank) == Some(e.row)).or(Some(0))
    }

    /// Whether the oldest entry has aged past `age_cap` at time `now`.
    pub fn oldest_overage(&self, now: f64, age_cap: f64) -> bool {
        self.entries.first().is_some_and(|e| now - e.arrival > age_cap)
    }

    /// Removes and returns the entry at `index` (arrival order preserved
    /// for the rest).
    pub fn remove(&mut self, index: usize) -> PendingWrite {
        self.entries.remove(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(local_block: u64, arrival: f64, bank: usize, row: u64) -> PendingWrite {
        PendingWrite { local_block, bursts: 4, arrival, bank, row }
    }

    #[test]
    fn empty_queue_selects_nothing() {
        let q = WriteQueue::new();
        assert_eq!(q.select(100.0, 10.0, |_| None), None);
        assert!(q.is_empty());
        assert_eq!(q.oldest_arrival(), None);
    }

    #[test]
    fn row_hit_beats_older_miss() {
        let mut q = WriteQueue::new();
        q.push(w(0, 0.0, 0, 7)); // row miss (bank 0 has row 1 open)
        q.push(w(1, 1.0, 0, 1)); // row hit
        let i = q.select(2.0, 1e9, |b| if b == 0 { Some(1) } else { None });
        assert_eq!(i, Some(1), "the row hit wins while nothing is overage");
    }

    #[test]
    fn oldest_wins_among_row_hits_and_among_misses() {
        let mut q = WriteQueue::new();
        q.push(w(0, 0.0, 0, 1)); // hit, oldest
        q.push(w(1, 1.0, 0, 1)); // hit, younger
        assert_eq!(q.select(2.0, 1e9, |_| Some(1)), Some(0));
        let mut q = WriteQueue::new();
        q.push(w(0, 0.0, 0, 5)); // miss, oldest
        q.push(w(1, 1.0, 0, 6)); // miss, younger
        assert_eq!(q.select(2.0, 1e9, |_| Some(1)), Some(0));
    }

    #[test]
    fn age_cap_promotes_the_oldest_over_row_hits() {
        let mut q = WriteQueue::new();
        q.push(w(0, 0.0, 0, 7)); // row miss, old
        q.push(w(1, 1.0, 0, 1)); // row hit
        let open = |b: usize| if b == 0 { Some(1) } else { None };
        assert_eq!(q.select(50.0, 100.0, open), Some(1), "under the cap the hit wins");
        assert_eq!(q.select(150.0, 100.0, open), Some(0), "past the cap the oldest wins");
        assert!(q.oldest_overage(150.0, 100.0));
        assert!(!q.oldest_overage(50.0, 100.0));
    }

    #[test]
    fn remove_preserves_arrival_order() {
        let mut q = WriteQueue::new();
        q.push(w(0, 0.0, 0, 0));
        q.push(w(1, 1.0, 0, 1));
        q.push(w(2, 2.0, 0, 2));
        let e = q.remove(1);
        assert_eq!(e.local_block, 1);
        assert_eq!(q.oldest_arrival(), Some(0.0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.remove(1).local_block, 2);
    }
}

//! Dense address-indexed storage for per-block state.
//!
//! The burst-accounting structures ([`BurstsMap`](crate::mc::BurstsMap),
//! the workload layer's accumulator) key per-block values by
//! [`BlockAddr`]. Block addresses come from [`Region::block_addr`]
//! arithmetic over a handful of contiguous allocations, so the populated
//! address space is a few dense runs — a hash map pays a hash + probe per
//! lookup for structure the data does not have. [`DenseAddrMap`] stores
//! each run as a plain vector behind a compact, sorted *segment
//! directory*: a lookup is one branchless `partition_point` over a
//! directory that in practice holds a single segment, then an index —
//! the same flat-table discipline the hot decode paths already use
//! (PR 1's LUT Huffman), applied to the per-miss timing loop.
//!
//! Sparse address spaces stay compact: an address far from every
//! existing segment opens a new segment instead of growing one vector
//! across the gap, and only gaps of at most [`MAX_BRIDGE_GAP`] cells are
//! bridged with vacant padding.
//!
//! [`Region::block_addr`]: crate::mem::Region::block_addr
//! [`BlockAddr`]: crate::BlockAddr

/// Largest run of missing cells the map will pad with `vacant` values to
/// keep neighbouring segments fused (64 blocks = 8 KB of address space).
/// Anything wider becomes a separate directory entry.
pub const MAX_BRIDGE_GAP: u64 = 64;

/// One contiguous run of cells starting at `start`.
#[derive(Debug, Clone)]
struct Segment<T> {
    start: u64,
    cells: Vec<T>,
}

impl<T> Segment<T> {
    /// One past the last covered address.
    fn end(&self) -> u64 {
        self.start + self.cells.len() as u64
    }
}

/// A map from `u64` addresses to `T` cells, stored as dense per-run
/// vectors behind a sorted segment directory.
///
/// Every address implicitly holds the `vacant` sentinel until written;
/// [`get`](Self::get) returns it for uncovered addresses, and cells
/// holding it are treated as absent by [`iter`](Self::iter) /
/// [`len`](Self::len). Callers must therefore never store the sentinel
/// as a live value.
#[derive(Debug, Clone)]
pub struct DenseAddrMap<T> {
    vacant: T,
    segments: Vec<Segment<T>>,
}

impl<T: Copy + PartialEq> DenseAddrMap<T> {
    /// Creates an empty map whose unwritten cells read back as `vacant`.
    pub fn new(vacant: T) -> Self {
        Self { vacant, segments: Vec::new() }
    }

    /// The vacant sentinel.
    pub fn vacant(&self) -> T {
        self.vacant
    }

    /// The cell at `addr` (`vacant` when never written).
    #[inline]
    pub fn get(&self, addr: u64) -> T {
        let idx = self.segments.partition_point(|s| s.start <= addr);
        if idx == 0 {
            return self.vacant;
        }
        let seg = &self.segments[idx - 1];
        match seg.cells.get((addr - seg.start) as usize) {
            Some(&cell) => cell,
            None => self.vacant,
        }
    }

    /// Writes one cell.
    pub fn set(&mut self, addr: u64, value: T) {
        self.run_slice(addr, 1)[0] = value;
    }

    /// Materialises the contiguous cell run `start..start + len` and
    /// returns it mutably — the bulk path for region-ordered walks, which
    /// touch every cell of a run without a per-cell directory probe.
    ///
    /// Cells never written before read back as `vacant`. Existing
    /// segments overlapping (or within [`MAX_BRIDGE_GAP`] of) the run are
    /// fused into it, preserving their contents.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero.
    pub fn run_slice(&mut self, start: u64, len: usize) -> &mut [T] {
        assert!(len > 0, "empty runs have no slice");
        let end = start + len as u64;
        // Directory window the run must fuse with: every segment whose
        // bridged extent touches [start, end). Both predicates are
        // monotone over the sorted, disjoint directory.
        let lo = self.segments.partition_point(|s| s.end().saturating_add(MAX_BRIDGE_GAP) < start);
        let hi = self.segments.partition_point(|s| s.start <= end.saturating_add(MAX_BRIDGE_GAP));
        if lo == hi {
            // Disjoint from every segment: a fresh directory entry.
            self.segments.insert(lo, Segment { start, cells: vec![self.vacant; len] });
        } else if lo + 1 == hi && self.segments[lo].start <= start {
            // Common case: the run lands in (or extends) one segment.
            let seg = &mut self.segments[lo];
            if end > seg.end() {
                let grown = (end - seg.start) as usize;
                seg.cells.resize(grown, self.vacant);
            }
        } else {
            // General case: fuse the window and the run into one segment.
            let new_start = self.segments[lo].start.min(start);
            let new_end = self.segments[hi - 1].end().max(end);
            let mut cells = vec![self.vacant; (new_end - new_start) as usize];
            for seg in self.segments.drain(lo..hi) {
                let off = (seg.start - new_start) as usize;
                cells[off..off + seg.cells.len()].copy_from_slice(&seg.cells);
            }
            self.segments.insert(lo, Segment { start: new_start, cells });
        }
        let seg = &mut self.segments[lo];
        let off = (start - seg.start) as usize;
        &mut seg.cells[off..off + len]
    }

    /// Occupied (non-vacant) cells in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, T)> + '_ {
        self.segments.iter().flat_map(move |seg| {
            seg.cells
                .iter()
                .enumerate()
                .filter(move |&(_, cell)| *cell != self.vacant)
                .map(move |(i, &cell)| (seg.start + i as u64, cell))
        })
    }

    /// Number of occupied cells (a scan — telemetry, not a hot path).
    pub fn len(&self) -> usize {
        self.segments
            .iter()
            .map(|seg| seg.cells.iter().filter(|&&cell| cell != self.vacant).count())
            .sum()
    }

    /// Whether no cell is occupied.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|seg| seg.cells.iter().all(|&cell| cell == self.vacant))
    }

    /// Number of directory entries (contiguity telemetry for tests).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_reads_vacant_everywhere() {
        let m: DenseAddrMap<u32> = DenseAddrMap::new(u32::MAX);
        assert_eq!(m.get(0), u32::MAX);
        assert_eq!(m.get(u64::MAX), u32::MAX);
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn set_get_roundtrip_and_overwrite() {
        let mut m = DenseAddrMap::new(u32::MAX);
        m.set(10, 3);
        m.set(11, 4);
        m.set(10, 5);
        assert_eq!(m.get(10), 5);
        assert_eq!(m.get(11), 4);
        assert_eq!(m.get(9), u32::MAX);
        assert_eq!(m.get(12), u32::MAX);
        assert_eq!(m.len(), 2);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(10, 5), (11, 4)]);
    }

    #[test]
    fn ascending_contiguous_inserts_stay_one_segment() {
        let mut m = DenseAddrMap::new(0u64);
        for a in 0..10_000u64 {
            m.set(a, a + 1);
        }
        assert_eq!(m.segment_count(), 1);
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.get(9_999), 10_000);
    }

    #[test]
    fn small_gaps_bridge_large_gaps_split() {
        let mut m = DenseAddrMap::new(u32::MAX);
        m.set(0, 1);
        m.set(MAX_BRIDGE_GAP, 2); // gap of MAX_BRIDGE_GAP - 1 vacant cells
        assert_eq!(m.segment_count(), 1, "small gap must bridge");
        m.set(1_000_000, 3);
        assert_eq!(m.segment_count(), 2, "distant address must not bridge");
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(1), u32::MAX, "bridged padding reads vacant");
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(0, 1), (MAX_BRIDGE_GAP, 2), (1_000_000, 3)]);
    }

    #[test]
    fn out_of_order_and_overlapping_runs_fuse() {
        let mut m = DenseAddrMap::new(u32::MAX);
        for (i, cell) in m.run_slice(100, 4).iter_mut().enumerate() {
            *cell = 100 + i as u32;
        }
        for (i, cell) in m.run_slice(96, 8).iter_mut().enumerate() {
            if *cell == u32::MAX {
                *cell = 200 + i as u32;
            }
        }
        assert_eq!(m.segment_count(), 1);
        // Overlap preserved the first run's contents.
        assert_eq!(m.get(100), 100);
        assert_eq!(m.get(103), 103);
        assert_eq!(m.get(96), 200);
        assert_eq!(m.get(97), 201);
    }

    #[test]
    fn fusing_three_segments_preserves_all_contents() {
        let mut m = DenseAddrMap::new(u32::MAX);
        m.set(0, 1);
        m.set(500, 2);
        m.set(1000, 3);
        assert_eq!(m.segment_count(), 3);
        // A run spanning all three fuses them into one.
        for cell in m.run_slice(0, 1001).iter_mut() {
            if *cell == u32::MAX {
                *cell = 9;
            }
        }
        assert_eq!(m.segment_count(), 1);
        assert_eq!(m.get(0), 1);
        assert_eq!(m.get(500), 2);
        assert_eq!(m.get(1000), 3);
        assert_eq!(m.get(250), 9);
        assert_eq!(m.len(), 1001);
    }

    #[test]
    fn descending_inserts_remain_correct() {
        let mut m = DenseAddrMap::new(u32::MAX);
        for a in (0..1000u64).rev() {
            m.set(a, a as u32);
        }
        assert_eq!(m.len(), 1000);
        for a in 0..1000u64 {
            assert_eq!(m.get(a), a as u32);
        }
        assert_eq!(m.segment_count(), 1, "adjacent backward inserts fuse");
    }

    #[test]
    #[should_panic(expected = "empty runs")]
    fn zero_length_runs_are_rejected() {
        DenseAddrMap::new(0u32).run_slice(0, 0);
    }
}

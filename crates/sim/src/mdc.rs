//! The metadata cache (MDC) of Fig. 3.
//!
//! "As the number of bursts varies from 1 to 4, we store 2 bits in MDC."
//! Metadata lives in DRAM: one 32 B metadata line packs the 2-bit burst
//! counts of 128 consecutive blocks (16 KB of data). The MDC caches those
//! lines in the memory controller; a miss costs one extra metadata burst
//! on the channel the line's own DRAM address maps to (see
//! `slc_sim::dram::META_BLOCK_BASE` for the addressing scheme).
//!
//! Write-backs *update* metadata (the block's burst count changes with
//! its newly compressed size), so lines track a dirty bit: evicting a
//! dirty line must store the 32 B line back to DRAM — dropping it would
//! lose the update — and whatever is dirty at end of kernel drains then.
//! The cache is also the single source of truth for its own hit/miss
//! counters; `SimStats` surfaces them at harvest time instead of keeping
//! a parallel tally.

use crate::BlockAddr;

/// Blocks covered by one metadata line: 32 B × 8 bits / 2 bits per block.
pub const BLOCKS_PER_META_LINE: u64 = 128;

/// Result of an MDC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdcOutcome {
    /// Metadata line resident: burst count known immediately.
    Hit,
    /// Metadata line absent: one metadata burst must be fetched, and a
    /// dirty victim (if any) must be written back to DRAM first.
    Miss {
        /// Line index of the evicted entry whose update would otherwise
        /// be lost; `None` when the slot was empty or clean.
        evicted_dirty_line: Option<u64>,
    },
}

/// One resident metadata line.
#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    dirty: bool,
}

/// Direct-mapped metadata cache with per-line dirty state.
#[derive(Debug, Clone)]
pub struct MetadataCache {
    entries: Vec<Option<Entry>>,
    hits: u64,
    misses: u64,
}

impl MetadataCache {
    /// Creates an MDC with `entries` metadata lines.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "MDC entries must be a power of two");
        Self { entries: vec![None; entries], hits: 0, misses: 0 }
    }

    /// Metadata line index of a block.
    pub fn line_of(block: BlockAddr) -> u64 {
        block / BLOCKS_PER_META_LINE
    }

    /// Looks up the metadata line covering `block`, installing it on miss.
    /// `dirty` marks the line as updated (a write-back changed the
    /// block's burst count); fetch-path lookups pass `false`.
    pub fn access(&mut self, block: BlockAddr, dirty: bool) -> MdcOutcome {
        let line = Self::line_of(block);
        let idx = (line as usize) & (self.entries.len() - 1);
        if let Some(entry) = &mut self.entries[idx] {
            if entry.line == line {
                self.hits += 1;
                entry.dirty |= dirty;
                return MdcOutcome::Hit;
            }
        }
        let evicted_dirty_line =
            self.entries[idx].filter(|victim| victim.dirty).map(|victim| victim.line);
        self.entries[idx] = Some(Entry { line, dirty });
        self.misses += 1;
        MdcOutcome::Miss { evicted_dirty_line }
    }

    /// Marks every resident line clean and returns the lines that were
    /// dirty, in slot order — the end-of-kernel metadata drain.
    pub fn drain_dirty(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for entry in self.entries.iter_mut().flatten() {
            if entry.dirty {
                entry.dirty = false;
                dirty.push(entry.line);
            }
        }
        dirty
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(outcome: MdcOutcome) -> bool {
        matches!(outcome, MdcOutcome::Miss { .. })
    }

    #[test]
    fn blocks_share_metadata_lines() {
        let mut mdc = MetadataCache::new(64);
        assert!(miss(mdc.access(0, false)));
        // The next 127 blocks share the same line.
        for b in 1..BLOCKS_PER_META_LINE {
            assert_eq!(mdc.access(b, false), MdcOutcome::Hit, "block {b}");
        }
        assert!(miss(mdc.access(BLOCKS_PER_META_LINE, false)));
        assert_eq!(mdc.misses(), 2);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut mdc = MetadataCache::new(2);
        assert!(miss(mdc.access(0, false))); // line 0 -> idx 0
        assert!(miss(mdc.access(2 * BLOCKS_PER_META_LINE, false))); // line 2 -> idx 0
        assert!(miss(mdc.access(0, false)), "line 0 was evicted");
    }

    #[test]
    fn clean_evictions_write_nothing_back() {
        let mut mdc = MetadataCache::new(2);
        assert_eq!(mdc.access(0, false), MdcOutcome::Miss { evicted_dirty_line: None });
        assert_eq!(
            mdc.access(2 * BLOCKS_PER_META_LINE, false),
            MdcOutcome::Miss { evicted_dirty_line: None },
            "the victim was never written"
        );
    }

    #[test]
    fn dirty_eviction_surfaces_the_victim_line() {
        let mut mdc = MetadataCache::new(2);
        mdc.access(0, true); // line 0 dirty
        assert_eq!(
            mdc.access(2 * BLOCKS_PER_META_LINE, false),
            MdcOutcome::Miss { evicted_dirty_line: Some(0) }
        );
        // The replacement installed clean: evicting it again is silent.
        assert_eq!(mdc.access(0, false), MdcOutcome::Miss { evicted_dirty_line: None });
    }

    #[test]
    fn hits_accumulate_dirtiness() {
        let mut mdc = MetadataCache::new(2);
        mdc.access(0, false); // clean install
        assert_eq!(mdc.access(1, true), MdcOutcome::Hit, "same line");
        assert_eq!(
            mdc.access(2 * BLOCKS_PER_META_LINE, false),
            MdcOutcome::Miss { evicted_dirty_line: Some(0) },
            "the hit dirtied the resident line"
        );
    }

    #[test]
    fn drain_returns_each_dirty_line_once() {
        let mut mdc = MetadataCache::new(4);
        mdc.access(0, true); // line 0
        mdc.access(BLOCKS_PER_META_LINE, false); // line 1, clean
        mdc.access(2 * BLOCKS_PER_META_LINE, true); // line 2
        assert_eq!(mdc.drain_dirty(), vec![0, 2]);
        assert_eq!(mdc.drain_dirty(), Vec::<u64>::new(), "drain cleans the lines");
    }

    #[test]
    fn streaming_hit_rate_is_high() {
        let mut mdc = MetadataCache::new(512);
        for b in 0..10_000u64 {
            mdc.access(b, false);
        }
        assert!(mdc.hit_rate() > 0.99, "got {}", mdc.hit_rate());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = MetadataCache::new(100);
    }
}

//! The metadata cache (MDC) of Fig. 3.
//!
//! "As the number of bursts varies from 1 to 4, we store 2 bits in MDC."
//! Metadata lives in DRAM: one 32 B metadata line packs the 2-bit burst
//! counts of 128 consecutive blocks (16 KB of data). The MDC caches those
//! lines in the memory controller; a miss costs one extra metadata burst
//! on the channel the line's own DRAM address maps to (see
//! `slc_sim::dram::META_BLOCK_BASE` for the addressing scheme).

use crate::BlockAddr;

/// Blocks covered by one metadata line: 32 B × 8 bits / 2 bits per block.
pub const BLOCKS_PER_META_LINE: u64 = 128;

/// Result of an MDC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdcOutcome {
    /// Metadata line resident: burst count known immediately.
    Hit,
    /// Metadata line absent: one metadata burst must be fetched.
    Miss,
}

/// Direct-mapped metadata cache.
#[derive(Debug, Clone)]
pub struct MetadataCache {
    tags: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
}

impl MetadataCache {
    /// Creates an MDC with `entries` metadata lines.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "MDC entries must be a power of two");
        Self { tags: vec![None; entries], hits: 0, misses: 0 }
    }

    /// Metadata line index of a block.
    pub fn line_of(block: BlockAddr) -> u64 {
        block / BLOCKS_PER_META_LINE
    }

    /// Looks up the metadata line covering `block`, installing it on miss.
    pub fn access(&mut self, block: BlockAddr) -> MdcOutcome {
        let line = Self::line_of(block);
        let idx = (line as usize) & (self.tags.len() - 1);
        if self.tags[idx] == Some(line) {
            self.hits += 1;
            MdcOutcome::Hit
        } else {
            self.tags[idx] = Some(line);
            self.misses += 1;
            MdcOutcome::Miss
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_share_metadata_lines() {
        let mut mdc = MetadataCache::new(64);
        assert_eq!(mdc.access(0), MdcOutcome::Miss);
        // The next 127 blocks share the same line.
        for b in 1..BLOCKS_PER_META_LINE {
            assert_eq!(mdc.access(b), MdcOutcome::Hit, "block {b}");
        }
        assert_eq!(mdc.access(BLOCKS_PER_META_LINE), MdcOutcome::Miss);
        assert_eq!(mdc.misses(), 2);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut mdc = MetadataCache::new(2);
        assert_eq!(mdc.access(0), MdcOutcome::Miss); // line 0 -> idx 0
        assert_eq!(mdc.access(2 * BLOCKS_PER_META_LINE), MdcOutcome::Miss); // line 2 -> idx 0
        assert_eq!(mdc.access(0), MdcOutcome::Miss, "line 0 was evicted");
    }

    #[test]
    fn streaming_hit_rate_is_high() {
        let mut mdc = MetadataCache::new(512);
        for b in 0..10_000u64 {
            mdc.access(b);
        }
        assert!(mdc.hit_rate() > 0.99, "got {}", mdc.hit_rate());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = MetadataCache::new(100);
    }
}

//! GDDR5 channel timing model with a per-channel request scheduler.
//!
//! Each 32-bit channel has its own command/data bus and banks with open
//! rows. A block access pays the row-hit (CAS) or row-miss
//! (precharge + activate + CAS) latency, then occupies the data bus for
//! `bursts × burst_time`. Bandwidth contention — the effect SLC exploits —
//! emerges from the data-bus occupancy; queueing delay from the bus
//! horizon and the write buffer.
//!
//! # Scheduling
//!
//! The channel arbitrates under a [`sched::SchedPolicy`] chosen by
//! [`GpuConfig::sched_policy`]:
//!
//! * [`InOrder`](sched::SchedPolicy::InOrder) — the legacy model: every
//!   request (read or write) is serviced immediately at arrival, so a
//!   write occupies the bus ahead of any younger read. Kept bit-exact so
//!   refactors can land verified against it before behaviour changes.
//! * [`FrFcfs`](sched::SchedPolicy::FrFcfs) — reads are serviced at
//!   arrival with read-over-write priority; writes buffer in a bounded
//!   per-channel [`sched::WriteQueue`] and drain row-hit-first
//!   (oldest-first among equals) when the high watermark is reached, when
//!   the bus is idle at the next arrival (read-idle drain), and fully at
//!   end of kernel. A starvation cap ([`GpuConfig::sched_age_cap`])
//!   promotes any write older than the cap over every row hit — and over
//!   an arriving read — so no request is reordered past its age bound.
//!
//! Row outcomes and queueing delay are counted **here**, at the moment a
//! request is actually serviced (under FR-FCFS a write's row outcome is
//! only decided at drain time); the memory controller harvests
//! [`ChannelTelemetry`] into `SimStats` rather than keeping parallel
//! counters.

pub mod sched;

use crate::config::GpuConfig;
use crate::mdc::MetadataCache;
use crate::BlockAddr;
use sched::{PendingWrite, SchedPolicy, WriteQueue};

/// First block address of the metadata region.
///
/// Compression metadata (the 2-bit burst counts, packed 128 blocks to a
/// 32 B line) lives in DRAM like any other data, but **not** in the data
/// blocks' rows: metadata line `l` resides at block address
/// `META_BLOCK_BASE + l` and is routed through the ordinary channel
/// interleaving — its *own* address picks its channel, bank and row,
/// exactly like any other DRAM resident. Consequently a metadata-line
/// access opens a metadata row (it can never turn the following data
/// access into a free row hit), consecutive lines spread round-robin
/// over all channels instead of hot-spotting the requester's channel,
/// and a metadata fetch may cross channels — the unified controller
/// model reads the line from wherever it lives. Data blocks stay far
/// below this base (2^40 blocks = 128 TiB).
pub const META_BLOCK_BASE: u64 = 1 << 40;

/// First block address of the spare-region pool (fault remapping).
///
/// Spare slot `s` resides at block address `SPARE_BLOCK_BASE + s` and is
/// routed through the ordinary channel interleaving exactly like the
/// metadata region: the slot's *own* address picks its channel, bank and
/// row, so remapped traffic contends for real banks and buses instead of
/// teleporting. Disjoint from both the data region (far below) and the
/// metadata region (`2^40..2^41` covers every metadata line long before
/// this base).
pub const SPARE_BLOCK_BASE: u64 = 1 << 41;

/// One DRAM bank: open row + availability horizon.
#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: f64,
}

/// Outcome of a channel access, in SM cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramAccess {
    /// When the data transfer completes.
    pub done: f64,
    /// Whether the open row matched.
    pub row_hit: bool,
}

/// Counters a channel accumulates while servicing requests.
///
/// Row outcomes are counted per serviced access command — data blocks
/// *and* metadata lines (an activate costs the same row cycle either way,
/// and the counters feed the row-activation energy term).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelTelemetry {
    /// Accesses that found their row open.
    pub row_hits: u64,
    /// Accesses that paid precharge + activate.
    pub row_misses: u64,
    /// SM cycles requests spent waiting on a busy bank or data bus beyond
    /// the pure access latency (queueing delay; buffered writes count
    /// from their arrival).
    pub queue_wait: f64,
    /// Writes serviced out of the FR-FCFS write buffer.
    pub write_drains: u64,
    /// Of [`write_drains`](Self::write_drains), those forced by the high
    /// watermark or the starvation age cap rather than an idle bus or the
    /// end-of-kernel drain.
    pub write_drain_forced: u64,
}

impl ChannelTelemetry {
    /// Folds another channel's counters into this one.
    pub fn add(&mut self, other: &ChannelTelemetry) {
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.queue_wait += other.queue_wait;
        self.write_drains += other.write_drains;
        self.write_drain_forced += other.write_drain_forced;
    }
}

/// One GDDR5 channel.
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<Bank>,
    /// Data bus horizon: the bus serialises all bursts.
    free_at: f64,
    burst_cycles: f64,
    row_hit_cycles: f64,
    row_miss_cycles: f64,
    row_blocks: u64,
    policy: SchedPolicy,
    writes: WriteQueue,
    write_capacity: usize,
    age_cap: f64,
    telemetry: ChannelTelemetry,
}

impl Channel {
    /// Creates a channel from the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        assert!(
            cfg.sched_policy == SchedPolicy::InOrder || cfg.write_buffer_entries >= 2,
            "FR-FCFS write buffer needs room to buffer and drain"
        );
        Self {
            banks: vec![Bank::default(); cfg.banks_per_channel],
            free_at: 0.0,
            burst_cycles: cfg.burst_sm_cycles(),
            row_hit_cycles: cfg.row_hit_sm_cycles(),
            row_miss_cycles: cfg.row_miss_sm_cycles(),
            row_blocks: cfg.row_blocks,
            policy: cfg.sched_policy,
            writes: WriteQueue::new(),
            write_capacity: cfg.write_buffer_entries,
            age_cap: cfg.sched_age_cap as f64,
            telemetry: ChannelTelemetry::default(),
        }
    }

    /// Bank and row of a channel-local block index.
    fn locate(&self, local_block: u64) -> (usize, u64) {
        let row_group = local_block / self.row_blocks;
        let bank = (row_group as usize) % self.banks.len();
        let row = row_group / self.banks.len() as u64;
        (bank, row)
    }

    /// Services one request *now*: the bank opens the row (hit or miss),
    /// the data bus is granted once free, and the channel state advances.
    /// This is the legacy in-order arithmetic, shared verbatim by both
    /// policies — FR-FCFS only changes *which* request is serviced next.
    fn service(&mut self, local_block: u64, bursts: u32, at: f64) -> DramAccess {
        let (bank_idx, row) = self.locate(local_block);
        let bank = &mut self.banks[bank_idx];
        let start = at.max(bank.ready_at);
        let row_hit = bank.open_row == Some(row);
        let access_latency = if row_hit { self.row_hit_cycles } else { self.row_miss_cycles };
        // Data leaves once the bank has the row open *and* the shared data
        // bus frees up. Column accesses pipeline: successive row hits are
        // serialised only by the data bus; a row miss occupies the bank
        // for precharge + activate before the next command.
        let data_start = (start + access_latency).max(self.free_at);
        let done = data_start + self.burst_cycles * f64::from(bursts);
        self.free_at = done;
        bank.open_row = Some(row);
        if !row_hit {
            bank.ready_at = start + (self.row_miss_cycles - self.row_hit_cycles);
        }
        if row_hit {
            self.telemetry.row_hits += 1;
        } else {
            self.telemetry.row_misses += 1;
        }
        self.telemetry.queue_wait += data_start - at - access_latency;
        DramAccess { done, row_hit }
    }

    /// Picks the next buffered write by FR-FCFS arbitration and services
    /// it at its arrival time (bank/bus maxima handle the waiting).
    fn service_next_write(&mut self, now: f64, forced: bool) {
        let banks = &self.banks;
        let Some(i) = self.writes.select(now, self.age_cap, |b| banks[b].open_row) else {
            return;
        };
        let w = self.writes.remove(i);
        self.service(w.local_block, w.bursts, w.arrival);
        self.telemetry.write_drains += 1;
        if forced {
            self.telemetry.write_drain_forced += 1;
        }
    }

    /// Drains buffered writes that must or may go ahead of a read
    /// arriving at `at`: overage writes first (starvation cap), then
    /// opportunistic drains while the bus is idle before the arrival.
    fn drain_before(&mut self, at: f64) {
        while self.writes.oldest_overage(at, self.age_cap) {
            self.service_next_write(at, true);
        }
        // Read-idle drain: the bus has been idle since `free_at`, so
        // buffered writes soak up the dead time. The last one may overrun
        // slightly past `at` — the controller cannot see a future read
        // coming — which is exactly the overrun a real scheduler risks.
        while self.free_at < at && !self.writes.is_empty() {
            self.service_next_write(at, false);
        }
    }

    /// Services a read of `bursts` bursts to channel-local block
    /// `local_block`, arriving at time `at` (SM cycles). Reads resolve at
    /// arrival under both policies; under FR-FCFS they bypass every
    /// buffered write younger than the age cap.
    pub fn read(&mut self, local_block: u64, bursts: u32, at: f64) -> DramAccess {
        if self.policy == SchedPolicy::FrFcfs {
            self.drain_before(at);
        }
        self.service(local_block, bursts, at)
    }

    /// Accepts a write of `bursts` bursts to `local_block` at time `at`.
    ///
    /// Under `InOrder` the write is serviced immediately (legacy
    /// behaviour) and its outcome returned; under `FrFcfs` it buffers in
    /// the write queue — draining to half capacity first when the queue
    /// is at its high watermark — and `None` is returned (row outcome and
    /// bus occupancy materialise at drain time).
    pub fn write(&mut self, local_block: u64, bursts: u32, at: f64) -> Option<DramAccess> {
        match self.policy {
            SchedPolicy::InOrder => Some(self.service(local_block, bursts, at)),
            SchedPolicy::FrFcfs => {
                // The starvation cap is enforced at *every* channel event,
                // not just read arrivals: overage writes leave first.
                while self.writes.oldest_overage(at, self.age_cap) {
                    self.service_next_write(at, true);
                }
                while self.free_at < at && !self.writes.is_empty() {
                    self.service_next_write(at, false);
                }
                let (bank, row) = self.locate(local_block);
                self.writes.push(PendingWrite { local_block, bursts, arrival: at, bank, row });
                if self.writes.len() >= self.write_capacity {
                    while self.writes.len() > self.write_capacity / 2 {
                        self.service_next_write(at, true);
                    }
                }
                None
            }
        }
    }

    /// Drains every buffered write (end of kernel), in FR-FCFS order.
    pub fn drain_writes(&mut self, now: f64) {
        while !self.writes.is_empty() {
            self.service_next_write(now, false);
        }
    }

    /// Buffered writes not yet serviced.
    pub fn pending_writes(&self) -> usize {
        self.writes.len()
    }

    /// Arrival time of the oldest buffered write, if any.
    pub fn oldest_pending_arrival(&self) -> Option<f64> {
        self.writes.oldest_arrival()
    }

    /// The data-bus horizon (for utilisation telemetry).
    pub fn free_at(&self) -> f64 {
        self.free_at
    }

    /// Counters accumulated so far.
    pub fn telemetry(&self) -> &ChannelTelemetry {
        &self.telemetry
    }
}

/// The pool of channels with the global address interleaving.
#[derive(Debug, Clone)]
pub struct Dram {
    channels: Vec<Channel>,
}

impl Dram {
    /// Creates all channels of the configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        Self { channels: (0..cfg.channels()).map(|_| Channel::new(cfg)).collect() }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Channel index and channel-local block of a global block address
    /// (fine-grained block interleaving spreads streams over channels).
    pub fn map(&self, block: BlockAddr) -> (usize, u64) {
        let n = self.channels.len() as u64;
        ((block % n) as usize, block / n)
    }

    /// Services a read, returning its completion and row outcome.
    pub fn read(&mut self, block: BlockAddr, bursts: u32, at: f64) -> DramAccess {
        debug_assert!(block < META_BLOCK_BASE, "data block collides with the metadata region");
        let (ch, local) = self.map(block);
        self.channels[ch].read(local, bursts, at)
    }

    /// Hands a write to its channel's scheduler (serviced immediately
    /// under `InOrder`, buffered under `FrFcfs`).
    pub fn write(&mut self, block: BlockAddr, bursts: u32, at: f64) -> Option<DramAccess> {
        debug_assert!(block < META_BLOCK_BASE, "data block collides with the metadata region");
        let (ch, local) = self.map(block);
        self.channels[ch].write(local, bursts, at)
    }

    /// Services the one-burst fetch of the 32 B metadata line covering
    /// `block`, returning its completion and row outcome.
    ///
    /// The line lives at [`META_BLOCK_BASE`]` + `[`MetadataCache::line_of`]
    /// and takes the ordinary interleaved path: its own address picks the
    /// channel, bank and row (see [`META_BLOCK_BASE`]), so the burst
    /// contends with that channel's data bus and row machinery like any
    /// other access, and it never pre-opens the data block's row.
    pub fn read_metadata(&mut self, block: BlockAddr, at: f64) -> DramAccess {
        let meta = META_BLOCK_BASE + MetadataCache::line_of(block);
        let (ch, local) = self.map(meta);
        self.channels[ch].read(local, 1, at)
    }

    /// Hands the one-burst write-back of metadata line `line` to the
    /// line's own channel (dirty MDC eviction). Routed exactly like
    /// [`read_metadata`](Self::read_metadata), just on the write path.
    pub fn write_metadata_line(&mut self, line: u64, at: f64) -> Option<DramAccess> {
        let meta = META_BLOCK_BASE + line;
        let (ch, local) = self.map(meta);
        self.channels[ch].write(local, 1, at)
    }

    /// Services a read of spare slot `slot` (a fault-remapped block's
    /// data), routed like any other resident through the slot's own
    /// address — see [`SPARE_BLOCK_BASE`].
    pub fn read_spare(&mut self, slot: u32, bursts: u32, at: f64) -> DramAccess {
        let (ch, local) = self.map(SPARE_BLOCK_BASE + u64::from(slot));
        self.channels[ch].read(local, bursts, at)
    }

    /// Hands a write of spare slot `slot` to the slot's channel, routed
    /// exactly like [`read_spare`](Self::read_spare) on the write path.
    pub fn write_spare(&mut self, slot: u32, bursts: u32, at: f64) -> Option<DramAccess> {
        let (ch, local) = self.map(SPARE_BLOCK_BASE + u64::from(slot));
        self.channels[ch].write(local, bursts, at)
    }

    /// Drains every channel's buffered writes (end of kernel).
    pub fn drain_writes(&mut self, now: f64) {
        for ch in &mut self.channels {
            ch.drain_writes(now);
        }
    }

    /// Buffered writes not yet serviced, over all channels.
    pub fn pending_writes(&self) -> usize {
        self.channels.iter().map(Channel::pending_writes).sum()
    }

    /// Summed counters over all channels.
    pub fn telemetry(&self) -> ChannelTelemetry {
        let mut total = ChannelTelemetry::default();
        for ch in &self.channels {
            total.add(ch.telemetry());
        }
        total
    }

    /// Latest data-bus horizon over all channels.
    ///
    /// Meaningful as an end-of-run horizon only once buffered writes are
    /// drained ([`drain_writes`](Self::drain_writes)).
    pub fn horizon(&self) -> f64 {
        self.channels.iter().map(Channel::free_at).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    fn cfg_with(policy: SchedPolicy) -> GpuConfig {
        GpuConfig { sched_policy: policy, ..GpuConfig::default() }
    }

    #[test]
    fn first_access_pays_row_miss() {
        for policy in [SchedPolicy::InOrder, SchedPolicy::FrFcfs] {
            let mut ch = Channel::new(&cfg_with(policy));
            let a = ch.read(0, 4, 0.0);
            assert!(!a.row_hit);
            let expect = cfg().row_miss_sm_cycles() + 4.0 * cfg().burst_sm_cycles();
            assert!((a.done - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn same_row_hits_after_open() {
        let mut ch = Channel::new(&cfg());
        ch.read(0, 4, 0.0);
        let a = ch.read(1, 4, 1000.0);
        assert!(a.row_hit, "block 1 lives in the same 2 KB row");
        assert_eq!(ch.telemetry().row_hits, 1);
        assert_eq!(ch.telemetry().row_misses, 1);
    }

    #[test]
    fn different_row_same_bank_misses() {
        let mut ch = Channel::new(&cfg());
        ch.read(0, 4, 0.0);
        // Same bank reappears after banks * row_blocks blocks.
        let stride = cfg().banks_per_channel as u64 * cfg().row_blocks;
        let a = ch.read(stride, 4, 1000.0);
        assert!(!a.row_hit);
    }

    #[test]
    fn data_bus_serialises_bursts() {
        let mut ch = Channel::new(&cfg());
        // Two simultaneous accesses to different banks: second waits for
        // the data bus.
        let a = ch.read(0, 4, 0.0);
        let b = ch.read(16, 4, 0.0); // different bank (row group 1)
        assert!(b.done >= a.done + 4.0 * cfg().burst_sm_cycles() - 1e-9);
        assert!(ch.telemetry().queue_wait > 0.0, "the second read queued on the bus");
    }

    #[test]
    fn fewer_bursts_finish_sooner() {
        let mut ch1 = Channel::new(&cfg());
        let mut ch4 = Channel::new(&cfg());
        let t1 = ch1.read(0, 1, 0.0).done;
        let t4 = ch4.read(0, 4, 0.0).done;
        assert!(t1 < t4);
        assert!((t4 - t1 - 3.0 * cfg().burst_sm_cycles()).abs() < 1e-9);
    }

    #[test]
    fn inorder_services_writes_immediately() {
        let mut ch = Channel::new(&cfg_with(SchedPolicy::InOrder));
        let a = ch.write(0, 4, 0.0).expect("InOrder writes are serviced at arrival");
        assert!(!a.row_hit);
        assert_eq!(ch.pending_writes(), 0);
        assert!(ch.free_at() > 0.0);
    }

    #[test]
    fn frfcfs_buffers_writes_until_drained() {
        let mut ch = Channel::new(&cfg_with(SchedPolicy::FrFcfs));
        assert!(ch.write(0, 4, 0.0).is_none(), "FR-FCFS buffers the write");
        assert_eq!(ch.pending_writes(), 1);
        assert_eq!(ch.free_at(), 0.0, "nothing has touched the bus yet");
        ch.drain_writes(0.0);
        assert_eq!(ch.pending_writes(), 0);
        assert!(ch.free_at() > 0.0);
        assert_eq!(ch.telemetry().write_drains, 1);
        assert_eq!(ch.telemetry().write_drain_forced, 0);
    }

    #[test]
    fn read_bypasses_buffered_writes() {
        // A queued write to a far row must not delay a younger read under
        // FR-FCFS; under InOrder the write occupies the bus first.
        let far = cfg().banks_per_channel as u64 * cfg().row_blocks;
        let in_order = {
            let mut ch = Channel::new(&cfg_with(SchedPolicy::InOrder));
            ch.write(far, 4, 0.0);
            ch.read(0, 4, 0.0).done
        };
        let frfcfs = {
            let mut ch = Channel::new(&cfg_with(SchedPolicy::FrFcfs));
            ch.write(far, 4, 0.0);
            ch.read(0, 4, 0.0).done
        };
        assert!(
            frfcfs < in_order,
            "read-over-write priority must shorten the read: {frfcfs} vs {in_order}"
        );
    }

    #[test]
    fn watermark_drains_to_half_capacity() {
        let cfg = cfg_with(SchedPolicy::FrFcfs);
        let mut ch = Channel::new(&cfg);
        for i in 0..cfg.write_buffer_entries {
            ch.write(i as u64, 4, 0.0);
        }
        assert_eq!(
            ch.pending_writes(),
            cfg.write_buffer_entries / 2,
            "hitting the high watermark drains to half capacity"
        );
        assert!(ch.telemetry().write_drain_forced > 0);
    }

    #[test]
    fn age_cap_forces_stale_writes_ahead_of_reads() {
        let cfg = cfg_with(SchedPolicy::FrFcfs);
        let mut ch = Channel::new(&cfg);
        // Saturate the bus so the idle drain never triggers: the write
        // can only leave via the starvation cap.
        for i in 0..400u64 {
            ch.read(i * 2, 4, 0.0);
        }
        assert!(ch.free_at() > cfg.sched_age_cap as f64 + 100.0);
        ch.write(1, 4, 10.0);
        // Just under the cap: reads keep bypassing the buffered write.
        ch.read(3, 4, 10.0 + cfg.sched_age_cap as f64 - 1.0);
        assert_eq!(ch.pending_writes(), 1);
        // Past the cap: the stale write is forced out ahead of the read.
        ch.read(5, 4, 11.0 + cfg.sched_age_cap as f64);
        assert_eq!(ch.pending_writes(), 0);
        assert_eq!(ch.telemetry().write_drain_forced, 1);
    }

    #[test]
    fn idle_bus_drains_writes_before_a_read() {
        let cfg = cfg_with(SchedPolicy::FrFcfs);
        let mut ch = Channel::new(&cfg);
        ch.write(0, 4, 0.0);
        // The bus is idle between 0 and the read's arrival (which stays
        // inside the age cap), so the write drains opportunistically (not
        // force-counted) and the read still starts unobstructed.
        let at = 500.0;
        assert!(at < cfg.sched_age_cap as f64);
        let read = ch.read(16, 4, at);
        assert_eq!(ch.pending_writes(), 0);
        assert_eq!(ch.telemetry().write_drains, 1);
        assert_eq!(ch.telemetry().write_drain_forced, 0);
        let expect = at + cfg.row_miss_sm_cycles() + 4.0 * cfg.burst_sm_cycles();
        assert!((read.done - expect).abs() < 1e-9, "read unobstructed: {}", read.done);
    }

    #[test]
    fn drain_groups_row_hits() {
        // Writes ping-ponging between two rows of one bank: buffered
        // FR-FCFS drain groups them per row, the in-order service
        // activates on every single write.
        let far = cfg().banks_per_channel as u64 * cfg().row_blocks;
        let mut in_order = Channel::new(&cfg_with(SchedPolicy::InOrder));
        let mut frfcfs = Channel::new(&cfg_with(SchedPolicy::FrFcfs));
        for i in 0..6u64 {
            let block = if i % 2 == 0 { i / 2 } else { far + i / 2 };
            in_order.write(block, 4, 0.0);
            frfcfs.write(block, 4, 0.0);
        }
        frfcfs.drain_writes(0.0);
        assert_eq!(in_order.telemetry().row_misses, 6, "ping-pong activates every time");
        assert!(
            frfcfs.telemetry().row_misses < 6,
            "row-hit-first drain must group rows: {} activates",
            frfcfs.telemetry().row_misses
        );
    }

    #[test]
    fn interleaving_spreads_consecutive_blocks() {
        let dram = Dram::new(&cfg());
        let n = dram.channels();
        assert_eq!(n, 12);
        let (c0, l0) = dram.map(0);
        let (c1, _) = dram.map(1);
        assert_ne!(c0, c1, "adjacent blocks go to different channels");
        assert_eq!(dram.map(n as u64), (c0, l0 + 1));
    }

    #[test]
    fn parallel_channels_do_not_serialise() {
        let mut dram = Dram::new(&cfg());
        let a = dram.read(0, 4, 0.0);
        let b = dram.read(1, 4, 0.0);
        // Different channels: both finish at the single-access time.
        assert!((a.done - b.done).abs() < 1e-9);
    }

    #[test]
    fn metadata_writeback_routes_by_line_address() {
        let mut dram = Dram::new(&cfg_with(SchedPolicy::FrFcfs));
        dram.write_metadata_line(0, 0.0);
        assert_eq!(dram.pending_writes(), 1);
        dram.drain_writes(0.0);
        assert_eq!(dram.pending_writes(), 0);
        let t = dram.telemetry();
        assert_eq!(t.row_misses, 1, "the line's own row activates");
    }

    #[test]
    fn throughput_matches_bandwidth() {
        // Saturate one channel with row hits and check achieved bytes per
        // SM cycle approaches the configured per-channel rate.
        let c = cfg();
        let mut ch = Channel::new(&c);
        let accesses = 10_000u64;
        let mut done = 0.0;
        for i in 0..accesses {
            done = ch.read(i, 4, 0.0).done;
        }
        let bytes = accesses as f64 * 128.0;
        let per_cycle = bytes / done;
        // Per channel: 16 B per memory cycle = 16 / ratio per SM cycle.
        let peak = 16.0 / c.sm_cycles_per_mem_cycle();
        assert!(per_cycle > 0.9 * peak, "achieved {per_cycle:.2} vs peak {peak:.2}");
        assert!(per_cycle <= peak + 1e-9);
    }
}

//! GDDR5 channel timing model.
//!
//! Each 32-bit channel has its own command/data bus and banks with open
//! rows. A block access pays the row-hit (CAS) or row-miss
//! (precharge + activate + CAS) latency, then occupies the data bus for
//! `bursts × burst_time`. Bandwidth contention — the effect SLC exploits —
//! emerges from the data-bus occupancy; queueing delay from the
//! `free_at` horizon.

use crate::config::GpuConfig;
use crate::mdc::MetadataCache;
use crate::BlockAddr;

/// First block address of the metadata region.
///
/// Compression metadata (the 2-bit burst counts, packed 128 blocks to a
/// 32 B line) lives in DRAM like any other data, but **not** in the data
/// blocks' rows: metadata line `l` resides at block address
/// `META_BLOCK_BASE + l` and is routed through the ordinary channel
/// interleaving — its *own* address picks its channel, bank and row,
/// exactly like any other DRAM resident. Consequently a metadata-line
/// access opens a metadata row (it can never turn the following data
/// access into a free row hit), consecutive lines spread round-robin
/// over all channels instead of hot-spotting the requester's channel,
/// and a metadata fetch may cross channels — the unified controller
/// model reads the line from wherever it lives. Data blocks stay far
/// below this base (2^40 blocks = 128 TiB).
pub const META_BLOCK_BASE: u64 = 1 << 40;

/// One DRAM bank: open row + availability horizon.
#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: f64,
}

/// Outcome of a channel access, in SM cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramAccess {
    /// When the data transfer completes.
    pub done: f64,
    /// Whether the open row matched.
    pub row_hit: bool,
}

/// One GDDR5 channel.
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<Bank>,
    /// Data bus horizon: the bus serialises all bursts.
    free_at: f64,
    burst_cycles: f64,
    row_hit_cycles: f64,
    row_miss_cycles: f64,
    row_blocks: u64,
}

impl Channel {
    /// Creates a channel from the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        Self {
            banks: vec![Bank::default(); cfg.banks_per_channel],
            free_at: 0.0,
            burst_cycles: cfg.burst_sm_cycles(),
            row_hit_cycles: cfg.row_hit_sm_cycles(),
            row_miss_cycles: cfg.row_miss_sm_cycles(),
            row_blocks: cfg.row_blocks,
        }
    }

    /// Bank and row of a channel-local block index.
    fn locate(&self, local_block: u64) -> (usize, u64) {
        let row_group = local_block / self.row_blocks;
        let bank = (row_group as usize) % self.banks.len();
        let row = row_group / self.banks.len() as u64;
        (bank, row)
    }

    /// Services an access of `bursts` bursts to channel-local block
    /// `local_block`, arriving at time `at` (SM cycles).
    pub fn access(&mut self, local_block: u64, bursts: u32, at: f64) -> DramAccess {
        let (bank_idx, row) = self.locate(local_block);
        let bank = &mut self.banks[bank_idx];
        let start = at.max(bank.ready_at);
        let row_hit = bank.open_row == Some(row);
        let access_latency = if row_hit { self.row_hit_cycles } else { self.row_miss_cycles };
        // Data leaves once the bank has the row open *and* the shared data
        // bus frees up. Column accesses pipeline: successive row hits are
        // serialised only by the data bus; a row miss occupies the bank
        // for precharge + activate before the next command.
        let data_start = (start + access_latency).max(self.free_at);
        let done = data_start + self.burst_cycles * f64::from(bursts);
        self.free_at = done;
        bank.open_row = Some(row);
        if !row_hit {
            bank.ready_at = start + (self.row_miss_cycles - self.row_hit_cycles);
        }
        DramAccess { done, row_hit }
    }

    /// The data-bus horizon (for utilisation telemetry).
    pub fn free_at(&self) -> f64 {
        self.free_at
    }
}

/// The pool of channels with the global address interleaving.
#[derive(Debug, Clone)]
pub struct Dram {
    channels: Vec<Channel>,
}

impl Dram {
    /// Creates all channels of the configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        Self { channels: (0..cfg.channels()).map(|_| Channel::new(cfg)).collect() }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Channel index and channel-local block of a global block address
    /// (fine-grained block interleaving spreads streams over channels).
    pub fn map(&self, block: BlockAddr) -> (usize, u64) {
        let n = self.channels.len() as u64;
        ((block % n) as usize, block / n)
    }

    /// Services an access, returning its completion and row outcome.
    pub fn access(&mut self, block: BlockAddr, bursts: u32, at: f64) -> DramAccess {
        debug_assert!(block < META_BLOCK_BASE, "data block collides with the metadata region");
        let (ch, local) = self.map(block);
        self.channels[ch].access(local, bursts, at)
    }

    /// Services the one-burst fetch of the 32 B metadata line covering
    /// `block`, returning its completion and row outcome.
    ///
    /// The line lives at [`META_BLOCK_BASE`]` + `[`MetadataCache::line_of`]
    /// and takes the ordinary interleaved path: its own address picks the
    /// channel, bank and row (see [`META_BLOCK_BASE`]), so the burst
    /// contends with that channel's data bus and row machinery like any
    /// other access, and it never pre-opens the data block's row.
    pub fn access_metadata(&mut self, block: BlockAddr, at: f64) -> DramAccess {
        let meta = META_BLOCK_BASE + MetadataCache::line_of(block);
        let (ch, local) = self.map(meta);
        self.channels[ch].access(local, 1, at)
    }

    /// Latest data-bus horizon over all channels.
    pub fn horizon(&self) -> f64 {
        self.channels.iter().map(Channel::free_at).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    #[test]
    fn first_access_pays_row_miss() {
        let mut ch = Channel::new(&cfg());
        let a = ch.access(0, 4, 0.0);
        assert!(!a.row_hit);
        let expect = cfg().row_miss_sm_cycles() + 4.0 * cfg().burst_sm_cycles();
        assert!((a.done - expect).abs() < 1e-9);
    }

    #[test]
    fn same_row_hits_after_open() {
        let mut ch = Channel::new(&cfg());
        ch.access(0, 4, 0.0);
        let a = ch.access(1, 4, 1000.0);
        assert!(a.row_hit, "block 1 lives in the same 2 KB row");
    }

    #[test]
    fn different_row_same_bank_misses() {
        let mut ch = Channel::new(&cfg());
        ch.access(0, 4, 0.0);
        // Same bank reappears after banks * row_blocks blocks.
        let stride = cfg().banks_per_channel as u64 * cfg().row_blocks;
        let a = ch.access(stride, 4, 1000.0);
        assert!(!a.row_hit);
    }

    #[test]
    fn data_bus_serialises_bursts() {
        let mut ch = Channel::new(&cfg());
        // Two simultaneous accesses to different banks: second waits for
        // the data bus.
        let a = ch.access(0, 4, 0.0);
        let b = ch.access(16, 4, 0.0); // different bank (row group 1)
        assert!(b.done >= a.done + 4.0 * cfg().burst_sm_cycles() - 1e-9);
    }

    #[test]
    fn fewer_bursts_finish_sooner() {
        let mut ch1 = Channel::new(&cfg());
        let mut ch4 = Channel::new(&cfg());
        let t1 = ch1.access(0, 1, 0.0).done;
        let t4 = ch4.access(0, 4, 0.0).done;
        assert!(t1 < t4);
        assert!((t4 - t1 - 3.0 * cfg().burst_sm_cycles()).abs() < 1e-9);
    }

    #[test]
    fn interleaving_spreads_consecutive_blocks() {
        let dram = Dram::new(&cfg());
        let n = dram.channels();
        assert_eq!(n, 12);
        let (c0, l0) = dram.map(0);
        let (c1, _) = dram.map(1);
        assert_ne!(c0, c1, "adjacent blocks go to different channels");
        assert_eq!(dram.map(n as u64), (c0, l0 + 1));
    }

    #[test]
    fn parallel_channels_do_not_serialise() {
        let mut dram = Dram::new(&cfg());
        let a = dram.access(0, 4, 0.0);
        let b = dram.access(1, 4, 0.0);
        // Different channels: both finish at the single-access time.
        assert!((a.done - b.done).abs() < 1e-9);
    }

    #[test]
    fn throughput_matches_bandwidth() {
        // Saturate one channel with row hits and check achieved bytes per
        // SM cycle approaches the configured per-channel rate.
        let c = cfg();
        let mut ch = Channel::new(&c);
        let accesses = 10_000u64;
        let mut done = 0.0;
        for i in 0..accesses {
            done = ch.access(i, 4, 0.0).done;
        }
        let bytes = accesses as f64 * 128.0;
        let per_cycle = bytes / done;
        // Per channel: 16 B per memory cycle = 16 / ratio per SM cycle.
        let peak = 16.0 / c.sm_cycles_per_mem_cycle();
        assert!(per_cycle > 0.9 * peak, "achieved {per_cycle:.2} vs peak {peak:.2}");
        assert!(per_cycle <= peak + 1e-9);
    }
}

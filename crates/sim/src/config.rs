//! Simulator configuration (paper Table II, GTX580-like).

use crate::dram::sched::SchedPolicy;
use crate::fault::FaultConfig;
use slc_compress::Mag;

/// Full GPU configuration.
///
/// Defaults reproduce the paper's Table II. Timing constants the table
/// does not specify (cache latencies, DRAM bank timing) use standard
/// GDDR5/Fermi ballpark values and are documented per field.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (Table II: 16).
    pub sms: usize,
    /// SM clock in MHz (Table II: 822).
    pub sm_clock_mhz: f64,
    /// Maximum resident threads per SM (Table II: 1536; informational).
    pub max_threads_per_sm: u32,
    /// Maximum CTA size (Table II: 512; informational).
    pub max_cta_size: u32,
    /// Registers per SM (Table II: 32 K; informational).
    pub registers_per_sm: u32,
    /// Shared memory per SM in KB (Table II: 48; informational).
    pub shared_mem_kb: u32,
    /// L1 cache per SM in KB (Table II: 16).
    pub l1_kb: u32,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// Shared L2 size in KB (Table II: 768).
    pub l2_kb: u32,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 hit latency in SM cycles.
    pub l2_hit_latency: u64,
    /// Interconnect latency each way in SM cycles.
    pub icnt_latency: u64,
    /// MSHRs (outstanding misses) per SM; proxies the warp-level
    /// parallelism that hides memory latency (48 warps x >2 loads).
    pub mshrs_per_sm: usize,

    /// Memory clock in MHz (Table II: 1002).
    pub mem_clock_mhz: f64,
    /// Number of memory controllers (Table II: 6).
    pub memory_controllers: usize,
    /// 32-bit channels per controller (GTX580: 384-bit total = 6 MCs × 2).
    pub channels_per_mc: usize,
    /// Bus width per channel in bits (Table II: 32).
    pub bus_bits: u32,
    /// Burst length (Table II: 8).
    pub burst_length: u32,
    /// DRAM banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in blocks of 128 B (2 KB rows).
    pub row_blocks: u64,
    /// CAS latency in memory cycles.
    pub t_cas: f64,
    /// RAS-to-CAS delay in memory cycles.
    pub t_rcd: f64,
    /// Row precharge in memory cycles.
    pub t_rp: f64,
    /// Channel request-scheduling policy (see [`SchedPolicy`]).
    pub sched_policy: SchedPolicy,
    /// FR-FCFS write-buffer entries per channel (the high watermark; a
    /// full buffer drains to half capacity). Ignored under `InOrder`.
    pub write_buffer_entries: usize,
    /// FR-FCFS starvation cap in SM cycles: at every channel event (read
    /// or write arrival) a buffered write older than this is serviced
    /// first, ahead of row hits and the arriving request — arbitration
    /// never reorders past the cap while traffic flows. Ignored under
    /// `InOrder`.
    pub sched_age_cap: u64,

    /// Compression latency in SM cycles added on the write path
    /// (§IV-A: 46 for E2MC, 60 for TSLC, 0 for no compression).
    pub compress_latency: u64,
    /// Decompression latency in SM cycles added on the read-return path
    /// (§IV-A: 20 for both E2MC and TSLC).
    pub decompress_latency: u64,
    /// Metadata cache entries (each entry covers one 32 B metadata line =
    /// 128 blocks = 16 KB of data).
    pub mdc_entries: usize,
    /// Whether the memory controller has an MDC at all. A GPU without
    /// compression has none — the NOCOMP baseline must neither consult it
    /// nor move metadata over the pins (every block costs the maximum
    /// burst count unconditionally). Disabled via [`Self::without_mdc`].
    pub mdc_enabled: bool,

    /// Injected permanent DRAM faults (see [`crate::fault`]). `None` —
    /// the default — means the fault subsystem is entirely absent; the
    /// pipeline is pinned byte-identical to a zero-density fault set.
    pub fault: Option<FaultConfig>,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            sms: 16,
            sm_clock_mhz: 822.0,
            max_threads_per_sm: 1536,
            max_cta_size: 512,
            registers_per_sm: 32 * 1024,
            shared_mem_kb: 48,
            l1_kb: 16,
            l1_assoc: 4,
            l2_kb: 768,
            l2_assoc: 8,
            l2_hit_latency: 30,
            icnt_latency: 20,
            mshrs_per_sm: 128,
            mem_clock_mhz: 1002.0,
            memory_controllers: 6,
            channels_per_mc: 2,
            bus_bits: 32,
            burst_length: 8,
            banks_per_channel: 16,
            row_blocks: 16,
            t_cas: 12.0,
            t_rcd: 12.0,
            t_rp: 12.0,
            sched_policy: SchedPolicy::FrFcfs,
            write_buffer_entries: 16,
            sched_age_cap: 1000,
            compress_latency: 0,
            decompress_latency: 0,
            mdc_entries: 512,
            mdc_enabled: true,
            fault: None,
        }
    }
}

impl GpuConfig {
    /// The memory access granularity: bus width × burst length.
    pub fn mag(&self) -> Mag {
        Mag::new(self.bus_bits / 8 * self.burst_length)
    }

    /// Total number of channels.
    pub fn channels(&self) -> usize {
        self.memory_controllers * self.channels_per_mc
    }

    /// Bursts an uncompressed 128 B block costs.
    pub fn max_bursts(&self) -> u32 {
        128 / self.mag().bytes()
    }

    /// Aggregate theoretical bandwidth in GB/s (QDR GDDR5: 4 transfers per
    /// memory clock). The default configuration reproduces Table II's
    /// 192.4 GB/s within rounding.
    pub fn bandwidth_gbps(&self) -> f64 {
        let bytes_per_cycle_per_channel = f64::from(self.bus_bits) / 8.0 * 4.0;
        self.channels() as f64 * bytes_per_cycle_per_channel * self.mem_clock_mhz * 1e6 / 1e9
    }

    /// SM cycles per memory cycle (SM clock is slower than memory clock).
    pub fn sm_cycles_per_mem_cycle(&self) -> f64 {
        self.sm_clock_mhz / self.mem_clock_mhz
    }

    /// Time one MAG burst occupies a channel's data bus, in SM cycles.
    ///
    /// GDDR5 moves `bus_bits/8 × 4` bytes per memory cycle, so a burst of
    /// `burst_length` beats takes `burst_length / 4` memory cycles.
    pub fn burst_sm_cycles(&self) -> f64 {
        f64::from(self.burst_length) / 4.0 * self.sm_cycles_per_mem_cycle()
    }

    /// Row-hit access latency (CAS) in SM cycles.
    pub fn row_hit_sm_cycles(&self) -> f64 {
        self.t_cas * self.sm_cycles_per_mem_cycle()
    }

    /// Row-miss access latency (precharge + activate + CAS) in SM cycles.
    pub fn row_miss_sm_cycles(&self) -> f64 {
        (self.t_rp + self.t_rcd + self.t_cas) * self.sm_cycles_per_mem_cycle()
    }

    /// Derives a configuration with a different MAG but identical
    /// aggregate bandwidth, for the Fig. 9 sensitivity study: the burst
    /// length is held at 8 beats and the per-channel bus width scaled, with
    /// the channel count re-scaled to keep `bandwidth_gbps` constant.
    ///
    /// # Panics
    ///
    /// Panics if `mag` does not divide the channel pool evenly.
    pub fn with_mag(&self, mag: Mag) -> Self {
        let mut cfg = self.clone();
        let scale_num = self.mag().bytes();
        let scale_den = mag.bytes();
        cfg.bus_bits = mag.bytes() * 8 / self.burst_length;
        let channels = self.channels() as u32 * scale_num / scale_den;
        assert!(
            channels > 0 && channels.is_multiple_of(self.memory_controllers as u32),
            "cannot evenly spread {channels} channels over {} MCs",
            self.memory_controllers
        );
        cfg.channels_per_mc = (channels as usize) / self.memory_controllers;
        debug_assert_eq!(cfg.mag(), mag);
        cfg
    }

    /// Applies a compression scheme's latencies (§IV-A).
    pub fn with_codec_latency(mut self, compress: u64, decompress: u64) -> Self {
        self.compress_latency = compress;
        self.decompress_latency = decompress;
        self
    }

    /// Selects the channel scheduling policy.
    pub fn with_sched_policy(mut self, policy: SchedPolicy) -> Self {
        self.sched_policy = policy;
        self
    }

    /// Removes the metadata cache: the memory controller of a GPU without
    /// compression hardware. Every block moves at the full burst count and
    /// no metadata traffic ever reaches the pins.
    pub fn without_mdc(mut self) -> Self {
        self.mdc_enabled = false;
        self
    }

    /// Injects a permanent DRAM fault set (see [`crate::fault`]).
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let c = GpuConfig::default();
        assert_eq!(c.sms, 16);
        assert_eq!(c.l2_kb, 768);
        assert_eq!(c.memory_controllers, 6);
        assert_eq!(c.mag(), Mag::GDDR5);
        assert_eq!(c.max_bursts(), 4);
        // 192.4 GB/s within a percent.
        assert!((c.bandwidth_gbps() - 192.4).abs() < 1.0, "got {}", c.bandwidth_gbps());
    }

    #[test]
    fn burst_cycles_track_clock_ratio() {
        let c = GpuConfig::default();
        // 2 memory cycles per 32 B burst, scaled to the slower SM clock.
        let expect = 2.0 * 822.0 / 1002.0;
        assert!((c.burst_sm_cycles() - expect).abs() < 1e-9);
    }

    #[test]
    fn with_mag_preserves_bandwidth() {
        let base = GpuConfig::default();
        for mag in [Mag::NARROW_16, Mag::WIDE_64] {
            let c = base.with_mag(mag);
            assert_eq!(c.mag(), mag);
            assert!((c.bandwidth_gbps() - base.bandwidth_gbps()).abs() < 1e-6);
            assert_eq!(c.max_bursts(), 128 / mag.bytes());
        }
    }

    #[test]
    fn with_mag_scales_burst_time() {
        let base = GpuConfig::default();
        let wide = base.with_mag(Mag::WIDE_64);
        // Twice the bytes per burst on a twice-as-wide bus: same time.
        assert!((wide.burst_sm_cycles() - base.burst_sm_cycles()).abs() < 1e-9);
    }

    #[test]
    fn codec_latency_builder() {
        let c = GpuConfig::default().with_codec_latency(60, 20);
        assert_eq!(c.compress_latency, 60);
        assert_eq!(c.decompress_latency, 20);
    }
}

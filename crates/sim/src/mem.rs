//! Functional device memory with safe-to-approximate regions.
//!
//! Models the paper's extended allocation API (Section IV-C):
//!
//! ```c
//! cudaMalloc(void** devPtr, size_t size, bool safeToApprox, size_t threshold)
//! ```
//!
//! "The address returned by the extended cudaMalloc() and size of the
//! memory allocation is used to determine if a load is safe to approximate
//! or not." Workload kernels allocate their arrays here, flagging the ones
//! whose approximation cannot cause catastrophic failures; the harness
//! then stages flagged regions through the SLC codec at kernel-boundary
//! DRAM round-trips (see DESIGN.md for why kernel granularity preserves
//! the paper's behaviour for these memory-bound apps).

use crate::BlockAddr;
use slc_compress::{Block, BLOCK_BYTES};

/// An opaque device address returned by [`GpuMemory::malloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// Byte address of element `i` of an `f32` array at this pointer.
    pub fn f32_addr(self, i: usize) -> u64 {
        self.0 + (i as u64) * 4
    }
}

/// One allocation (the paper's "memory region").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Base byte address (128 B aligned).
    pub base: u64,
    /// Size in bytes (padded to 128 B internally).
    pub size: u64,
    /// `true` when the programmer marked the region safe to approximate.
    pub safe_to_approx: bool,
    /// Per-region lossy threshold in bytes (paper: programmer-specified).
    pub threshold_bytes: u32,
    /// Debug label.
    pub label: String,
}

impl Region {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }

    /// Block address of the region's `index`-th block — the one place
    /// the region-to-block address arithmetic lives.
    pub fn block_addr(&self, index: usize) -> BlockAddr {
        self.base / BLOCK_BYTES as u64 + index as u64
    }

    /// Block addresses covered by the region.
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        let first = self.base / BLOCK_BYTES as u64;
        let last = (self.base + self.size).div_ceil(BLOCK_BYTES as u64);
        first..last
    }
}

/// Byte-addressable device memory plus the region table.
#[derive(Debug, Clone, Default)]
pub struct GpuMemory {
    data: Vec<u8>,
    regions: Vec<Region>,
}

impl GpuMemory {
    /// Creates an empty device memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `size` bytes, 128 B aligned — the extended `cudaMalloc`.
    pub fn malloc(
        &mut self,
        label: &str,
        size: usize,
        safe_to_approx: bool,
        threshold_bytes: u32,
    ) -> DevicePtr {
        let base = self.data.len() as u64;
        let padded = size.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        self.data.resize(self.data.len() + padded, 0);
        self.regions.push(Region {
            base,
            size: padded as u64,
            safe_to_approx,
            threshold_bytes,
            label: label.to_owned(),
        });
        DevicePtr(base)
    }

    /// The region table.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions marked safe to approximate (Table III's #AR).
    pub fn approx_regions(&self) -> usize {
        self.regions.iter().filter(|r| r.safe_to_approx).count()
    }

    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: u64) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Whether a load from `addr` may be approximated.
    pub fn is_approximable(&self, addr: u64) -> bool {
        self.region_of(addr).is_some_and(|r| r.safe_to_approx)
    }

    /// Copies an `f32` slice to the device (`cudaMemcpy` host→device).
    ///
    /// # Panics
    ///
    /// Panics when the write runs past the allocation.
    pub fn write_f32(&mut self, ptr: DevicePtr, values: &[f32]) {
        let start = ptr.0 as usize;
        let end = start + values.len() * 4;
        assert!(end <= self.data.len(), "device write out of bounds");
        for (i, v) in values.iter().enumerate() {
            self.data[start + 4 * i..start + 4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads an `f32` slice from the device (`cudaMemcpy` device→host).
    ///
    /// # Panics
    ///
    /// Panics when the read runs past the allocation.
    pub fn read_f32(&self, ptr: DevicePtr, len: usize) -> Vec<f32> {
        let start = ptr.0 as usize;
        let end = start + len * 4;
        assert!(end <= self.data.len(), "device read out of bounds");
        self.data[start..end]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Reads one `u32` element.
    pub fn read_u32(&self, ptr: DevicePtr, index: usize) -> u32 {
        let start = ptr.0 as usize + index * 4;
        u32::from_le_bytes(self.data[start..start + 4].try_into().expect("4 bytes"))
    }

    /// Writes one `u32` element.
    pub fn write_u32(&mut self, ptr: DevicePtr, index: usize, value: u32) {
        let start = ptr.0 as usize + index * 4;
        self.data[start..start + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Raw bytes of one region (for sampling / compression passes).
    pub fn region_bytes(&self, region: &Region) -> &[u8] {
        &self.data[region.base as usize..(region.base + region.size) as usize]
    }

    /// Applies `f` to every 128 B block of every safe-to-approximate
    /// region, replacing the block with the function's output — the
    /// kernel-boundary DRAM round-trip. Visits regions in table order and
    /// blocks in ascending offset (the order [`Self::blocks_with_addr`]
    /// reproduces, which lets stagers merge per-block state back by
    /// position). Borrows regions and data disjointly: no region-table
    /// clone, no per-block copy on the read side.
    ///
    /// Returns the number of blocks visited (memory is only written for
    /// blocks the callback actually changed).
    pub fn stage_approx_regions(&mut self, mut f: impl FnMut(&Region, &Block) -> Block) -> usize {
        let Self { data, regions } = self;
        let mut visited = 0;
        for region in regions.iter().filter(|r| r.safe_to_approx) {
            let start = region.base as usize;
            let end = (region.base + region.size) as usize;
            for off in (start..end).step_by(BLOCK_BYTES) {
                let block: &Block =
                    data[off..off + BLOCK_BYTES].try_into().expect("regions are block-padded");
                let out = f(region, block);
                if out != *block {
                    data[off..off + BLOCK_BYTES].copy_from_slice(&out);
                }
                visited += 1;
            }
        }
        visited
    }

    /// Iterates every region block **by reference** with its block
    /// address ([`Region::block_addr`]) and owning region — the zero-copy
    /// sibling of [`all_blocks`](Self::all_blocks) and the single
    /// region-order block walk that burst accounting and snapshot
    /// analysis share.
    pub fn blocks_with_addr(&self) -> impl Iterator<Item = (&Region, BlockAddr, &Block)> + '_ {
        self.regions.iter().flat_map(move |region| {
            let start = region.base as usize;
            let end = (region.base + region.size) as usize;
            self.data[start..end].chunks_exact(BLOCK_BYTES).enumerate().map(move |(i, chunk)| {
                let block: &Block = chunk.try_into().expect("regions are block-padded");
                (region, region.block_addr(i), block)
            })
        })
    }

    /// Iterates over the blocks of every region (for table training and
    /// ratio studies), flagged with the owning region.
    pub fn all_blocks(&self) -> impl Iterator<Item = (&Region, Block)> + '_ {
        self.regions.iter().flat_map(move |region| {
            let start = region.base as usize;
            let end = (region.base + region.size) as usize;
            self.data[start..end].chunks_exact(BLOCK_BYTES).map(move |chunk| {
                let mut b = [0u8; BLOCK_BYTES];
                b.copy_from_slice(chunk);
                (region, b)
            })
        })
    }

    /// Total allocated bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_aligns_and_tracks_regions() {
        let mut m = GpuMemory::new();
        let a = m.malloc("a", 100, true, 16);
        let b = m.malloc("b", 256, false, 0);
        assert_eq!(a.0, 0);
        assert_eq!(b.0, 128, "second allocation starts on next block");
        assert_eq!(m.regions().len(), 2);
        assert_eq!(m.approx_regions(), 1);
        assert!(m.is_approximable(a.0));
        assert!(!m.is_approximable(b.0));
        assert_eq!(m.len(), 128 + 256);
    }

    #[test]
    fn f32_roundtrip() {
        let mut m = GpuMemory::new();
        let p = m.malloc("x", 16, true, 16);
        m.write_f32(p, &[1.0, -2.5, 3.25, f32::MIN_POSITIVE]);
        assert_eq!(m.read_f32(p, 4), vec![1.0, -2.5, 3.25, f32::MIN_POSITIVE]);
    }

    #[test]
    fn u32_roundtrip() {
        let mut m = GpuMemory::new();
        let p = m.malloc("x", 16, false, 0);
        m.write_u32(p, 2, 0xdeadbeef);
        assert_eq!(m.read_u32(p, 2), 0xdeadbeef);
    }

    #[test]
    fn stage_visits_only_approx_regions() {
        let mut m = GpuMemory::new();
        let a = m.malloc("approx", 256, true, 16);
        let e = m.malloc("exact", 256, false, 0);
        m.write_f32(a, &[7.0; 64]);
        m.write_f32(e, &[9.0; 64]);
        let visited = m.stage_approx_regions(|_, b| {
            let mut out = *b;
            out[0] = 0xff;
            out
        });
        assert_eq!(visited, 2, "two blocks in the approx region");
        assert_eq!(m.read_f32(e, 1)[0], 9.0, "exact region untouched");
        let first = m.read_f32(a, 1)[0];
        assert_ne!(first, 7.0, "approx region rewritten");
    }

    #[test]
    fn stage_order_matches_blocks_with_addr() {
        let mut m = GpuMemory::new();
        let _exact = m.malloc("exact", 128, false, 0);
        let a = m.malloc("approx", 256, true, 16);
        let mut staged_bases = Vec::new();
        let mut count = 0u64;
        m.stage_approx_regions(|region, block| {
            assert_eq!(region.base, a.0);
            staged_bases.push(region.base + count * BLOCK_BYTES as u64);
            count += 1;
            *block
        });
        let walk: Vec<u64> = m
            .blocks_with_addr()
            .filter(|(r, _, _)| r.safe_to_approx)
            .map(|(_, addr, _)| addr * BLOCK_BYTES as u64)
            .collect();
        // The staging walk and the shared block walk agree on order and
        // position — the contract positional merges rely on.
        assert_eq!(staged_bases, walk);
        assert_eq!(walk, vec![128, 256]);
    }

    #[test]
    fn region_blocks_cover_allocation() {
        let mut m = GpuMemory::new();
        let p = m.malloc("x", 300, true, 16);
        let r = m.region_of(p.0).expect("region exists").clone();
        let blocks: Vec<u64> = r.blocks().collect();
        assert_eq!(blocks.len(), 3, "300 bytes pads to 384 = 3 blocks");
    }

    #[test]
    fn all_blocks_counts_match() {
        let mut m = GpuMemory::new();
        m.malloc("a", 128, true, 16);
        m.malloc("b", 384, false, 0);
        assert_eq!(m.all_blocks().count(), 4);
    }

    #[test]
    fn blocks_with_addr_mirrors_all_blocks() {
        let mut m = GpuMemory::new();
        let a = m.malloc("a", 256, true, 16);
        m.malloc("b", 384, false, 0);
        m.write_f32(a, &[5.5; 64]);
        let by_ref: Vec<(u64, bool, Block)> =
            m.blocks_with_addr().map(|(r, addr, b)| (addr, r.safe_to_approx, *b)).collect();
        let by_val: Vec<(bool, Block)> =
            m.all_blocks().map(|(r, b)| (r.safe_to_approx, b)).collect();
        assert_eq!(by_ref.len(), by_val.len());
        for (i, ((addr, approx_a, block_a), (approx_b, block_b))) in
            by_ref.iter().zip(&by_val).enumerate()
        {
            assert_eq!(*addr, i as u64, "contiguous regions give contiguous addresses");
            assert_eq!(approx_a, approx_b);
            assert_eq!(block_a, block_b);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let mut m = GpuMemory::new();
        let p = m.malloc("x", 8, false, 0);
        m.write_f32(p, &[0.0; 64]);
    }
}

//! Trace-driven GPU memory-subsystem timing simulator.
//!
//! The SLC paper evaluates on gpgpu-sim configured as a GTX580. SLC's
//! performance effect is purely a memory-system effect — fewer 32 B DRAM
//! bursts per block ⇒ lower DRAM occupancy and queueing ⇒ fewer SM stalls
//! for memory-bound kernels — so this crate models exactly that path
//! (DESIGN.md, substitution table):
//!
//! * [`sm`] — an SM front-end issuing coalesced 128 B requests from a
//!   trace, with bounded MSHRs and explicit sync points (latency hiding).
//! * [`cache`] — set-associative write-back caches for L1 and L2.
//! * [`mdc`] — the metadata cache holding the 2-bit per-block burst counts
//!   (paper Fig. 3).
//! * [`dram`] — GDDR5 channels with banks, row-buffer timing and a data
//!   bus occupied per burst.
//! * [`mc`] — the memory controller binding MDC, (de)compression latency
//!   and the channels together.
//! * [`engine`] — the event loop, producing [`stats::SimStats`].
//! * [`mem`] — the functional device memory with *safe-to-approximate*
//!   regions (the paper's extended `cudaMalloc`).
//!
//! The timing side never touches data: per-block burst counts come from a
//! [`mc::BurstsSource`] the workload harness derives from the functional
//! compression pass.

#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod dense;
pub mod dram;
pub mod engine;
pub mod fault;
pub mod mc;
pub mod mdc;
pub mod mem;
pub mod sm;
pub mod stats;
pub mod trace;

pub use config::GpuConfig;
pub use dram::sched::SchedPolicy;
pub use engine::Engine;
pub use fault::{FaultConfig, FaultMap, FaultPattern, FaultPlan};
pub use mc::{BurstsMap, BurstsSource};
pub use mem::{DevicePtr, GpuMemory, Region};
pub use stats::SimStats;
pub use trace::{Op, Trace};

/// A 128 B-aligned block address (byte address >> 7).
pub type BlockAddr = u64;

/// Converts a byte address to its block address.
pub fn block_of(byte_addr: u64) -> BlockAddr {
    byte_addr >> 7
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_truncates_to_128() {
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(127), 0);
        assert_eq!(block_of(128), 1);
        assert_eq!(block_of(130), 1);
    }
}

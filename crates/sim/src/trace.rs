//! Memory traces: the unit of work the timing simulator executes.
//!
//! A trace is one op stream per SM. Ops are *warp-level*: a `Load`/`Store`
//! is one coalesced 128 B access (GPUs coalesce a warp's 32 lanes into
//! block transactions). `Compute` models the arithmetic between memory
//! instructions — the workload's arithmetic intensity knob — and `Sync`
//! models data dependencies / barriers by draining outstanding loads.

use crate::BlockAddr;

/// One warp-level trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Coalesced 128 B load of the given block.
    Load(BlockAddr),
    /// Coalesced 128 B store to the given block.
    Store(BlockAddr),
    /// `n` cycles of arithmetic on the SM.
    Compute(u32),
    /// Wait until all outstanding loads of this SM have returned.
    Sync,
}

/// A complete trace: one op stream per SM.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    streams: Vec<Vec<Op>>,
}

impl Trace {
    /// Creates a trace with `sms` empty streams.
    pub fn new(sms: usize) -> Self {
        Self { streams: vec![Vec::new(); sms] }
    }

    /// Number of SM streams.
    pub fn sms(&self) -> usize {
        self.streams.len()
    }

    /// The op stream of one SM.
    pub fn stream(&self, sm: usize) -> &[Op] {
        &self.streams[sm]
    }

    /// Appends an op to one SM's stream.
    pub fn push(&mut self, sm: usize, op: Op) {
        self.streams[sm].push(op);
    }

    /// Total op count across streams.
    pub fn len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every distinct block address the trace touches.
    pub fn touched_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.streams.iter().flatten().filter_map(|op| match op {
            Op::Load(b) | Op::Store(b) => Some(*b),
            _ => None,
        })
    }

    /// Appends another trace's streams op-by-op (kernel concatenation).
    ///
    /// # Panics
    ///
    /// Panics when SM counts differ.
    pub fn extend(&mut self, other: &Trace) {
        assert_eq!(self.sms(), other.sms(), "cannot concatenate traces with different SM counts");
        for (dst, src) in self.streams.iter_mut().zip(&other.streams) {
            dst.extend_from_slice(src);
        }
    }
}

/// Builds traces by distributing a global sequence of *tiles* round-robin
/// over SMs, the way a GPU scheduler distributes thread blocks.
///
/// Each tile is a group of accesses followed by an optional `Sync`
/// (modelling the dependency on the tile's loaded data) and `Compute`
/// cycles (its arithmetic).
#[derive(Debug)]
pub struct TraceBuilder {
    trace: Trace,
    next_sm: usize,
}

impl TraceBuilder {
    /// Creates a builder for `sms` streams.
    pub fn new(sms: usize) -> Self {
        Self { trace: Trace::new(sms), next_sm: 0 }
    }

    /// Emits one tile on the next SM (round-robin): `loads`, then
    /// `compute` cycles, then `stores`.
    ///
    /// Tiles do **not** sync: a GPU's warp scheduler keeps issuing other
    /// warps while a tile's loads are pending, so intra-kernel dependency
    /// stalls surface only through MSHR pressure. Use [`barrier`] for
    /// kernel/grid boundaries.
    ///
    /// [`barrier`]: Self::barrier
    pub fn tile(&mut self, loads: &[BlockAddr], compute: u32, stores: &[BlockAddr]) {
        let sm = self.next_sm;
        self.next_sm = (self.next_sm + 1) % self.trace.sms();
        for &b in loads {
            self.trace.push(sm, Op::Load(b));
        }
        if compute > 0 {
            self.trace.push(sm, Op::Compute(compute));
        }
        for &b in stores {
            self.trace.push(sm, Op::Store(b));
        }
    }

    /// Emits a grid-wide barrier: every SM drains its outstanding loads
    /// (kernel boundary).
    pub fn barrier(&mut self) {
        for sm in 0..self.trace.sms() {
            self.trace.push(sm, Op::Sync);
        }
    }

    /// Emits a streaming sweep over `blocks` consecutive blocks starting
    /// at byte address `base`, `tile_blocks` loads per tile, with
    /// `compute_per_block` cycles and an optional parallel store stream
    /// starting at `store_base`.
    pub fn stream_sweep(
        &mut self,
        base: u64,
        blocks: u64,
        tile_blocks: u64,
        compute_per_block: u32,
        store_base: Option<u64>,
    ) {
        let first = base >> 7;
        let store_first = store_base.map(|b| b >> 7);
        let mut i = 0u64;
        while i < blocks {
            let n = tile_blocks.min(blocks - i);
            let loads: Vec<BlockAddr> = (0..n).map(|k| first + i + k).collect();
            let stores: Vec<BlockAddr> = match store_first {
                Some(s) => (0..n).map(|k| s + i + k).collect(),
                None => Vec::new(),
            };
            self.tile(&loads, compute_per_block * n as u32, &stores);
            i += n;
        }
        self.barrier();
    }

    /// Finishes the build.
    pub fn build(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut t = Trace::new(2);
        t.push(0, Op::Load(1));
        t.push(1, Op::Compute(5));
        t.push(1, Op::Sync);
        assert_eq!(t.len(), 3);
        assert_eq!(t.stream(0), &[Op::Load(1)]);
        assert_eq!(t.sms(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn tiles_round_robin_over_sms() {
        let mut b = TraceBuilder::new(2);
        b.tile(&[0], 10, &[]);
        b.tile(&[1], 10, &[]);
        b.tile(&[2], 10, &[]);
        let t = b.build();
        // SM0 got tiles 0 and 2, SM1 got tile 1.
        assert_eq!(t.stream(0).iter().filter(|o| matches!(o, Op::Load(_))).count(), 2);
        assert_eq!(t.stream(1).iter().filter(|o| matches!(o, Op::Load(_))).count(), 1);
    }

    #[test]
    fn stream_sweep_covers_all_blocks() {
        let mut b = TraceBuilder::new(4);
        b.stream_sweep(0, 10, 4, 3, Some(128 * 100));
        let t = b.build();
        let mut loads: Vec<u64> = t
            .streams
            .iter()
            .flatten()
            .filter_map(|o| if let Op::Load(b) = o { Some(*b) } else { None })
            .collect();
        loads.sort_unstable();
        assert_eq!(loads, (0..10).collect::<Vec<_>>());
        let stores = t.streams.iter().flatten().filter(|o| matches!(o, Op::Store(_))).count();
        assert_eq!(stores, 10);
    }

    #[test]
    fn extend_concatenates_per_sm() {
        let mut a = Trace::new(2);
        a.push(0, Op::Load(0));
        let mut b = Trace::new(2);
        b.push(0, Op::Load(1));
        b.push(1, Op::Sync);
        a.extend(&b);
        assert_eq!(a.stream(0), &[Op::Load(0), Op::Load(1)]);
        assert_eq!(a.stream(1), &[Op::Sync]);
    }

    #[test]
    #[should_panic(expected = "different SM counts")]
    fn extend_rejects_mismatched_sms() {
        let mut a = Trace::new(2);
        let b = Trace::new(3);
        a.extend(&b);
    }

    #[test]
    fn touched_blocks_lists_loads_and_stores() {
        let mut t = Trace::new(1);
        t.push(0, Op::Load(5));
        t.push(0, Op::Store(9));
        t.push(0, Op::Compute(1));
        let mut blocks: Vec<u64> = t.touched_blocks().collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![5, 9]);
    }
}

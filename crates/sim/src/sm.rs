//! SM front-end: executes one trace stream with bounded MSHRs.
//!
//! The SM abstracts a streaming multiprocessor's latency-hiding machinery:
//! loads are non-blocking until the MSHR file fills, `Sync` drains all
//! outstanding loads (a data dependency or barrier), and `Compute`
//! occupies the pipeline. Stall cycles — the quantity compression recovers
//! — are whatever the SM spends waiting on memory.

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::mc::MemorySystem;
use crate::trace::Op;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-SM execution state.
#[derive(Debug)]
pub struct SmState {
    /// SM-local clock.
    time: u64,
    /// Next op index in the stream.
    pc: usize,
    /// Completion times of outstanding loads (min-heap).
    outstanding: BinaryHeap<Reverse<u64>>,
    /// Latest completion among outstanding loads (for `Sync`).
    newest_completion: u64,
    /// Private L1 cache.
    l1: Cache,
    mshrs: usize,
    /// Cycles spent stalled.
    stall_cycles: u64,
    l1_hits: u64,
    l1_misses: u64,
    loads: u64,
    stores: u64,
    ops: u64,
}

impl SmState {
    /// Creates an SM with the configuration's L1 and MSHR file.
    pub fn new(cfg: &GpuConfig) -> Self {
        Self {
            time: 0,
            pc: 0,
            outstanding: BinaryHeap::new(),
            newest_completion: 0,
            l1: Cache::new(cfg.l1_kb, cfg.l1_assoc),
            mshrs: cfg.mshrs_per_sm,
            stall_cycles: 0,
            l1_hits: 0,
            l1_misses: 0,
            loads: 0,
            stores: 0,
            ops: 0,
        }
    }

    /// SM-local clock.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Index of the next op to execute.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether the stream is exhausted.
    pub fn done(&self, stream: &[Op]) -> bool {
        self.pc >= stream.len()
    }

    /// Executes exactly one op against the memory system, advancing the
    /// SM-local clock. Returns `false` when the stream was already done.
    pub fn step(&mut self, stream: &[Op], mem: &mut MemorySystem<'_>) -> bool {
        let Some(&op) = stream.get(self.pc) else {
            return false;
        };
        self.pc += 1;
        self.ops += 1;
        match op {
            Op::Compute(n) => {
                self.time += u64::from(n);
            }
            Op::Load(block) => {
                self.loads += 1;
                if self.l1.access(block, false).is_hit() {
                    self.l1_hits += 1;
                    self.time += 1;
                    return true;
                }
                self.l1_misses += 1;
                // A full MSHR file blocks issue until the oldest miss
                // returns.
                if self.outstanding.len() >= self.mshrs {
                    let Reverse(earliest) =
                        self.outstanding.pop().expect("mshrs > 0 implies non-empty");
                    if earliest > self.time {
                        self.stall_cycles += earliest - self.time;
                        self.time = earliest;
                    }
                }
                let completion = mem.load(block, self.time);
                self.newest_completion = self.newest_completion.max(completion);
                self.outstanding.push(Reverse(completion));
                self.time += 1;
            }
            Op::Store(block) => {
                self.stores += 1;
                mem.store(block, self.time);
                self.time += 1;
            }
            Op::Sync => {
                if self.newest_completion > self.time {
                    self.stall_cycles += self.newest_completion - self.time;
                    self.time = self.newest_completion;
                }
                self.outstanding.clear();
            }
        }
        true
    }

    /// Folds this SM's counters into aggregate statistics.
    pub fn accumulate(&self, stats: &mut crate::stats::SimStats) {
        stats.stall_cycles += self.stall_cycles;
        stats.l1_hits += self.l1_hits;
        stats.l1_misses += self.l1_misses;
        stats.loads += self.loads;
        stats.stores += self.stores;
        stats.ops += self.ops;
        stats.cycles = stats.cycles.max(self.time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::UniformBursts;
    use crate::trace::Op;

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    #[test]
    fn compute_advances_clock() {
        let cfg = cfg();
        let u = UniformBursts(4);
        let mut mem = MemorySystem::new(&cfg, &u);
        let mut sm = SmState::new(&cfg);
        let stream = [Op::Compute(100)];
        assert!(sm.step(&stream, &mut mem));
        assert_eq!(sm.time(), 100);
        assert!(!sm.step(&stream, &mut mem), "stream exhausted");
    }

    #[test]
    fn sync_waits_for_loads() {
        let cfg = cfg();
        let u = UniformBursts(4);
        let mut mem = MemorySystem::new(&cfg, &u);
        let mut sm = SmState::new(&cfg);
        let stream = [Op::Load(0), Op::Sync];
        sm.step(&stream, &mut mem);
        assert_eq!(sm.time(), 1, "load issue takes one cycle");
        sm.step(&stream, &mut mem);
        assert!(sm.time() > 100, "sync waited for DRAM, time = {}", sm.time());
    }

    #[test]
    fn l1_hits_do_not_touch_memory() {
        let cfg = cfg();
        let u = UniformBursts(4);
        let mut mem = MemorySystem::new(&cfg, &u);
        let mut sm = SmState::new(&cfg);
        let stream = [Op::Load(9), Op::Sync, Op::Load(9), Op::Sync];
        for _ in 0..4 {
            sm.step(&stream, &mut mem);
        }
        assert_eq!(mem.stats().l2_misses, 1, "second load hits L1");
        let mut stats = crate::stats::SimStats::new();
        sm.accumulate(&mut stats);
        assert_eq!(stats.l1_hits, 1);
        assert_eq!(stats.l1_misses, 1);
        assert_eq!(stats.loads, 2);
    }

    #[test]
    fn full_mshr_file_stalls() {
        let mut c = cfg();
        c.mshrs_per_sm = 2;
        let u = UniformBursts(4);
        let mut mem = MemorySystem::new(&c, &u);
        let mut sm = SmState::new(&c);
        // Three misses with 2 MSHRs: the third must wait for the first.
        let stream = [Op::Load(0), Op::Load(1), Op::Load(2)];
        for _ in 0..3 {
            sm.step(&stream, &mut mem);
        }
        let mut stats = crate::stats::SimStats::new();
        sm.accumulate(&mut stats);
        assert!(stats.stall_cycles > 0, "expected an MSHR stall");
    }

    #[test]
    fn stores_are_fire_and_forget() {
        let cfg = cfg();
        let u = UniformBursts(4);
        let mut mem = MemorySystem::new(&cfg, &u);
        let mut sm = SmState::new(&cfg);
        let stream = [Op::Store(4), Op::Store(5)];
        sm.step(&stream, &mut mem);
        sm.step(&stream, &mut mem);
        assert_eq!(sm.time(), 2, "stores never block the SM");
    }
}

//! The memory controller: L2 backside, MDC, (de)compression latency and
//! the DRAM channels (paper Fig. 3).
//!
//! "The compressor, decompressor, and metadata cache (MDC) are integrated
//! into the memory controller. The memory controller needs to fetch only
//! the required number of bursts for every compressed block."

use crate::cache::{Cache, CacheOutcome};
use crate::config::GpuConfig;
use crate::dense::DenseAddrMap;
use crate::dram::Dram;
use crate::fault::FaultPlan;
use crate::mdc::{MdcOutcome, MetadataCache};
use crate::stats::SimStats;
use crate::BlockAddr;

/// Supplies the per-block burst count the MDC would hold.
///
/// The timing simulator never sees data; the workload harness derives the
/// burst counts from the functional compression pass and hands them in
/// through this trait.
pub trait BurstsSource {
    /// Bursts needed to move `block` (1..=max for the MAG in use).
    fn bursts(&self, block: BlockAddr) -> u32;
}

/// Every block costs the same burst count (the uncompressed baseline).
#[derive(Debug, Clone, Copy)]
pub struct UniformBursts(pub u32);

impl BurstsSource for UniformBursts {
    fn bursts(&self, _block: BlockAddr) -> u32 {
        self.0
    }
}

/// Sentinel cell value marking a block the map holds no burst count for.
/// Real burst counts are tiny (1..=4 under every MAG), so the all-ones
/// word can never be a live value.
const UNMAPPED: u32 = u32::MAX;

/// Burst counts from a dense address-indexed map, with a default for
/// unmapped blocks.
///
/// Blocks live in a [`DenseAddrMap`]: per-run vectors behind a compact
/// segment directory, indexed by block ordinal — the timing hot loop
/// ([`MemorySystem::load`]) resolves a block's burst count with one
/// directory probe and an index instead of a hash-map probe per L2 miss.
/// Workload snapshots allocate regions back to back, so the directory
/// almost always holds a single segment.
///
/// `PartialEq` compares contents (default + the full block→bursts
/// mapping, in block order), which is what "byte-identical burst maps"
/// means for the analysis-pipeline equivalence tests; vacant padding
/// inside segments does not participate.
#[derive(Debug, Clone)]
pub struct BurstsMap {
    default: u32,
    cells: DenseAddrMap<u32>,
}

impl Default for BurstsMap {
    fn default() -> Self {
        Self::new(0)
    }
}

impl BurstsMap {
    /// Creates a map whose unmapped blocks cost `default` bursts.
    pub fn new(default: u32) -> Self {
        Self { default, cells: DenseAddrMap::new(UNMAPPED) }
    }

    /// Sets the burst count of one block.
    ///
    /// # Panics
    ///
    /// Panics on `u32::MAX`, which is reserved as the unmapped sentinel
    /// (real burst counts are 1..=4).
    pub fn insert(&mut self, block: BlockAddr, bursts: u32) {
        assert_ne!(bursts, UNMAPPED, "u32::MAX is the unmapped sentinel");
        self.cells.set(block, bursts);
    }

    /// Number of explicitly mapped blocks.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no block is mapped.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Mapped blocks in ascending block-address order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, u32)> + '_ {
        self.cells.iter()
    }

    /// Average bursts over the mapped blocks, i.e. the map's full known
    /// population — accumulator-built maps record **every** snapshot
    /// block (see `BurstsAccumulator::into_map` in `slc-workloads`), so
    /// two schemes' means over the same memory image average the same
    /// block set and compare apples to apples. An empty map reports the
    /// default (telemetry).
    pub fn mean_bursts(&self) -> f64 {
        let (mut sum, mut n) = (0u64, 0u64);
        for (_, bursts) in self.cells.iter() {
            sum += u64::from(bursts);
            n += 1;
        }
        if n == 0 {
            return f64::from(self.default);
        }
        sum as f64 / n as f64
    }
}

impl PartialEq for BurstsMap {
    fn eq(&self, other: &Self) -> bool {
        self.default == other.default && self.cells.iter().eq(other.cells.iter())
    }
}

impl Eq for BurstsMap {}

impl BurstsSource for BurstsMap {
    fn bursts(&self, block: BlockAddr) -> u32 {
        let cell = self.cells.get(block);
        if cell == UNMAPPED {
            self.default
        } else {
            cell
        }
    }
}

/// L2 + memory controllers + DRAM: everything behind the interconnect.
pub struct MemorySystem<'a> {
    l2: Cache,
    /// `None` when the configuration disables the MDC
    /// ([`GpuConfig::mdc_enabled`] = false): the controller of a GPU
    /// without compression hardware — every block costs `max_bursts` and
    /// no metadata traffic exists.
    mdc: Option<MetadataCache>,
    dram: Dram,
    bursts: &'a dyn BurstsSource,
    /// Fault-remap verdicts from the functional ladder (see
    /// [`crate::fault`]): remapped blocks pay a pointer burst at their
    /// original (faulty) address plus the spare region's own access.
    /// `None` — the fault-free system — takes none of those paths.
    fault: Option<&'a FaultPlan>,
    stats: SimStats,
    max_bursts: u32,
    l2_hit_latency: u64,
    icnt_latency: u64,
    compress_latency: u64,
    decompress_latency: u64,
}

impl std::fmt::Debug for MemorySystem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem").field("stats", &self.stats).finish_non_exhaustive()
    }
}

impl<'a> MemorySystem<'a> {
    /// Builds the memory system from the configuration.
    pub fn new(cfg: &GpuConfig, bursts: &'a dyn BurstsSource) -> Self {
        Self::with_fault_plan(cfg, bursts, None)
    }

    /// Builds the memory system with an optional fault-remap plan (the
    /// functional degradation ladder's verdicts; see [`crate::fault`]).
    pub fn with_fault_plan(
        cfg: &GpuConfig,
        bursts: &'a dyn BurstsSource,
        fault: Option<&'a FaultPlan>,
    ) -> Self {
        Self {
            l2: Cache::new(cfg.l2_kb, cfg.l2_assoc),
            mdc: cfg.mdc_enabled.then(|| MetadataCache::new(cfg.mdc_entries.next_power_of_two())),
            dram: Dram::new(cfg),
            bursts,
            fault,
            stats: SimStats::new(),
            max_bursts: cfg.max_bursts(),
            l2_hit_latency: cfg.l2_hit_latency,
            icnt_latency: cfg.icnt_latency,
            compress_latency: cfg.compress_latency,
            decompress_latency: cfg.decompress_latency,
        }
    }

    fn clamped_bursts(&self, block: BlockAddr) -> u32 {
        if self.mdc.is_none() {
            // No MDC ⇒ the controller cannot know a per-block burst
            // count; every block moves at the uncompressed maximum.
            return self.max_bursts;
        }
        self.bursts.bursts(block).clamp(1, self.max_bursts)
    }

    /// Resolves the MDC lookup for `block` at time `at`: on a miss the
    /// 32 B metadata line is fetched from DRAM — a real
    /// [`Dram::read_metadata`] in the dedicated metadata address range,
    /// so it occupies a channel's data bus and opens a metadata row
    /// (never the data row) — and the returned start time is the fetch's
    /// completion. With the MDC disabled there is no metadata machinery
    /// at all and the request proceeds at `at`.
    ///
    /// `dirty` marks the line updated (the write-back path changes the
    /// block's burst count); evicting a dirty line issues the 32 B store
    /// of the victim to DRAM — a real [`Dram::write_metadata_line`] the
    /// channel scheduler sequences like any other write — counted in
    /// `metadata_writeback_bursts`. The victim's store never delays this
    /// request: the controller services the demand fetch first.
    ///
    /// Hit/miss accounting lives inside [`MetadataCache`] — the single
    /// source of truth, surfaced into `SimStats` at harvest time — and
    /// row outcomes are counted by the channel servicing each access
    /// command (metadata lines included; see
    /// [`crate::dram::ChannelTelemetry`]). Both
    /// the fetch and writeback paths share this helper, so neither
    /// policy can drift between them.
    fn mdc_lookup(&mut self, block: BlockAddr, at: u64, dirty: bool) -> f64 {
        let Some(mdc) = &mut self.mdc else {
            return at as f64;
        };
        match mdc.access(block, dirty) {
            MdcOutcome::Hit => at as f64,
            MdcOutcome::Miss { evicted_dirty_line } => {
                // Demand fetch first: the victim's store is handed to the
                // scheduler only after the fetch holds the bus, so it can
                // never delay the miss it was evicted for.
                self.stats.metadata_bursts += 1;
                let done = self.dram.read_metadata(block, at as f64).done;
                if let Some(line) = evicted_dirty_line {
                    self.stats.metadata_writeback_bursts += 1;
                    self.dram.write_metadata_line(line, at as f64);
                }
                done
            }
        }
    }

    /// Fetches `block` from DRAM (L2 already missed); returns completion.
    fn dram_fetch(&mut self, block: BlockAddr, at: u64) -> u64 {
        let bursts = self.clamped_bursts(block);
        let compressed = bursts < self.max_bursts;
        // MDC tells the MC how many bursts to fetch; a miss first pulls
        // the 32 B metadata line, which delays the data transfer.
        let start = self.mdc_lookup(block, at, false);
        let access = if let Some(slot) = self.fault.and_then(|p| p.slot_of(block)) {
            // Fault-remapped: the surviving capacity at the original
            // address holds only the forwarding pointer (one burst), and
            // the data lives in the spare region — a second, dependent
            // DRAM access at the spare slot's own address.
            self.stats.read_bursts += 1;
            let pointer = self.dram.read(block, 1, start);
            self.dram.read_spare(slot, bursts, pointer.done)
        } else {
            self.dram.read(block, bursts, start)
        };
        self.stats.dram_reads += 1;
        self.stats.read_bursts += u64::from(bursts);
        let mut done = access.done.ceil() as u64;
        if compressed {
            self.stats.decompressed_blocks += 1;
            done += self.decompress_latency;
        }
        done
    }

    /// Writes `block` back to DRAM (fire-and-forget; the channel
    /// scheduler decides when the write actually occupies the bus).
    fn dram_writeback(&mut self, block: BlockAddr, at: u64) {
        let bursts = self.clamped_bursts(block);
        let compressed = bursts < self.max_bursts;
        let mut at = at;
        if compressed {
            self.stats.compressed_blocks += 1;
            at += self.compress_latency;
        }
        // Keep the metadata line resident for the updated burst count
        // (dirtying it); a miss pays the metadata fetch on the channel —
        // exactly like the fetch path — and delays the data transfer
        // behind it.
        let start = self.mdc_lookup(block, at, true);
        if let Some(slot) = self.fault.and_then(|p| p.slot_of(block)) {
            // Fault-remapped: read the forwarding pointer from the
            // original address (one burst on the read path — hardware
            // must resolve the indirection before it can steer the
            // store), then hand the data write to the spare slot's
            // channel.
            self.stats.read_bursts += 1;
            let pointer = self.dram.read(block, 1, start);
            self.dram.write_spare(slot, bursts, pointer.done);
        } else {
            self.dram.write(block, bursts, start);
        }
        self.stats.dram_writes += 1;
        self.stats.write_bursts += u64::from(bursts);
    }

    /// A coalesced load arriving from an SM at time `at`; returns the time
    /// the data is back at the SM.
    pub fn load(&mut self, block: BlockAddr, at: u64) -> u64 {
        let t = at + self.icnt_latency;
        match self.l2.access(block, false) {
            CacheOutcome::Hit => {
                self.stats.l2_hits += 1;
                t + self.l2_hit_latency + self.icnt_latency
            }
            CacheOutcome::Miss { writeback } => {
                self.stats.l2_misses += 1;
                if let Some(victim) = writeback {
                    self.dram_writeback(victim, t + self.l2_hit_latency);
                }
                let done = self.dram_fetch(block, t + self.l2_hit_latency);
                let completion = done + self.icnt_latency;
                self.stats.read_latency_sum += completion - at;
                completion
            }
        }
    }

    /// A coalesced store arriving from an SM at time `at` (fully
    /// coalesced full-line store: allocates in L2 without a fetch).
    pub fn store(&mut self, block: BlockAddr, at: u64) {
        let t = at + self.icnt_latency;
        match self.l2.access(block, true) {
            CacheOutcome::Hit => self.stats.l2_hits += 1,
            CacheOutcome::Miss { writeback } => {
                self.stats.l2_misses += 1;
                if let Some(victim) = writeback {
                    self.dram_writeback(victim, t + self.l2_hit_latency);
                }
            }
        }
    }

    /// Flushes all dirty L2 lines at end of kernel, streams the dirty
    /// metadata lines still resident in the MDC back to DRAM (their
    /// burst-count updates must land), drains every channel's buffered
    /// writes, and returns the DRAM horizon after the drain.
    pub fn flush(&mut self, at: u64) -> u64 {
        for victim in self.l2.flush_dirty() {
            self.dram_writeback(victim, at);
        }
        let dirty_lines = self.mdc.as_mut().map(MetadataCache::drain_dirty).unwrap_or_default();
        for line in dirty_lines {
            self.stats.metadata_writeback_bursts += 1;
            self.dram.write_metadata_line(line, at as f64);
        }
        self.dram.drain_writes(at as f64);
        self.dram.horizon().ceil() as u64
    }

    /// Folds the distributed counters (MDC hit/miss, per-channel row
    /// outcomes and scheduler telemetry) into `base` — the one place the
    /// single-source counters surface as `SimStats`.
    fn harvest(&self, mut base: SimStats) -> SimStats {
        if let Some(mdc) = &self.mdc {
            base.mdc_hits = mdc.hits();
            base.mdc_misses = mdc.misses();
        }
        let t = self.dram.telemetry();
        base.row_hits = t.row_hits;
        base.row_misses = t.row_misses;
        base.queue_wait_cycles = t.queue_wait as u64;
        base.write_drains = t.write_drains;
        base.write_drain_forced = t.write_drain_forced;
        if let Some(plan) = self.fault {
            plan.fold_into(&mut base);
        }
        base
    }

    /// Consumes the system, yielding its statistics.
    pub fn into_stats(self) -> SimStats {
        let base = self.stats.clone();
        self.harvest(base)
    }

    /// Statistics so far. Note buffered writes' row outcomes materialise
    /// only once serviced (watermark/idle drains or [`Self::flush`]).
    pub fn stats(&self) -> SimStats {
        self.harvest(self.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    #[test]
    fn l2_hit_is_fast_path() {
        let cfg = cfg();
        let u = UniformBursts(4);
        let mut m = MemorySystem::new(&cfg, &u);
        let cold = m.load(7, 0);
        let warm_start = cold + 10;
        let warm = m.load(7, warm_start);
        assert_eq!(warm - warm_start, 2 * cfg.icnt_latency + cfg.l2_hit_latency);
        assert!(cold > warm - warm_start, "cold miss must be slower");
        assert_eq!(m.stats().l2_hits, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn compressed_blocks_cost_fewer_bursts_but_pay_decompression() {
        let cfg = cfg().with_codec_latency(46, 20);
        let one = UniformBursts(1);
        let four = UniformBursts(4);
        let mut m1 = MemorySystem::new(&cfg, &one);
        let mut m4 = MemorySystem::new(&cfg, &four);
        m1.load(0, 0);
        m4.load(0, 0);
        assert_eq!(m1.stats().read_bursts, 1);
        assert_eq!(m4.stats().read_bursts, 4);
        assert_eq!(m1.stats().decompressed_blocks, 1);
        assert_eq!(m4.stats().decompressed_blocks, 0, "4 bursts = verbatim, no decode");
    }

    #[test]
    fn mdc_miss_costs_a_metadata_burst() {
        let cfg = cfg();
        let u = UniformBursts(2);
        let mut m = MemorySystem::new(&cfg, &u);
        m.load(0, 0);
        assert_eq!(m.stats().mdc_misses, 1);
        assert_eq!(m.stats().metadata_bursts, 1);
        // A neighbouring block shares the metadata line.
        m.load(1, 10_000);
        assert_eq!(m.stats().mdc_hits, 1);
        assert_eq!(m.stats().metadata_bursts, 1);
    }

    #[test]
    fn store_then_evict_writes_back_compressed() {
        let cfg = cfg().with_codec_latency(60, 20);
        let u = UniformBursts(2);
        let mut m = MemorySystem::new(&cfg, &u);
        m.store(3, 0);
        assert_eq!(m.stats().dram_writes, 0, "write-back: nothing leaves yet");
        let horizon = m.flush(100);
        assert_eq!(m.stats().dram_writes, 1);
        assert_eq!(m.stats().write_bursts, 2);
        assert_eq!(m.stats().compressed_blocks, 1);
        assert!(horizon > 100);
    }

    #[test]
    fn burst_map_defaults_and_overrides() {
        let mut map = BurstsMap::new(4);
        map.insert(10, 1);
        assert_eq!(map.bursts(10), 1);
        assert_eq!(map.bursts(11), 4);
        assert_eq!(map.len(), 1);
        assert!((map.mean_bursts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metadata_fetch_does_not_open_the_data_row() {
        let cfg = cfg();
        let u = UniformBursts(2);
        let mut m = MemorySystem::new(&cfg, &u);
        // First load: MDC miss. The metadata line opens a *metadata* row,
        // so the data access that follows still pays its own activate —
        // two row misses, never a free data-row hit.
        m.load(0, 0);
        assert_eq!(m.stats().row_misses, 2, "metadata line + data row both activate");
        assert_eq!(m.stats().row_hits, 0);
        // Same-channel neighbour (channel stride apart): MDC hits, and the
        // open *data* row from the first access now hits for real.
        let stride = 12; // GpuConfig::default() has 12 channels
        let done = m.load(stride, 100_000);
        assert!(done > 100_000);
        assert_eq!(m.stats().mdc_hits, 1);
        assert_eq!(m.stats().row_hits, 1, "data-row locality survives the metadata fix");
        assert_eq!(m.stats().row_misses, 2);
    }

    #[test]
    fn writeback_mdc_miss_issues_the_metadata_access() {
        let cfg = cfg();
        let u = UniformBursts(2);
        let mut m = MemorySystem::new(&cfg, &u);
        m.store(3, 0);
        let horizon = m.flush(100);
        // The write-back's MDC miss first moves the 32 B metadata line
        // (row miss + one burst on the line's own channel — line 0 maps
        // to channel 4, while block 3 lives on channel 3), and only when
        // it returns does the two-burst data transfer start on the data
        // block's cold channel, paying its own activate. The horizon
        // must include the full serial chain.
        let meta_done = cfg.row_miss_sm_cycles() + cfg.burst_sm_cycles();
        let expect = 100.0 + meta_done + cfg.row_miss_sm_cycles() + 2.0 * cfg.burst_sm_cycles();
        assert_eq!(horizon, expect.ceil() as u64);
        assert_eq!(m.stats().metadata_bursts, 1);
        assert_eq!(m.stats().row_misses, 2);
        assert_eq!(m.stats().dram_writes, 1);
    }

    #[test]
    fn writeback_metadata_hit_skips_the_metadata_access() {
        // Two dirty blocks sharing a metadata line: the second write-back
        // hits the MDC and pays no metadata burst, finishing earlier than
        // a cold write-back of the same shape would.
        let cfg = cfg();
        let u = UniformBursts(2);
        let mut m = MemorySystem::new(&cfg, &u);
        m.store(3, 0);
        m.store(15, 0); // same metadata line (line 0), different channel
        m.flush(100);
        assert_eq!(m.stats().mdc_misses, 1);
        assert_eq!(m.stats().mdc_hits, 1);
        assert_eq!(m.stats().metadata_bursts, 1, "one line serves both write-backs");
    }

    #[test]
    fn disabled_mdc_runs_metadata_free() {
        // The NOCOMP controller: no MDC, no metadata traffic, every block
        // at the uncompressed maximum — even when the burst source claims
        // blocks compress (there is no metadata to say so in hardware).
        let cfg = cfg().without_mdc();
        let one = UniformBursts(1);
        let mut m = MemorySystem::new(&cfg, &one);
        m.load(0, 0);
        m.store(3, 10);
        m.flush(100_000);
        let s = m.stats();
        assert_eq!(s.mdc_hits + s.mdc_misses, 0, "no MDC to hit or miss");
        assert_eq!(s.metadata_bursts, 0);
        assert_eq!(s.metadata_writeback_bursts, 0);
        assert_eq!(s.read_bursts, 4, "max bursts, ignoring the burst source");
        assert_eq!(s.write_bursts, 4);
        assert_eq!(s.decompressed_blocks, 0);
        assert_eq!(s.compressed_blocks, 0);
    }

    #[test]
    fn dirty_mdc_eviction_writes_the_line_back() {
        // A one-entry MDC: the second write-back's metadata line evicts
        // the first, whose burst-count update must be stored to DRAM (one
        // metadata write-back burst), and the survivor drains at flush
        // (the second).
        let mut cfg = cfg();
        cfg.mdc_entries = 1;
        let u = UniformBursts(2);
        let mut m = MemorySystem::new(&cfg, &u);
        m.store(0, 0); // metadata line 0
        m.store(crate::mdc::BLOCKS_PER_META_LINE, 0); // metadata line 1
        let s = m.stats();
        assert_eq!(s.metadata_writeback_bursts, 0, "write-back: nothing leaves yet");
        m.flush(100);
        let s = m.stats();
        assert_eq!(s.mdc_misses, 2);
        assert_eq!(s.metadata_bursts, 2, "both lines fetched");
        assert_eq!(
            s.metadata_writeback_bursts, 2,
            "one dirty eviction + one dirty line at the final drain"
        );
        assert_eq!(s.total_bursts(), 2 + 2 + 2 * 2, "write-backs count on the pins");
    }

    #[test]
    fn clean_metadata_lines_never_write_back() {
        // Read-only traffic dirties nothing: evictions and the final
        // drain stay silent however small the MDC.
        let mut cfg = cfg();
        cfg.mdc_entries = 1;
        let u = UniformBursts(2);
        let mut m = MemorySystem::new(&cfg, &u);
        m.load(0, 0);
        m.load(crate::mdc::BLOCKS_PER_META_LINE, 50_000); // evicts line 0
        m.flush(100_000);
        let s = m.stats();
        assert_eq!(s.mdc_misses, 2);
        assert_eq!(s.metadata_writeback_bursts, 0);
    }

    #[test]
    fn bursts_are_clamped_to_hardware_range() {
        let cfg = cfg();
        let silly = UniformBursts(99);
        let mut m = MemorySystem::new(&cfg, &silly);
        m.load(0, 0);
        assert_eq!(m.stats().read_bursts, 4);
    }

    #[test]
    fn remapped_block_pays_pointer_plus_spare_access() {
        use crate::fault::{FaultCounters, FaultPlan, RemapTable};
        let cfg = cfg();
        let u = UniformBursts(2);
        let mut table = RemapTable::new(4);
        table.assign(0).unwrap();
        let plan = FaultPlan::new(table, FaultCounters::default());

        let mut plain = MemorySystem::new(&cfg, &u);
        let mut faulty = MemorySystem::with_fault_plan(&cfg, &u, Some(&plan));
        let done_plain = plain.load(0, 0);
        let done_faulty = faulty.load(0, 0);
        assert!(
            done_faulty > done_plain,
            "indirection must cost real time: {done_faulty} vs {done_plain}"
        );
        // One extra pointer burst on the pins, same logical read count.
        assert_eq!(faulty.stats().read_bursts, plain.stats().read_bursts + 1);
        assert_eq!(faulty.stats().dram_reads, 1);

        // A block the plan does not remap behaves identically.
        let t1 = plain.load(5, 1_000_000);
        let t2 = faulty.load(5, 1_000_000);
        assert_eq!(t1, t2, "non-remapped blocks must not be perturbed");
    }

    #[test]
    fn remapped_writeback_routes_to_the_spare_region() {
        use crate::fault::{FaultCounters, FaultPlan, RemapTable};
        let cfg = cfg();
        let u = UniformBursts(2);
        let mut table = RemapTable::new(4);
        table.assign(3).unwrap();
        let plan = FaultPlan::new(table, FaultCounters::default());
        let mut m = MemorySystem::with_fault_plan(&cfg, &u, Some(&plan));
        m.store(3, 0);
        m.flush(100);
        let s = m.stats();
        assert_eq!(s.dram_writes, 1);
        assert_eq!(s.write_bursts, 2);
        assert_eq!(s.read_bursts, 1, "the forwarding pointer is read before the store");
    }

    #[test]
    fn empty_fault_plan_is_inert_and_harvests_counters() {
        use crate::fault::{FaultCounters, FaultPlan, RemapTable};
        let cfg = cfg();
        let u = UniformBursts(2);
        let counters = FaultCounters {
            fault_escalations: 7,
            remaps: 0,
            spare_occupancy_peak: 0,
            uncorrectable_blocks: 2,
        };
        let plan = FaultPlan::new(RemapTable::new(4), counters);
        let mut plain = MemorySystem::new(&cfg, &u);
        let mut faulty = MemorySystem::with_fault_plan(&cfg, &u, Some(&plan));
        for (i, at) in [(0u64, 0u64), (12, 50), (7, 80)] {
            assert_eq!(plain.load(i, at), faulty.load(i, at));
        }
        plain.store(3, 200);
        faulty.store(3, 200);
        assert_eq!(plain.flush(1000), faulty.flush(1000));
        let s = faulty.into_stats();
        assert_eq!(s.fault_escalations, 7);
        assert_eq!(s.uncorrectable_blocks, 2);
        let mut p = plain.into_stats();
        p.fault_escalations = 7;
        p.uncorrectable_blocks = 2;
        assert_eq!(p, s, "an empty remap table must leave timing untouched");
    }

    #[test]
    fn read_latency_accumulates_only_on_misses() {
        let cfg = cfg();
        let u = UniformBursts(4);
        let mut m = MemorySystem::new(&cfg, &u);
        let done = m.load(5, 0);
        m.load(5, done);
        assert_eq!(m.stats().dram_reads, 1);
        assert!(m.stats().read_latency_sum > 0);
        assert!((m.stats().avg_read_latency() - m.stats().read_latency_sum as f64).abs() < 1e-9);
    }
}

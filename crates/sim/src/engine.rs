//! The simulation engine: advances SMs in global time order.
//!
//! SMs interact only through the shared memory system, so correctness
//! requires memory requests to arrive in global time order. The engine
//! keeps all SMs in a min-heap keyed by their local clock and always steps
//! the laggard, which bounds reordering to one op.

use crate::config::GpuConfig;
use crate::fault::FaultPlan;
use crate::mc::{BurstsSource, MemorySystem};
use crate::sm::SmState;
use crate::stats::SimStats;
use crate::trace::Trace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The timing simulator.
///
/// ```
/// use slc_sim::{Engine, GpuConfig, Trace, Op, mc::UniformBursts};
///
/// let cfg = GpuConfig::default();
/// let mut trace = Trace::new(cfg.sms);
/// for sm in 0..cfg.sms {
///     for i in 0..64u64 {
///         trace.push(sm, Op::Load(sm as u64 * 1000 + i));
///     }
///     trace.push(sm, Op::Sync);
/// }
/// let stats = Engine::new(cfg).run(&trace, &UniformBursts(4));
/// assert!(stats.cycles > 0);
/// assert_eq!(stats.loads, 16 * 64);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: GpuConfig,
    fault: Option<FaultPlan>,
}

impl Engine {
    /// Creates an engine for the given configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        Self { cfg, fault: None }
    }

    /// Attaches the functional fault ladder's verdicts (see
    /// [`crate::fault`]): remapped blocks pay their indirection through
    /// the DRAM model and the ladder counters surface in the run's
    /// [`SimStats`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Runs `trace` to completion and returns the statistics.
    ///
    /// `bursts` supplies the per-block burst counts (compression state);
    /// use [`crate::mc::UniformBursts`] with the MAG's maximum for the
    /// no-compression baseline.
    pub fn run(&self, trace: &Trace, bursts: &dyn BurstsSource) -> SimStats {
        let mut mem = MemorySystem::with_fault_plan(&self.cfg, bursts, self.fault.as_ref());
        let mut sms: Vec<SmState> = (0..trace.sms()).map(|_| SmState::new(&self.cfg)).collect();
        // Min-heap over (local time, sm index): always step the laggard.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..trace.sms())
            .filter(|&i| !trace.stream(i).is_empty())
            .map(|i| Reverse((0u64, i)))
            .collect();
        while let Some(Reverse((_, i))) = heap.pop() {
            let sm = &mut sms[i];
            if sm.step(trace.stream(i), &mut mem) && !sm.done(trace.stream(i)) {
                heap.push(Reverse((sm.time(), i)));
            }
        }
        // End-of-kernel: drain dirty L2 lines and the channel write
        // buffers; execution ends when the last SM retires *and* the last
        // write-back leaves the pins.
        let end = sms.iter().map(SmState::time).max().unwrap_or(0);
        let horizon = mem.flush(end);
        // The memory system's counters are the starting point (no
        // field-by-field copy to drift); SM-side counters fold in on top.
        let mut stats = mem.into_stats();
        for sm in &sms {
            sm.accumulate(&mut stats);
        }
        stats.cycles = stats.cycles.max(horizon);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::{BurstsMap, UniformBursts};
    use crate::trace::{Op, TraceBuilder};

    /// A memory-bound streaming trace over `blocks` blocks.
    fn streaming_trace(cfg: &GpuConfig, blocks: u64, compute_per_block: u32) -> Trace {
        let mut b = TraceBuilder::new(cfg.sms);
        b.stream_sweep(0, blocks, 8, compute_per_block, None);
        b.build()
    }

    #[test]
    fn empty_trace_finishes_at_zero() {
        let cfg = GpuConfig::default();
        let stats = Engine::new(cfg.clone()).run(&Trace::new(cfg.sms), &UniformBursts(4));
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.ops, 0);
    }

    #[test]
    fn fewer_bursts_means_fewer_cycles_when_memory_bound() {
        let cfg = GpuConfig::default();
        let trace = streaming_trace(&cfg, 6000, 2);
        let base = Engine::new(cfg.clone()).run(&trace, &UniformBursts(4));
        let half = Engine::new(cfg.clone()).run(&trace, &UniformBursts(2));
        assert!(
            half.cycles < base.cycles,
            "2-burst blocks must beat 4-burst: {} vs {}",
            half.cycles,
            base.cycles
        );
        assert_eq!(half.read_bursts * 2, base.read_bursts);
        // Memory-bound: halving traffic buys a sizeable speedup.
        let speedup = base.cycles as f64 / half.cycles as f64;
        assert!(speedup > 1.3, "speedup only {speedup:.3}");
    }

    #[test]
    fn compute_bound_traces_are_insensitive_to_compression() {
        let cfg = GpuConfig::default();
        let trace = streaming_trace(&cfg, 800, 2000);
        let base = Engine::new(cfg.clone()).run(&trace, &UniformBursts(4));
        let half = Engine::new(cfg.clone()).run(&trace, &UniformBursts(2));
        let speedup = base.cycles as f64 / half.cycles as f64;
        assert!(speedup < 1.02, "compute-bound speedup should vanish, got {speedup:.3}");
    }

    #[test]
    fn decompression_latency_is_charged() {
        let cfg = GpuConfig::default().with_codec_latency(46, 20);
        let trace = streaming_trace(&cfg, 2000, 2);
        let stats = Engine::new(cfg).run(&trace, &UniformBursts(2));
        assert_eq!(stats.decompressed_blocks, stats.dram_reads);
    }

    #[test]
    fn stores_generate_writeback_traffic() {
        let cfg = GpuConfig::default();
        let mut b = TraceBuilder::new(cfg.sms);
        // Load one array, store another, bigger than L2 (768 KB = 6144
        // blocks) so write-backs flow during the run.
        b.stream_sweep(0, 10_000, 8, 2, Some(10_000 * 128));
        let stats = Engine::new(cfg).run(&b.build(), &UniformBursts(4));
        assert_eq!(stats.stores, 10_000);
        assert_eq!(stats.dram_writes, 10_000, "every stored block is eventually written back");
        assert_eq!(stats.write_bursts, 4 * 10_000);
    }

    #[test]
    fn burst_map_reduces_only_mapped_traffic() {
        let cfg = GpuConfig::default();
        let trace = streaming_trace(&cfg, 4000, 2);
        let mut map = BurstsMap::new(4);
        for b in 0..2000 {
            map.insert(b, 1);
        }
        let stats = Engine::new(cfg).run(&trace, &map);
        assert_eq!(stats.read_bursts, 2000 + 4 * 2000);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = GpuConfig::default();
        let trace = streaming_trace(&cfg, 3000, 3);
        let a = Engine::new(cfg.clone()).run(&trace, &UniformBursts(3));
        let b = Engine::new(cfg).run(&trace, &UniformBursts(3));
        assert_eq!(a, b);
    }

    #[test]
    fn l2_captures_reuse() {
        let cfg = GpuConfig::default();
        let mut t = Trace::new(cfg.sms);
        // Same 64 blocks touched by every SM: first SM misses, rest hit L2.
        for sm in 0..cfg.sms {
            for i in 0..64 {
                t.push(sm, Op::Load(i));
            }
            t.push(sm, Op::Sync);
        }
        let stats = Engine::new(cfg).run(&t, &UniformBursts(4));
        assert_eq!(stats.dram_reads, 64);
        assert!(stats.l2_hits > 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn random_trace(ops: &[(u8, u64, u8)]) -> Trace {
            let cfg = GpuConfig::default();
            let mut t = Trace::new(cfg.sms);
            for &(sm, addr, kind) in ops {
                let sm = sm as usize % cfg.sms;
                match kind % 4 {
                    0 | 1 => t.push(sm, Op::Load(addr % 4096)),
                    2 => t.push(sm, Op::Store(addr % 4096)),
                    _ => t.push(sm, Op::Compute((addr % 64) as u32 + 1)),
                }
            }
            for sm in 0..cfg.sms {
                t.push(sm, Op::Sync);
            }
            t
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Fewer bursts per block can never make a run slower: the
            /// relation SLC's whole value proposition rests on.
            #[test]
            fn prop_cycles_monotone_in_bursts(
                ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u8>()), 50..400)
            ) {
                let cfg = GpuConfig::default();
                let trace = random_trace(&ops);
                let mut last = u64::MAX;
                for bursts in [4u32, 3, 2, 1] {
                    let stats = Engine::new(cfg.clone()).run(&trace, &UniformBursts(bursts));
                    prop_assert!(stats.cycles <= last,
                        "bursts {bursts} took {} > previous {}", stats.cycles, last);
                    last = stats.cycles;
                }
            }

            /// Conservation: every issued load is either an L1 hit, an L2
            /// hit or a DRAM read; every store eventually writes back.
            #[test]
            fn prop_request_conservation(
                ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u8>()), 50..400)
            ) {
                let cfg = GpuConfig::default();
                let trace = random_trace(&ops);
                let stats = Engine::new(cfg).run(&trace, &UniformBursts(4));
                prop_assert_eq!(stats.loads, stats.l1_hits + stats.l1_misses);
                // L2 sees L1 misses plus stores.
                prop_assert_eq!(stats.l1_misses + stats.stores, stats.l2_hits + stats.l2_misses);
                prop_assert!(stats.dram_reads <= stats.l2_misses);
                prop_assert!(stats.dram_writes <= stats.stores + stats.loads);
            }
        }
    }

    #[test]
    fn achieved_bandwidth_is_below_peak() {
        let cfg = GpuConfig::default();
        let trace = streaming_trace(&cfg, 8000, 0);
        let stats = Engine::new(cfg.clone()).run(&trace, &UniformBursts(4));
        let bw = stats.achieved_bandwidth_gbps(cfg.mag().bytes(), cfg.sm_clock_mhz);
        assert!(bw > 0.3 * cfg.bandwidth_gbps(), "streaming should use bandwidth, got {bw:.1}");
        assert!(bw <= cfg.bandwidth_gbps() * 1.01, "cannot exceed peak, got {bw:.1}");
    }
}

//! Set-associative write-back cache model (L1 per SM, shared L2).

use crate::BlockAddr;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The block was present.
    Hit,
    /// The block was absent; `writeback` is the dirty victim to flush, if
    /// any. The block has been installed.
    Miss {
        /// Dirty victim evicted to make room.
        writeback: Option<BlockAddr>,
    },
}

impl CacheOutcome {
    /// `true` for a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: higher = more recent.
    lru: u64,
}

const INVALID: Line = Line { tag: 0, valid: false, dirty: false, lru: 0 };

/// A set-associative LRU cache of 128 B lines.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_kb` KB with `assoc` ways and 128 B lines.
    ///
    /// # Panics
    ///
    /// Panics unless the geometry yields a power-of-two, non-zero set count.
    pub fn new(size_kb: u32, assoc: usize) -> Self {
        let lines = (size_kb as usize * 1024) / 128;
        assert!(assoc > 0 && lines >= assoc, "degenerate cache geometry");
        let sets = lines / assoc;
        assert!(sets > 0, "cache must have at least one set");
        Self { sets, assoc, lines: vec![INVALID; sets * assoc], tick: 0, hits: 0, misses: 0 }
    }

    // Modulo indexing: GPU L2 slices are not power-of-two sized (768 KB).
    fn set_of(&self, block: BlockAddr) -> usize {
        (block % self.sets as u64) as usize
    }

    /// Accesses `block`; on a miss the block is installed (allocate on
    /// read and on write: GPU L2 lines are written back in full, and
    /// stores are assumed fully coalesced).
    pub fn access(&mut self, block: BlockAddr, write: bool) -> CacheOutcome {
        self.tick += 1;
        let set = self.set_of(block);
        let base = set * self.assoc;
        let ways = &mut self.lines[base..base + self.assoc];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == block) {
            line.lru = self.tick;
            line.dirty |= write;
            self.hits += 1;
            return CacheOutcome::Hit;
        }
        self.misses += 1;
        // Victim: invalid way first, else LRU.
        let victim = match ways.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) = ways.iter().enumerate().min_by_key(|(_, l)| l.lru).expect("assoc > 0");
                i
            }
        };
        let evicted = ways[victim];
        ways[victim] = Line { tag: block, valid: true, dirty: write, lru: self.tick };
        let writeback = (evicted.valid && evicted.dirty).then_some(evicted.tag);
        CacheOutcome::Miss { writeback }
    }

    /// Probes without installing or updating LRU (for tests/telemetry).
    pub fn probe(&self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        let base = set * self.assoc;
        self.lines[base..base + self.assoc].iter().any(|l| l.valid && l.tag == block)
    }

    /// Drains every dirty line (end-of-kernel flush), returning them.
    pub fn flush_dirty(&mut self) -> Vec<BlockAddr> {
        let mut out = Vec::new();
        for l in &mut self.lines {
            if l.valid && l.dirty {
                out.push(l.tag);
                l.dirty = false;
            }
        }
        out
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(16, 4);
        assert!(!c.access(42, false).is_hit());
        assert!(c.access(42, false).is_hit());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 4 sets (2 KB / 128 / 4 ways) — pick 5 blocks mapping to set 0.
        let mut c = Cache::new(2, 4);
        let set0 = |i: u64| i * 4; // 4 sets: block % 4 == 0
        for i in 0..4 {
            c.access(set0(i), false);
        }
        // Touch block 0 to refresh it, then insert a 5th block.
        c.access(set0(0), false);
        c.access(set0(4), false);
        assert!(c.probe(set0(0)), "refreshed line survives");
        assert!(!c.probe(set0(1)), "LRU line evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(2, 1); // direct-mapped, 16 sets
        assert_eq!(c.access(0, true), CacheOutcome::Miss { writeback: None });
        match c.access(16, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, Some(0)),
            CacheOutcome::Hit => panic!("expected conflict miss"),
        }
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = Cache::new(2, 1);
        c.access(0, false);
        assert_eq!(c.access(16, false), CacheOutcome::Miss { writeback: None });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(2, 1);
        c.access(0, false);
        c.access(0, true);
        assert_eq!(c.flush_dirty(), vec![0]);
        assert!(c.flush_dirty().is_empty(), "flush clears dirty bits");
    }

    #[test]
    fn flush_returns_all_dirty_lines() {
        let mut c = Cache::new(16, 4);
        for b in [3, 77, 200] {
            c.access(b, true);
        }
        c.access(500, false);
        let mut dirty = c.flush_dirty();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![3, 77, 200]);
    }

    proptest! {
        #[test]
        fn prop_hits_plus_misses_equals_accesses(blocks in proptest::collection::vec(0u64..256, 1..500)) {
            let mut c = Cache::new(16, 8);
            for &b in &blocks {
                c.access(b, b % 3 == 0);
            }
            prop_assert_eq!(c.hits() + c.misses(), blocks.len() as u64);
        }

        #[test]
        fn prop_working_set_within_capacity_always_hits_second_pass(
            start in 0u64..1000) {
            // 16 KB / 128 = 128 lines; touch 64 distinct blocks twice.
            let mut c = Cache::new(16, 8);
            let blocks: Vec<u64> = (start..start + 64).collect();
            for &b in &blocks {
                c.access(b, false);
            }
            for &b in &blocks {
                prop_assert!(c.access(b, false).is_hit());
            }
        }
    }
}

//! Value-similarity prediction for approximated symbols (Section III-E).
//!
//! TSLC truncates the selected symbols during compression; at
//! decompression the hole must be filled. TSLC-SIMP inserts zeros. The
//! paper's TSLC-PRED exploits the high value similarity of adjacent GPU
//! threads and fills each truncated symbol with the value of a
//! non-truncated symbol of the same block — hardware only has to "generate
//! the index of the predicted value".
//!
//! The paper's wording picks "the first non-truncated symbol of the
//! block". With 16-bit symbols over little-endian `f32` arrays the symbol
//! stream interleaves mantissa-low and sign/exponent halves, so the
//! literal rule would cross byte lanes and destroy exponents. The default
//! here is therefore [`PredictorKind::LaneMatched`] — the nearest
//! non-truncated symbol of the same index parity, which is the same-cost
//! index generation and matches the paper's reported sub-percent errors.
//! The literal rule is kept as [`PredictorKind::FirstSymbol`] for the
//! ablation study.

use slc_compress::symbols::SYMBOLS_PER_BLOCK;

/// How a truncated symbol's value is predicted at decompression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// Insert zero (TSLC-SIMP).
    Zero,
    /// The first non-truncated symbol of the block (the paper's literal
    /// wording; lane-oblivious).
    FirstSymbol,
    /// Nearest non-truncated symbol with the same index parity
    /// (lane-matched; the default for TSLC-PRED/TSLC-OPT).
    #[default]
    LaneMatched,
}

/// Fills `symbols[ss..ss + len]` with predicted values.
///
/// The slice outside the hole must already contain the decoded symbols.
///
/// # Panics
///
/// Panics if the hole is empty, longer than the 16 symbols the header can
/// express (so it would cover the whole block), or runs past the end.
pub fn fill_approximated(
    symbols: &mut [u16; SYMBOLS_PER_BLOCK],
    ss: usize,
    len: usize,
    kind: PredictorKind,
) {
    assert!(len >= 1, "empty hole");
    assert!(ss + len <= SYMBOLS_PER_BLOCK, "hole {ss}+{len} past block end");
    assert!(
        len <= 16,
        "hole of {len} symbols exceeds the header limit; would cover the whole block"
    );
    match kind {
        PredictorKind::Zero => {
            for s in &mut symbols[ss..ss + len] {
                *s = 0;
            }
        }
        PredictorKind::FirstSymbol => {
            let idx = if ss == 0 { len } else { 0 };
            let v = symbols[idx];
            for s in &mut symbols[ss..ss + len] {
                *s = v;
            }
        }
        PredictorKind::LaneMatched => {
            for i in ss..ss + len {
                symbols[i] = symbols[lane_matched_index(i, ss, len)];
            }
        }
    }
}

/// Index of the nearest non-truncated symbol with the same parity as `i`:
/// searched before the hole first, then after it.
pub fn lane_matched_index(i: usize, ss: usize, len: usize) -> usize {
    debug_assert!((ss..ss + len).contains(&i));
    // Last same-parity index before the hole.
    if ss > 0 {
        let before = ss - 1;
        let candidate = if before % 2 == i % 2 { Some(before) } else { before.checked_sub(1) };
        if let Some(c) = candidate {
            debug_assert_eq!(c % 2, i % 2);
            return c;
        }
    }
    // Otherwise the first same-parity index after the hole.
    let after = ss + len;
    let candidate = if after % 2 == i % 2 { after } else { after + 1 };
    debug_assert!(candidate < SYMBOLS_PER_BLOCK, "hole of <64 symbols leaves a neighbour");
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn base_symbols() -> [u16; SYMBOLS_PER_BLOCK] {
        let mut s = [0u16; SYMBOLS_PER_BLOCK];
        for (i, v) in s.iter_mut().enumerate() {
            // Even lanes look like mantissa halves, odd lanes like
            // exponent halves of nearby floats.
            *v = if i % 2 == 0 { 0x1000 + i as u16 } else { 0x4480 + (i as u16 >> 4) };
        }
        s
    }

    #[test]
    fn zero_fills_zeros() {
        let mut s = base_symbols();
        fill_approximated(&mut s, 10, 4, PredictorKind::Zero);
        assert!(s[10..14].iter().all(|&v| v == 0));
        assert_ne!(s[9], 0);
        assert_ne!(s[14], 0);
    }

    #[test]
    fn first_symbol_uses_index_zero_for_interior_holes() {
        let mut s = base_symbols();
        let first = s[0];
        fill_approximated(&mut s, 20, 8, PredictorKind::FirstSymbol);
        assert!(s[20..28].iter().all(|&v| v == first));
    }

    #[test]
    fn first_symbol_skips_hole_at_block_start() {
        let mut s = base_symbols();
        let after = s[4];
        fill_approximated(&mut s, 0, 4, PredictorKind::FirstSymbol);
        assert!(s[0..4].iter().all(|&v| v == after));
    }

    #[test]
    fn lane_matched_preserves_parity() {
        let mut s = base_symbols();
        let orig = s;
        fill_approximated(&mut s, 17, 6, PredictorKind::LaneMatched);
        for (i, &sym) in s.iter().enumerate().take(23).skip(17) {
            // Predicted from before the hole: indices 15/16.
            let src = if i % 2 == 0 { 16 } else { 15 };
            assert_eq!(sym, orig[src], "symbol {i}");
        }
    }

    #[test]
    fn lane_matched_hole_at_start_predicts_from_after() {
        let mut s = base_symbols();
        let orig = s;
        fill_approximated(&mut s, 0, 3, PredictorKind::LaneMatched);
        assert_eq!(s[0], orig[4]); // even lane: first even index after hole (3 is odd)
        assert_eq!(s[1], orig[3]); // odd lane
        assert_eq!(s[2], orig[4]);
    }

    #[test]
    fn lane_matched_is_good_for_float_blocks() {
        // Similar f32 values: lane-matched prediction reconstructs the
        // exponent halves exactly; the first-symbol rule does not.
        let mut block = [0u8; 128];
        for i in 0..32 {
            let v = 1234.5f32 + i as f32 * 0.001;
            block[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        let orig = slc_compress::symbols::block_to_symbols(&block);
        let mut lane = orig;
        fill_approximated(&mut lane, 31, 4, PredictorKind::LaneMatched);
        let mut first = orig;
        fill_approximated(&mut first, 31, 4, PredictorKind::FirstSymbol);
        let err = |s: &[u16; 64]| -> f64 {
            let b = slc_compress::symbols::symbols_to_block(s);
            (0..32)
                .map(|i| {
                    let v = f32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().unwrap());
                    let o = f32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
                    ((v - o) as f64).abs()
                })
                .sum()
        };
        assert!(err(&lane) < err(&first), "lane {} vs first {}", err(&lane), err(&first));
    }

    #[test]
    #[should_panic(expected = "whole block")]
    fn whole_block_hole_rejected() {
        let mut s = base_symbols();
        fill_approximated(&mut s, 0, SYMBOLS_PER_BLOCK, PredictorKind::Zero);
    }

    proptest! {
        #[test]
        fn prop_fill_touches_only_hole(ss in 0usize..64, len in 1usize..=16,
                                       kind in prop_oneof![Just(PredictorKind::Zero),
                                                           Just(PredictorKind::FirstSymbol),
                                                           Just(PredictorKind::LaneMatched)]) {
            prop_assume!(ss + len <= SYMBOLS_PER_BLOCK);
            let mut s = base_symbols();
            let orig = s;
            fill_approximated(&mut s, ss, len, kind);
            for i in 0..SYMBOLS_PER_BLOCK {
                if !(ss..ss + len).contains(&i) {
                    prop_assert_eq!(s[i], orig[i], "index {} outside hole changed", i);
                }
            }
        }

        #[test]
        fn prop_lane_matched_source_is_outside_hole(ss in 0usize..64, len in 1usize..=16) {
            prop_assume!(ss + len <= SYMBOLS_PER_BLOCK);
            for i in ss..ss + len {
                let src = lane_matched_index(i, ss, len);
                prop_assert!(!(ss..ss + len).contains(&src));
                prop_assert_eq!(src % 2, i % 2);
                prop_assert!(src < SYMBOLS_PER_BLOCK);
            }
        }
    }
}

//! Bit budgets and the lossless/lossy mode decision (paper Fig. 4).
//!
//! SLC is "a budget-based compression technique which allows selection
//! between different compression modes depending upon comp size, bit
//! budget, extra bits, and a threshold". The *bit budget* is the closest
//! MAG multiple at or below the lossless compressed size; the *extra bits*
//! are what sticks out above it; the user-set *threshold* bounds how many
//! bits may be approximated away.

use crate::header::LOSSLESS_HEADER_BITS;
use slc_compress::e2mc::BlockAnalysis;
use slc_compress::{Mag, BLOCK_BITS};

/// Which compression mode the Fig. 4 flow selects for a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModeChoice {
    /// Compressed size is no smaller than the block: store verbatim
    /// ("the block is always stored uncompressed and the bit budget is
    /// 128B").
    Uncompressed,
    /// Lossless compression; either the size already sits on a MAG
    /// multiple, is below one MAG, or the extra bits exceed the threshold.
    Lossless,
    /// Extra bits are within the threshold: approximate them away.
    Lossy,
}

/// The budget arithmetic for one block.
///
/// ```
/// use slc_core::budget::{BudgetDecision, ModeChoice};
/// use slc_compress::Mag;
///
/// // 36 bytes compressed = 288 bits: budget 256 (32 B), 32 extra bits.
/// let d = BudgetDecision::evaluate(288, Mag::GDDR5, 16 * 8);
/// assert_eq!(d.bit_budget, 256);
/// assert_eq!(d.extra_bits, 32);
/// assert_eq!(d.mode, ModeChoice::Lossy);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetDecision {
    /// Lossless compressed size in bits (code lengths + header).
    pub comp_size_bits: u32,
    /// Closest MAG multiple ≤ `comp_size_bits`, clamped to `[MAG, block]`.
    pub bit_budget: u32,
    /// `comp_size_bits - bit_budget` (0 when the size is on a multiple).
    pub extra_bits: u32,
    /// Selected mode.
    pub mode: ModeChoice,
}

impl BudgetDecision {
    /// Runs the Fig. 4 decision flow.
    ///
    /// `threshold_bits` is the user-defined number of bits that may be
    /// safely approximated (the paper's per-region `threshold`).
    pub fn evaluate(comp_size_bits: u32, mag: Mag, threshold_bits: u32) -> Self {
        let mag_bits = mag.bits();
        // Incompressible: uncompressed, budget = whole block. Note this
        // tests the raw compressed size, not its MAG round-up: a block a
        // few bytes above the last interior MAG multiple is exactly what
        // the lossy mode is for (the storage layer falls back to verbatim
        // only after the lossy path declines — see `SlcCompressor`).
        if comp_size_bits >= BLOCK_BITS {
            return Self {
                comp_size_bits,
                bit_budget: BLOCK_BITS,
                extra_bits: 0,
                mode: ModeChoice::Uncompressed,
            };
        }
        // "it is not possible to fetch less than 32B from memory": sizes at
        // or below one MAG are lossless with a one-MAG budget.
        if comp_size_bits <= mag_bits {
            return Self {
                comp_size_bits,
                bit_budget: mag_bits,
                extra_bits: 0,
                mode: ModeChoice::Lossless,
            };
        }
        let bit_budget = (comp_size_bits / mag_bits) * mag_bits;
        let extra_bits = comp_size_bits - bit_budget;
        let mode = if extra_bits == 0 {
            ModeChoice::Lossless
        } else if extra_bits <= threshold_bits {
            ModeChoice::Lossy
        } else {
            ModeChoice::Lossless
        };
        Self { comp_size_bits, bit_budget, extra_bits, mode }
    }

    /// Runs the Fig. 4 flow for a block that has already been analysed:
    /// the lossless compressed size is the SLC header plus the analysis'
    /// precomputed code-length sum (the root of its stored adder tree),
    /// so the decision is a lookup plus a few compares on top of a shared
    /// [`BlockAnalysis`] — no re-encoding, no re-summation.
    pub fn for_analysis(analysis: &BlockAnalysis, mag: Mag, threshold_bits: u32) -> Self {
        Self::evaluate(LOSSLESS_HEADER_BITS + analysis.total_code_bits(), mag, threshold_bits)
    }

    /// Bursts the block costs if stored losslessly under `mag`.
    pub fn lossless_bursts(&self, mag: Mag) -> u32 {
        mag.bursts_for_bits(self.comp_size_bits, BLOCK_BITS / 8)
    }

    /// Bursts the block costs if the lossy mode lands on the budget.
    pub fn budget_bursts(&self, mag: Mag) -> u32 {
        mag.bursts_for_bits(self.bit_budget, BLOCK_BITS / 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const THR_16B: u32 = 16 * 8;

    #[test]
    fn size_on_multiple_stays_lossless() {
        for mult in [256, 512, 768] {
            let d = BudgetDecision::evaluate(mult, Mag::GDDR5, THR_16B);
            assert_eq!(d.mode, ModeChoice::Lossless);
            assert_eq!(d.extra_bits, 0);
            assert_eq!(d.bit_budget, mult);
        }
    }

    #[test]
    fn tiny_blocks_are_lossless_with_one_mag_budget() {
        let d = BudgetDecision::evaluate(100, Mag::GDDR5, THR_16B);
        assert_eq!(d.mode, ModeChoice::Lossless);
        assert_eq!(d.bit_budget, 256);
        assert_eq!(d.extra_bits, 0);
        assert_eq!(d.lossless_bursts(Mag::GDDR5), 1);
    }

    #[test]
    fn few_extra_bits_go_lossy() {
        let d = BudgetDecision::evaluate(256 + 40, Mag::GDDR5, THR_16B);
        assert_eq!(d.mode, ModeChoice::Lossy);
        assert_eq!(d.extra_bits, 40);
        assert_eq!(d.budget_bursts(Mag::GDDR5), 1);
        assert_eq!(d.lossless_bursts(Mag::GDDR5), 2);
    }

    #[test]
    fn many_extra_bits_stay_lossless() {
        let d = BudgetDecision::evaluate(256 + THR_16B + 1, Mag::GDDR5, THR_16B);
        assert_eq!(d.mode, ModeChoice::Lossless);
    }

    #[test]
    fn extra_exactly_at_threshold_goes_lossy() {
        // The paper uses "extra bits <= threshold".
        let d = BudgetDecision::evaluate(512 + THR_16B, Mag::GDDR5, THR_16B);
        assert_eq!(d.mode, ModeChoice::Lossy);
        assert_eq!(d.extra_bits, THR_16B);
    }

    #[test]
    fn sizes_just_above_the_last_interior_multiple_can_go_lossy() {
        // A 100 B block under MAG 32 moves 4 bursts losslessly, but the
        // lossy mode can round it down to 96 B (3 bursts).
        let d = BudgetDecision::evaluate(100 * 8, Mag::GDDR5, THR_16B);
        assert_eq!(d.mode, ModeChoice::Lossy);
        assert_eq!(d.bit_budget, 96 * 8);
        // Whole-block-or-more compressed sizes stay verbatim.
        let d = BudgetDecision::evaluate(2000, Mag::GDDR5, THR_16B);
        assert_eq!(d.mode, ModeChoice::Uncompressed);
    }

    #[test]
    fn wide_mag_has_one_interior_budget_point() {
        // Under MAG 64, 65..96 B is lossy-eligible down to the single
        // interior multiple (64 B); beyond the threshold it stays
        // lossless (and the storage layer falls back to verbatim).
        let d = BudgetDecision::evaluate(70 * 8, Mag::WIDE_64, 32 * 8);
        assert_eq!(d.mode, ModeChoice::Lossy);
        assert_eq!(d.bit_budget, 64 * 8);
        let d = BudgetDecision::evaluate(110 * 8, Mag::WIDE_64, 32 * 8);
        assert_eq!(d.mode, ModeChoice::Lossless);
        let d = BudgetDecision::evaluate(64 * 8, Mag::WIDE_64, THR_16B);
        assert_eq!(d.mode, ModeChoice::Lossless);
    }

    #[test]
    fn narrow_mag_offers_more_lossy_points() {
        // MAG 16: budgets at 16,32,...,112 B. 50 B -> budget 48, extra 2 B.
        let d = BudgetDecision::evaluate(50 * 8, Mag::NARROW_16, 8 * 8);
        assert_eq!(d.bit_budget, 48 * 8);
        assert_eq!(d.extra_bits, 16);
        assert_eq!(d.mode, ModeChoice::Lossy);
    }

    #[test]
    fn for_analysis_matches_evaluate_on_the_framed_size() {
        use slc_compress::symbols::SYMBOLS_PER_BLOCK;
        for fill in [2u32, 5, 9, 14] {
            let a = BlockAnalysis::from_lengths([fill; SYMBOLS_PER_BLOCK]);
            let via = BudgetDecision::for_analysis(&a, Mag::GDDR5, THR_16B);
            let direct = BudgetDecision::evaluate(
                LOSSLESS_HEADER_BITS + fill * SYMBOLS_PER_BLOCK as u32,
                Mag::GDDR5,
                THR_16B,
            );
            assert_eq!(via, direct);
        }
    }

    proptest! {
        #[test]
        fn prop_budget_is_mag_multiple_at_or_below_size(size in 1u32..=1400, thr in 0u32..=256) {
            let d = BudgetDecision::evaluate(size, Mag::GDDR5, thr);
            prop_assert_eq!(d.bit_budget % Mag::GDDR5.bits(), 0);
            match d.mode {
                ModeChoice::Uncompressed => prop_assert_eq!(d.bit_budget, BLOCK_BITS),
                _ if size <= Mag::GDDR5.bits() => {
                    prop_assert_eq!(d.bit_budget, Mag::GDDR5.bits());
                    prop_assert_eq!(d.extra_bits, 0);
                }
                _ => {
                    prop_assert!(d.bit_budget <= size);
                    prop_assert_eq!(d.extra_bits, size - d.bit_budget);
                }
            }
        }

        #[test]
        fn prop_lossy_only_within_threshold(size in 1u32..=1400, thr in 0u32..=256) {
            let d = BudgetDecision::evaluate(size, Mag::GDDR5, thr);
            if d.mode == ModeChoice::Lossy {
                prop_assert!(d.extra_bits >= 1 && d.extra_bits <= thr);
            }
        }

        #[test]
        fn prop_budget_bursts_never_exceed_lossless(size in 1u32..=1023, thr in 0u32..=256) {
            let d = BudgetDecision::evaluate(size, Mag::GDDR5, thr);
            prop_assert!(d.budget_bursts(Mag::GDDR5) <= d.lossless_bursts(Mag::GDDR5));
        }
    }
}

//! The end-to-end SLC compressor/decompressor (paper Section III).
//!
//! [`SlcCompressor`] wraps a trained E2MC codec. Per block it computes the
//! lossless compressed size from the code lengths alone (no encoding
//! needed), runs the Fig. 4 budget decision, and — in lossy mode — uses the
//! Fig. 5 tree to pick the symbols to truncate. The decompressor rebuilds
//! the block, filling truncated symbols via the configured predictor.

use crate::budget::{BudgetDecision, ModeChoice};
use crate::header::{SlcHeader, LOSSLESS_HEADER_BITS, LOSSY_HEADER_DELTA};
use crate::predict::{fill_approximated, PredictorKind};
use crate::tree::{CodeLengthTree, Selection};
use slc_compress::bitstream::{BitReader, BitWriter};
use slc_compress::e2mc::{BlockAnalysis, E2mc, SymbolTable, WAYS, WAY_SYMBOLS};
use slc_compress::symbols::{block_to_symbols, symbols_to_block, SYMBOLS_PER_BLOCK};
use slc_compress::{Block, Mag, BLOCK_BITS, BLOCK_BYTES};

/// The three TSLC variants evaluated in the paper (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlcVariant {
    /// Truncate; decompress with zeros.
    TslcSimp,
    /// Truncate; decompress with value-similarity prediction.
    TslcPred,
    /// TSLC-PRED plus the extra middle-level tree nodes.
    TslcOpt,
}

impl SlcVariant {
    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SlcVariant::TslcSimp => "TSLC-SIMP",
            SlcVariant::TslcPred => "TSLC-PRED",
            SlcVariant::TslcOpt => "TSLC-OPT",
        }
    }

    fn uses_opt_nodes(self) -> bool {
        matches!(self, SlcVariant::TslcOpt)
    }

    fn default_predictor(self) -> PredictorKind {
        match self {
            SlcVariant::TslcSimp => PredictorKind::Zero,
            SlcVariant::TslcPred | SlcVariant::TslcOpt => PredictorKind::LaneMatched,
        }
    }
}

/// SLC configuration: MAG, lossy threshold and variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlcConfig {
    mag: Mag,
    threshold_bytes: u32,
    variant: SlcVariant,
    predictor: PredictorKind,
}

impl SlcConfig {
    /// Creates a configuration with the variant's default predictor.
    ///
    /// `threshold_bytes` is the user-specified lossy threshold (the paper
    /// evaluates 16 B with MAG 32 B and MAG/2 elsewhere).
    pub fn new(mag: Mag, threshold_bytes: u32, variant: SlcVariant) -> Self {
        Self { mag, threshold_bytes, variant, predictor: variant.default_predictor() }
    }

    /// Overrides the decompression-side predictor (ablation hook).
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// The memory access granularity.
    pub fn mag(&self) -> Mag {
        self.mag
    }

    /// The lossy threshold in bytes.
    pub fn threshold_bytes(&self) -> u32 {
        self.threshold_bytes
    }

    /// The lossy threshold in bits.
    pub fn threshold_bits(&self) -> u32 {
        self.threshold_bytes * 8
    }

    /// The TSLC variant.
    pub fn variant(&self) -> SlcVariant {
        self.variant
    }

    /// The active predictor.
    pub fn predictor(&self) -> PredictorKind {
        self.predictor
    }
}

/// Verdict of fitting one approximable block into a constrained bit
/// budget — the fault-tolerance degradation ladder's per-block decision
/// (see [`SlcCompressor::fit_within_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitOutcome {
    /// The fault-free stored form already fits the budget: store it
    /// unchanged (no escalation).
    Natural {
        /// Stored size in bits, identical to
        /// [`SlcCompressor::stored_bits_with`].
        bits: u32,
        /// Whether that natural form is lossy.
        lossy: bool,
    },
    /// The full lossless stream fits the budget even though the
    /// fault-free pipeline stores this block verbatim (compressing saved
    /// no bursts at full row capacity — it saves the row now). No data
    /// loss; encode with [`SlcCompressor::compress_lossless_with`].
    Lossless {
        /// Stored size in bits (the lossless E2MC size under SLC
        /// framing), `<= budget_bits`.
        bits: u32,
    },
    /// A *deeper* lossy truncation than the fault-free decision fits the
    /// budget — encode with [`SlcCompressor::compress_degraded`].
    Degraded {
        /// Stored size in bits, `<= budget_bits`.
        bits: u32,
        /// The Fig. 5 selection that frees enough codewords.
        selection: Selection,
    },
    /// No stored form fits: even the deepest truncation the tree offers
    /// overshoots the budget. The block must be remapped (or counted
    /// uncorrectable).
    Unstorable,
}

/// How a block was stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoredKind {
    /// Verbatim, no header.
    Uncompressed,
    /// Losslessly compressed (E2MC framing with SLC's header).
    Lossless,
    /// Lossy: `selection` describes the truncated symbols.
    Lossy {
        /// The sub-block the tree selected.
        selection: Selection,
    },
}

/// A block as SLC stores it in DRAM.
#[derive(Debug, Clone)]
pub struct SlcCompressed {
    payload: Vec<u8>,
    size_bits: u32,
    kind: StoredKind,
    bursts: u32,
    decision: BudgetDecision,
}

impl SlcCompressed {
    /// Exact stored size in bits (header + data; 1024 when verbatim).
    pub fn size_bits(&self) -> u32 {
        self.size_bits
    }

    /// DRAM bursts needed to fetch the block under the configured MAG —
    /// the 2-bit value the metadata cache stores.
    pub fn bursts(&self) -> u32 {
        self.bursts
    }

    /// Storage mode.
    pub fn kind(&self) -> StoredKind {
        self.kind
    }

    /// The budget arithmetic that led to this mode (paper Fig. 4 inputs).
    pub fn decision(&self) -> BudgetDecision {
        self.decision
    }

    /// Raw payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// `true` when decompression will not reproduce the original exactly.
    pub fn is_lossy(&self) -> bool {
        matches!(self.kind, StoredKind::Lossy { .. })
    }
}

/// The SLC compressor: a trained E2MC baseline plus the SLC budget/tree.
///
/// Cloning is cheap: the trained symbol table lives behind an `Arc`
/// inside [`E2mc`], so every `SlcCompressor` instance — and every scheme
/// built from one — shares the single frozen table, exactly as the
/// modeled hardware shares one trained code table across all compressor
/// units.
#[derive(Debug, Clone)]
pub struct SlcCompressor {
    e2mc: E2mc,
    config: SlcConfig,
}

impl SlcCompressor {
    /// Wraps a trained E2MC codec. `e2mc` is a shared handle (an `Arc`'d
    /// table under the hood), so taking it by value costs no table copy.
    pub fn new(e2mc: E2mc, config: SlcConfig) -> Self {
        Self { e2mc, config }
    }

    /// The configuration.
    pub fn config(&self) -> &SlcConfig {
        &self.config
    }

    /// The underlying lossless codec.
    pub fn e2mc(&self) -> &E2mc {
        &self.e2mc
    }

    /// Analyses `block` under the trained table: the per-symbol code
    /// lengths and their sum, the shared artifact every decision below
    /// consumes. Produce it once and fan it out to [`analyze_with`],
    /// [`stored_bits_with`] or [`compress_with`] — across as many
    /// schemes, thresholds and MAGs as needed — instead of paying one
    /// table pass per consumer.
    ///
    /// [`analyze_with`]: Self::analyze_with
    /// [`stored_bits_with`]: Self::stored_bits_with
    /// [`compress_with`]: Self::compress_with
    pub fn analysis(&self, block: &Block) -> BlockAnalysis {
        self.e2mc.analyze(block)
    }

    /// Computes the Fig. 4 decision and (for lossy mode) the Fig. 5
    /// selection for `block`, without encoding anything.
    ///
    /// Exposed so experiments can study the decision distribution (the
    /// Fig. 2 heat map) without paying for encoding.
    pub fn analyze(&self, block: &Block) -> (BudgetDecision, Option<Selection>) {
        self.analyze_with(&self.analysis(block))
    }

    /// [`analyze`](Self::analyze) over a precomputed [`BlockAnalysis`].
    ///
    /// The budget decision needs only the code-length sum; the Fig. 5
    /// tree is built just for blocks the budget sends lossy, from the
    /// analysis' lengths — no second E2MC pass anywhere.
    pub fn analyze_with(&self, analysis: &BlockAnalysis) -> (BudgetDecision, Option<Selection>) {
        let decision =
            BudgetDecision::for_analysis(analysis, self.config.mag, self.config.threshold_bits());
        let selection = if decision.mode == ModeChoice::Lossy {
            // The lossy header costs LOSSY_HEADER_DELTA more bits than the
            // lossless one; the freed codewords must cover both the extra
            // bits and that delta or the block would overshoot its budget.
            CodeLengthTree::from_analysis(analysis).select(
                decision.extra_bits + LOSSY_HEADER_DELTA,
                self.config.variant.uses_opt_nodes(),
            )
        } else {
            None
        };
        (decision, selection)
    }

    /// Stored size in bits and whether the block goes lossy, without
    /// encoding anything — the fast path for burst accounting (hardware
    /// likewise derives the burst count from the code-length sum alone).
    pub fn stored_bits(&self, block: &Block) -> (u32, bool) {
        self.stored_bits_with(&self.analysis(block))
    }

    /// [`stored_bits`](Self::stored_bits) over a precomputed analysis.
    pub fn stored_bits_with(&self, analysis: &BlockAnalysis) -> (u32, bool) {
        let (decision, selection) = self.analyze_with(analysis);
        match (decision.mode, selection) {
            (ModeChoice::Uncompressed, _) => (BLOCK_BITS, false),
            (ModeChoice::Lossless, _) | (ModeChoice::Lossy, None) => {
                if self.lossless_saves_nothing(decision.comp_size_bits) {
                    (BLOCK_BITS, false)
                } else {
                    (decision.comp_size_bits, false)
                }
            }
            (ModeChoice::Lossy, Some(sel)) => {
                (decision.comp_size_bits - sel.freed_bits + crate::header::LOSSY_HEADER_DELTA, true)
            }
        }
    }

    /// Bursts the stored block costs under the configured MAG.
    pub fn stored_bursts(&self, block: &Block) -> u32 {
        self.stored_bursts_with(&self.analysis(block))
    }

    /// [`stored_bursts`](Self::stored_bursts) over a precomputed
    /// analysis.
    pub fn stored_bursts_with(&self, analysis: &BlockAnalysis) -> u32 {
        let (bits, _) = self.stored_bits_with(analysis);
        self.config.mag.bursts_for_bits(bits, BLOCK_BYTES as u32)
    }

    /// `true` when storing `bits` losslessly saves no bursts over the
    /// verbatim block — then the block is stored raw and decompression is
    /// skipped entirely (the MDC's max burst count identifies it).
    fn lossless_saves_nothing(&self, bits: u32) -> bool {
        self.config.mag.round_up_bits(bits) >= BLOCK_BITS
    }

    /// Fits an approximable block into a hard bit budget (a faulty DRAM
    /// row's surviving capacity): the graceful-degradation ladder's
    /// per-block decision, a pure function of the cached analysis — no
    /// re-encoding anywhere.
    ///
    /// The rungs, in order: the *natural* stored form (whatever
    /// [`stored_bits_with`](Self::stored_bits_with) picks — verbatim,
    /// lossless or threshold-bounded lossy) if it fits; otherwise a
    /// deeper Fig. 5 truncation freeing at least
    /// `comp_size + LOSSY_HEADER_DELTA - budget_bits` codeword bits;
    /// otherwise [`FitOutcome::Unstorable`]. A `Degraded` verdict's
    /// `bits` is guaranteed `<= budget_bits` and matches what
    /// [`compress_degraded`](Self::compress_degraded) actually encodes.
    pub fn fit_within_with(&self, analysis: &BlockAnalysis, budget_bits: u32) -> FitOutcome {
        let (bits, lossy) = self.stored_bits_with(analysis);
        if bits <= budget_bits {
            return FitOutcome::Natural { bits, lossy };
        }
        let comp = LOSSLESS_HEADER_BITS + analysis.total_code_bits();
        if comp <= budget_bits {
            // Only reachable from the verbatim corner (the natural form
            // overshot, so it must be the 1024-bit raw block while the
            // lossless stream is smaller): compress for capacity even
            // though it buys no bursts.
            debug_assert!(comp < BLOCK_BITS);
            return FitOutcome::Lossless { bits: comp };
        }
        let needed = comp + LOSSY_HEADER_DELTA - budget_bits;
        let tree = CodeLengthTree::from_analysis(analysis);
        match tree.select(needed, self.config.variant.uses_opt_nodes()) {
            Some(selection) => {
                let bits = comp - selection.freed_bits + LOSSY_HEADER_DELTA;
                debug_assert!(bits <= budget_bits);
                FitOutcome::Degraded { bits, selection }
            }
            None => FitOutcome::Unstorable,
        }
    }

    /// Encodes the stored form a [`FitOutcome::Lossless`] verdict from
    /// [`fit_within_with`](Self::fit_within_with) promised: the block's
    /// full lossless stream under SLC framing, bypassing the
    /// burst-saving check that would store it verbatim at full capacity.
    /// Round-trips exactly.
    pub fn compress_lossless_with(&self, block: &Block, analysis: &BlockAnalysis) -> SlcCompressed {
        let comp = LOSSLESS_HEADER_BITS + analysis.total_code_bits();
        let decision = BudgetDecision {
            comp_size_bits: comp,
            bit_budget: comp,
            extra_bits: 0,
            mode: ModeChoice::Lossless,
        };
        self.store_lossless(block, decision)
    }

    /// Encodes the stored form a [`FitOutcome::Degraded`] verdict from
    /// [`fit_within_with`](Self::fit_within_with) promised: the block with
    /// `selection`'s symbols truncated, under a synthetic budget decision
    /// whose bit budget is the faulty row's surviving capacity.
    ///
    /// `analysis` must be this block's (same contract as
    /// [`compress_with`](Self::compress_with)), and `selection` must come
    /// from a `Degraded` verdict at this `budget_bits` — the encoded
    /// stream is asserted to fit it.
    pub fn compress_degraded(
        &self,
        block: &Block,
        analysis: &BlockAnalysis,
        selection: Selection,
        budget_bits: u32,
    ) -> SlcCompressed {
        let comp = LOSSLESS_HEADER_BITS + analysis.total_code_bits();
        let decision = BudgetDecision {
            comp_size_bits: comp,
            bit_budget: budget_bits,
            extra_bits: comp.saturating_sub(budget_bits),
            mode: ModeChoice::Lossy,
        };
        self.store_lossy(block, decision, selection)
    }

    /// Compresses one block.
    pub fn compress(&self, block: &Block) -> SlcCompressed {
        self.compress_with(block, &self.analysis(block))
    }

    /// [`compress`](Self::compress) over a precomputed analysis of the
    /// same `block` — the encode path of callers that already analysed
    /// the block for its budget decision (e.g. the workload harness'
    /// staging pass, which needs both the stored form and the burst
    /// count).
    ///
    /// `analysis` **must** come from [`Self::analysis`] (equivalently,
    /// [`E2mc::analyze`] on the same trained table) for this block;
    /// handing in another block's analysis produces a wrong-size stream.
    pub fn compress_with(&self, block: &Block, analysis: &BlockAnalysis) -> SlcCompressed {
        let (decision, selection) = self.analyze_with(analysis);
        match (decision.mode, selection) {
            (ModeChoice::Uncompressed, _) => self.store_uncompressed(block, decision),
            (ModeChoice::Lossless, _) | (ModeChoice::Lossy, None) => {
                if self.lossless_saves_nothing(decision.comp_size_bits) {
                    self.store_uncompressed(block, decision)
                } else {
                    self.store_lossless(block, decision)
                }
            }
            (ModeChoice::Lossy, Some(sel)) => self.store_lossy(block, decision, sel),
        }
    }

    fn store_uncompressed(&self, block: &Block, decision: BudgetDecision) -> SlcCompressed {
        SlcCompressed {
            payload: block.to_vec(),
            size_bits: BLOCK_BITS,
            kind: StoredKind::Uncompressed,
            bursts: self.config.mag.bursts_for_bits(BLOCK_BITS, BLOCK_BYTES as u32),
            decision,
        }
    }

    /// Packed wire encodings of every symbol (one table pass via
    /// [`SymbolTable::stash_encodings`], shared by the sizing and write
    /// steps), with `skip` symbols zeroed out — a zero encoding has width
    /// 0 and writes nothing.
    fn encodings(
        &self,
        symbols: &[u16; SYMBOLS_PER_BLOCK],
        skip: Option<(usize, usize)>,
    ) -> [u64; SYMBOLS_PER_BLOCK] {
        let mut enc = self.e2mc.table().stash_encodings(symbols);
        if let Some((ss, len)) = skip {
            enc[ss..ss + len].fill(0);
        }
        enc
    }

    /// Per-way encoded bit counts — the pdps are then known before a
    /// single codeword is written, so the block encodes in one pass with
    /// no scratch writers.
    fn way_bits(&self, encodings: &[u64; SYMBOLS_PER_BLOCK]) -> ([u32; WAYS], [u32; WAYS - 1]) {
        let way_bits = SymbolTable::way_bits(encodings);
        let mut pdps = [0u32; WAYS - 1];
        let mut offset = 0u32;
        for (i, &bits) in way_bits.iter().take(WAYS - 1).enumerate() {
            offset += bits;
            pdps[i] = offset;
        }
        (way_bits, pdps)
    }

    /// Writes header + all ways into one stream (ways lie back to back, so
    /// sequentially writing the stashed encodings yields exactly the
    /// concatenated per-way streams; skipped symbols have width 0).
    fn encode_stream(
        &self,
        header: SlcHeader,
        encodings: &[u64; SYMBOLS_PER_BLOCK],
        total_bits: u32,
        kind: StoredKind,
        decision: BudgetDecision,
    ) -> SlcCompressed {
        let mut w = BitWriter::with_capacity_bits(total_bits);
        header.write(&mut w);
        SymbolTable::write_encodings(&mut w, encodings);
        let (payload, size_bits) = w.finish();
        debug_assert_eq!(size_bits, total_bits);
        SlcCompressed {
            payload,
            size_bits,
            kind,
            bursts: self.config.mag.bursts_for_bits(size_bits, BLOCK_BYTES as u32),
            decision,
        }
    }

    fn store_lossless(&self, block: &Block, decision: BudgetDecision) -> SlcCompressed {
        let symbols = block_to_symbols(block);
        let encodings = self.encodings(&symbols, None);
        let (way_bits, pdps) = self.way_bits(&encodings);
        let header = SlcHeader::Lossless { pdps };
        let total = header.size_bits() + way_bits.iter().sum::<u32>();
        let out = self.encode_stream(header, &encodings, total, StoredKind::Lossless, decision);
        debug_assert_eq!(out.size_bits, decision.comp_size_bits);
        out
    }

    fn store_lossy(
        &self,
        block: &Block,
        decision: BudgetDecision,
        sel: Selection,
    ) -> SlcCompressed {
        let symbols = block_to_symbols(block);
        let encodings = self.encodings(&symbols, Some((sel.start, sel.symbols)));
        let (way_bits, pdps) = self.way_bits(&encodings);
        let header = SlcHeader::Lossy { ss: sel.start as u8, len: sel.symbols as u8, pdps };
        let total = header.size_bits() + way_bits.iter().sum::<u32>();
        let out = self.encode_stream(
            header,
            &encodings,
            total,
            StoredKind::Lossy { selection: sel },
            decision,
        );
        debug_assert!(
            out.size_bits <= decision.bit_budget,
            "lossy block {} bits overshoots budget {}",
            out.size_bits,
            decision.bit_budget
        );
        out
    }

    /// Decompresses a stored block.
    ///
    /// For lossy blocks the result approximates the original: the
    /// truncated symbols are filled by the configured predictor.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt payload.
    pub fn decompress(&self, c: &SlcCompressed) -> Block {
        match c.kind {
            StoredKind::Uncompressed => {
                let mut out = [0u8; BLOCK_BYTES];
                out.copy_from_slice(&c.payload[..BLOCK_BYTES]);
                out
            }
            StoredKind::Lossless | StoredKind::Lossy { .. } => self.decode_stream(c),
        }
    }

    fn decode_stream(&self, c: &SlcCompressed) -> Block {
        let table = self.e2mc.table();
        let mut r = BitReader::new(&c.payload, c.size_bits);
        let header = SlcHeader::read(&mut r);
        let (hole, pdps) = match header {
            SlcHeader::Lossless { pdps } => (None, pdps),
            SlcHeader::Lossy { ss, len, pdps } => (Some((ss as usize, len as usize)), pdps),
        };
        let data_start = header.size_bits();
        let mut symbols = [0u16; SYMBOLS_PER_BLOCK];
        let (hole_start, hole_end) = match hole {
            Some((ss, len)) => (ss, ss + len),
            None => (SYMBOLS_PER_BLOCK, SYMBOLS_PER_BLOCK),
        };
        for way in 0..WAYS {
            let offset = if way == 0 { 0 } else { pdps[way - 1] };
            r.seek(data_start + offset);
            // The hole is contiguous, so each way splits into at most two
            // contiguous coded segments — decoded with the buffered way
            // decoder instead of symbol-by-symbol reader calls.
            let (lo, hi) = (way * WAY_SYMBOLS, (way + 1) * WAY_SYMBOLS);
            let head = lo..hole_start.clamp(lo, hi);
            let tail = hole_end.clamp(lo, hi)..hi;
            if !head.is_empty() {
                table.decode_way_into(&mut r, &mut symbols[head]);
            }
            if !tail.is_empty() {
                table.decode_way_into(&mut r, &mut symbols[tail]);
            }
        }
        if let Some((ss, len)) = hole {
            fill_approximated(&mut symbols, ss, len, self.config.predictor);
        }
        symbols_to_block(&symbols)
    }

    /// Compress-then-decompress convenience: what a load returns after the
    /// block has travelled through DRAM, plus the stored form.
    pub fn roundtrip(&self, block: &Block) -> (Block, SlcCompressed) {
        let c = self.compress(block);
        (self.decompress(&c), c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_compress::e2mc::E2mcConfig;
    use slc_compress::BlockCompressor;

    /// Training data resembling a smooth f32 field: symbol stream has
    /// low-entropy exponent lanes and higher-entropy mantissa lanes.
    fn training_bytes() -> Vec<u8> {
        (0..1u32 << 15).flat_map(|i| (1000.0f32 + (i % 4096) as f32 * 0.25).to_le_bytes()).collect()
    }

    fn e2mc() -> E2mc {
        E2mc::train_on_bytes(&training_bytes(), &E2mcConfig::default())
    }

    fn slc(variant: SlcVariant) -> SlcCompressor {
        SlcCompressor::new(e2mc(), SlcConfig::new(Mag::GDDR5, 16, variant))
    }

    fn float_block(offset: f32, step: f32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..32 {
            let v = 1000.0f32 + offset + i as f32 * step;
            b[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        b
    }

    #[test]
    fn lossless_blocks_roundtrip_exactly() {
        let s = slc(SlcVariant::TslcOpt);
        // Scan for a block the budget keeps lossless and verify identity.
        let mut found = false;
        for k in 0..64 {
            let block = float_block(k as f32 * 3.0, 0.25);
            let c = s.compress(&block);
            if !c.is_lossy() {
                assert_eq!(s.decompress(&c), block);
                found = true;
            }
        }
        assert!(found, "no lossless block in scan");
    }

    #[test]
    fn lossy_blocks_fit_their_budget() {
        let s = slc(SlcVariant::TslcOpt);
        let mut lossy_seen = 0;
        for k in 0..256 {
            let block = float_block(k as f32 * 1.7, 0.125 + (k % 7) as f32 * 0.05);
            let c = s.compress(&block);
            if let StoredKind::Lossy { selection } = c.kind() {
                lossy_seen += 1;
                assert!(c.size_bits() <= c.decision().bit_budget);
                assert!(c.bursts() < c.decision().lossless_bursts(Mag::GDDR5));
                assert!(selection.symbols <= 16);
            }
        }
        assert!(lossy_seen > 0, "threshold of 16B never triggered in 256 blocks");
    }

    #[test]
    fn lossy_error_is_confined_to_hole_lanes() {
        let s = slc(SlcVariant::TslcOpt);
        for k in 0..256 {
            let block = float_block(k as f32 * 1.7, 0.125);
            let c = s.compress(&block);
            if let StoredKind::Lossy { selection } = c.kind() {
                let out = s.decompress(&c);
                let in_syms = block_to_symbols(&block);
                let out_syms = block_to_symbols(&out);
                for i in 0..SYMBOLS_PER_BLOCK {
                    let in_hole =
                        (selection.start..selection.start + selection.symbols).contains(&i);
                    if !in_hole {
                        assert_eq!(in_syms[i], out_syms[i], "symbol {i} corrupted outside hole");
                    }
                }
                return;
            }
        }
        panic!("no lossy block found");
    }

    #[test]
    fn simp_fills_zeros_pred_fills_neighbours() {
        let simp = slc(SlcVariant::TslcSimp);
        let pred = slc(SlcVariant::TslcPred);
        for k in 0..256 {
            let block = float_block(k as f32 * 1.7, 0.125);
            let c = simp.compress(&block);
            if let StoredKind::Lossy { selection } = c.kind() {
                let zeroed = simp.decompress(&c);
                let z = block_to_symbols(&zeroed);
                assert!((selection.start..selection.start + selection.symbols).all(|i| z[i] == 0));
                // Same stored bits, different reconstruction.
                let cp = pred.compress(&block);
                let predicted = pred.decompress(&cp);
                let p = block_to_symbols(&predicted);
                assert!((selection.start..selection.start + selection.symbols).any(|i| p[i] != 0));
                // Prediction must be closer to the original for smooth data.
                let err = |out: &Block| -> f64 {
                    (0..32)
                        .map(|i| {
                            let a = f32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
                            let b = f32::from_le_bytes(out[i * 4..i * 4 + 4].try_into().unwrap());
                            ((a - b) as f64).powi(2)
                        })
                        .sum()
                };
                assert!(err(&predicted) <= err(&zeroed));
                return;
            }
        }
        panic!("no lossy block found");
    }

    #[test]
    fn zero_threshold_never_goes_lossy() {
        let e = e2mc();
        let s = SlcCompressor::new(e.clone(), SlcConfig::new(Mag::GDDR5, 0, SlcVariant::TslcOpt));
        for k in 0..64 {
            let block = float_block(k as f32, 0.3);
            let c = s.compress(&block);
            assert!(!c.is_lossy());
            // And the stored form round-trips exactly.
            assert_eq!(s.decompress(&c), block);
            // When stored losslessly the size agrees with the raw E2MC
            // size model; blocks in the last MAG bucket go verbatim
            // instead (4 bursts either way, so skip decompression).
            match c.kind() {
                StoredKind::Lossless => assert_eq!(c.size_bits(), e.size_bits(&block)),
                StoredKind::Uncompressed => {
                    assert!(Mag::GDDR5.round_up_bits(e.size_bits(&block)) >= BLOCK_BITS)
                }
                StoredKind::Lossy { .. } => unreachable!("threshold 0"),
            }
        }
    }

    #[test]
    fn incompressible_blocks_stay_verbatim() {
        let s = slc(SlcVariant::TslcOpt);
        let mut block = [0u8; BLOCK_BYTES];
        let mut state = 1u64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 40) as u8;
        }
        let c = s.compress(&block);
        assert_eq!(c.kind(), StoredKind::Uncompressed);
        assert_eq!(c.bursts(), 4);
        assert_eq!(s.decompress(&c), block);
    }

    #[test]
    fn bursts_reflect_mag() {
        let e = e2mc();
        for mag in [Mag::NARROW_16, Mag::GDDR5, Mag::WIDE_64] {
            let s = SlcCompressor::new(
                e.clone(),
                SlcConfig::new(mag, mag.bytes() / 2, SlcVariant::TslcOpt),
            );
            let block = float_block(5.0, 0.25);
            let c = s.compress(&block);
            assert_eq!(c.bursts(), mag.bursts_for_bits(c.size_bits(), BLOCK_BYTES as u32));
        }
    }

    #[test]
    fn stored_bits_matches_compress() {
        let s = slc(SlcVariant::TslcOpt);
        for k in 0..128 {
            let block = float_block(k as f32 * 2.3, 0.2);
            let (bits, lossy) = s.stored_bits(&block);
            let c = s.compress(&block);
            assert_eq!(bits, c.size_bits(), "block {k}");
            assert_eq!(lossy, c.is_lossy(), "block {k}");
            assert_eq!(s.stored_bursts(&block), c.bursts(), "block {k}");
        }
    }

    #[test]
    fn precomputed_analysis_paths_match_block_paths() {
        // The whole sharing contract: every *_with overload fed a
        // precomputed BlockAnalysis must agree bit-for-bit with the
        // direct block-taking path it shadows.
        for variant in [SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt] {
            let s = slc(variant);
            for k in 0..96 {
                let block = float_block(k as f32 * 1.9, 0.15 + (k % 5) as f32 * 0.04);
                let a = s.analysis(&block);
                assert_eq!(a, s.e2mc().analyze(&block));
                assert_eq!(s.analyze_with(&a), s.analyze(&block));
                assert_eq!(s.stored_bits_with(&a), s.stored_bits(&block));
                assert_eq!(s.stored_bursts_with(&a), s.stored_bursts(&block));
                let c_with = s.compress_with(&block, &a);
                let c = s.compress(&block);
                assert_eq!(c_with.payload(), c.payload());
                assert_eq!(c_with.size_bits(), c.size_bits());
                assert_eq!(c_with.kind(), c.kind());
                assert_eq!(c_with.bursts(), c.bursts());
                assert_eq!(c_with.decision(), c.decision());
            }
        }
    }

    #[test]
    fn fit_within_full_budget_is_always_natural() {
        let s = slc(SlcVariant::TslcOpt);
        for k in 0..96 {
            let block = float_block(k as f32 * 1.7, 0.125 + (k % 7) as f32 * 0.05);
            let a = s.analysis(&block);
            let (bits, lossy) = s.stored_bits_with(&a);
            assert_eq!(
                s.fit_within_with(&a, BLOCK_BITS),
                FitOutcome::Natural { bits, lossy },
                "a full-block budget must never escalate"
            );
        }
    }

    #[test]
    fn degraded_blocks_fit_encode_and_confine_error() {
        let s = slc(SlcVariant::TslcOpt);
        let mut degraded_seen = 0;
        for k in 0..256 {
            let block = float_block(k as f32 * 1.7, 0.125 + (k % 7) as f32 * 0.05);
            let a = s.analysis(&block);
            // Probe a ladder of shrinking budgets so the sweep exercises
            // the Degraded rung whatever this block's natural size is.
            let (natural_bits, _) = s.stored_bits_with(&a);
            let budget = natural_bits.saturating_sub(16).max(crate::header::LOSSY_HEADER_BITS);
            if let FitOutcome::Degraded { bits, selection } = s.fit_within_with(&a, budget) {
                degraded_seen += 1;
                assert!(bits <= budget);
                let c = s.compress_degraded(&block, &a, selection, budget);
                assert_eq!(c.size_bits(), bits, "promised size must match the encoding");
                assert!(c.is_lossy());
                // Error stays confined to the truncated hole.
                let out = s.decompress(&c);
                let in_syms = block_to_symbols(&block);
                let out_syms = block_to_symbols(&out);
                for i in 0..SYMBOLS_PER_BLOCK {
                    let in_hole =
                        (selection.start..selection.start + selection.symbols).contains(&i);
                    if !in_hole {
                        assert_eq!(in_syms[i], out_syms[i], "symbol {i} corrupted outside hole");
                    }
                }
            }
        }
        assert!(degraded_seen > 0, "48 B budget never forced a degradation in 256 blocks");
    }

    #[test]
    fn verbatim_blocks_squeeze_lossless_under_budget() {
        // A block whose lossless stream saves no bursts is stored
        // verbatim fault-free; under a budget between its lossless size
        // and 1024 bits the ladder must take the lossless rung exactly.
        let s = slc(SlcVariant::TslcOpt);
        let mut squeezed = 0;
        for k in 0..256 {
            let block = float_block(k as f32 * 1.7, 0.125 + (k % 7) as f32 * 0.05);
            let a = s.analysis(&block);
            let comp = s.e2mc().size_bits(&block);
            let (natural, _) = s.stored_bits_with(&a);
            if natural == BLOCK_BITS && comp < BLOCK_BITS {
                let verdict = s.fit_within_with(&a, comp.max(BLOCK_BITS - 8));
                assert_eq!(verdict, FitOutcome::Lossless { bits: comp });
                let c = s.compress_lossless_with(&block, &a);
                assert_eq!(c.size_bits(), comp);
                assert_eq!(s.decompress(&c), block, "the lossless rung must round-trip");
                squeezed += 1;
            }
        }
        assert!(squeezed > 0, "no verbatim-but-compressible block in scan");
    }

    #[test]
    fn hopeless_budgets_are_unstorable() {
        let s = slc(SlcVariant::TslcOpt);
        for k in 0..64 {
            let block = float_block(k as f32 * 1.7, 0.125);
            let a = s.analysis(&block);
            // A budget below the lossy header can hold nothing.
            assert_eq!(s.fit_within_with(&a, 16), FitOutcome::Unstorable);
        }
    }

    #[test]
    fn fit_verdicts_weakly_improve_with_budget() {
        // A bigger surviving capacity can never make a block's verdict
        // worse (Unstorable -> Degraded -> Natural) nor its size larger
        // within the Degraded rung.
        let rank = |f: &FitOutcome| match f {
            FitOutcome::Unstorable => 0,
            FitOutcome::Degraded { .. } => 1,
            FitOutcome::Lossless { .. } => 2,
            FitOutcome::Natural { .. } => 3,
        };
        let s = slc(SlcVariant::TslcOpt);
        for k in 0..96 {
            let block = float_block(k as f32 * 1.9, 0.15 + (k % 5) as f32 * 0.04);
            let a = s.analysis(&block);
            let mut last = s.fit_within_with(&a, 8);
            for budget_bytes in [16u32, 32, 48, 64, 96, 128] {
                let next = s.fit_within_with(&a, budget_bytes * 8);
                assert!(
                    rank(&next) >= rank(&last),
                    "block {k}: verdict worsened from {last:?} to {next:?}"
                );
                last = next;
            }
        }
    }

    #[test]
    fn analyze_matches_compress() {
        let s = slc(SlcVariant::TslcOpt);
        for k in 0..128 {
            let block = float_block(k as f32 * 2.3, 0.2);
            let (decision, selection) = s.analyze(&block);
            let c = s.compress(&block);
            assert_eq!(c.decision(), decision);
            match c.kind() {
                StoredKind::Lossy { selection: stored } => {
                    assert_eq!(Some(stored), selection);
                }
                StoredKind::Uncompressed => assert!(
                    decision.mode == ModeChoice::Uncompressed
                        || Mag::GDDR5.round_up_bits(decision.comp_size_bits) >= BLOCK_BITS,
                    "verbatim storage must mean no burst savings"
                ),
                StoredKind::Lossless => {}
            }
        }
    }
}

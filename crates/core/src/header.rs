//! The compressed-block header (paper Fig. 6).
//!
//! `| m | ss | len | pdp | compressed data`
//!
//! * `m` (1 bit) — compression mode: 0 lossless, 1 lossy.
//! * `ss` (6 bits, lossy only) — index of the first approximated symbol.
//! * `len` (4 bits, lossy only) — number of approximated symbols minus one
//!   ("the maximum number of approximated symbols is 16, thus we need
//!   4-bit").
//! * `pdp` ×3 — parallel decoding pointers for the 4 decoding ways. We
//!   store bit-granular 10-bit pointers (see [`slc_compress::e2mc::PDP_BITS`]).
//!
//! Uncompressed blocks carry **no header**: the metadata cache's burst
//! count already identifies them (4 bursts ⇒ verbatim).

use slc_compress::bitstream::{BitReader, BitWriter};
use slc_compress::e2mc::{PDP_BITS, WAYS};
use slc_compress::symbols::SYMBOLS_PER_BLOCK;

/// Header bits for a lossless block: `m` + 3 pdps.
pub const LOSSLESS_HEADER_BITS: u32 = 1 + (WAYS as u32 - 1) * PDP_BITS;

/// Header bits for a lossy block: `m` + `ss` + `len` + 3 pdps.
pub const LOSSY_HEADER_BITS: u32 = LOSSLESS_HEADER_BITS + 6 + 4;

/// Extra header cost the lossy mode pays over the lossless mode; the tree
/// selector must free these bits *in addition to* the extra bits.
pub const LOSSY_HEADER_DELTA: u32 = LOSSY_HEADER_BITS - LOSSLESS_HEADER_BITS;

/// Decoded form of the Fig. 6 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlcHeader {
    /// Losslessly compressed block.
    Lossless {
        /// Bit offsets of ways 1..=3 within the data section.
        pdps: [u32; WAYS - 1],
    },
    /// Lossy block with symbols `ss .. ss + len` approximated away.
    Lossy {
        /// First approximated symbol index (0..64).
        ss: u8,
        /// Number of approximated symbols (1..=16).
        len: u8,
        /// Bit offsets of ways 1..=3 within the data section.
        pdps: [u32; WAYS - 1],
    },
}

impl SlcHeader {
    /// Size of this header on the wire.
    pub fn size_bits(&self) -> u32 {
        match self {
            SlcHeader::Lossless { .. } => LOSSLESS_HEADER_BITS,
            SlcHeader::Lossy { .. } => LOSSY_HEADER_BITS,
        }
    }

    /// Serialises the header.
    ///
    /// # Panics
    ///
    /// Panics if a lossy header's fields are out of range (`ss ≥ 64`,
    /// `len ∉ 1..=16`, or a pdp too wide).
    pub fn write(&self, w: &mut BitWriter) {
        match *self {
            SlcHeader::Lossless { pdps } => {
                w.write(0, 1);
                for p in pdps {
                    w.write(p as u64, PDP_BITS);
                }
            }
            SlcHeader::Lossy { ss, len, pdps } => {
                assert!((ss as usize) < SYMBOLS_PER_BLOCK, "ss {ss} out of range");
                assert!((1..=16).contains(&len), "len {len} out of range");
                w.write(1, 1);
                w.write(ss as u64, 6);
                w.write(len as u64 - 1, 4);
                for p in pdps {
                    w.write(p as u64, PDP_BITS);
                }
            }
        }
    }

    /// Deserialises a header from the start of a compressed block.
    pub fn read(r: &mut BitReader<'_>) -> Self {
        let lossy = r.read_bit();
        if lossy {
            let ss = r.read(6) as u8;
            let len = r.read(4) as u8 + 1;
            let mut pdps = [0u32; WAYS - 1];
            for p in pdps.iter_mut() {
                *p = r.read(PDP_BITS) as u32;
            }
            SlcHeader::Lossy { ss, len, pdps }
        } else {
            let mut pdps = [0u32; WAYS - 1];
            for p in pdps.iter_mut() {
                *p = r.read(PDP_BITS) as u32;
            }
            SlcHeader::Lossless { pdps }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(h: SlcHeader) -> SlcHeader {
        let mut w = BitWriter::new();
        h.write(&mut w);
        assert_eq!(w.len_bits(), h.size_bits());
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        SlcHeader::read(&mut r)
    }

    #[test]
    fn lossless_header_roundtrips() {
        let h = SlcHeader::Lossless { pdps: [100, 200, 300] };
        assert_eq!(roundtrip(h), h);
        assert_eq!(h.size_bits(), 31);
    }

    #[test]
    fn lossy_header_roundtrips() {
        let h = SlcHeader::Lossy { ss: 42, len: 16, pdps: [1, 2, 1023] };
        assert_eq!(roundtrip(h), h);
        assert_eq!(h.size_bits(), 41);
    }

    #[test]
    fn len_encodes_one_to_sixteen_in_four_bits() {
        for len in 1..=16u8 {
            let h = SlcHeader::Lossy { ss: 0, len, pdps: [0; 3] };
            assert_eq!(roundtrip(h), h);
        }
    }

    #[test]
    #[should_panic(expected = "len")]
    fn zero_len_lossy_header_rejected() {
        let h = SlcHeader::Lossy { ss: 0, len: 0, pdps: [0; 3] };
        let mut w = BitWriter::new();
        h.write(&mut w);
    }

    #[test]
    #[should_panic(expected = "ss")]
    fn out_of_range_ss_rejected() {
        let h = SlcHeader::Lossy { ss: 64, len: 1, pdps: [0; 3] };
        let mut w = BitWriter::new();
        h.write(&mut w);
    }

    #[test]
    fn header_delta_is_ten_bits() {
        assert_eq!(LOSSY_HEADER_DELTA, 10);
    }

    proptest! {
        #[test]
        fn prop_header_roundtrip(ss in 0u8..64, len in 1u8..=16,
                                 pdps in proptest::array::uniform3(0u32..1024),
                                 lossy in any::<bool>()) {
            let h = if lossy {
                SlcHeader::Lossy { ss, len, pdps }
            } else {
                SlcHeader::Lossless { pdps }
            };
            prop_assert_eq!(roundtrip(h), h);
        }
    }
}

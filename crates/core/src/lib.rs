//! SLC — Memory Access Granularity aware Selective Lossy Compression.
//!
//! This crate is the primary contribution of Lal, Lucas & Juurlink,
//! "SLC: Memory Access Granularity Aware Selective Lossy Compression for
//! GPUs" (DATE 2019), reproduced as a software model faithful to the
//! paper's hardware:
//!
//! * [`budget`] — the Fig. 4 decision flow: compressed size → bit budget →
//!   extra bits → lossless/lossy mode choice.
//! * [`tree`] — the Fig. 5 parallel tree adder whose intermediate sums pick
//!   the sub-block of symbols to approximate (TSLC), including the extra
//!   middle-level nodes of TSLC-OPT.
//! * [`header`] — the Fig. 6 compressed-block header (mode bit, start
//!   symbol, length, parallel decoding pointers), bit-exact.
//! * [`predict`] — the value-similarity predictor used by TSLC-PRED/OPT at
//!   decompression.
//! * [`slc`] — the end-to-end compressor/decompressor layered on E2MC.
//!
//! # Quick start
//!
//! ```
//! use slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant};
//! use slc_compress::{e2mc::{E2mc, E2mcConfig}, Mag};
//!
//! // Train the lossless baseline on representative traffic.
//! let training: Vec<u8> = (0..1 << 14u32)
//!     .flat_map(|i: u32| ((i / 3) as f32).to_le_bytes())
//!     .collect();
//! let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
//!
//! // Wrap it with SLC: MAG 32 B, lossy threshold 16 B (the paper default).
//! let slc = SlcCompressor::new(e2mc, SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
//!
//! let mut block = [0u8; 128];
//! for (i, c) in block.chunks_exact_mut(4).enumerate() {
//!     c.copy_from_slice(&(900.0f32 + i as f32).to_le_bytes());
//! }
//! let enc = slc.compress(&block);
//! let out = slc.decompress(&enc);
//! // The block either round-trips exactly (lossless mode) or differs only
//! // in the approximated symbols.
//! assert!(enc.bursts() <= 4);
//! # let _ = out;
//! ```

pub mod budget;
pub mod header;
pub mod predict;
pub mod slc;
pub mod tree;

pub use budget::{BudgetDecision, ModeChoice};
pub use slc::{SlcCompressed, SlcCompressor, SlcConfig, SlcVariant, StoredKind};
pub use tree::{CodeLengthTree, Selection};

//! SLC — Memory Access Granularity aware Selective Lossy Compression.
//!
//! This crate is the primary contribution of Lal, Lucas & Juurlink,
//! "SLC: Memory Access Granularity Aware Selective Lossy Compression for
//! GPUs" (DATE 2019), reproduced as a software model faithful to the
//! paper's hardware:
//!
//! * [`budget`] — the Fig. 4 decision flow: compressed size → bit budget →
//!   extra bits → lossless/lossy mode choice.
//! * [`tree`] — the Fig. 5 parallel tree adder whose intermediate sums pick
//!   the sub-block of symbols to approximate (TSLC), including the extra
//!   middle-level nodes of TSLC-OPT.
//! * [`header`] — the Fig. 6 compressed-block header (mode bit, start
//!   symbol, length, parallel decoding pointers), bit-exact.
//! * [`predict`] — the value-similarity predictor used by TSLC-PRED/OPT at
//!   decompression.
//! * [`slc`] — the end-to-end compressor/decompressor layered on E2MC.
//!
//! # The shared block-analysis pipeline
//!
//! Every decision this crate makes — the Fig. 4 budget comparison, the
//! Fig. 5 truncation selection, stored sizes and burst counts — is a pure
//! function of one artifact: the block's per-symbol canonical-Huffman
//! code lengths, captured (with their sum) as
//! [`slc_compress::e2mc::BlockAnalysis`] by a single
//! [`E2mc::analyze`](slc_compress::e2mc::E2mc::analyze) pass.
//! [`SlcCompressor`] exposes paired entry points around it:
//!
//! * block-taking convenience — [`slc::SlcCompressor::analyze`],
//!   [`stored_bits`](slc::SlcCompressor::stored_bits),
//!   [`stored_bursts`](slc::SlcCompressor::stored_bursts),
//!   [`compress`](slc::SlcCompressor::compress) — each of which derives
//!   the analysis internally; and
//! * `*_with` overloads ([`analyze_with`](slc::SlcCompressor::analyze_with),
//!   [`stored_bits_with`](slc::SlcCompressor::stored_bits_with),
//!   [`stored_bursts_with`](slc::SlcCompressor::stored_bursts_with),
//!   [`compress_with`](slc::SlcCompressor::compress_with)) that consume a
//!   precomputed `&BlockAnalysis`.
//!
//! **Sharing contract:** an analysis is valid for any number of
//! consumers as long as (a) it was produced by the *same trained table*
//! (the `Arc`-shared [`slc_compress::e2mc::SymbolTable`]) and (b) the
//! block bytes have not changed. MAG, lossy threshold and TSLC variant
//! are *not* baked into the analysis — N schemes at different
//! configurations can sweep one analysis with N cheap decisions, which
//! is exactly what the workload harness' snapshot cache does (see
//! `slc-workloads::analysis`). The `*_with` overloads are pinned
//! bit-identical to their block-taking twins by unit and property tests.
//!
//! # Quick start
//!
//! ```
//! use slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant};
//! use slc_compress::{e2mc::{E2mc, E2mcConfig}, Mag};
//!
//! // Train the lossless baseline on representative traffic.
//! let training: Vec<u8> = (0..1 << 14u32)
//!     .flat_map(|i: u32| ((i / 3) as f32).to_le_bytes())
//!     .collect();
//! let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
//!
//! // Wrap it with SLC: MAG 32 B, lossy threshold 16 B (the paper default).
//! let slc = SlcCompressor::new(e2mc, SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
//!
//! let mut block = [0u8; 128];
//! for (i, c) in block.chunks_exact_mut(4).enumerate() {
//!     c.copy_from_slice(&(900.0f32 + i as f32).to_le_bytes());
//! }
//! let enc = slc.compress(&block);
//! let out = slc.decompress(&enc);
//! // The block either round-trips exactly (lossless mode) or differs only
//! // in the approximated symbols.
//! assert!(enc.bursts() <= 4);
//! # let _ = out;
//! ```

#![forbid(unsafe_code)]

pub mod budget;
pub mod header;
pub mod predict;
pub mod slc;
pub mod tree;

pub use budget::{BudgetDecision, ModeChoice};
pub use slc::{FitOutcome, SlcCompressed, SlcCompressor, SlcConfig, SlcVariant, StoredKind};
pub use tree::{CodeLengthTree, Selection};

//! The parallel tree adder and sub-block selector (paper Fig. 5).
//!
//! The compressed size of an E2MC block is the sum of its 64 code lengths.
//! Hardware computes that sum with a binary adder tree; SLC reuses the
//! tree's **intermediate sums** to find the smallest contiguous group of
//! symbols whose codewords free at least `extra_bits` when dropped.
//!
//! Levels are numbered as in the paper: level *k* holds aligned sums of
//! `2^(k-1)` consecutive symbols, so level 1 is the code lengths
//! themselves, level 3 has 16 nodes of 4 symbols, level 4 has 8 nodes of
//! 8 symbols, and level 7 is the total compressed size. Because the block
//! header reserves 4 bits for the approximated-symbol count, at most 16
//! symbols (level 5) may be approximated.
//!
//! **TSLC-OPT** (Section III-F) adds "8 and 4 extra nodes ... at levels 3
//! and 4" to de-coarsen the middle of the tree. The paper does not give
//! their placement; we implement them as half-stride staggered windows
//! (eight 4-symbol windows starting at `2 + 8i`, four 8-symbol windows
//! starting at `4 + 16i`), the natural way to add finer sums with a few
//! extra adders. See DESIGN.md for the rationale and the ablation bench.

use slc_compress::e2mc::BlockAnalysis;
use slc_compress::symbols::SYMBOLS_PER_BLOCK;

/// Highest level the selector may use (16 symbols; the header's 4-bit
/// `len` field caps approximation at 16 symbols).
pub const MAX_SELECT_LEVEL: u32 = 5;

/// Total number of levels for 64 symbols (level 7 = grand total).
pub const LEVELS: u32 = 7;

/// A contiguous group of symbols chosen for approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Index of the first approximated symbol (the header's `ss`).
    pub start: usize,
    /// Number of approximated symbols (the header's `len`).
    pub symbols: usize,
    /// Bits freed by dropping those symbols' codewords.
    pub freed_bits: u32,
    /// Tree level the node came from (1-based, paper numbering).
    pub level: u32,
    /// Whether the node is one of TSLC-OPT's staggered extras.
    pub staggered: bool,
}

/// Total node count of the complete tree (64 + 32 + ... + 1).
const NODES: usize = 2 * SYMBOLS_PER_BLOCK - 1;

/// Start offset of each level inside the flat node array.
const LEVEL_OFFSET: [usize; LEVELS as usize + 1] = [0, 64, 96, 112, 120, 124, 126, 127];

// The literal offsets encode SYMBOLS_PER_BLOCK == 64; fail the build, not
// the decoded data, if the block geometry ever changes.
const _: () = assert!(LEVEL_OFFSET[0] == 0 && LEVEL_OFFSET[1] == SYMBOLS_PER_BLOCK);
const _: () = assert!(LEVEL_OFFSET[LEVELS as usize] == NODES);

/// The adder tree over one block's code lengths.
///
/// Stored as one flat fixed-size array (levels concatenated), so building
/// a tree — which happens once per compressed block — allocates nothing.
#[derive(Debug, Clone)]
pub struct CodeLengthTree {
    /// `nodes[LEVEL_OFFSET[k-1]..LEVEL_OFFSET[k]]` = level `k`'s aligned
    /// sums of `2^(k-1)` symbols.
    nodes: [u32; NODES],
}

impl CodeLengthTree {
    /// Builds the tree from per-symbol code lengths.
    pub fn new(lengths: &[u32; SYMBOLS_PER_BLOCK]) -> Self {
        let mut nodes = [0u32; NODES];
        nodes[..SYMBOLS_PER_BLOCK].copy_from_slice(lengths);
        for level in 1..LEVELS as usize {
            let (prev, prev_end) = (LEVEL_OFFSET[level - 1], LEVEL_OFFSET[level]);
            let width = (prev_end - prev) / 2;
            for i in 0..width {
                nodes[prev_end + i] = nodes[prev + 2 * i] + nodes[prev + 2 * i + 1];
            }
        }
        Self { nodes }
    }

    /// Builds the tree from a shared [`BlockAnalysis`] — both the lengths
    /// and every intermediate sum were already computed at analysis time
    /// (the hardware's adder tree produces them while sizing the block),
    /// so this is a widening copy: no additions, no second table pass,
    /// and N schemes/MAGs/thresholds sweeping one analysis share one
    /// summation instead of re-adding 63 nodes per decision.
    pub fn from_analysis(analysis: &BlockAnalysis) -> Self {
        const _: () = assert!(NODES - SYMBOLS_PER_BLOCK == slc_compress::e2mc::TREE_SUM_NODES);
        let mut nodes = [0u32; NODES];
        for (node, &len) in nodes.iter_mut().zip(analysis.lengths_u8()) {
            *node = u32::from(len);
        }
        for (node, &sum) in nodes[SYMBOLS_PER_BLOCK..].iter_mut().zip(analysis.tree_sums()) {
            *node = u32::from(sum);
        }
        Self { nodes }
    }

    /// Sum of all code lengths (the last node of the tree, used as the
    /// data portion of *comp size*).
    pub fn total_bits(&self) -> u32 {
        self.nodes[NODES - 1]
    }

    /// The aligned intermediate sums at `level` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `1..=7`.
    pub fn level_sums(&self, level: u32) -> &[u32] {
        assert!((1..=LEVELS).contains(&level), "level {level} out of range");
        &self.nodes[LEVEL_OFFSET[level as usize - 1]..LEVEL_OFFSET[level as usize]]
    }

    /// Sum of code lengths over `start..start + len` (used for the
    /// staggered TSLC-OPT nodes; hardware adds a few extra adders).
    pub fn window_sum(&self, start: usize, len: usize) -> u32 {
        self.nodes[start..start + len].iter().sum()
    }

    /// Selects the sub-block to approximate for `needed_bits`.
    ///
    /// Implements the comparator + priority-encoder stages of Fig. 5: every
    /// node is compared against the target in parallel; per level the
    /// *first* qualifying node wins; the lowest qualifying level is chosen
    /// because it approximates the fewest symbols. With `opt_nodes` the
    /// staggered TSLC-OPT windows participate at levels 3 and 4.
    ///
    /// Returns `None` when no node of ≤ 16 symbols frees enough bits (the
    /// block then stays lossless).
    pub fn select(&self, needed_bits: u32, opt_nodes: bool) -> Option<Selection> {
        if needed_bits == 0 {
            return None;
        }
        for level in 1..=MAX_SELECT_LEVEL {
            let node_syms = 1usize << (level - 1);
            // Candidate nodes in priority-encoder order: aligned nodes
            // first-index-first, with staggered windows interleaved by
            // start position for TSLC-OPT.
            let aligned = self.level_sums(level);
            let mut best: Option<Selection> = None;
            for (i, &sum) in aligned.iter().enumerate() {
                if sum >= needed_bits {
                    best = Some(Selection {
                        start: i * node_syms,
                        symbols: node_syms,
                        freed_bits: sum,
                        level,
                        staggered: false,
                    });
                    break;
                }
            }
            if opt_nodes && (level == 3 || level == 4) {
                // Extra nodes: 8 windows of 4 symbols at starts 2+8i
                // (level 3), 4 windows of 8 symbols at starts 4+16i
                // (level 4).
                let (count, stride, offset) = if level == 3 { (8, 8, 2) } else { (4, 16, 4) };
                for j in 0..count {
                    let start = offset + j * stride;
                    let sum = self.window_sum(start, node_syms);
                    if sum >= needed_bits {
                        let cand = Selection {
                            start,
                            symbols: node_syms,
                            freed_bits: sum,
                            level,
                            staggered: true,
                        };
                        // Priority encoder across the level: first start
                        // wins; on a tie the aligned node wins.
                        best = match best {
                            Some(b) if b.start <= cand.start => Some(b),
                            _ => Some(cand),
                        };
                        break;
                    }
                }
            }
            if best.is_some() {
                return best;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniform(len: u32) -> [u32; SYMBOLS_PER_BLOCK] {
        [len; SYMBOLS_PER_BLOCK]
    }

    #[test]
    fn total_is_sum_of_lengths() {
        let tree = CodeLengthTree::new(&uniform(5));
        assert_eq!(tree.total_bits(), 5 * 64);
    }

    #[test]
    fn level_shapes_match_paper() {
        let tree = CodeLengthTree::new(&uniform(1));
        assert_eq!(tree.level_sums(1).len(), 64);
        assert_eq!(tree.level_sums(2).len(), 32);
        assert_eq!(tree.level_sums(3).len(), 16); // "originally have 16"
        assert_eq!(tree.level_sums(4).len(), 8); // "... and 8 nodes"
        assert_eq!(tree.level_sums(5).len(), 4);
        assert_eq!(tree.level_sums(7).len(), 1);
    }

    #[test]
    fn intermediate_sums_double_per_level() {
        let tree = CodeLengthTree::new(&uniform(3));
        for level in 1..=MAX_SELECT_LEVEL {
            let syms = 1u32 << (level - 1);
            assert!(tree.level_sums(level).iter().all(|&s| s == 3 * syms));
        }
    }

    #[test]
    fn select_prefers_lowest_level() {
        // Uniform 8-bit codes: one symbol frees 8 bits.
        let tree = CodeLengthTree::new(&uniform(8));
        let sel = tree.select(8, false).expect("selectable");
        assert_eq!(sel.level, 1);
        assert_eq!(sel.symbols, 1);
        assert_eq!(sel.start, 0);
        assert_eq!(sel.freed_bits, 8);
        // Needing 9 bits forces a pair.
        let sel = tree.select(9, false).expect("selectable");
        assert_eq!(sel.level, 2);
        assert_eq!(sel.symbols, 2);
        assert_eq!(sel.freed_bits, 16);
    }

    #[test]
    fn select_honors_priority_encoder_order() {
        // Make symbol 40 the only long one; the first qualifying level-1
        // node is index 40.
        let mut lens = uniform(2);
        lens[40] = 30;
        let tree = CodeLengthTree::new(&lens);
        let sel = tree.select(25, false).expect("selectable");
        assert_eq!(sel.level, 1);
        assert_eq!(sel.start, 40);
        assert_eq!(sel.freed_bits, 30);
    }

    #[test]
    fn select_returns_none_beyond_level_five() {
        // 1-bit codes: even 16 symbols free only 16 bits; asking for more
        // must fail (the 4-bit len header cannot express 32 symbols).
        let tree = CodeLengthTree::new(&uniform(1));
        assert!(tree.select(17, false).is_none());
        assert!(tree.select(16, false).is_some());
    }

    #[test]
    fn select_zero_bits_is_none() {
        let tree = CodeLengthTree::new(&uniform(8));
        assert!(tree.select(0, false).is_none());
    }

    #[test]
    fn opt_nodes_catch_straddling_mass() {
        // Concentrate long codes across an aligned level-3 boundary:
        // symbols 2..6 are 20 bits each (sum 80), every aligned window of
        // four sums at most 2*20 + 2*2 = 44. Needing 60 bits, plain TSLC
        // must climb to level 4 (8 symbols); TSLC-OPT finds the staggered
        // window [2, 6) at level 3.
        let mut lens = uniform(2);
        lens[2..6].fill(20);
        let tree = CodeLengthTree::new(&lens);
        let plain = tree.select(60, false).expect("selectable");
        assert_eq!(plain.level, 4);
        assert_eq!(plain.symbols, 8);
        let opt = tree.select(60, true).expect("selectable");
        assert_eq!(opt.level, 3);
        assert_eq!(opt.symbols, 4);
        assert_eq!(opt.start, 2);
        assert!(opt.staggered);
        assert!(opt.freed_bits >= 60);
        // OPT approximates strictly fewer symbols here.
        assert!(opt.symbols < plain.symbols);
    }

    #[test]
    fn aligned_node_wins_ties_against_staggered() {
        let tree = CodeLengthTree::new(&uniform(8));
        // 4-symbol windows all sum 32; aligned start 0 beats staggered 2.
        let sel = tree.select(32, true).expect("selectable");
        assert_eq!(sel.start, 0);
        assert!(!sel.staggered);
    }

    #[test]
    fn from_analysis_matches_direct_construction() {
        let mut lens = uniform(2);
        lens[5] = 17;
        lens[40] = 9;
        let via_analysis = CodeLengthTree::from_analysis(&BlockAnalysis::from_lengths(lens));
        let direct = CodeLengthTree::new(&lens);
        assert_eq!(via_analysis.total_bits(), direct.total_bits());
        for level in 1..=LEVELS {
            assert_eq!(via_analysis.level_sums(level), direct.level_sums(level));
        }
        assert_eq!(via_analysis.select(20, true), direct.select(20, true));
    }

    #[test]
    fn window_sum_matches_manual_sum() {
        let mut lens = uniform(1);
        for (i, l) in lens.iter_mut().enumerate() {
            *l = i as u32;
        }
        let tree = CodeLengthTree::new(&lens);
        assert_eq!(tree.window_sum(10, 4), 10 + 11 + 12 + 13);
    }

    proptest! {
        #[test]
        fn prop_selection_frees_enough(lens in proptest::collection::vec(1u32..33, SYMBOLS_PER_BLOCK),
                                       needed in 1u32..200, opt in any::<bool>()) {
            let mut arr = [0u32; SYMBOLS_PER_BLOCK];
            arr.copy_from_slice(&lens);
            let tree = CodeLengthTree::new(&arr);
            if let Some(sel) = tree.select(needed, opt) {
                prop_assert!(sel.freed_bits >= needed);
                prop_assert_eq!(sel.freed_bits, tree.window_sum(sel.start, sel.symbols));
                prop_assert!(sel.symbols <= 16);
                prop_assert!(sel.start + sel.symbols <= SYMBOLS_PER_BLOCK);
            }
        }

        #[test]
        fn prop_opt_never_selects_higher_level(lens in proptest::collection::vec(1u32..33, SYMBOLS_PER_BLOCK),
                                               needed in 1u32..200) {
            let mut arr = [0u32; SYMBOLS_PER_BLOCK];
            arr.copy_from_slice(&lens);
            let tree = CodeLengthTree::new(&arr);
            match (tree.select(needed, false), tree.select(needed, true)) {
                (Some(plain), Some(opt)) => prop_assert!(opt.level <= plain.level),
                (Some(_), None) => prop_assert!(false, "opt lost a selection plain found"),
                _ => {}
            }
        }

        #[test]
        fn prop_total_matches_sum(lens in proptest::collection::vec(0u32..33, SYMBOLS_PER_BLOCK)) {
            let mut arr = [0u32; SYMBOLS_PER_BLOCK];
            arr.copy_from_slice(&lens);
            let tree = CodeLengthTree::new(&arr);
            prop_assert_eq!(tree.total_bits(), lens.iter().sum::<u32>());
        }
    }
}

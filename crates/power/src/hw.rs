//! 32 nm hardware cost model of the TSLC additions (Table I).
//!
//! The paper synthesised RTL with Synopsys Design Compiler (K-2015.06-SP4)
//! at 32 nm. We rebuild the numbers from first principles: enumerate the
//! TSLC datapath of Fig. 5 (adder tree, comparator bank, priority
//! encoders, selection muxes, pipeline registers), convert to
//! NAND2-equivalent gate counts with textbook per-structure costs, and
//! apply per-gate area and switching-energy constants calibrated to the
//! paper's synthesis (documented below). EXPERIMENTS.md records model vs
//! paper per cell of Table I.

/// NAND2-equivalent gate area at 32 nm (µm² per gate-equivalent).
pub const AREA_PER_GE_UM2: f64 = 0.65;

/// Switching power per gate-equivalent per GHz (mW), calibrated to the
/// compressor's 1.62 mW @ 1.43 GHz.
pub const POWER_PER_GE_PER_GHZ_MW: f64 = 0.000_089;

/// Activity factor of the always-toggling decompressor index datapath,
/// calibrated to the 0.21 mW @ 0.80 GHz cell of Table I.
pub const DECOMPRESSOR_ACTIVITY: f64 = 7.5;

/// GTX580 die area in mm² (40 nm, GF110).
pub const GTX580_AREA_MM2: f64 = 520.0;

/// GTX580 TDP in watts.
pub const GTX580_TDP_W: f64 = 244.0;

/// E2MC compressor+decompressor area in mm² (its IPDPS'17 synthesis);
/// TSLC "only adds 5.6 % of the area of E2MC".
pub const E2MC_AREA_MM2: f64 = 0.148;

/// One synthesised unit's headline numbers (one half of Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwCost {
    /// Achievable clock in GHz.
    pub freq_ghz: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW at `freq_ghz`.
    pub power_mw: f64,
}

impl HwCost {
    /// Share of the GTX580 die this unit occupies, in percent.
    pub fn area_pct_of_gtx580(&self) -> f64 {
        self.area_mm2 / GTX580_AREA_MM2 * 100.0
    }

    /// Share of the GTX580 TDP this unit burns, in percent.
    pub fn power_pct_of_gtx580(&self) -> f64 {
        self.power_mw / (GTX580_TDP_W * 1e3) * 100.0
    }
}

/// Gate-count inventory of the TSLC compressor additions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateInventory {
    /// Adder-tree gates (Fig. 5 levels 1..7).
    pub adder_tree: u32,
    /// TSLC-OPT staggered-window adders.
    pub opt_adders: u32,
    /// Comparator bank (one per candidate node).
    pub comparators: u32,
    /// Per-level priority encoders.
    pub priority_encoders: u32,
    /// Sub-block selector muxes.
    pub selector: u32,
    /// Pipeline registers.
    pub registers: u32,
}

impl GateInventory {
    /// Total gate-equivalents.
    pub fn total(&self) -> u32 {
        self.adder_tree
            + self.opt_adders
            + self.comparators
            + self.priority_encoders
            + self.selector
            + self.registers
    }
}

/// The analytic hardware model.
#[derive(Debug, Clone, Copy, Default)]
pub struct TslcHardwareModel {
    _private: (),
}

/// Gate cost of an n-bit ripple-carry adder (5 GE per full adder).
fn adder_ge(bits: u32) -> u32 {
    5 * bits
}

/// Gate cost of an n-bit magnitude comparator.
fn comparator_ge(bits: u32) -> u32 {
    3 * bits
}

/// Gate cost of an n-input priority encoder.
fn priority_encoder_ge(inputs: u32) -> u32 {
    4 * inputs
}

/// Gate cost of an n-bit register.
fn register_ge(bits: u32) -> u32 {
    6 * bits
}

impl TslcHardwareModel {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enumerates the compressor-side datapath of Fig. 5.
    pub fn compressor_gates(&self) -> GateInventory {
        // Code lengths are at most 33 bits (escape + 16 raw); level-k sums
        // need 6+k bits. 64-leaf tree: level k has 64 >> k adders.
        let adder_tree: u32 = (1..=6).map(|k| (64u32 >> k) * adder_ge(6 + k)).sum();
        // 8 + 4 staggered windows, each needing 3 extra adders of ~9 bits.
        let opt_adders = 12 * 3 * adder_ge(9);
        // Comparators against extra_bits at every candidate node:
        // levels 1..5 aligned (64+32+16+8+4) + 12 staggered, 12-bit.
        let comparators = (64 + 32 + 16 + 8 + 4 + 12) * comparator_ge(12);
        // One priority encoder per level over its node count.
        let priority_encoders =
            [64u32, 32, 16 + 8, 8 + 4, 4].iter().map(|&n| priority_encoder_ge(n)).sum();
        // Selection stage: level mux + start-symbol computation.
        let selector = 5 * 32 + 6 * 64;
        // Pipeline: latch the 64 code lengths (6 bits each) + control.
        let registers = register_ge(64 * 6 + 48);
        GateInventory {
            adder_tree,
            opt_adders,
            comparators,
            priority_encoders,
            selector,
            registers,
        }
    }

    /// Decompressor additions: "we only need to generate the index of the
    /// predicted value" plus hole-skipping in the way decoders.
    pub fn decompressor_gates(&self) -> GateInventory {
        GateInventory {
            adder_tree: 0,
            opt_adders: 0,
            comparators: 4 * comparator_ge(6), // hole-range checks per way
            priority_encoders: 0,
            selector: 6 * 16 + 2 * 64, // predicted-index generation + muxing
            registers: register_ge(6 + 4 + 6),
        }
    }

    /// Compressor half of Table I.
    pub fn compressor_cost(&self) -> HwCost {
        let ge = f64::from(self.compressor_gates().total());
        let freq_ghz = 1.43;
        HwCost {
            freq_ghz,
            area_mm2: ge * AREA_PER_GE_UM2 * 1e-6,
            power_mw: ge * POWER_PER_GE_PER_GHZ_MW * freq_ghz,
        }
    }

    /// Decompressor half of Table I.
    pub fn decompressor_cost(&self) -> HwCost {
        let ge = f64::from(self.decompressor_gates().total());
        let freq_ghz = 0.80;
        HwCost {
            freq_ghz,
            area_mm2: ge * AREA_PER_GE_UM2 * 1e-6,
            power_mw: ge * POWER_PER_GE_PER_GHZ_MW * freq_ghz * DECOMPRESSOR_ACTIVITY,
        }
    }

    /// TSLC's area as a share of E2MC's, in percent (paper: 5.6 %).
    pub fn pct_of_e2mc_area(&self) -> f64 {
        let total = self.compressor_cost().area_mm2 + self.decompressor_cost().area_mm2;
        total / E2MC_AREA_MM2 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressor_cost_tracks_table_i() {
        let m = TslcHardwareModel::new();
        let c = m.compressor_cost();
        assert_eq!(c.freq_ghz, 1.43);
        // Paper: 0.0083 mm², 1.62 mW. Model within 25 %.
        assert!((c.area_mm2 - 0.0083).abs() / 0.0083 < 0.25, "area {}", c.area_mm2);
        assert!((c.power_mw - 1.62).abs() / 1.62 < 0.25, "power {}", c.power_mw);
    }

    #[test]
    fn decompressor_cost_tracks_table_i() {
        let m = TslcHardwareModel::new();
        let d = m.decompressor_cost();
        assert_eq!(d.freq_ghz, 0.80);
        // Paper: 0.0003 mm², 0.21 mW. Model within 35 %.
        assert!((d.area_mm2 - 0.0003).abs() / 0.0003 < 0.35, "area {}", d.area_mm2);
        assert!((d.power_mw - 0.21).abs() / 0.21 < 0.35, "power {}", d.power_mw);
    }

    #[test]
    fn overhead_percentages_match_paper_claims() {
        // "area and power cost of SLC is only 0.0015% and 0.0008% of
        // GTX580" and "TSLC only adds 5.6% of the area of E2MC".
        let m = TslcHardwareModel::new();
        let total_area_pct =
            m.compressor_cost().area_pct_of_gtx580() + m.decompressor_cost().area_pct_of_gtx580();
        assert!((0.0008..0.0025).contains(&total_area_pct), "area pct {total_area_pct}");
        let total_power_pct =
            m.compressor_cost().power_pct_of_gtx580() + m.decompressor_cost().power_pct_of_gtx580();
        assert!((0.0004..0.0015).contains(&total_power_pct), "power pct {total_power_pct}");
        let e2mc_pct = m.pct_of_e2mc_area();
        assert!((3.5..8.0).contains(&e2mc_pct), "E2MC share {e2mc_pct}");
    }

    #[test]
    fn decompressor_is_far_smaller_than_compressor() {
        let m = TslcHardwareModel::new();
        assert!(
            m.decompressor_gates().total() * 10 < m.compressor_gates().total(),
            "the decompression addition is trivial hardware"
        );
    }

    #[test]
    fn inventory_total_sums_components() {
        let g = TslcHardwareModel::new().compressor_gates();
        assert_eq!(
            g.total(),
            g.adder_tree
                + g.opt_adders
                + g.comparators
                + g.priority_encoders
                + g.selector
                + g.registers
        );
    }
}

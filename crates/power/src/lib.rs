//! Energy/EDP model and 32 nm RTL cost model.
//!
//! Substitutes for GPUSimPow (Lucas et al., ISPASS 2013), which the paper
//! modified with RTL-based power models of E2MC and TSLC:
//!
//! * [`energy`] — an event-based energy model over the timing simulator's
//!   counters, reproducing the structure of Fig. 8b (energy and
//!   energy-delay-product normalised to E2MC).
//! * [`hw`] — a gate-count model of the TSLC compressor/decompressor
//!   additions at 32 nm, regenerating Table I.

#![forbid(unsafe_code)]

pub mod energy;
pub mod hw;

pub use energy::{EnergyBreakdown, EnergyModel};
pub use hw::{HwCost, TslcHardwareModel};

//! Event-based GPU energy model (GPUSimPow substitute).
//!
//! Energy decomposes into a time-proportional term (leakage, clocks, fans
//! — everything that burns power for as long as the kernel runs), an
//! op-proportional SM term, and per-event memory-system terms. SLC
//! affects the first through shorter runtime and the memory terms through
//! fewer bursts; the SM term is workload-constant. The default constants
//! are calibrated so a GTX580-like baseline spends roughly half its
//! energy in the time-proportional term and a quarter in DRAM — the
//! regime in which the paper's 9.7 % speedup + 14 % traffic cut yield its
//! reported ~8.3 % energy and ~17.5 % EDP reductions.

use slc_sim::{GpuConfig, SimStats};

/// Energy model constants. All energies in nanojoules, power in watts.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Time-proportional chip power (leakage + clock tree + board), W.
    pub static_power_w: f64,
    /// Energy per executed SM trace op (amortised warp instruction), nJ.
    pub energy_per_op_nj: f64,
    /// Energy per L1 access, nJ.
    pub energy_per_l1_nj: f64,
    /// Energy per L2 access, nJ.
    pub energy_per_l2_nj: f64,
    /// Energy per DRAM data/metadata burst (I/O + core), nJ.
    pub energy_per_burst_nj: f64,
    /// Energy per DRAM row activation, nJ.
    pub energy_per_row_act_nj: f64,
    /// Energy per block compression (from the Table I RTL numbers), nJ.
    pub energy_per_compress_nj: f64,
    /// Energy per block decompression, nJ.
    pub energy_per_decompress_nj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            static_power_w: 95.0,
            energy_per_op_nj: 8.0,
            energy_per_l1_nj: 0.15,
            energy_per_l2_nj: 0.6,
            // 32 B burst at ~20 pJ/bit (GDDR5 I/O + core).
            energy_per_burst_nj: 5.2,
            energy_per_row_act_nj: 3.0,
            // Table I: 1.62 mW × 60 cycles / 822 MHz ≈ 0.12 nJ.
            energy_per_compress_nj: 0.12,
            // Table I: 0.21 mW × 20 cycles / 822 MHz ≈ 0.005 nJ.
            energy_per_decompress_nj: 0.005,
        }
    }
}

/// Per-component energy of one run, in millijoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Time-proportional energy.
    pub static_mj: f64,
    /// SM dynamic energy.
    pub sm_mj: f64,
    /// L1 + L2 energy.
    pub cache_mj: f64,
    /// DRAM bursts + activations.
    pub dram_mj: f64,
    /// Compressor + decompressor energy.
    pub codec_mj: f64,
    /// Kernel runtime in seconds.
    pub seconds: f64,
}

impl EnergyBreakdown {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.static_mj + self.sm_mj + self.cache_mj + self.dram_mj + self.codec_mj
    }

    /// Energy-delay product in millijoule-seconds.
    pub fn edp(&self) -> f64 {
        self.total_mj() * self.seconds
    }
}

impl EnergyModel {
    /// Computes the breakdown of one simulated run.
    pub fn evaluate(&self, stats: &SimStats, cfg: &GpuConfig) -> EnergyBreakdown {
        let seconds = stats.cycles as f64 / (cfg.sm_clock_mhz * 1e6);
        let nj_to_mj = 1e-6;
        let static_mj = self.static_power_w * seconds * 1e3;
        let sm_mj = self.energy_per_op_nj * stats.ops as f64 * nj_to_mj;
        let cache_mj = (self.energy_per_l1_nj * (stats.l1_hits + stats.l1_misses) as f64
            + self.energy_per_l2_nj * (stats.l2_hits + stats.l2_misses) as f64)
            * nj_to_mj;
        let dram_mj = (self.energy_per_burst_nj * stats.total_bursts() as f64
            + self.energy_per_row_act_nj * stats.row_misses as f64)
            * nj_to_mj;
        let codec_mj = (self.energy_per_compress_nj * stats.compressed_blocks as f64
            + self.energy_per_decompress_nj * stats.decompressed_blocks as f64)
            * nj_to_mj;
        EnergyBreakdown { static_mj, sm_mj, cache_mj, dram_mj, codec_mj, seconds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stats with the proportions of a bandwidth-saturated run: ~4 ops
    /// and ~1 L1 access per cycle, DRAM moving `bursts` total.
    fn stats(cycles: u64, bursts: u64) -> SimStats {
        SimStats {
            cycles,
            ops: 4 * cycles,
            l1_hits: cycles / 2,
            l1_misses: cycles / 2,
            l2_hits: cycles / 8,
            l2_misses: 3 * cycles / 8,
            dram_reads: bursts / 4,
            read_bursts: bursts,
            row_misses: bursts / 20,
            ..Default::default()
        }
    }

    #[test]
    fn energy_scales_with_runtime_and_traffic() {
        let m = EnergyModel::default();
        let cfg = GpuConfig::default();
        let base = m.evaluate(&stats(1_000_000, 120_000), &cfg);
        let faster = m.evaluate(&stats(900_000, 100_000), &cfg);
        assert!(faster.total_mj() < base.total_mj());
        assert!(faster.edp() < base.edp());
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let m = EnergyModel::default();
        let cfg = GpuConfig::default();
        let b = m.evaluate(&stats(1_000_000, 120_000), &cfg);
        assert!((b.edp() - b.total_mj() * b.seconds).abs() < 1e-12);
    }

    #[test]
    fn calibration_puts_static_near_half() {
        // The Fig. 8b regime: time-proportional energy is the largest
        // share, DRAM a strong second, for a memory-bound run.
        let m = EnergyModel::default();
        let cfg = GpuConfig::default();
        // Saturated memory: ~7 bursts per cycle across 12 channels.
        let b = m.evaluate(&stats(1_000_000, 7_000_000), &cfg);
        let f_static = b.static_mj / b.total_mj();
        assert!((0.3..0.75).contains(&f_static), "static fraction {f_static}");
        let f_dram = b.dram_mj / b.total_mj();
        assert!((0.1..0.5).contains(&f_dram), "dram fraction {f_dram}");
    }

    #[test]
    fn codec_energy_is_negligible() {
        // "in terms of hardware overhead, SLC is feasible and very cheap".
        let m = EnergyModel::default();
        let cfg = GpuConfig::default();
        let mut s = stats(1_000_000, 120_000);
        s.compressed_blocks = 30_000;
        s.decompressed_blocks = 30_000;
        let b = m.evaluate(&s, &cfg);
        assert!(b.codec_mj / b.total_mj() < 0.01);
    }

    #[test]
    fn paper_regime_reproduces_figure_8b() {
        // 9.7 % faster + ~14 % fewer bursts should land near the paper's
        // 8.3 % energy and 17.5 % EDP reductions.
        let m = EnergyModel::default();
        let cfg = GpuConfig::default();
        let base = m.evaluate(&stats(1_000_000, 7_000_000), &cfg);
        let mut slc = stats(903_000, 6_020_000);
        slc.ops = 4_000_000; // same work, shorter runtime
        let slc = m.evaluate(&slc, &cfg);
        let e_red = 1.0 - slc.total_mj() / base.total_mj();
        let edp_red = 1.0 - slc.edp() / base.edp();
        assert!((0.04..0.13).contains(&e_red), "energy reduction {e_red}");
        assert!((0.12..0.22).contains(&edp_red), "EDP reduction {edp_red}");
    }
}

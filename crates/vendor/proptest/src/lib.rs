//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this path dependency
//! implements the subset of proptest's API that the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! `any::<T>()`, integer-range and `Just` strategies, tuples,
//! [`collection::vec`], `array::uniform*`, [`prop_oneof!`],
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`] and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics intentionally kept: cases are generated from a deterministic
//! per-test seed (derived from the test name, overridable with
//! `PROPTEST_SEED`), `prop_assume!` rejections do not count against the
//! case budget, and failures report the failing inputs. Shrinking is not
//! implemented — failures print the full unshrunk inputs instead.

#![forbid(unsafe_code)]

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    /// Incremental [`Union`] construction (used by `prop_oneof!`; the
    /// generic `push` bound drives closure type inference better than a
    /// trait-object cast would).
    pub struct UnionBuilder<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Default for UnionBuilder<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> UnionBuilder<T> {
        /// Empty builder.
        pub fn new() -> Self {
            Self { options: Vec::new() }
        }

        /// Adds one option.
        pub fn push<S: Strategy<Value = T> + 'static>(&mut self, strategy: S) {
            self.options.push(Box::new(strategy));
        }

        /// Finishes the union.
        pub fn build(self) -> Union<T> {
            Union::new(self.options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Mix plain uniform values with boundary-ish ones so
                    // edge cases show up without shrinking.
                    match rng.below(8) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: any representable value.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                    let v = (self.start as f64
                        + unit * (self.end as f64 - self.start as f64)) as $t;
                    if v >= self.start && v < self.end {
                        v
                    } else {
                        self.start
                    }
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element counts accepted by [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for fixed-size arrays.
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident $n:literal),*) => {$(
            /// Array of independent draws from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*};
    }

    uniform_fns!(uniform1 1, uniform2 2, uniform3 3, uniform4 4, uniform8 8, uniform16 16, uniform32 32);
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            Self { state: seed ^ 0x5bf0_3635_16f5_5f53 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejection variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration (`cases` is the only knob the workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            Self { cases }
        }
    }

    /// Seed for a named test: `PROPTEST_SEED` env override or an FNV-1a
    /// hash of the test path, so every test gets a distinct stable stream.
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::new(
                    $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut accepted = 0u32;
                let mut rejected = 0u32;
                while accepted < config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64).max(1024),
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\ninputs:\n{}",
                                msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*)
            }
        }
    };
}

/// `assert_ne!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r)
            }
        }
    };
}

/// Rejects the current case (re-drawn without counting against `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut builder = $crate::strategy::UnionBuilder::new();
        $( builder.push($strat); )+
        builder.build()
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::sample(&(1u32..=64), &mut rng);
            assert!((1..=64).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::test_runner::TestRng::new(2);
        for _ in 0..100 {
            let v = Strategy::sample(&crate::collection::vec(any::<u8>(), 0..64), &mut rng);
            assert!(v.len() < 64);
            let w = Strategy::sample(&crate::collection::vec(any::<u8>(), 128usize), &mut rng);
            assert_eq!(w.len(), 128);
        }
    }

    proptest! {
        #[test]
        fn macro_end_to_end(x in 0u32..100, v in crate::collection::vec(any::<u8>(), 1..8)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_form_compiles(t in (any::<u64>(), 1u32..=64)) {
            let (v, w) = t;
            let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            prop_assert!(w == 64 || masked < (1u64 << w));
        }
    }

    #[test]
    fn oneof_and_map() {
        let mut rng = crate::test_runner::TestRng::new(3);
        let s = prop_oneof![
            Just(1u32),
            (10u32..20).prop_map(|v| v * 2),
            any::<u8>().prop_map(|b| b as u32)
        ];
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(v == 1 || (20..40).contains(&v) || v <= 255);
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this path dependency
//! provides exactly the subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer and float ranges, and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality and fully
//! deterministic, though its streams intentionally do **not** match the
//! real `rand` crate's (workload inputs only need to be seed-stable).

#![forbid(unsafe_code)]

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed` via SplitMix64 state expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits into `[0, bound)` with the widening-multiply trick.
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                let v = (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t;
                // Keep the half-open contract under rounding.
                if v >= self.start && v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, the standard xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_half_open() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-0.35..0.35f32);
            assert!((-0.35..0.35).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same =
            (0..64).filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32)).count();
        assert!(same < 4);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this path dependency
//! implements the benchmarking subset the workspace's benches use:
//! [`Criterion`] with `bench_function` / `benchmark_group`,
//! [`Bencher::iter`] and [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: a short warm-up, then timed batches whose iteration
//! count doubles until the measurement window (default 100 ms,
//! `CRITERION_MEASURE_MS` to override) is filled; the reported figure is
//! the best (lowest) mean ns/iter across batches, which is robust against
//! scheduler noise. Results print to stdout and accumulate in the
//! [`Criterion`] value so a custom `main` can export them (the
//! `codec_throughput` bench writes `BENCH_codec.json` this way).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Best mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// How `iter_batched` amortises setup cost. The shim times routine calls
/// individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per setup call.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    results: Vec<BenchResult>,
    measure: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(100);
        Self {
            results: Vec::new(),
            measure: Duration::from_millis(ms),
            warmup: Duration::from_millis((ms / 4).max(5)),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            measure: self.measure,
            warmup: self.warmup,
            best_ns: f64::INFINITY,
            iterations: 0,
        };
        f(&mut b);
        let result =
            BenchResult { id: id.to_owned(), ns_per_iter: b.best_ns, iterations: b.iterations };
        println!(
            "{:<44} {:>12.1} ns/iter ({} iters)",
            result.id, result.ns_per_iter, result.iterations
        );
        self.results.push(result);
        self
    }

    /// Opens a named group; member ids render as `group/function`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned() }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Sets the target sample count (accepted for API compatibility; the
    /// shim sizes batches adaptively instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    measure: Duration,
    warmup: Duration,
    best_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` until the measurement window is filled.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also estimates a batch size that keeps timer overhead
        // out of the numbers.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(0.5);
        let mut batch = ((1_000_000.0 / est_ns).ceil() as u64).clamp(1, 1 << 20);
        let start = Instant::now();
        while start.elapsed() < self.measure {
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = batch_start.elapsed().as_nanos() as f64 / batch as f64;
            self.iterations += batch;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
            batch = (batch * 2).min(1 << 24);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine is
    /// on the clock.
    ///
    /// Inputs are materialised in batches before the timer starts and the
    /// batch loop is timed as a whole (same best-mean-across-batches model
    /// as [`iter`](Self::iter)), so neither the setup closure nor per-call
    /// timer overhead leaks into the reported figure. Batches are capped
    /// at 4096 inputs to bound the staged memory.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(routine(setup()));
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(0.5);
        let mut batch = ((1_000_000.0 / est_ns).ceil() as u64).clamp(1, 4096);
        let start = Instant::now();
        while start.elapsed() < self.measure {
            let mut inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs.drain(..) {
                black_box(routine(input));
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            // Buffer deallocation stays off the clock.
            drop(inputs);
            self.iterations += batch;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
            batch = (batch * 2).min(4096);
        }
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            results: Vec::new(),
            measure: Duration::from_millis(5),
            warmup: Duration::from_millis(1),
        }
    }

    #[test]
    fn bench_function_records_result() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].ns_per_iter.is_finite());
        assert!(c.results()[0].iterations > 0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.bench_function("f", |b| b.iter(|| black_box(42)));
        g.finish();
        assert_eq!(c.results()[0].id, "grp/f");
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert!(c.results()[0].ns_per_iter.is_finite());
    }
}

//! The self-describing framed container format.
//!
//! A container is one contiguous byte string in three sections:
//!
//! ```text
//! ┌──────────────────── header (24 B) ────────────────────┐
//! │ magic "SLC1" │ version │ codec │ flags │ chunk_bytes  │
//! │   4 B LE     │  2 B LE │  1 B  │  1 B  │    4 B LE    │
//! │ chunk_count  │ total_len                              │
//! │   4 B LE     │   8 B LE                               │
//! ├────────────── directory (chunk_count × 13 B) ─────────┤
//! │ entry[i] = offset (8 B LE) │ encoded_bits (4 B LE)    │
//! │            │ storage_mode (1 B)                       │
//! ├──────────────────────── payload ──────────────────────┤
//! │ chunk 0 encoding │ chunk 1 encoding │ …               │
//! └───────────────────────────────────────────────────────┘
//! ```
//!
//! Every directory entry names its chunk's payload span *absolutely*
//! (`offset` is a byte offset into the payload section, `encoded_bits/8`
//! its length), so a decoder seeks straight to any chunk with zero scan
//! dependency on its predecessors — the property that makes decode
//! chunk-parallel (the same trick as the gap arrays of GPU Huffman
//! decoding: pay a few metadata bytes per chunk, get embarrassing
//! parallelism back).
//!
//! [`Frame::parse`] is the single validation gate: it checks the magic,
//! version, codec byte, chunk geometry and **every** directory span
//! against the real buffer before any decoding starts, so the per-chunk
//! decoders only ever index pre-validated ranges. Parsing never panics
//! on arbitrary bytes — corrupt input comes back as a [`ContainerError`].

use slc_compress::{CodecId, BLOCK_BYTES};
use std::fmt;

/// First four container bytes: `b"SLC1"`.
pub const MAGIC: [u8; 4] = *b"SLC1";

/// Container format version this crate reads and writes.
pub const VERSION: u16 = 1;

/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 24;

/// Size of one directory entry in bytes.
pub const DIR_ENTRY_BYTES: usize = 13;

/// Upper bound on `chunk_bytes` (16 MiB). Bounds the per-chunk working
/// set and keeps `encoded_bits` comfortably inside its `u32` field even
/// for a worst-case coded chunk (every block verbatim plus per-block
/// tags).
pub const MAX_CHUNK_BYTES: usize = 1 << 24;

/// How one chunk is stored in the payload section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    /// The chunk's original bytes, verbatim — chosen whenever the coded
    /// form would be at least as large, so a container never expands a
    /// chunk beyond its raw size (plus directory overhead).
    Raw,
    /// The per-block coded stream (see the crate docs for the in-chunk
    /// block framing).
    Coded,
}

impl StorageMode {
    /// The directory byte.
    pub fn as_u8(self) -> u8 {
        match self {
            StorageMode::Raw => 0,
            StorageMode::Coded => 1,
        }
    }

    /// Parses a directory byte; `None` for values no mode owns.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(StorageMode::Raw),
            1 => Some(StorageMode::Coded),
            _ => None,
        }
    }
}

/// One directory entry: where a chunk's encoding lives in the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// Byte offset of the chunk's encoding inside the payload section.
    pub offset: u64,
    /// Exact stored size in bits. The container's block framing is
    /// byte-aligned, so this is always a multiple of 8; the directory
    /// still records bits to keep the field future-proof for bit-packed
    /// chunk encodings.
    pub encoded_bits: u32,
    /// Raw or coded storage.
    pub mode: StorageMode,
}

impl DirEntry {
    /// Stored length in whole bytes.
    pub fn encoded_bytes(&self) -> u64 {
        u64::from(self.encoded_bits) / 8
    }

    pub(crate) fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.encoded_bits.to_le_bytes());
        out.push(self.mode.as_u8());
    }
}

/// The fixed container header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Codec the payload was encoded with.
    pub codec: CodecId,
    /// Fixed chunk size in bytes (the last chunk may be shorter).
    pub chunk_bytes: u32,
    /// Number of chunks == directory entries.
    pub chunk_count: u32,
    /// Exact decoded length in bytes.
    pub total_len: u64,
}

impl Header {
    /// Serialises the 24-byte header.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.codec.as_u8());
        out.push(0); // flags, reserved
        out.extend_from_slice(&self.chunk_bytes.to_le_bytes());
        out.extend_from_slice(&self.chunk_count.to_le_bytes());
        out.extend_from_slice(&self.total_len.to_le_bytes());
    }
}

/// A parsed, fully validated container view (borrowing the input).
#[derive(Debug)]
pub struct Frame<'a> {
    /// The validated header.
    pub header: Header,
    /// One validated entry per chunk, in chunk order.
    pub directory: Vec<DirEntry>,
    /// The payload section (everything after the directory).
    pub payload: &'a [u8],
}

impl<'a> Frame<'a> {
    /// Parses and validates a container.
    ///
    /// On success, every directory entry's span is guaranteed to lie
    /// inside [`Frame::payload`], raw entries are guaranteed to match
    /// their chunk's exact raw length, and `chunk_count` is consistent
    /// with `total_len` / `chunk_bytes` — the invariants the per-chunk
    /// decoders index under. Never panics, whatever the input bytes.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, ContainerError> {
        if bytes.len() < HEADER_BYTES {
            return Err(ContainerError::TooShort { need: HEADER_BYTES, have: bytes.len() });
        }
        if bytes[0..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&bytes[0..4]);
            return Err(ContainerError::BadMagic(m));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(ContainerError::BadVersion(version));
        }
        let codec = CodecId::from_u8(bytes[6]).ok_or(ContainerError::UnknownCodec(bytes[6]))?;
        if bytes[7] != 0 {
            return Err(ContainerError::BadFlags(bytes[7]));
        }
        let chunk_bytes = le_u32(bytes, 8);
        let chunk_count = le_u32(bytes, 12);
        let total_len = le_u64(bytes, 16);
        if chunk_bytes == 0
            || !(chunk_bytes as usize).is_multiple_of(BLOCK_BYTES)
            || chunk_bytes as usize > MAX_CHUNK_BYTES
        {
            return Err(ContainerError::BadChunkSize(chunk_bytes));
        }
        let expected_chunks = total_len.div_ceil(u64::from(chunk_bytes));
        if u64::from(chunk_count) != expected_chunks {
            return Err(ContainerError::BadChunkCount {
                declared: chunk_count,
                expected: expected_chunks,
            });
        }
        let dir_end = HEADER_BYTES + chunk_count as usize * DIR_ENTRY_BYTES;
        if bytes.len() < dir_end {
            return Err(ContainerError::DirectoryTruncated { need: dir_end, have: bytes.len() });
        }
        let payload = &bytes[dir_end..];
        let mut directory = Vec::with_capacity(chunk_count as usize);
        for chunk in 0..chunk_count as usize {
            let at = HEADER_BYTES + chunk * DIR_ENTRY_BYTES;
            let offset = le_u64(bytes, at);
            let encoded_bits = le_u32(bytes, at + 8);
            let mode = StorageMode::from_u8(bytes[at + 12])
                .ok_or(ContainerError::InvalidEntry { chunk, reason: "unknown storage mode" })?;
            let entry = DirEntry { offset, encoded_bits, mode };
            if !encoded_bits.is_multiple_of(8) {
                return Err(ContainerError::InvalidEntry {
                    chunk,
                    reason: "encoded_bits not a whole number of bytes",
                });
            }
            let end = entry
                .offset
                .checked_add(entry.encoded_bytes())
                .ok_or(ContainerError::InvalidEntry { chunk, reason: "payload span overflows" })?;
            if end > payload.len() as u64 {
                return Err(ContainerError::InvalidEntry {
                    chunk,
                    reason: "payload span out of bounds",
                });
            }
            if entry.mode == StorageMode::Raw {
                // A raw chunk stores its exact raw length; anything else
                // is a lying directory (caught here, before any copy).
                let raw_len = raw_chunk_len(total_len, chunk_bytes, chunk);
                if entry.encoded_bytes() != raw_len {
                    return Err(ContainerError::InvalidEntry {
                        chunk,
                        reason: "raw chunk length mismatch",
                    });
                }
            }
            directory.push(entry);
        }
        Ok(Self {
            header: Header { codec, chunk_bytes, chunk_count, total_len },
            directory,
            payload,
        })
    }
}

/// Little-endian u32 at `at`; bounds were validated by the caller.
fn le_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

/// Little-endian u64 at `at`; bounds were validated by the caller.
fn le_u64(b: &[u8], at: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(w)
}

/// Raw (decoded) length in bytes of chunk `index` of a stream of
/// `total_len` bytes sharded at `chunk_bytes`.
pub fn raw_chunk_len(total_len: u64, chunk_bytes: u32, index: usize) -> u64 {
    let start = index as u64 * u64::from(chunk_bytes);
    total_len.saturating_sub(start).min(u64::from(chunk_bytes))
}

/// Why a container failed to parse or decode.
///
/// Every variant is a *returned* failure: the decode path is documented
/// panic-free for arbitrary input (codec guard-panics on corrupt block
/// streams are caught per chunk and surface as
/// [`ChunkCorrupt`](Self::ChunkCorrupt)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerError {
    /// Input shorter than the fixed header.
    TooShort {
        /// Bytes the header needs.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The magic bytes are not `b"SLC1"`.
    BadMagic([u8; 4]),
    /// A version this crate does not read.
    BadVersion(u16),
    /// Reserved flags byte is non-zero.
    BadFlags(u8),
    /// The codec byte names no known codec.
    UnknownCodec(u8),
    /// The container was encoded with a different codec than the engine
    /// decoding it holds.
    CodecMismatch {
        /// Codec named by the container header.
        container: CodecId,
        /// Codec the decoding engine holds.
        engine: CodecId,
    },
    /// `chunk_bytes` is zero, not a block multiple, or over
    /// [`MAX_CHUNK_BYTES`].
    BadChunkSize(u32),
    /// `chunk_count` disagrees with `total_len / chunk_bytes`.
    BadChunkCount {
        /// Count in the header.
        declared: u32,
        /// Count implied by `total_len` and `chunk_bytes`.
        expected: u64,
    },
    /// The directory extends past the end of the input.
    DirectoryTruncated {
        /// Bytes header + directory need.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// A directory entry is structurally invalid (bad mode byte, span
    /// outside the payload, lying raw length).
    InvalidEntry {
        /// Chunk index of the offending entry.
        chunk: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A chunk's payload bytes do not decode as a valid block stream
    /// (bad tag, short body, or the codec rejected the bits).
    ChunkCorrupt {
        /// Chunk index that failed to decode.
        chunk: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The caller-provided output buffer of
    /// [`decompress_into`](crate::Engine::decompress_into) does not
    /// match the container's decoded length.
    OutputLenMismatch {
        /// Decoded byte length from the header.
        total_len: u64,
        /// Length of the buffer the caller supplied.
        out_len: usize,
    },
    /// The decoded length is not a multiple of the element size
    /// (the typed [`decompress_f32`](crate::Engine::decompress_f32) path).
    ElementMisaligned {
        /// Decoded byte length from the header.
        total_len: u64,
        /// Element size the caller asked for.
        element_bytes: u32,
    },
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ContainerError::TooShort { need, have } => {
                write!(f, "container too short: {have} bytes, header needs {need}")
            }
            ContainerError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            ContainerError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            ContainerError::BadFlags(v) => write!(f, "reserved flags byte is {v:#04x}"),
            ContainerError::UnknownCodec(v) => write!(f, "unknown codec id {v}"),
            ContainerError::CodecMismatch { container, engine } => write!(
                f,
                "container encoded with {} but engine holds {}",
                container.name(),
                engine.name()
            ),
            ContainerError::BadChunkSize(v) => write!(f, "invalid chunk size {v}"),
            ContainerError::BadChunkCount { declared, expected } => {
                write!(f, "header declares {declared} chunks, geometry implies {expected}")
            }
            ContainerError::DirectoryTruncated { need, have } => {
                write!(f, "directory truncated: {have} bytes, need {need}")
            }
            ContainerError::InvalidEntry { chunk, reason } => {
                write!(f, "directory entry {chunk} invalid: {reason}")
            }
            ContainerError::ChunkCorrupt { chunk, reason } => {
                write!(f, "chunk {chunk} corrupt: {reason}")
            }
            ContainerError::OutputLenMismatch { total_len, out_len } => {
                write!(f, "output buffer holds {out_len} bytes, container decodes to {total_len}")
            }
            ContainerError::ElementMisaligned { total_len, element_bytes } => {
                write!(f, "decoded length {total_len} is not a multiple of {element_bytes}")
            }
        }
    }
}

impl std::error::Error for ContainerError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_bytes(codec: u8, chunk_bytes: u32, chunk_count: u32, total_len: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(codec);
        out.push(0);
        out.extend_from_slice(&chunk_bytes.to_le_bytes());
        out.extend_from_slice(&chunk_count.to_le_bytes());
        out.extend_from_slice(&total_len.to_le_bytes());
        out
    }

    #[test]
    fn empty_stream_parses() {
        let bytes = header_bytes(0, 128, 0, 0);
        let frame = Frame::parse(&bytes).expect("empty container is valid");
        assert_eq!(frame.header.total_len, 0);
        assert!(frame.directory.is_empty());
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn header_validation_catches_each_field() {
        assert!(matches!(Frame::parse(&[]), Err(ContainerError::TooShort { .. })));
        let mut b = header_bytes(0, 128, 0, 0);
        b[0] = b'X';
        assert!(matches!(Frame::parse(&b), Err(ContainerError::BadMagic(_))));
        let mut b = header_bytes(0, 128, 0, 0);
        b[4] = 9;
        assert!(matches!(Frame::parse(&b), Err(ContainerError::BadVersion(9))));
        let b = header_bytes(200, 128, 0, 0);
        assert!(matches!(Frame::parse(&b), Err(ContainerError::UnknownCodec(200))));
        let mut b = header_bytes(0, 128, 0, 0);
        b[7] = 1;
        assert!(matches!(Frame::parse(&b), Err(ContainerError::BadFlags(1))));
        for bad_chunk in [0u32, 64, 100, (MAX_CHUNK_BYTES as u32) * 2] {
            let b = header_bytes(0, bad_chunk, 0, 0);
            assert!(
                matches!(Frame::parse(&b), Err(ContainerError::BadChunkSize(_))),
                "chunk_bytes {bad_chunk} must be rejected"
            );
        }
        let b = header_bytes(0, 128, 3, 128);
        assert!(matches!(Frame::parse(&b), Err(ContainerError::BadChunkCount { .. })));
        // Count consistent but directory bytes missing entirely.
        let b = header_bytes(0, 128, 1, 128);
        assert!(matches!(Frame::parse(&b), Err(ContainerError::DirectoryTruncated { .. })));
    }

    #[test]
    fn directory_spans_are_bounds_checked() {
        // One raw chunk of 128 bytes whose entry points past the payload.
        let mut b = header_bytes(0, 128, 1, 128);
        let entry = DirEntry { offset: 1, encoded_bits: 128 * 8, mode: StorageMode::Raw };
        entry.write_to(&mut b);
        b.extend_from_slice(&[0u8; 128]); // 128 payload bytes, span needs 129
        assert!(matches!(Frame::parse(&b), Err(ContainerError::InvalidEntry { .. })));
        // Overflowing span.
        let mut b = header_bytes(0, 128, 1, 128);
        let entry = DirEntry { offset: u64::MAX, encoded_bits: 128 * 8, mode: StorageMode::Raw };
        entry.write_to(&mut b);
        b.extend_from_slice(&[0u8; 128]);
        assert!(matches!(
            Frame::parse(&b),
            Err(ContainerError::InvalidEntry { reason: "payload span overflows", .. })
        ));
        // Raw chunk lying about its length.
        let mut b = header_bytes(0, 128, 1, 128);
        let entry = DirEntry { offset: 0, encoded_bits: 64 * 8, mode: StorageMode::Raw };
        entry.write_to(&mut b);
        b.extend_from_slice(&[0u8; 128]);
        assert!(matches!(
            Frame::parse(&b),
            Err(ContainerError::InvalidEntry { reason: "raw chunk length mismatch", .. })
        ));
        // Unknown storage mode byte.
        let mut b = header_bytes(0, 128, 1, 128);
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&(128u32 * 8).to_le_bytes());
        b.push(7);
        b.extend_from_slice(&[0u8; 128]);
        assert!(matches!(
            Frame::parse(&b),
            Err(ContainerError::InvalidEntry { reason: "unknown storage mode", .. })
        ));
    }

    #[test]
    fn raw_chunk_len_covers_ragged_tails() {
        assert_eq!(raw_chunk_len(1000, 256, 0), 256);
        assert_eq!(raw_chunk_len(1000, 256, 3), 232);
        assert_eq!(raw_chunk_len(1000, 256, 4), 0);
        assert_eq!(raw_chunk_len(0, 256, 0), 0);
        assert_eq!(raw_chunk_len(256, 256, 0), 256);
    }

    #[test]
    fn errors_display_without_panicking() {
        let errors = [
            ContainerError::TooShort { need: 24, have: 3 },
            ContainerError::BadMagic(*b"nope"),
            ContainerError::BadVersion(2),
            ContainerError::BadFlags(0xff),
            ContainerError::UnknownCodec(42),
            ContainerError::CodecMismatch { container: CodecId::Bdi, engine: CodecId::Fpc },
            ContainerError::BadChunkSize(13),
            ContainerError::BadChunkCount { declared: 2, expected: 5 },
            ContainerError::DirectoryTruncated { need: 50, have: 30 },
            ContainerError::InvalidEntry { chunk: 1, reason: "test" },
            ContainerError::ChunkCorrupt { chunk: 0, reason: "test" },
            ContainerError::OutputLenMismatch { total_len: 9, out_len: 4 },
            ContainerError::ElementMisaligned { total_len: 7, element_bytes: 4 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Batch/streaming compression engine over the block codecs.
//!
//! Every codec in `slc-compress` works one 128 B block at a time — the
//! granularity GPU memory-compression hardware sees. This crate is the
//! batch front end above them: an [`Engine`] takes an arbitrary byte (or
//! `f32`) stream, shards it into fixed-size chunks, compresses the
//! chunks in parallel via `slc-par`, and emits the self-describing
//! framed container of [`container`] (magic + version + codec id +
//! chunk geometry + a per-chunk `(offset, encoded_bits, storage_mode)`
//! directory). Decode is the mirror image: parse + validate the frame
//! once, then decode chunks in parallel, each seeking straight to its
//! payload span — no scan dependency between chunks, the gap-array trick
//! of GPU Huffman decoders applied at chunk granularity.
//!
//! # In-chunk block framing
//!
//! A `Coded` chunk is a byte-aligned sequence of blocks, each:
//!
//! ```text
//! tag: u16 LE = size_bits (15 bits) | coded_flag << 15
//! body: ceil(size_bits / 8) bytes (the codec payload, or the raw block
//!       when coded_flag is clear — size_bits is then exactly 1024)
//! ```
//!
//! A chunk whose coded form would be at least its raw size is stored
//! `Raw` (verbatim bytes, no tags), so containers never blow up on
//! incompressible data. A ragged tail block (stream length not a block
//! multiple) is zero-padded for the codec; the decoder truncates back
//! to the header's exact `total_len`.
//!
//! Codecs that implement [`ChunkCoder`] (rANS) replace the per-block
//! framing of a `Coded` chunk with **one self-contained stream per
//! chunk**, amortising model setup (one frequency table per 64 KiB
//! chunk instead of per 128 B block). This changes nothing in the
//! container format: the frame never interprets a `Coded` chunk's
//! bytes — they belong to the codec named in the header — and the raw
//! fallback applies identically.
//!
//! For serving scenarios where the raw stream never exists in one
//! buffer, [`Engine::stream_encoder`] offers an incremental `push`
//! API whose output is byte-identical to [`Engine::compress`] while
//! holding at most one chunk of raw input at a time.
//!
//! # Determinism and safety contracts
//!
//! * Parallel and serial compress produce **byte-identical** containers
//!   (`slc-par` is order-preserving and chunks are independent), and
//!   parallel decode is byte-identical to serial decode — both pinned by
//!   property tests across every codec.
//! * [`Engine::decompress`] never panics on arbitrary input: the frame
//!   is fully validated before any chunk decodes, every payload index is
//!   pre-bounded, and codec guard-panics on corrupt block streams are
//!   caught per chunk and returned as
//!   [`ContainerError::ChunkCorrupt`].
//! * [`Engine::compress_with_sizes`] is the no-re-analysis path for
//!   callers that already know each block's stored size (the harness'
//!   cached snapshot analyses — see `slc_workloads::engine` for the
//!   sharing contract): blocks whose stored size says "incompressible"
//!   skip the codec entirely and the output is byte-identical to
//!   [`Engine::compress`].

#![forbid(unsafe_code)]

pub mod container;

pub use container::{ContainerError, DirEntry, Frame, Header, StorageMode};
pub use container::{DIR_ENTRY_BYTES, HEADER_BYTES, MAGIC, MAX_CHUNK_BYTES, VERSION};

use slc_compress::{Block, BlockCodec, CodecId, BLOCK_BITS, BLOCK_BYTES};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Tag bit marking a block stored in coded (compressed) form.
const TAG_CODED: u16 = 1 << 15;

/// How a batch call fans out across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// `slc-par`'s default: hardware parallelism, `SLC_PAR_THREADS`-capped.
    Auto,
    /// One thread, no pool.
    Serial,
    /// Exactly this many workers (still clamped to the chunk count) —
    /// how tests exercise the threaded path on single-core hosts.
    Exact(usize),
}

/// A batch compression/decompression engine bound to one block codec.
///
/// Cloning an `Engine` clones the `Arc`, not the codec (for trained
/// codecs that is the same refcount-bump contract as `E2mc::clone`).
#[derive(Clone)]
pub struct Engine {
    codec: Arc<dyn BlockCodec>,
    id: CodecId,
    chunk_bytes: usize,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("codec", &self.id.name())
            .field("chunk_bytes", &self.chunk_bytes)
            .finish()
    }
}

impl Engine {
    /// Default chunk size: 64 KiB = 512 blocks, coarse enough to amortise
    /// the pool hand-off, fine enough that a snapshot fans out widely.
    pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

    /// Builds an engine around `codec` at the default chunk size.
    ///
    /// # Panics
    ///
    /// Panics when the codec's [`name`](slc_compress::BlockCompressor::name)
    /// has no [`CodecId`] — only registered codecs can be named in a
    /// container header.
    pub fn new(codec: Arc<dyn BlockCodec>) -> Self {
        let id = CodecId::from_name(codec.name()).unwrap_or_else(|| {
            panic!("codec {:?} has no container CodecId; register it first", codec.name())
        });
        Self { codec, id, chunk_bytes: Self::DEFAULT_CHUNK_BYTES }
    }

    /// Overrides the chunk size.
    ///
    /// # Panics
    ///
    /// Panics unless `chunk_bytes` is a non-zero multiple of
    /// [`BLOCK_BYTES`] no larger than [`MAX_CHUNK_BYTES`] (what
    /// [`Frame::parse`] will accept back).
    pub fn with_chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        assert!(
            chunk_bytes > 0
                && chunk_bytes.is_multiple_of(BLOCK_BYTES)
                && chunk_bytes <= MAX_CHUNK_BYTES,
            "chunk_bytes {chunk_bytes} must be a non-zero multiple of {BLOCK_BYTES} \
             at most {MAX_CHUNK_BYTES}"
        );
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// The wire identity of the engine's codec.
    pub fn codec_id(&self) -> CodecId {
        self.id
    }

    /// The configured chunk size in bytes.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Compresses `bytes` into a framed container ([`Threads::Auto`]).
    pub fn compress(&self, bytes: &[u8]) -> Vec<u8> {
        self.compress_threads(bytes, Threads::Auto)
    }

    /// [`compress`](Self::compress) with an explicit thread policy.
    /// Output bytes are identical whatever the policy.
    pub fn compress_threads(&self, bytes: &[u8], threads: Threads) -> Vec<u8> {
        self.compress_impl(bytes, None, threads)
    }

    /// Compresses a block-aligned stream whose per-block stored sizes are
    /// already known, skipping the codec for every block the sizes call
    /// incompressible (`>= BLOCK_BITS` → stored verbatim).
    ///
    /// The contract: `stored_bits[i]` must equal the codec's own
    /// `size_bits` for block `i` — then the output is **byte-identical**
    /// to [`compress`](Self::compress) (pinned by tests). This is how the
    /// workload harness feeds its cached `SnapshotAnalysis` sizes through
    /// the engine without re-analysing a single block; lying sizes
    /// produce a valid container whose raw/coded split is merely
    /// suboptimal for `< BLOCK_BITS` lies, or wrong (expanded verbatim
    /// blocks) for `>= BLOCK_BITS` lies about compressible data.
    ///
    /// Codecs with a whole-chunk mode (`chunk_coder()`, e.g. rANS)
    /// ignore the sizes — their chunk streams are not block-framed, so
    /// there is no per-block decision to skip and the output is
    /// trivially identical to [`compress`](Self::compress).
    ///
    /// # Panics
    ///
    /// Panics when `bytes` is not block-aligned or `stored_bits` has a
    /// different block count.
    pub fn compress_with_sizes(
        &self,
        bytes: &[u8],
        stored_bits: &[u32],
        threads: Threads,
    ) -> Vec<u8> {
        assert_eq!(bytes.len() % BLOCK_BYTES, 0, "sized compression needs block-aligned input");
        assert_eq!(
            stored_bits.len(),
            bytes.len() / BLOCK_BYTES,
            "one stored size per block required"
        );
        self.compress_impl(bytes, Some(stored_bits), threads)
    }

    fn compress_impl(&self, bytes: &[u8], hints: Option<&[u32]>, threads: Threads) -> Vec<u8> {
        let blocks_per_chunk = self.chunk_bytes / BLOCK_BYTES;
        let codec = &*self.codec;
        let chunks: Vec<(usize, &[u8])> = bytes.chunks(self.chunk_bytes).enumerate().collect();
        let encoded: Vec<(Vec<u8>, StorageMode)> = map_threads(chunks, threads, |(ci, chunk)| {
            let chunk_hints = hints.map(|h| {
                let lo = ci * blocks_per_chunk;
                &h[lo..lo + chunk.len().div_ceil(BLOCK_BYTES)]
            });
            encode_chunk(codec, chunk, chunk_hints)
        });
        let mut dir_bytes = Vec::with_capacity(encoded.len() * DIR_ENTRY_BYTES);
        let mut payload_len = 0u64;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        // A raw chunk's buffer comes back empty (see `encode_chunk`): its
        // stored bytes are the chunk's own slice of the input.
        for ((data, mode), chunk) in encoded.iter().zip(bytes.chunks(self.chunk_bytes)) {
            let stored: &[u8] = if *mode == StorageMode::Raw { chunk } else { data };
            let entry = DirEntry {
                offset: payload_len,
                encoded_bits: (stored.len() * 8) as u32,
                mode: *mode,
            };
            entry.write_to(&mut dir_bytes);
            payload_len += stored.len() as u64;
        }
        Header {
            codec: self.id,
            chunk_bytes: self.chunk_bytes as u32,
            chunk_count: encoded.len() as u32,
            total_len: bytes.len() as u64,
        }
        .write_to(&mut header);
        let mut out = Vec::with_capacity(HEADER_BYTES + dir_bytes.len() + payload_len as usize);
        out.extend_from_slice(&header);
        out.extend_from_slice(&dir_bytes);
        for ((data, mode), chunk) in encoded.iter().zip(bytes.chunks(self.chunk_bytes)) {
            out.extend_from_slice(if *mode == StorageMode::Raw { chunk } else { data });
        }
        out
    }

    /// Decompresses a framed container ([`Threads::Auto`]).
    ///
    /// Never panics on arbitrary input — see the crate docs.
    // slc-lint: allow(hot-path): cold per-container orchestrator (output buffer + worker scaffolding allocate once per call, not per block); shares its name with the per-block BlockCompressor::decompress the call graph fans out to
    pub fn decompress(&self, container: &[u8]) -> Result<Vec<u8>, ContainerError> {
        self.decompress_threads(container, Threads::Auto)
    }

    /// [`decompress`](Self::decompress) with an explicit thread policy.
    /// Output bytes are identical whatever the policy.
    pub fn decompress_threads(
        &self,
        container: &[u8],
        threads: Threads,
    ) -> Result<Vec<u8>, ContainerError> {
        let frame = self.parse_own(container)?;
        let mut out = vec![0u8; frame.header.total_len as usize];
        self.decode_frame(&frame, &mut out, threads)?;
        Ok(out)
    }

    /// Decompresses a framed container into a caller-provided buffer —
    /// the borrowed mirror of [`decompress`](Self::decompress) for
    /// callers that reuse output storage across calls (buffer pools,
    /// arenas, pinned staging memory). Nothing allocates per block:
    /// every chunk decodes straight into its span of `out` through
    /// [`decompress_into`](slc_compress::BlockCompressor::decompress_into).
    ///
    /// `out.len()` must equal the container's decoded length (the
    /// header's `total_len`, also [`FrameInfo::total_len`]); any other
    /// length is [`ContainerError::OutputLenMismatch`]. On success the
    /// buffer is fully overwritten; after an error its contents are
    /// unspecified (chunks decoded before the failure remain).
    ///
    /// Byte-identity with the owned path is pinned by property tests:
    /// `decompress_into` fills `out` with exactly the bytes
    /// [`decompress`](Self::decompress) would return.
    // slc-lint: allow(hot-path): cold per-container orchestrator (worker scaffolding allocates once per call, not per block); shares its name with the per-block BlockCompressor::decompress_into the call graph fans out to
    pub fn decompress_into(&self, container: &[u8], out: &mut [u8]) -> Result<(), ContainerError> {
        self.decompress_into_threads(container, out, Threads::Auto)
    }

    /// [`decompress_into`](Self::decompress_into) with an explicit
    /// thread policy. Output bytes are identical whatever the policy.
    pub fn decompress_into_threads(
        &self,
        container: &[u8],
        out: &mut [u8],
        threads: Threads,
    ) -> Result<(), ContainerError> {
        let frame = self.parse_own(container)?;
        if out.len() as u64 != frame.header.total_len {
            return Err(ContainerError::OutputLenMismatch {
                total_len: frame.header.total_len,
                out_len: out.len(),
            });
        }
        self.decode_frame(&frame, out, threads)
    }

    /// Parses `container` and checks its header names this engine's
    /// codec.
    fn parse_own<'a>(&self, container: &'a [u8]) -> Result<Frame<'a>, ContainerError> {
        let frame = Frame::parse(container)?;
        if frame.header.codec != self.id {
            return Err(ContainerError::CodecMismatch {
                container: frame.header.codec,
                engine: self.id,
            });
        }
        Ok(frame)
    }

    /// Decodes a validated frame's chunks into `out`, whose length both
    /// callers have already pinned to the header's `total_len`.
    fn decode_frame(
        &self,
        frame: &Frame<'_>,
        out: &mut [u8],
        threads: Threads,
    ) -> Result<(), ContainerError> {
        let chunk_bytes = frame.header.chunk_bytes as usize;
        let payload = frame.payload;
        let codec = &*self.codec;
        // Frame::parse pinned chunk_count == ceil(total_len / chunk_bytes),
        // so the zip below is exact: one directory entry per output chunk.
        let work: Vec<(usize, DirEntry, &mut [u8])> = out
            .chunks_mut(chunk_bytes)
            .zip(frame.directory.iter())
            .enumerate()
            .map(|(i, (dst, &entry))| (i, entry, dst))
            .collect();
        let results = map_threads(work, threads, |(i, entry, dst)| {
            decode_chunk(codec, payload, entry, dst, i)
        });
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Starts a streaming encode: feed bytes in arbitrary-sized pieces
    /// via [`StreamEncoder::push`], finish with
    /// [`StreamEncoder::finish`]. The container is **byte-identical** to
    /// [`compress`](Self::compress) over the concatenated input (pinned
    /// by property tests), but the raw stream never has to exist in one
    /// buffer: each chunk is encoded the moment it fills, so live
    /// working memory beyond the compressed output is one chunk.
    pub fn stream_encoder(&self) -> StreamEncoder {
        StreamEncoder {
            engine: self.clone(),
            pending: Vec::with_capacity(self.chunk_bytes),
            dir: Vec::new(),
            payload: Vec::new(),
            total_len: 0,
        }
    }

    /// [`compress`](Self::compress) over an `f32` stream (little-endian
    /// byte view — the layout `GpuMemory` stores).
    pub fn compress_f32(&self, values: &[f32]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.compress(&bytes)
    }

    /// [`decompress`](Self::decompress) back into an `f32` stream; errors
    /// with [`ContainerError::ElementMisaligned`] when the decoded length
    /// is not a multiple of 4.
    pub fn decompress_f32(&self, container: &[u8]) -> Result<Vec<f32>, ContainerError> {
        let bytes = self.decompress(container)?;
        if bytes.len() % 4 != 0 {
            return Err(ContainerError::ElementMisaligned {
                total_len: bytes.len() as u64,
                element_bytes: 4,
            });
        }
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

/// Incremental, bounded-memory encoder for serving scenarios (built by
/// [`Engine::stream_encoder`]).
///
/// The one-shot [`Engine::compress`] needs the whole raw stream in
/// memory; `StreamEncoder` accepts it piecewise. Chunks are encoded as
/// soon as they fill (serially, in arrival order), so the encoder only
/// ever holds the compressed payload, a 13-byte directory entry per
/// chunk, and at most one chunk of raw tail — a few tens of KiB of
/// working state however long the stream runs.
#[derive(Debug)]
pub struct StreamEncoder {
    engine: Engine,
    /// Raw tail shorter than one chunk, awaiting more input.
    pending: Vec<u8>,
    dir: Vec<DirEntry>,
    payload: Vec<u8>,
    total_len: u64,
}

impl StreamEncoder {
    /// Appends `bytes` to the stream, encoding every chunk that fills.
    pub fn push(&mut self, bytes: &[u8]) {
        let chunk_bytes = self.engine.chunk_bytes;
        self.total_len += bytes.len() as u64;
        let mut rest = bytes;
        if !self.pending.is_empty() {
            let need = chunk_bytes - self.pending.len();
            let take = need.min(rest.len());
            self.pending.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.pending.len() == chunk_bytes {
                let chunk = std::mem::take(&mut self.pending);
                self.encode_one(&chunk);
                self.pending = chunk;
                self.pending.clear();
            }
        }
        // Full chunks encode straight from the caller's buffer — no copy
        // through `pending`.
        let mut full = rest.chunks_exact(chunk_bytes);
        for chunk in &mut full {
            self.encode_one(chunk);
        }
        self.pending.extend_from_slice(full.remainder());
    }

    /// Encodes any pending tail and assembles the framed container.
    pub fn finish(mut self) -> Vec<u8> {
        if !self.pending.is_empty() {
            let chunk = std::mem::take(&mut self.pending);
            self.encode_one(&chunk);
        }
        let mut out = Vec::with_capacity(
            HEADER_BYTES + self.dir.len() * DIR_ENTRY_BYTES + self.payload.len(),
        );
        Header {
            codec: self.engine.id,
            chunk_bytes: self.engine.chunk_bytes as u32,
            chunk_count: self.dir.len() as u32,
            total_len: self.total_len,
        }
        .write_to(&mut out);
        for entry in &self.dir {
            entry.write_to(&mut out);
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Bytes accepted so far.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    fn encode_one(&mut self, chunk: &[u8]) {
        let (data, mode) = encode_chunk(&*self.engine.codec, chunk, None);
        // A raw chunk's buffer comes back empty (see `encode_chunk`): its
        // stored bytes are the caller's chunk itself.
        let stored: &[u8] = if mode == StorageMode::Raw { chunk } else { &data };
        self.dir.push(DirEntry {
            offset: self.payload.len() as u64,
            encoded_bits: (stored.len() * 8) as u32,
            mode,
        });
        self.payload.extend_from_slice(stored);
    }
}

/// Summary of one container's frame, for reports and probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Codec named by the header.
    pub codec: CodecId,
    /// Chunk size in bytes.
    pub chunk_bytes: u32,
    /// Number of chunks.
    pub chunk_count: u32,
    /// Decoded length in bytes.
    pub total_len: u64,
    /// Payload section length in bytes.
    pub payload_bytes: u64,
    /// Whole container length in bytes (header + directory + payload).
    pub container_bytes: u64,
    /// Chunks stored verbatim.
    pub raw_chunks: u32,
    /// Chunks stored coded.
    pub coded_chunks: u32,
}

impl FrameInfo {
    /// End-to-end compression ratio (decoded / container bytes, > 1 is
    /// a win); 0 for an empty stream.
    pub fn ratio(&self) -> f64 {
        if self.container_bytes == 0 {
            return 0.0;
        }
        self.total_len as f64 / self.container_bytes as f64
    }
}

/// Parses a container's frame without decoding any chunk.
pub fn frame_info(container: &[u8]) -> Result<FrameInfo, ContainerError> {
    let frame = Frame::parse(container)?;
    let coded = frame.directory.iter().filter(|e| e.mode == StorageMode::Coded).count() as u32;
    Ok(FrameInfo {
        codec: frame.header.codec,
        chunk_bytes: frame.header.chunk_bytes,
        chunk_count: frame.header.chunk_count,
        total_len: frame.header.total_len,
        payload_bytes: frame.payload.len() as u64,
        container_bytes: container.len() as u64,
        raw_chunks: frame.header.chunk_count - coded,
        coded_chunks: coded,
    })
}

fn map_threads<T: Send, U: Send>(
    items: Vec<T>,
    threads: Threads,
    f: impl Fn(T) -> U + Sync,
) -> Vec<U> {
    match threads {
        Threads::Serial => items.into_iter().map(f).collect(),
        Threads::Auto => slc_par::par_map(items, f),
        Threads::Exact(workers) => slc_par::par_map_workers(items, f, workers),
    }
}

/// Encodes one chunk, with a raw fallback when the coded stream does not
/// beat the chunk's verbatim bytes.
///
/// A raw decision returns an **empty** buffer: the chunk's verbatim
/// bytes already live in the caller's input, so the assembly stage
/// ([`Engine::compress_impl`], [`StreamEncoder::encode_one`]) copies
/// them from there instead of through a second per-chunk allocation.
///
/// Codecs with a whole-chunk mode ([`ChunkCoder`]) encode the chunk as
/// one stream (size hints do not apply — the stream is not block-framed);
/// everything else goes through the per-block tag + body framing, encoded
/// straight into the chunk buffer via
/// [`compress_into`](slc_compress::BlockCompressor::compress_into) (the
/// tag is back-patched once the body size is known).
fn encode_chunk(
    codec: &dyn BlockCodec,
    chunk: &[u8],
    hints: Option<&[u32]>,
) -> (Vec<u8>, StorageMode) {
    if let Some(cc) = codec.chunk_coder() {
        let mut coded = cc.encode_chunk(chunk);
        return if coded.len() >= chunk.len() {
            coded.clear();
            (coded, StorageMode::Raw)
        } else {
            (coded, StorageMode::Coded)
        };
    }
    let nblocks = chunk.len().div_ceil(BLOCK_BYTES);
    let mut coded = Vec::with_capacity(chunk.len() + 2 * nblocks);
    for (i, raw) in chunk.chunks(BLOCK_BYTES).enumerate() {
        // Borrow full blocks in place; only a ragged tail needs the
        // zero-padded copy.
        let mut tail = [0u8; BLOCK_BYTES];
        let block: &Block = match raw.try_into() {
            Ok(full) => full,
            Err(_) => {
                tail[..raw.len()].copy_from_slice(raw);
                &tail
            }
        };
        // A hint of >= BLOCK_BITS means "stored verbatim": identical to
        // what the codec would decide, minus the encode work.
        let skip = hints.is_some_and(|h| h[i] >= BLOCK_BITS);
        let tag_at = coded.len();
        coded.extend_from_slice(&[0, 0]);
        let (mut bits, mut is_coded) = if skip {
            coded.extend_from_slice(block);
            (BLOCK_BITS, false)
        } else {
            codec.compress_into(block, &mut coded)
        };
        // Defensive: the tag has 15 size bits and every codec caps at the
        // verbatim block; store raw if one ever misbehaves.
        if bits > BLOCK_BITS {
            coded.truncate(tag_at + 2);
            coded.extend_from_slice(block);
            (bits, is_coded) = (BLOCK_BITS, false);
        }
        let tag = (bits as u16) | if is_coded { TAG_CODED } else { 0 };
        coded[tag_at..tag_at + 2].copy_from_slice(&tag.to_le_bytes());
    }
    if coded.len() >= chunk.len() {
        coded.clear();
        (coded, StorageMode::Raw)
    } else {
        (coded, StorageMode::Coded)
    }
}

/// Reads the little-endian `u16` block tag at `pos` of a coded chunk.
///
/// The tag is attacker-controlled wire data — a registered taint source
/// (`tools/lint/untrusted.txt`): the size bits it carries must be
/// range-validated before they bound any slice or loop, which is
/// exactly what [`decode_chunk`] does right after reading it.
fn block_tag(src: &[u8], pos: usize) -> u16 {
    u16::from_le_bytes([src[pos], src[pos + 1]])
}

/// Decodes one chunk into its output slice.
///
/// `entry`'s payload span was bounds-checked by [`Frame::parse`]; block
/// tags and bodies are re-validated here (the span being in bounds says
/// nothing about its contents), and codec guard-panics on corrupt block
/// streams are caught and mapped to [`ContainerError::ChunkCorrupt`] so
/// the engine's decode path never unwinds out of a worker.
///
/// Coded blocks decode **in place**: each full block's span of `dst`
/// is handed to the codec as the output buffer
/// ([`decompress_into`](slc_compress::BlockCompressor::decompress_into)),
/// so the per-block body copy the old owned API forced is gone. Only a
/// ragged tail block (stream length not a block multiple) bounces
/// through a stack block before its prefix is copied out.
fn decode_chunk(
    codec: &dyn BlockCodec,
    payload: &[u8],
    entry: DirEntry,
    dst: &mut [u8],
    chunk: usize,
) -> Result<(), ContainerError> {
    let src = &payload[entry.offset as usize..(entry.offset + entry.encoded_bytes()) as usize];
    match entry.mode {
        StorageMode::Raw => {
            // Frame::parse pinned the raw length to the chunk's exact
            // raw length, which is dst's length by construction.
            debug_assert_eq!(src.len(), dst.len());
            dst.copy_from_slice(src);
            Ok(())
        }
        StorageMode::Coded => {
            if let Some(cc) = codec.chunk_coder() {
                let outcome = catch_unwind(AssertUnwindSafe(|| cc.decode_chunk(src, dst)));
                return match outcome {
                    Ok(Ok(())) => Ok(()),
                    Ok(Err(reason)) => Err(ContainerError::ChunkCorrupt { chunk, reason }),
                    Err(_) => Err(ContainerError::ChunkCorrupt {
                        chunk,
                        reason: "codec rejected the chunk stream",
                    }),
                };
            }
            let nblocks = dst.len().div_ceil(BLOCK_BYTES);
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), &'static str> {
                let mut pos = 0usize;
                for b in 0..nblocks {
                    if pos + 2 > src.len() {
                        return Err("block tag past end of chunk");
                    }
                    let tag = block_tag(src, pos);
                    pos += 2;
                    let bits = u32::from(tag & !TAG_CODED);
                    let is_coded = tag & TAG_CODED != 0;
                    if bits > BLOCK_BITS || (!is_coded && bits != BLOCK_BITS) {
                        return Err("invalid block tag");
                    }
                    let body_len = bits.div_ceil(8) as usize;
                    if pos + body_len > src.len() {
                        return Err("block body past end of chunk");
                    }
                    let body = &src[pos..pos + body_len];
                    pos += body_len;
                    let lo = b * BLOCK_BYTES;
                    // Full blocks decode straight into dst; only a ragged
                    // tail takes the stack bounce.
                    let mut tail = [0u8; BLOCK_BYTES];
                    let out: &mut Block = match dst[lo..].first_chunk_mut::<BLOCK_BYTES>() {
                        Some(full) => full,
                        None => &mut tail,
                    };
                    if is_coded {
                        codec.decompress_into(bits, true, body, out);
                    } else if body.len() == BLOCK_BYTES {
                        out.copy_from_slice(body);
                    } else {
                        return Err("verbatim body is not exactly one block");
                    }
                    let n = dst.len() - lo;
                    if n < BLOCK_BYTES {
                        dst[lo..].copy_from_slice(&tail[..n]);
                    }
                }
                if pos != src.len() {
                    return Err("trailing bytes after last block");
                }
                Ok(())
            }));
            match outcome {
                Ok(Ok(())) => Ok(()),
                Ok(Err(reason)) => Err(ContainerError::ChunkCorrupt { chunk, reason }),
                Err(_) => Err(ContainerError::ChunkCorrupt {
                    chunk,
                    reason: "codec rejected the block stream",
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_compress::bdi::Bdi;
    use slc_compress::e2mc::{E2mc, E2mcConfig};

    fn bdi_engine(chunk: usize) -> Engine {
        Engine::new(Arc::new(Bdi::new())).with_chunk_bytes(chunk)
    }

    fn sample_bytes(len: usize) -> Vec<u8> {
        // Mixed compressibility: ramps (BDI material) with noise stripes.
        (0..len)
            .map(|i| {
                if (i / 96) % 5 == 4 {
                    (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(23) as u8
                } else {
                    (i / 4) as u8
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_basic() {
        let e = bdi_engine(256);
        for len in [0usize, 1, 127, 128, 129, 255, 256, 257, 1000, 4096] {
            let data = sample_bytes(len);
            let c = e.compress(&data);
            assert_eq!(e.decompress(&c).unwrap(), data, "len {len}");
            let info = frame_info(&c).unwrap();
            assert_eq!(info.total_len, len as u64);
            assert_eq!(info.chunk_count as u64, (len as u64).div_ceil(256));
        }
    }

    #[test]
    fn container_is_self_describing() {
        let e = bdi_engine(512);
        let data = sample_bytes(2000);
        let c = e.compress(&data);
        let info = frame_info(&c).unwrap();
        assert_eq!(info.codec, CodecId::Bdi);
        assert_eq!(info.chunk_bytes, 512);
        assert_eq!(info.raw_chunks + info.coded_chunks, info.chunk_count);
        assert!(info.ratio() > 0.0);
    }

    #[test]
    fn incompressible_chunks_fall_back_to_raw() {
        let e = bdi_engine(256);
        let mut noise = vec![0u8; 1024];
        let mut state = 0x1234_5678_9abc_def0u64;
        for b in noise.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 33) as u8;
        }
        let c = e.compress(&noise);
        let info = frame_info(&c).unwrap();
        assert_eq!(info.coded_chunks, 0, "noise must store raw, not expand");
        // Raw storage bounds the overhead to header + directory.
        assert_eq!(
            c.len(),
            HEADER_BYTES + info.chunk_count as usize * DIR_ENTRY_BYTES + noise.len()
        );
        assert_eq!(e.decompress(&c).unwrap(), noise);
    }

    #[test]
    fn codec_mismatch_is_rejected() {
        let data = sample_bytes(512);
        let c = bdi_engine(256).compress(&data);
        let other = Engine::new(Arc::new(slc_compress::fpc::Fpc::new())).with_chunk_bytes(256);
        assert_eq!(
            other.decompress(&c),
            Err(ContainerError::CodecMismatch { container: CodecId::Bdi, engine: CodecId::Fpc })
        );
    }

    #[test]
    fn sized_path_is_byte_identical_for_e2mc() {
        let training: Vec<u8> =
            (0..1u32 << 14).flat_map(|i| ((i % 257) as f32).to_le_bytes()).collect();
        let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
        let mut data: Vec<u8> =
            (0..2048u32).flat_map(|i| (((i * 3) % 257) as f32).to_le_bytes()).collect();
        // Salt a stripe of noise so some blocks are genuinely
        // incompressible and the skip hint actually fires.
        let mut state = 0xfeedu64;
        for b in data[1024..2048].iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 33) as u8;
        }
        let sizes: Vec<u32> = data
            .chunks_exact(BLOCK_BYTES)
            .map(|c| e2mc.stored_size_bits(c.try_into().unwrap()))
            .collect();
        assert!(sizes.iter().any(|&s| s >= BLOCK_BITS), "need at least one verbatim block");
        let engine = Engine::new(Arc::new(e2mc)).with_chunk_bytes(512);
        let plain = engine.compress(&data);
        let sized = engine.compress_with_sizes(&data, &sizes, Threads::Serial);
        assert_eq!(plain, sized, "truthful sizes must not change a single byte");
        assert_eq!(engine.decompress(&sized).unwrap(), data);
    }

    #[test]
    fn decompress_into_matches_owned_path() {
        let e = bdi_engine(256);
        for len in [0usize, 1, 127, 128, 255, 256, 1000, 4096] {
            let data = sample_bytes(len);
            let c = e.compress(&data);
            let owned = e.decompress(&c).unwrap();
            let mut borrowed = vec![0xa5u8; len];
            e.decompress_into(&c, &mut borrowed).unwrap();
            assert_eq!(borrowed, owned, "len {len}");
        }
    }

    #[test]
    fn decompress_into_rejects_wrong_buffer_length() {
        let e = bdi_engine(256);
        let c = e.compress(&sample_bytes(300));
        for bad in [0usize, 299, 301] {
            let mut out = vec![0u8; bad];
            assert_eq!(
                e.decompress_into(&c, &mut out),
                Err(ContainerError::OutputLenMismatch { total_len: 300, out_len: bad }),
                "buffer of {bad} bytes must be rejected"
            );
        }
    }

    #[test]
    fn clone_shares_the_codec() {
        let e = bdi_engine(256);
        let f = e.clone();
        assert!(Arc::ptr_eq(&e.codec, &f.codec));
    }

    #[test]
    fn f32_roundtrip() {
        let e = bdi_engine(256);
        let values: Vec<f32> = (0..300).map(|i| i as f32 * 0.5).collect();
        let c = e.compress_f32(&values);
        assert_eq!(e.decompress_f32(&c).unwrap(), values);
    }

    #[test]
    fn f32_rejects_misaligned_streams() {
        let e = bdi_engine(256);
        let c = e.compress(&[1u8, 2, 3]);
        assert_eq!(
            e.decompress_f32(&c),
            Err(ContainerError::ElementMisaligned { total_len: 3, element_bytes: 4 })
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 128")]
    fn chunk_size_must_be_block_aligned() {
        let _ = bdi_engine(100);
    }

    #[test]
    #[should_panic(expected = "one stored size per block")]
    fn sized_path_checks_block_count() {
        let e = bdi_engine(256);
        let _ = e.compress_with_sizes(&[0u8; 256], &[0u32; 3], Threads::Serial);
    }
}

//! Property tests pinning the engine's two load-bearing equivalences for
//! **every** codec, random chunk sizes and ragged tail chunks:
//!
//! 1. The engine's container is byte-identical to a hand-rolled
//!    *sequential per-block* encode of the same stream (the reference
//!    implementation below shares no code with the engine's chunk
//!    encoder), and parallel compression emits the identical container.
//! 2. Parallel decode is byte-identical to serial decode, and both
//!    reproduce the original stream exactly.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use slc_compress::bdi::Bdi;
use slc_compress::bpc::Bpc;
use slc_compress::cpack::Cpack;
use slc_compress::e2mc::{E2mc, E2mcConfig};
use slc_compress::fpc::Fpc;
use slc_compress::hycomp::HyComp;
use slc_compress::rans::Rans;
use slc_compress::sc2::Sc2;
use slc_compress::{BlockCodec, ChunkCoder, Compressed, BLOCK_BITS, BLOCK_BYTES};
use slc_engine::{ContainerError, DirEntry, Engine, Header, StorageMode, Threads};
use std::sync::{Arc, OnceLock};

/// All seven codecs, trained once for the whole test binary (training
/// E2MC/SC2/HyComp per proptest case would dominate the runtime).
fn codecs() -> &'static [Arc<dyn BlockCodec>] {
    static CODECS: OnceLock<Vec<Arc<dyn BlockCodec>>> = OnceLock::new();
    CODECS.get_or_init(|| {
        let bytes: Vec<u8> =
            (0..1u32 << 14).flat_map(|i| ((i % 257) as f32).to_le_bytes()).collect();
        vec![
            Arc::new(Bdi::new()),
            Arc::new(Fpc::new()),
            Arc::new(Cpack::new()),
            Arc::new(Bpc::new()),
            Arc::new(E2mc::train_on_bytes(&bytes, &E2mcConfig::default())),
            Arc::new(Sc2::train_on_bytes(&bytes, slc_compress::sc2::DEFAULT_TOP_K)),
            Arc::new(HyComp::train_on_bytes(&bytes)),
        ]
    })
}

/// Reference container builder: a plain sequential loop over blocks and
/// chunks — per-block `compress`, u16 tag, raw fallback — independently
/// restating the format spec the engine must match byte for byte.
fn reference_container(codec: &dyn BlockCodec, bytes: &[u8], chunk_bytes: usize) -> Vec<u8> {
    let mut chunks: Vec<(Vec<u8>, StorageMode)> = Vec::new();
    for chunk in bytes.chunks(chunk_bytes) {
        let mut coded = Vec::new();
        for raw in chunk.chunks(BLOCK_BYTES) {
            let mut block = [0u8; BLOCK_BYTES];
            block[..raw.len()].copy_from_slice(raw);
            let c = codec.compress(&block);
            let c = if c.size_bits() > BLOCK_BITS { Compressed::uncompressed(&block) } else { c };
            let tag = (c.size_bits() as u16) | if c.is_compressed() { 1u16 << 15 } else { 0 };
            coded.extend_from_slice(&tag.to_le_bytes());
            coded.extend_from_slice(&c.payload()[..c.size_bits().div_ceil(8) as usize]);
        }
        if coded.len() >= chunk.len() {
            chunks.push((chunk.to_vec(), StorageMode::Raw));
        } else {
            chunks.push((coded, StorageMode::Coded));
        }
    }
    let mut out = Vec::new();
    Header {
        codec: slc_compress::CodecId::from_name(codec.name()).expect("registered codec"),
        chunk_bytes: chunk_bytes as u32,
        chunk_count: chunks.len() as u32,
        total_len: bytes.len() as u64,
    }
    .write_to(&mut out);
    let mut offset = 0u64;
    for (data, mode) in &chunks {
        let entry = DirEntry { offset, encoded_bits: (data.len() * 8) as u32, mode: *mode };
        out.extend_from_slice(&entry.offset.to_le_bytes());
        out.extend_from_slice(&entry.encoded_bits.to_le_bytes());
        out.push(entry.mode.as_u8());
        offset += data.len() as u64;
    }
    for (data, _) in &chunks {
        out.extend_from_slice(data);
    }
    out
}

/// Mixed-compressibility stream: f32 ramps in-distribution for the
/// trained codecs, interleaved with raw noise stripes, sliced to an
/// arbitrary (ragged) length.
fn stream(len: usize, salt: u64, noise_period: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 4);
    let mut i = 0u32;
    let mut state = salt | 1;
    while out.len() < len {
        if noise_period > 0 && (out.len() / BLOCK_BYTES) % noise_period == noise_period - 1 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            out.extend_from_slice(&state.to_le_bytes());
        } else {
            out.extend_from_slice(&(((i * 3) % 257) as f32).to_le_bytes());
        }
        i += 1;
    }
    out.truncate(len);
    out
}

fn check_roundtrip(bytes: &[u8], chunk_blocks: usize) {
    let chunk_bytes = chunk_blocks * BLOCK_BYTES;
    for codec in codecs() {
        let name = codec.name();
        let engine = Engine::new(Arc::clone(codec)).with_chunk_bytes(chunk_bytes);
        let serial = engine.compress_threads(bytes, Threads::Serial);
        let parallel = engine.compress_threads(bytes, Threads::Exact(3));
        assert_eq!(serial, parallel, "{name}: parallel compress must be byte-identical");
        let reference = reference_container(codec.as_ref(), bytes, chunk_bytes);
        assert_eq!(
            serial, reference,
            "{name}: engine container must equal the sequential per-block reference"
        );
        let d_serial = engine.decompress_threads(&serial, Threads::Serial).unwrap();
        let d_parallel = engine.decompress_threads(&serial, Threads::Exact(3)).unwrap();
        assert_eq!(d_serial, d_parallel, "{name}: parallel decode must equal serial");
        assert_eq!(d_serial, bytes, "{name}: roundtrip must reproduce the stream");
        // Borrowed decode into a deliberately dirty buffer must overwrite
        // every byte with exactly what the owned path returned.
        let mut borrowed = vec![0xa5u8; bytes.len()];
        engine.decompress_into(&serial, &mut borrowed).unwrap();
        assert_eq!(borrowed, d_serial, "{name}: decompress_into must equal decompress");
    }
}

#[test]
fn edge_case_lengths_roundtrip() {
    // Empty stream, sub-block, exactly one block, one chunk ± 1 byte.
    for len in [0usize, 1, 127, 128, 129, 512, 513, 511] {
        check_roundtrip(&stream(len, 7, 3), 4);
    }
}

#[test]
fn truncating_a_container_is_an_error_not_a_panic() {
    let engine = Engine::new(Arc::new(Bdi::new())).with_chunk_bytes(256);
    let data = stream(1000, 3, 2);
    let container = engine.compress(&data);
    for cut in 0..container.len() {
        match engine.decompress(&container[..cut]) {
            Err(_) => {}
            Ok(out) => assert_eq!(out, data[..0], "only a full parse may succeed"),
        }
    }
    assert_eq!(engine.decompress(&container).unwrap(), data);
}

#[test]
fn exact_worker_counts_agree_everywhere() {
    // Exercise several explicit worker counts (including more workers
    // than chunks) against the serial reference.
    let engine = Engine::new(Arc::new(Fpc::new())).with_chunk_bytes(128);
    let data = stream(1500, 11, 4);
    let serial = engine.compress_threads(&data, Threads::Serial);
    for workers in [1usize, 2, 3, 8, 64] {
        assert_eq!(engine.compress_threads(&data, Threads::Exact(workers)), serial);
        assert_eq!(
            engine.decompress_threads(&serial, Threads::Exact(workers)).unwrap(),
            data,
            "{workers} workers"
        );
    }
    assert_eq!(engine.compress_threads(&data, Threads::Auto), serial);
    assert_eq!(engine.decompress_threads(&serial, Threads::Auto).unwrap(), data);
}

#[test]
fn chunk_corruption_surfaces_as_chunk_corrupt() {
    // Stomp a coded chunk's first tag with an impossible size: the
    // decoder must return ChunkCorrupt for that chunk, not panic.
    let bytes: Vec<u8> = stream(1024, 5, 0);
    let engine = Engine::new(Arc::new(Bdi::new())).with_chunk_bytes(256);
    let mut container = engine.compress(&bytes);
    let info = slc_engine::frame_info(&container).unwrap();
    assert!(info.coded_chunks > 0, "need a coded chunk to corrupt");
    let dir_end =
        slc_engine::HEADER_BYTES + info.chunk_count as usize * slc_engine::DIR_ENTRY_BYTES;
    // First coded chunk starts at payload offset 0 (chunk 0 is coded:
    // the ramp compresses under BDI).
    container[dir_end] = 0xff;
    container[dir_end + 1] = 0x7f; // tag = size_bits 0x7fff, not coded
    match engine.decompress(&container) {
        Err(ContainerError::ChunkCorrupt { .. }) => {}
        other => panic!("expected ChunkCorrupt, got {other:?}"),
    }
}

/// Reference container for a whole-chunk codec: one `encode_chunk`
/// stream per chunk with the engine's raw fallback (`coded >= chunk`
/// stores verbatim) and the same framing spec restated sequentially.
/// The chunk stream bytes themselves are pinned against a scalar
/// reference decoder inside `slc_compress::rans`; this reference pins
/// where the engine is allowed to put them.
fn reference_container_chunked(
    codec: &dyn BlockCodec,
    coder: &dyn ChunkCoder,
    bytes: &[u8],
    chunk_bytes: usize,
) -> Vec<u8> {
    let mut chunks: Vec<(Vec<u8>, StorageMode)> = Vec::new();
    for chunk in bytes.chunks(chunk_bytes) {
        let coded = coder.encode_chunk(chunk);
        if coded.len() >= chunk.len() {
            chunks.push((chunk.to_vec(), StorageMode::Raw));
        } else {
            chunks.push((coded, StorageMode::Coded));
        }
    }
    let mut out = Vec::new();
    Header {
        codec: slc_compress::CodecId::from_name(codec.name()).expect("registered codec"),
        chunk_bytes: chunk_bytes as u32,
        chunk_count: chunks.len() as u32,
        total_len: bytes.len() as u64,
    }
    .write_to(&mut out);
    let mut offset = 0u64;
    for (data, mode) in &chunks {
        let entry = DirEntry { offset, encoded_bits: (data.len() * 8) as u32, mode: *mode };
        out.extend_from_slice(&entry.offset.to_le_bytes());
        out.extend_from_slice(&entry.encoded_bits.to_le_bytes());
        out.push(entry.mode.as_u8());
        offset += data.len() as u64;
    }
    for (data, _) in &chunks {
        out.extend_from_slice(data);
    }
    out
}

#[test]
fn rans_engine_equals_chunk_level_reference() {
    // rANS opts into whole-chunk coding, so the per-block reference does
    // not apply: the container must instead hold one rANS stream (or a
    // raw chunk) per directory entry.
    let rans = Arc::new(Rans::new());
    for (len, chunk_blocks, noise_period) in
        [(0usize, 4usize, 0usize), (1, 2, 0), (640, 2, 0), (1024, 4, 2), (5000, 8, 3), (129, 1, 0)]
    {
        let data = stream(len, 23, noise_period);
        let chunk_bytes = chunk_blocks * BLOCK_BYTES;
        let engine =
            Engine::new(Arc::clone(&rans) as Arc<dyn BlockCodec>).with_chunk_bytes(chunk_bytes);
        let serial = engine.compress_threads(&data, Threads::Serial);
        let parallel = engine.compress_threads(&data, Threads::Exact(3));
        assert_eq!(serial, parallel, "rans: parallel compress must be byte-identical");
        let reference =
            reference_container_chunked(rans.as_ref(), rans.as_ref(), &data, chunk_bytes);
        assert_eq!(
            serial, reference,
            "rans: engine container must equal the sequential chunk-level reference \
             (len {len}, chunk_blocks {chunk_blocks})"
        );
        assert_eq!(engine.decompress(&serial).unwrap(), data, "rans: roundtrip");
        let mut borrowed = vec![0xa5u8; data.len()];
        engine.decompress_into(&serial, &mut borrowed).unwrap();
        assert_eq!(borrowed, data, "rans: decompress_into must equal decompress");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_stream_encoder_matches_compress(
        len in 0usize..4096,
        chunk_blocks in 1usize..=4,
        salt in any::<u64>(),
        noise_period in 0usize..4,
        cuts in proptest::collection::vec(1usize..700, 0..8),
    ) {
        // Bounded-memory streaming encode: pushing the stream in
        // arbitrary-sized pieces must emit the exact container
        // `compress` builds from the whole buffer, for a per-block codec
        // and for a whole-chunk codec alike.
        let data = stream(len, salt, noise_period);
        let codecs: [Arc<dyn BlockCodec>; 2] = [Arc::new(Bdi::new()), Arc::new(Rans::new())];
        for codec in codecs {
            let engine = Engine::new(codec).with_chunk_bytes(chunk_blocks * BLOCK_BYTES);
            let whole = engine.compress(&data);
            let mut enc = engine.stream_encoder();
            let mut rest: &[u8] = &data;
            for &cut in &cuts {
                let take = cut.min(rest.len());
                let (head, tail) = rest.split_at(take);
                enc.push(head);
                rest = tail;
            }
            enc.push(rest);
            prop_assert_eq!(&enc.finish(), &whole, "streamed container must match compress");
        }
    }

    #[test]
    fn prop_engine_equals_sequential_reference(
        len in 0usize..4096,
        chunk_blocks in 1usize..=8,
        salt in any::<u64>(),
        noise_period in 0usize..5,
    ) {
        check_roundtrip(&stream(len, salt, noise_period), chunk_blocks);
    }

    #[test]
    fn prop_random_bytes_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk_blocks in 1usize..=4,
    ) {
        check_roundtrip(&data, chunk_blocks);
    }
}

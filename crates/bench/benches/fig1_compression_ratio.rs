//! Regenerates Fig. 1 (raw vs effective compression ratio) as a bench:
//! the measurement prints the figure once, then times recomputation.

use criterion::{criterion_group, criterion_main, Criterion};
use slc_compress::Mag;
use slc_workloads::Scale;

fn fig1(c: &mut Criterion) {
    let fig = slc_exp::fig1::compute(Scale::Tiny, Mag::GDDR5);
    println!("{}", fig.render());
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("compute_tiny", |b| {
        b.iter(|| slc_exp::fig1::compute(Scale::Tiny, Mag::GDDR5))
    });
    g.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);

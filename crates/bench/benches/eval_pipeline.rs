//! Evaluation-pipeline benchmark: the wall-clock cost of the Fig. 9
//! front end — [`slc_exp::eval::prepare_all`] at tiny scale (exact runs,
//! table training and trace generation for all nine benchmarks, in
//! parallel) — plus the batch engine's end-to-end GB/s rows.
//!
//! Writes the `BENCH_eval.json` baseline to the repo root (override the
//! path with `BENCH_EVAL_JSON`); `tools/check_bench_regression.py` gates
//! regressions against it in CI next to `BENCH_codec.json`, with
//! `tools/eval_rows.txt` pinning the row set.

use criterion::Criterion;
use slc_exp::eval::prepare_all;
use slc_workloads::{Harness, Scale};

/// Step 1+2 for every benchmark at tiny scale: the fixed cost every
/// sweep (Fig. 7/8/9, the ablation, the fault-capacity curves) pays
/// before its first scheme runs. Guards the prepare path's parallel
/// fan-out and the lazy caches' construction cost.
fn bench_prepare(c: &mut Criterion) {
    let harness = Harness::new(Scale::Tiny);
    let mut g = c.benchmark_group("eval");
    g.bench_function("prepare_all", |b| b.iter(|| prepare_all(Scale::Tiny, &harness).len()));
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_prepare(&mut c);
    slc_bench::bench_engine_e2e(&mut c);
    slc_bench::write_baseline(&c, "eval_pipeline", "BENCH_EVAL_JSON", "BENCH_eval.json");
}

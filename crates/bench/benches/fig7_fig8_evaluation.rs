//! Regenerates Figs. 7 and 8 (speedup/error and bandwidth/energy/EDP):
//! prints both views once, then times one benchmark's full pipeline.
//!
//! Methodology: the timed region covers **only** the per-scheme
//! functional + timing passes. All setup — workload construction, the
//! exact run, symbol-table training and `Scheme` construction — happens
//! once outside the measurement loop, so the row tracks the evaluation
//! pipeline itself, not artifact preparation. (Scheme construction is an
//! `Arc` refcount bump since the trained table became shared, but it
//! still does not belong inside a timed region.)

use criterion::{criterion_group, criterion_main, Criterion};
use slc_core::slc::SlcVariant;
use slc_workloads::{workload_by_name, Harness, Scale, Scheme};

fn fig7_fig8(c: &mut Criterion) {
    let harness = Harness::new(Scale::Tiny);
    let eval = slc_exp::evaluate(
        Scale::Tiny,
        &harness,
        16,
        &[SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt],
    );
    println!("{}", eval.render_fig7());
    println!("{}", eval.render_fig8());

    let w = workload_by_name("NN", Scale::Tiny).expect("registered");
    let artifacts = harness.prepare(w.as_ref());
    let scheme = Scheme::slc(artifacts.e2mc.clone(), harness.config.mag(), 16, SlcVariant::TslcOpt);
    let mut g = c.benchmark_group("fig7_fig8");
    g.sample_size(10);
    g.bench_function("nn_tslc_opt_pipeline", |b| {
        b.iter(|| harness.evaluate(w.as_ref(), &artifacts, &scheme))
    });
    g.finish();
}

criterion_group!(benches, fig7_fig8);
criterion_main!(benches);

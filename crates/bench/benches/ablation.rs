//! Ablations of the design choices DESIGN.md calls out:
//!
//! * TSLC-OPT's staggered extra nodes vs the plain tree (over-
//!   approximation reduction, §III-F).
//! * Predictor kind: zero-fill vs the paper's literal first-symbol rule
//!   vs lane-matched (§III-E and DESIGN.md's faithfulness note).
//! * Lossy threshold sweep (the programmer knob of §IV-C).
//! * Metadata cache size (Fig. 3's MDC).
//!
//! Each ablation prints its comparison table once, then benches one
//! representative configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use slc_compress::symbols::block_to_symbols;
use slc_compress::{Block, Mag};
use slc_core::predict::PredictorKind;
use slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant};
use slc_sim::mdc::MetadataCache;
use slc_workloads::{workload_by_name, Harness, Scale, Scheme};

fn artifacts() -> (Harness, slc_workloads::BenchmarkArtifacts, Vec<Block>) {
    let h = Harness::new(Scale::Tiny);
    let w = workload_by_name("NN", Scale::Tiny).expect("registered");
    let a = h.prepare(w.as_ref());
    let blocks: Vec<Block> =
        a.exact_memory.all_blocks().filter(|(r, _)| r.safe_to_approx).map(|(_, b)| b).collect();
    (h, a, blocks)
}

fn ablate_opt_nodes(c: &mut Criterion) {
    let (_, a, blocks) = artifacts();
    println!("\n=== Ablation: TSLC-OPT extra tree nodes (over-approximation) ===");
    for (label, variant) in [
        ("plain tree (TSLC-PRED)", SlcVariant::TslcPred),
        ("extra nodes (TSLC-OPT)", SlcVariant::TslcOpt),
    ] {
        let slc = SlcCompressor::new(a.e2mc.clone(), SlcConfig::new(Mag::GDDR5, 16, variant));
        let mut lossy = 0u64;
        let mut symbols = 0u64;
        let mut over_bits = 0u64;
        for b in &blocks {
            let (decision, selection) = slc.analyze(b);
            if let Some(sel) = selection {
                lossy += 1;
                symbols += sel.symbols as u64;
                over_bits += u64::from(sel.freed_bits.saturating_sub(decision.extra_bits));
            }
        }
        println!(
            "{label:>24}: {lossy} lossy blocks, {:.2} symbols/block, {:.1} over-approximated bits/block",
            symbols as f64 / lossy.max(1) as f64,
            over_bits as f64 / lossy.max(1) as f64
        );
    }
    let slc =
        SlcCompressor::new(a.e2mc.clone(), SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
    c.bench_function("ablation/analyze_opt", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % blocks.len();
            slc.analyze(&blocks[i])
        })
    });
}

fn ablate_predictor(c: &mut Criterion) {
    let (_, a, blocks) = artifacts();
    println!("\n=== Ablation: predictor kind (decompression fill-in) ===");
    for (label, kind) in [
        ("zero-fill (TSLC-SIMP)", PredictorKind::Zero),
        ("first symbol (paper literal)", PredictorKind::FirstSymbol),
        ("lane-matched (default)", PredictorKind::LaneMatched),
    ] {
        let slc = SlcCompressor::new(
            a.e2mc.clone(),
            SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcPred).with_predictor(kind),
        );
        let mut sq = 0.0f64;
        let mut lossy = 0u64;
        for b in &blocks {
            let enc = slc.compress(b);
            if !enc.is_lossy() {
                continue;
            }
            lossy += 1;
            let out = slc.decompress(&enc);
            let orig = block_to_symbols(b);
            let dec = block_to_symbols(&out);
            for i in 0..64 {
                let d = f64::from(orig[i]) - f64::from(dec[i]);
                sq += d * d;
            }
        }
        println!(
            "{label:>30}: rms symbol error {:.1} over {lossy} lossy blocks",
            (sq / lossy.max(1) as f64).sqrt()
        );
    }
    let slc =
        SlcCompressor::new(a.e2mc.clone(), SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcPred));
    let lossy: Vec<_> = blocks.iter().map(|b| slc.compress(b)).filter(|e| e.is_lossy()).collect();
    c.bench_function("ablation/decompress_lossy", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % lossy.len();
            slc.decompress(&lossy[i])
        })
    });
}

fn ablate_threshold(c: &mut Criterion) {
    let (h, a, _) = artifacts();
    let w = workload_by_name("NN", Scale::Tiny).expect("registered");
    println!("\n=== Ablation: lossy threshold sweep (MAG 32 B) ===");
    println!("{:>10} {:>12} {:>12}", "threshold", "mean bursts", "error %");
    for thr in [0u32, 4, 8, 16, 24, 32] {
        let scheme = Scheme::slc(a.e2mc.clone(), h.config.mag(), thr, SlcVariant::TslcOpt);
        let f = h.run_functional(w.as_ref(), &a, &scheme);
        println!("{:>9}B {:>12.3} {:>12.4}", thr, f.bursts.mean_bursts(), f.error_pct);
    }
    let scheme = Scheme::slc(a.e2mc.clone(), h.config.mag(), 16, SlcVariant::TslcOpt);
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("functional_pass_thr16", |b| {
        b.iter(|| h.run_functional(w.as_ref(), &a, &scheme))
    });
    g.finish();
}

fn ablate_mdc(c: &mut Criterion) {
    println!("\n=== Ablation: metadata cache size (streaming 64k blocks) ===");
    println!("{:>10} {:>10}", "entries", "hit rate");
    for entries in [16usize, 64, 256, 512, 2048] {
        let mut mdc = MetadataCache::new(entries);
        // Two interleaved streams, as in a load+store kernel.
        for i in 0..32_768u64 {
            mdc.access(i, false);
            mdc.access(1 << 20 | i, false);
        }
        println!("{entries:>10} {:>9.2}%", mdc.hit_rate() * 100.0);
    }
    c.bench_function("ablation/mdc_access", |b| {
        let mut mdc = MetadataCache::new(512);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            mdc.access(i, false)
        })
    });
}

criterion_group!(benches, ablate_opt_nodes, ablate_predictor, ablate_threshold, ablate_mdc);
criterion_main!(benches);

//! Microbenchmarks: per-block compress/decompress throughput of every
//! codec, SLC's size-only fast path (the hardware's tree adder), the
//! evaluation layer's shared-analysis burst-map sweep vs the per-scheme
//! re-encode it replaced, and the batch engine's end-to-end GB/s rows
//! ([`slc_bench::bench_engine_e2e`], shared with the `eval_pipeline`
//! bench).
//!
//! The sample set mixes the block archetypes GPU traffic exhibits — zero
//! blocks, repeated values, integer ramps, small integers, smooth float
//! fields, pointer-like clustered words and incompressible noise — so
//! every codec exercises its real encode *and* decode paths (an
//! all-float-ramp set would let BDI/FPC fall back to verbatim storage and
//! "benchmark" a memcpy).
//!
//! Besides printing results, the bench writes a `BENCH_codec.json`
//! baseline to the repo root (override the path with `BENCH_CODEC_JSON`)
//! so future changes can be compared against the recorded trajectory.

use criterion::{BatchSize, Criterion};
use slc_compress::bdi::Bdi;
use slc_compress::bpc::Bpc;
use slc_compress::cpack::Cpack;
use slc_compress::e2mc::{E2mc, E2mcConfig};
use slc_compress::fpc::Fpc;
use slc_compress::rans::Rans;
use slc_compress::{Block, BlockCompressor, Mag, BLOCK_BYTES};
use slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant};
use slc_sim::dram::Channel;
use slc_sim::{FaultConfig, FaultMap, FaultPattern, GpuConfig, GpuMemory, SchedPolicy};
use slc_workloads::analysis::SnapshotAnalysis;
use slc_workloads::scheme::{BurstsAccumulator, Scheme};

/// Deterministic per-block PRNG (SplitMix64) for the noise archetype.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn block_from_u32s(f: impl Fn(usize) -> u32) -> Block {
    let mut b = [0u8; BLOCK_BYTES];
    for (i, c) in b.chunks_exact_mut(4).enumerate() {
        c.copy_from_slice(&f(i).to_le_bytes());
    }
    b
}

fn sample_blocks() -> Vec<Block> {
    (0..64u64)
        .map(|k| match k % 8 {
            // All zero: best case everywhere.
            0 => [0u8; BLOCK_BYTES],
            // One repeated 8-byte value.
            1 => block_from_u32s(|i| if i % 2 == 0 { 0xCAFE_F00D } else { 0x1234_5678 }),
            // Dense u32 ramp: BDI base+delta material.
            2 => block_from_u32s(|i| 0x4000_0000 + (k as u32) * 977 + 3 * i as u32),
            // Small integers: FPC sign-extension patterns.
            3 => block_from_u32s(|i| ((i as u32 * 7 + k as u32) % 256).wrapping_sub(128)),
            // Smooth float field: E2MC/SLC traffic.
            4 => block_from_u32s(|i| {
                (100.0f32
                    + (k * 32 + i as u64) as f32 * 0.25
                    + if i % 7 == 0 { 0.001337 * k as f32 } else { 0.0 })
                .to_bits()
            }),
            // Clustered words sharing upper bytes: C-PACK dictionary hits.
            5 => block_from_u32s(|i| {
                let cluster = [0x8000_1200u32, 0x8000_3400, 0x9000_5600][i % 3];
                cluster | (mix(k * 64 + i as u64) & 0xff) as u32
            }),
            // Linear ramp with constant stride: BPC's DBX collapses.
            6 => block_from_u32s(|i| 1_000_000 + 17 * (k as u32 * 32 + i as u32)),
            // Incompressible noise: worst case / verbatim fallback.
            _ => {
                let mut b = [0u8; BLOCK_BYTES];
                for (i, byte) in b.iter_mut().enumerate() {
                    *byte = (mix(k * 128 + i as u64) >> 33) as u8;
                }
                b
            }
        })
        .collect()
}

fn trained_e2mc(blocks: &[Block]) -> E2mc {
    let training: Vec<u8> = blocks.iter().flat_map(|b| b.to_vec()).collect();
    E2mc::train_on_bytes(&training, &E2mcConfig::default())
}

fn bench_codecs(c: &mut Criterion) {
    let blocks = sample_blocks();
    let e2mc = trained_e2mc(&blocks);
    let bdi = Bdi::new();
    let fpc = Fpc::new();
    let cpack = Cpack::new();
    let bpc = Bpc::new();
    let rans = Rans::new();
    let codecs: [(&str, &dyn BlockCompressor); 6] = [
        ("bdi", &bdi),
        ("fpc", &fpc),
        ("cpack", &cpack),
        ("bpc", &bpc),
        ("e2mc", &e2mc),
        ("rans", &rans),
    ];
    let mut g = c.benchmark_group("compress_block");
    for (name, codec) in codecs {
        g.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % blocks.len();
                codec.compress(&blocks[i])
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("decompress_block");
    for (name, codec) in codecs {
        let compressed: Vec<_> = blocks.iter().map(|b| codec.compress(b)).collect();
        g.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % compressed.len();
                codec.decompress(&compressed[i])
            })
        });
    }
    g.finish();
}

fn bench_slc_paths(c: &mut Criterion) {
    let blocks = sample_blocks();
    let e2mc = trained_e2mc(&blocks);
    // Clone cost of a trained codec: an Arc refcount bump on the shared
    // symbol table, not a copy of the ~832 KB of precomputed tables. The
    // row keeps the O(1) clone contract visible in the baseline.
    let mut g = c.benchmark_group("setup");
    g.bench_function("e2mc_clone_shared", |b| b.iter(|| e2mc.clone()));
    g.finish();
    let slc = SlcCompressor::new(e2mc, SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
    let mut g = c.benchmark_group("slc");
    g.bench_function("stored_bits_fast_path", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % blocks.len();
            slc.stored_bits(&blocks[i])
        })
    });
    g.bench_function("compress_full", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % blocks.len();
            slc.compress(&blocks[i])
        })
    });
    g.bench_function("roundtrip", |b| {
        let mut i = 0;
        b.iter_batched(
            || {
                i = (i + 1) % blocks.len();
                blocks[i]
            },
            |block| slc.roundtrip(&block),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The shared-analysis win in the evaluation path: building burst maps
/// for N schemes (3 TSLC variants × 2 thresholds + the E2MC baseline)
/// over one memory snapshot.
///
/// `eval/bursts_map` analyses the snapshot **once** and sweeps all N
/// decisions over the shared [`SnapshotAnalysis`];
/// `eval/bursts_map_direct` is the pre-refactor shape — every scheme
/// re-derives every block's E2MC code lengths — so the ratio of the two
/// rows is the (schemes × thresholds) → 1 reduction in encode work.
fn bench_eval_paths(c: &mut Criterion) {
    let blocks = sample_blocks();
    let e2mc = trained_e2mc(&blocks);
    let mut mem = GpuMemory::new();
    let approx = mem.malloc("approx", 32 * BLOCK_BYTES, true, 16);
    let exact = mem.malloc("exact", 32 * BLOCK_BYTES, false, 0);
    for (i, block) in blocks.iter().take(32).enumerate() {
        let vals: Vec<f32> =
            block.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        mem.write_f32(slc_sim::DevicePtr(approx.0 + (i * BLOCK_BYTES) as u64), &vals);
        mem.write_f32(slc_sim::DevicePtr(exact.0 + (i * BLOCK_BYTES) as u64), &vals);
    }
    let mut schemes = vec![Scheme::E2mc(e2mc.clone())];
    for threshold in [8, 16] {
        for variant in [SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt] {
            schemes.push(Scheme::slc(e2mc.clone(), Mag::GDDR5, threshold, variant));
        }
    }
    let mut g = c.benchmark_group("eval");
    g.bench_function("bursts_map", |b| {
        b.iter(|| {
            let snap = SnapshotAnalysis::capture(&e2mc, &mem);
            schemes
                .iter()
                .map(|s| {
                    let mut acc = BurstsAccumulator::new(Mag::GDDR5);
                    acc.record(s, &snap);
                    acc.into_map().len()
                })
                .sum::<usize>()
        })
    });
    g.bench_function("bursts_map_direct", |b| {
        b.iter(|| {
            schemes
                .iter()
                .map(|s| {
                    let mut acc = BurstsAccumulator::new(Mag::GDDR5);
                    acc.snapshot(s, &mem);
                    acc.into_map().len()
                })
                .sum::<usize>()
        })
    });
    g.finish();
}

/// The timing simulator's channel hot loop: one FR-FCFS channel
/// servicing a mixed request pattern — streaming row hits, periodic far
/// rows (bank conflicts), ~1/4 buffered writes — then draining. This is
/// the code every L2 miss of every timing pass runs through;
/// `sim/channel_frfcfs` guards the scheduler's arbitration cost.
fn bench_sim_paths(c: &mut Criterion) {
    let cfg = GpuConfig::default().with_sched_policy(SchedPolicy::FrFcfs);
    let ops: Vec<(u64, u32, f64, bool)> = (0..64u64)
        .map(|i| {
            let block = if i % 8 == 7 { 2048 + i } else { i * 2 };
            let bursts = 1 + (i % 4) as u32;
            (block, bursts, i as f64 * 4.0, i % 4 == 3)
        })
        .collect();
    let mut g = c.benchmark_group("sim");
    g.bench_function("channel_frfcfs", |b| {
        let proto = Channel::new(&cfg);
        b.iter_batched(
            || proto.clone(),
            |mut ch| {
                for &(block, bursts, at, write) in &ops {
                    if write {
                        ch.write(block, bursts, at);
                    } else {
                        ch.read(block, bursts, at);
                    }
                }
                ch.drain_writes(256.0);
                ch.free_at()
            },
            BatchSize::SmallInput,
        )
    });
    // The degradation ladder's per-block hot query: every block of every
    // snapshot asks the fault map "are you faulty, and what budget do I
    // get?". `sim/fault_sweep` guards the hash-chain lookup cost that
    // multiplies into every fault-injected functional run.
    let fault_cfg =
        GpuConfig::default().with_faults(FaultConfig::new(FaultPattern::RandomRows, 0.1, 7));
    let map = FaultMap::from_config(&fault_cfg).expect("fault config is set");
    g.bench_function("fault_sweep", |b| {
        b.iter(|| {
            let mut faulty = 0u64;
            let mut budget = 0u64;
            for addr in 0..4096u64 {
                if let Some(bits) = map.block_budget_bits(addr) {
                    faulty += 1;
                    budget += u64::from(bits);
                }
            }
            (faulty, budget)
        })
    });
    g.finish();
}

/// Guards the lint front end itself: `slc-lint` runs on every CI push,
/// so a quadratic blowup in the lexer or the shallow scanner would tax
/// each build. The corpus is synthetic but shaped like the workspace's
/// own sources — nested blocks, string literals, comments, call
/// chains — so the scanner's hot paths (lexing, fn extraction, call-site
/// resolution) all get exercised.
fn bench_lint_paths(c: &mut Criterion) {
    let files: Vec<(String, String)> = (0..24)
        .map(|i| {
            let path = format!("crates/synth/src/m{i}.rs");
            let mut src = String::from("//! Synthetic module for the lint scan bench.\n\n");
            for f in 0..12 {
                src.push_str(&format!(
                    "/// Mixes arithmetic, indexing and a call so the scanner\n\
                     /// sees realistic token variety. Variant {i}.{f}.\n\
                     pub fn f{f}(x: usize, buf: &[u8]) -> usize {{\n    \
                         let mut acc = x; // running total: \"{i}.{f}\"\n    \
                         for i in 0..buf.len() {{\n        \
                             if buf[i] > 7 {{\n            \
                                 acc = acc.wrapping_add(usize::from(buf[i]));\n        \
                             }}\n    \
                         }}\n    \
                         helper(acc)\n\
                     }}\n\n"
                ));
            }
            src.push_str("fn helper(n: usize) -> usize {\n    n.min(4096)\n}\n");
            (path, src)
        })
        .collect();
    let mounted: Vec<(&str, &str, &str)> =
        files.iter().map(|(p, s)| (p.as_str(), "synth", s.as_str())).collect();
    let mut g = c.benchmark_group("lint");
    g.bench_function("workspace_scan", |b| b.iter(|| slc_lint::Workspace::from_sources(&mounted)));
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_codecs(&mut c);
    bench_slc_paths(&mut c);
    bench_eval_paths(&mut c);
    bench_sim_paths(&mut c);
    bench_lint_paths(&mut c);
    slc_bench::bench_engine_e2e(&mut c);
    slc_bench::write_baseline(&c, "codec_throughput", "BENCH_CODEC_JSON", "BENCH_codec.json");
}

//! Microbenchmarks: per-block compress/decompress throughput of every
//! codec, plus SLC's size-only fast path (the hardware's tree adder).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use slc_compress::bdi::Bdi;
use slc_compress::bpc::Bpc;
use slc_compress::cpack::Cpack;
use slc_compress::e2mc::{E2mc, E2mcConfig};
use slc_compress::fpc::Fpc;
use slc_compress::{Block, BlockCompressor, Mag, BLOCK_BYTES};
use slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant};

fn sample_blocks() -> Vec<Block> {
    // Mixed-compressibility float blocks, like workload traffic.
    (0..64u32)
        .map(|k| {
            let mut b = [0u8; BLOCK_BYTES];
            for (i, c) in b.chunks_exact_mut(4).enumerate() {
                let v = 100.0 + (k * 32 + i as u32) as f32 * 0.25
                    + if i % 7 == 0 { 0.001337 * k as f32 } else { 0.0 };
                c.copy_from_slice(&v.to_le_bytes());
            }
            b
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let blocks = sample_blocks();
    let training: Vec<u8> = blocks.iter().flat_map(|b| b.to_vec()).collect();
    let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
    let bdi = Bdi::new();
    let fpc = Fpc::new();
    let cpack = Cpack::new();
    let bpc = Bpc::new();
    let codecs: [(&str, &dyn BlockCompressor); 5] =
        [("bdi", &bdi), ("fpc", &fpc), ("cpack", &cpack), ("bpc", &bpc), ("e2mc", &e2mc)];
    let mut g = c.benchmark_group("compress_block");
    for (name, codec) in codecs {
        g.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % blocks.len();
                codec.compress(&blocks[i])
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("decompress_block");
    let bdi2 = Bdi::new();
    let fpc2 = Fpc::new();
    let cpack2 = Cpack::new();
    let bpc2 = Bpc::new();
    let codecs: [(&str, &dyn BlockCompressor); 5] =
        [("bdi", &bdi2), ("fpc", &fpc2), ("cpack", &cpack2), ("bpc", &bpc2), ("e2mc", &e2mc)];
    for (name, codec) in codecs {
        let compressed: Vec<_> = blocks.iter().map(|b| codec.compress(b)).collect();
        g.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % compressed.len();
                codec.decompress(&compressed[i])
            })
        });
    }
    g.finish();
}

fn bench_slc_paths(c: &mut Criterion) {
    let blocks = sample_blocks();
    let training: Vec<u8> = blocks.iter().flat_map(|b| b.to_vec()).collect();
    let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
    let slc = SlcCompressor::new(e2mc, SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
    let mut g = c.benchmark_group("slc");
    g.bench_function("stored_bits_fast_path", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % blocks.len();
            slc.stored_bits(&blocks[i])
        })
    });
    g.bench_function("compress_full", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % blocks.len();
            slc.compress(&blocks[i])
        })
    });
    g.bench_function("roundtrip", |b| {
        let mut i = 0;
        b.iter_batched(
            || {
                i = (i + 1) % blocks.len();
                blocks[i]
            },
            |block| slc.roundtrip(&block),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_codecs, bench_slc_paths);
criterion_main!(benches);

//! Regenerates Table I (hardware cost model) and times the gate model.

use criterion::{criterion_group, criterion_main, Criterion};
use slc_power::TslcHardwareModel;

fn table1(c: &mut Criterion) {
    println!("{}", slc_exp::tables::table1());
    c.bench_function("table1/gate_model", |b| {
        b.iter(|| {
            let m = TslcHardwareModel::new();
            (m.compressor_cost(), m.decompressor_cost(), m.pct_of_e2mc_area())
        })
    });
}

criterion_group!(benches, table1);
criterion_main!(benches);

//! Regenerates Fig. 9 + §V-C (MAG sensitivity).

use criterion::{criterion_group, criterion_main, Criterion};
use slc_workloads::Scale;

fn fig9(c: &mut Criterion) {
    let fig = slc_exp::fig9::compute(Scale::Tiny);
    println!("{}", fig.render());
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("compute_tiny", |b| b.iter(|| slc_exp::fig9::compute(Scale::Tiny)));
    g.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);

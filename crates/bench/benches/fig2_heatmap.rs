//! Regenerates Fig. 2 (distribution of compressed blocks above MAG).

use criterion::{criterion_group, criterion_main, Criterion};
use slc_compress::Mag;
use slc_workloads::Scale;

fn fig2(c: &mut Criterion) {
    let fig = slc_exp::fig2::compute(Scale::Tiny, Mag::GDDR5);
    println!("{}", fig.render());
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("compute_tiny", |b| {
        b.iter(|| slc_exp::fig2::compute(Scale::Tiny, Mag::GDDR5))
    });
    g.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);

//! Benchmark-only crate.
//!
//! Hosts the Criterion benches that regenerate every table and figure of
//! the paper (see `benches/`). The library itself only re-exports the
//! pieces the benches share.

pub use slc_exp as exp;

//! Benchmark-only crate.
//!
//! Hosts the Criterion benches that regenerate every table and figure of
//! the paper (see `benches/`). The library re-exports the pieces the
//! benches share: the batch-engine end-to-end rows (measured by both
//! `codec_throughput` and `eval_pipeline`) and the JSON baseline writer
//! every custom bench `main` funnels through.

#![forbid(unsafe_code)]

use criterion::Criterion;
use slc_compress::bdi::Bdi;
use slc_compress::e2mc::{E2mc, E2mcConfig};
use slc_compress::rans::Rans;
use slc_engine::{Engine, Threads};
use std::sync::Arc;

pub use slc_exp as exp;

/// Byte size of the end-to-end engine corpus: large enough that one
/// iteration amortises thread-pool hand-off and the ns/iter ↔ GB/s
/// conversion is stable, small enough for CI's measurement window.
pub const ENGINE_CORPUS_BYTES: usize = 4 << 20;

/// Mixed-compressibility corpus for the engine rows: three blocks of
/// smooth f32 ramp (codec material) to every block of raw noise, so the
/// engine exercises both coded and raw chunk storage like real snapshot
/// traffic would.
pub fn engine_corpus(len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 8);
    let mut i = 0u32;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    while out.len() < len {
        if (out.len() / 128) % 4 == 3 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            out.extend_from_slice(&state.to_le_bytes());
        } else {
            out.extend_from_slice(&(((i * 3) % 257) as f32).to_le_bytes());
            i += 1;
        }
    }
    out.truncate(len);
    out
}

/// End-to-end batch-engine throughput: compress/decompress a 4 MiB
/// stream into/from the framed container, parallel (`Threads::Auto`) and
/// serial, on the BDI substrate (the fastest codec, so the rows guard
/// the engine's own sharding/framing overhead rather than codec inner
/// loops — those have their own `compress_block`/`decompress_block`
/// rows). A fixed corpus size makes ns/iter read directly as GB/s
/// (bytes ÷ ns), printed alongside the rows.
pub fn bench_engine_e2e(c: &mut Criterion) {
    let data = engine_corpus(ENGINE_CORPUS_BYTES);
    let engine = Engine::new(Arc::new(Bdi::new()));
    let container = engine.compress(&data);
    assert_eq!(
        engine.decompress(&container).expect("bench container roundtrips"),
        data,
        "engine must roundtrip before being timed"
    );
    let mut g = c.benchmark_group("engine");
    g.bench_function("compress_e2e", |b| {
        b.iter(|| engine.compress_threads(&data, Threads::Auto).len())
    });
    g.bench_function("compress_e2e_serial", |b| {
        b.iter(|| engine.compress_threads(&data, Threads::Serial).len())
    });
    g.bench_function("decompress_e2e", |b| {
        b.iter(|| engine.decompress_threads(&container, Threads::Auto).expect("valid").len())
    });
    g.bench_function("decompress_e2e_serial", |b| {
        b.iter(|| engine.decompress_threads(&container, Threads::Serial).expect("valid").len())
    });

    // The rANS substrate on the same corpus: whole-chunk entropy coding
    // (one frequency table per 64 KiB chunk) instead of per-block
    // base+delta. Same container format, different CodecId.
    let rans_engine = Engine::new(Arc::new(Rans::new()));
    let rans_container = rans_engine.compress(&data);
    assert_eq!(
        rans_engine.decompress(&rans_container).expect("rANS container roundtrips"),
        data,
        "rANS engine must roundtrip before being timed"
    );
    g.bench_function("rans_compress_e2e", |b| {
        b.iter(|| rans_engine.compress_threads(&data, Threads::Auto).len())
    });
    g.bench_function("rans_decompress_e2e", |b| {
        b.iter(|| {
            rans_engine.decompress_threads(&rans_container, Threads::Auto).expect("valid").len()
        })
    });
    g.finish();

    // Competitive-ratio check on the mixed corpus: the order-0 byte rANS
    // substrate against the paper's E2MC baseline (and the BDI container
    // being timed above), printed next to the throughput rows so ratio
    // regressions show up in the same log.
    let e2mc_engine = Engine::new(Arc::new(E2mc::train_on_bytes(&data, &E2mcConfig::default())));
    let e2mc_container = e2mc_engine.compress(&data);
    for (name, clen) in
        [("bdi", container.len()), ("rans", rans_container.len()), ("e2mc", e2mc_container.len())]
    {
        println!(
            "engine corpus ratio {:<24} {:>10.3}x ({} -> {} bytes)",
            name,
            data.len() as f64 / clen as f64,
            data.len(),
            clen
        );
    }
    for r in c.results() {
        if r.id.starts_with("engine/") {
            // 1 byte/ns == 1 GB/s, so GB/s is simply bytes ÷ ns.
            let gbps = ENGINE_CORPUS_BYTES as f64 / r.ns_per_iter;
            println!("{:<44} {:>10.2} GB/s end-to-end", r.id, gbps);
        }
    }
}

/// Serialises `c`'s results as a regression-gate baseline
/// (`tools/check_bench_regression.py` format). The output path is
/// `env_var` when set, else `<repo root>/<default_file>`.
///
/// `engine/` rows carry an extra derived `gb_per_s` field (corpus bytes ÷
/// ns/iter) so the committed baseline documents absolute end-to-end
/// throughput, not just iteration time. The regression gate reads only
/// `id` and `ns_per_iter` and ignores derived fields by construction.
pub fn write_baseline(c: &Criterion, bench: &str, env_var: &str, default_file: &str) {
    let path = std::env::var(env_var)
        .unwrap_or_else(|_| format!("{}/../../{default_file}", env!("CARGO_MANIFEST_DIR")));
    let mut json =
        format!("{{\n  \"bench\": \"{bench}\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n");
    for (i, r) in c.results().iter().enumerate() {
        let sep = if i + 1 == c.results().len() { "" } else { "," };
        let gbps = if r.id.starts_with("engine/") {
            format!(", \"gb_per_s\": {:.3}", ENGINE_CORPUS_BYTES as f64 / r.ns_per_iter)
        } else {
            String::new()
        };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}{}}}{}\n",
            r.id, r.ns_per_iter, r.iterations, gbps, sep
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_exact_length_and_mixed() {
        let corpus = engine_corpus(100_000);
        assert_eq!(corpus.len(), 100_000);
        // Both compressible and noisy stripes must be present: the BDI
        // container should be smaller than raw but nowhere near the
        // all-ramp best case.
        let engine = Engine::new(Arc::new(Bdi::new()));
        let container = engine.compress(&corpus);
        assert!(container.len() < corpus.len(), "corpus must compress overall");
        assert!(container.len() > corpus.len() / 8, "corpus must not be trivially uniform");
        assert_eq!(engine.decompress(&container).unwrap(), corpus);
    }
}

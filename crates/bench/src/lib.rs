//! Benchmark-only crate.
//!
//! Hosts the Criterion benches that regenerate every table and figure of
//! the paper (see `benches/`). The library re-exports the pieces the
//! benches share: the batch-engine end-to-end rows (measured by both
//! `codec_throughput` and `eval_pipeline`) and the JSON baseline writer
//! every custom bench `main` funnels through.

use criterion::Criterion;
use slc_compress::bdi::Bdi;
use slc_engine::{Engine, Threads};
use std::sync::Arc;

pub use slc_exp as exp;

/// Byte size of the end-to-end engine corpus: large enough that one
/// iteration amortises thread-pool hand-off and the ns/iter ↔ GB/s
/// conversion is stable, small enough for CI's measurement window.
pub const ENGINE_CORPUS_BYTES: usize = 4 << 20;

/// Mixed-compressibility corpus for the engine rows: three blocks of
/// smooth f32 ramp (codec material) to every block of raw noise, so the
/// engine exercises both coded and raw chunk storage like real snapshot
/// traffic would.
pub fn engine_corpus(len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 8);
    let mut i = 0u32;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    while out.len() < len {
        if (out.len() / 128) % 4 == 3 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            out.extend_from_slice(&state.to_le_bytes());
        } else {
            out.extend_from_slice(&(((i * 3) % 257) as f32).to_le_bytes());
            i += 1;
        }
    }
    out.truncate(len);
    out
}

/// End-to-end batch-engine throughput: compress/decompress a 4 MiB
/// stream into/from the framed container, parallel (`Threads::Auto`) and
/// serial, on the BDI substrate (the fastest codec, so the rows guard
/// the engine's own sharding/framing overhead rather than codec inner
/// loops — those have their own `compress_block`/`decompress_block`
/// rows). A fixed corpus size makes ns/iter read directly as GB/s
/// (bytes ÷ ns), printed alongside the rows.
pub fn bench_engine_e2e(c: &mut Criterion) {
    let data = engine_corpus(ENGINE_CORPUS_BYTES);
    let engine = Engine::new(Arc::new(Bdi::new()));
    let container = engine.compress(&data);
    assert_eq!(
        engine.decompress(&container).expect("bench container roundtrips"),
        data,
        "engine must roundtrip before being timed"
    );
    let mut g = c.benchmark_group("engine");
    g.bench_function("compress_e2e", |b| {
        b.iter(|| engine.compress_threads(&data, Threads::Auto).len())
    });
    g.bench_function("compress_e2e_serial", |b| {
        b.iter(|| engine.compress_threads(&data, Threads::Serial).len())
    });
    g.bench_function("decompress_e2e", |b| {
        b.iter(|| engine.decompress_threads(&container, Threads::Auto).expect("valid").len())
    });
    g.bench_function("decompress_e2e_serial", |b| {
        b.iter(|| engine.decompress_threads(&container, Threads::Serial).expect("valid").len())
    });
    g.finish();
    for r in c.results() {
        if r.id.starts_with("engine/") {
            // 1 byte/ns == 1 GB/s, so GB/s is simply bytes ÷ ns.
            let gbps = ENGINE_CORPUS_BYTES as f64 / r.ns_per_iter;
            println!("{:<44} {:>10.2} GB/s end-to-end", r.id, gbps);
        }
    }
}

/// Serialises `c`'s results as a regression-gate baseline
/// (`tools/check_bench_regression.py` format). The output path is
/// `env_var` when set, else `<repo root>/<default_file>`.
pub fn write_baseline(c: &Criterion, bench: &str, env_var: &str, default_file: &str) {
    let path = std::env::var(env_var)
        .unwrap_or_else(|_| format!("{}/../../{default_file}", env!("CARGO_MANIFEST_DIR")));
    let mut json =
        format!("{{\n  \"bench\": \"{bench}\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n");
    for (i, r) in c.results().iter().enumerate() {
        let sep = if i + 1 == c.results().len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}}}{}\n",
            r.id, r.ns_per_iter, r.iterations, sep
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_exact_length_and_mixed() {
        let corpus = engine_corpus(100_000);
        assert_eq!(corpus.len(), 100_000);
        // Both compressible and noisy stripes must be present: the BDI
        // container should be smaller than raw but nowhere near the
        // all-ramp best case.
        let engine = Engine::new(Arc::new(Bdi::new()));
        let container = engine.compress(&corpus);
        assert!(container.len() < corpus.len(), "corpus must compress overall");
        assert!(container.len() > corpus.len() / 8, "corpus must not be trivially uniform");
        assert_eq!(engine.decompress(&container).unwrap(), corpus);
    }
}

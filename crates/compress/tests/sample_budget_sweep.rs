//! Sweep of `E2mcConfig::sample_blocks` (the online-sampling budget)
//! against the paper's sampling-phase claim.
//!
//! E2MC trains its code table during a short online sampling phase and
//! then freezes it (Lal et al., §IV-A: a 20 M-instruction window, a tiny
//! fraction of a run, suffices). The software analogue: a table trained
//! on a bounded prefix of the traffic must compress almost as well as a
//! table trained on everything. These tests sweep realistic budgets —
//! not just the tiny `Some(2)` smoke case in the unit tests — over a
//! smooth-float workload resembling the paper's benchmark traffic, and
//! pin the allowed compression-ratio degradation at each budget.

use slc_compress::e2mc::{E2mc, E2mcConfig};
use slc_compress::{Block, BlockCompressor, BLOCK_BYTES};

/// Deterministic smooth f32 traffic whose blocks each sample across the
/// whole 1024-value distribution (a multiplicative stride walks the value
/// space), so any modest prefix is representative — the stationarity the
/// paper's online sampling phase assumes of real kernel traffic. No two
/// blocks are identical.
fn float_traffic(blocks: usize) -> Vec<Block> {
    (0..blocks)
        .map(|k| {
            let mut b = [0u8; BLOCK_BYTES];
            for i in 0..BLOCK_BYTES / 4 {
                let step = (k * 997 + i * 61) % 1024;
                let v = 1000.0f32 + step as f32 * 0.25;
                b[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
            }
            b
        })
        .collect()
}

/// Mean lossless compressed size (bits/block) of `codec` over `blocks`.
fn mean_size_bits(codec: &E2mc, blocks: &[Block]) -> f64 {
    let total: u64 = blocks.iter().map(|b| u64::from(codec.size_bits(b))).sum();
    total as f64 / blocks.len() as f64
}

/// Trains at `budget` over the traffic and returns the mean compressed
/// size on the evaluation slice (the traffic tail: inside the unbounded
/// codec's training set but beyond every bounded sampling window, which
/// is exactly what the frozen-table claim is about — traffic the bounded
/// table never saw).
fn swept_size(traffic: &[Block], eval: &[Block], budget: Option<u64>) -> f64 {
    let config = E2mcConfig { sample_blocks: budget, ..E2mcConfig::default() };
    let codec = E2mc::train_on_blocks(traffic.iter(), &config);
    mean_size_bits(&codec, eval)
}

#[test]
fn bounded_sampling_budgets_stay_near_unbounded_ratio() {
    let traffic = float_traffic(2048);
    let eval = traffic[traffic.len() - 256..].to_vec();
    let unbounded = swept_size(&traffic, &eval, None);
    // Every budget's mean compressed size, relative to unbounded training.
    // The paper's claim is that a small sampling window loses almost
    // nothing; the bounds encode "within 10% beyond 64 blocks, within 2%
    // beyond 256" with margin for distribution drift.
    for (budget, allowed) in [(64u64, 1.10), (256, 1.02), (1024, 1.02)] {
        let limited = swept_size(&traffic, &eval, Some(budget));
        let ratio = limited / unbounded;
        assert!(
            ratio <= allowed,
            "budget {budget}: mean {limited:.1} bits vs unbounded {unbounded:.1} \
             ({ratio:.3}x > allowed {allowed}x)"
        );
        // Sanity: a bounded table must still compress (not degenerate to
        // escapes-everywhere / verbatim storage).
        assert!(
            limited < f64::from(slc_compress::BLOCK_BITS) / 2.0,
            "budget {budget} barely compresses"
        );
    }
}

#[test]
fn sampling_budget_degrades_monotonically_in_the_large() {
    // Larger budgets never make compression meaningfully worse: each
    // 4x budget step must stay within 1% of the next larger one.
    let traffic = float_traffic(2048);
    let eval = traffic[traffic.len() - 256..].to_vec();
    let sizes: Vec<f64> =
        [16u64, 64, 256, 1024].iter().map(|&b| swept_size(&traffic, &eval, Some(b))).collect();
    for pair in sizes.windows(2) {
        assert!(
            pair[1] <= pair[0] * 1.01,
            "larger budget compresses worse: {:.1} -> {:.1} bits",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn tiny_budgets_still_roundtrip_everything() {
    // Losslessness is budget-independent: even a starved table (heavy
    // escape traffic) must reconstruct exactly.
    let traffic = float_traffic(64);
    for budget in [1u64, 4, 16] {
        let config = E2mcConfig { sample_blocks: Some(budget), ..E2mcConfig::default() };
        let codec = E2mc::train_on_blocks(traffic.iter(), &config);
        for b in &traffic {
            assert_eq!(codec.decompress(&codec.compress(b)), *b, "budget {budget}");
        }
    }
}

//! Pins the borrowed block decode (`decompress_into`) byte-identical to
//! the owned path (`decompress`) for **every** codec, across random
//! blocks and the codecs' own verbatim fallbacks.
//!
//! The output buffer is pre-filled with a dirty pattern on purpose:
//! `decompress_into` writes into caller-owned storage, so any arm that
//! relies on a zeroed canvas without establishing one (the historic
//! hazard is BDI's zero-run and masked-delta encodings) shows up as a
//! mismatch here, not as silent corruption in an arena reuser.

use proptest::prelude::*;
use slc_compress::bdi::Bdi;
use slc_compress::bpc::Bpc;
use slc_compress::cpack::Cpack;
use slc_compress::e2mc::{E2mc, E2mcConfig};
use slc_compress::fpc::Fpc;
use slc_compress::hycomp::HyComp;
use slc_compress::rans::Rans;
use slc_compress::sc2::Sc2;
use slc_compress::{BlockCodec, BLOCK_BYTES};
use std::sync::{Arc, OnceLock};

fn codecs() -> &'static [Arc<dyn BlockCodec>] {
    static CODECS: OnceLock<Vec<Arc<dyn BlockCodec>>> = OnceLock::new();
    CODECS.get_or_init(|| {
        let bytes: Vec<u8> =
            (0..1u32 << 14).flat_map(|i| ((i % 257) as f32).to_le_bytes()).collect();
        vec![
            Arc::new(Bdi::new()),
            Arc::new(Fpc::new()),
            Arc::new(Cpack::new()),
            Arc::new(Bpc::new()),
            Arc::new(E2mc::train_on_bytes(&bytes, &E2mcConfig::default())),
            Arc::new(Sc2::train_on_bytes(&bytes, slc_compress::sc2::DEFAULT_TOP_K)),
            Arc::new(HyComp::train_on_bytes(&bytes)),
            Arc::new(Rans::new()),
        ]
    })
}

fn check_block(block: &[u8; BLOCK_BYTES]) {
    for codec in codecs() {
        let c = codec.compress(block);
        let owned = codec.decompress(&c);
        assert_eq!(&owned, block, "{}: owned roundtrip", codec.name());
        let mut borrowed = [0xa5u8; BLOCK_BYTES];
        codec.decompress_into(c.size_bits(), c.is_compressed(), c.payload(), &mut borrowed);
        assert_eq!(borrowed, owned, "{}: borrowed decode must equal owned", codec.name());
    }
}

#[test]
fn canonical_shapes_decode_identically() {
    // Zeros (BDI zero-run), a constant (repeated-value arms), a narrow
    // ramp (delta arms), and f32 ramps (FPC/E2MC material).
    check_block(&[0u8; BLOCK_BYTES]);
    check_block(&[0x42u8; BLOCK_BYTES]);
    let mut ramp = [0u8; BLOCK_BYTES];
    for (i, b) in ramp.iter_mut().enumerate() {
        *b = (i / 8) as u8;
    }
    check_block(&ramp);
    let mut floats = [0u8; BLOCK_BYTES];
    for i in 0..BLOCK_BYTES / 4 {
        floats[i * 4..i * 4 + 4].copy_from_slice(&(i as f32 * 0.25).to_le_bytes());
    }
    check_block(&floats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_borrowed_equals_owned(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
        check_block(&data.try_into().expect("exactly one block"));
    }

    #[test]
    fn prop_compressible_blocks_too(base in any::<u32>(), step in 0u32..16) {
        // Random noise mostly hits the verbatim fallback; also exercise
        // blocks every codec genuinely codes.
        let mut block = [0u8; BLOCK_BYTES];
        for i in 0..BLOCK_BYTES / 4 {
            let w = base.wrapping_add(i as u32 * step);
            block[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        check_block(&block);
    }
}

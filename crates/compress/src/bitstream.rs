//! Bit-granular stream writer/reader used by every codec in this crate.
//!
//! Bits are packed MSB-first within each byte, which mirrors how a hardware
//! shifter would serialise variable-length codewords onto a bus and keeps
//! the packed streams byte-comparable across codecs.

/// Append-only bit writer.
///
/// ```
/// use slc_compress::bitstream::{BitWriter, BitReader};
///
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(0xABCD, 16);
/// let (bytes, len) = w.finish();
/// assert_eq!(len, 19);
/// let mut r = BitReader::new(&bytes, len);
/// assert_eq!(r.read(3), 0b101);
/// assert_eq!(r.read(16), 0xABCD);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits already written.
    len_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> u32 {
        self.len_bits
    }

    /// Appends the `width` low-order bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits set above `width`.
    pub fn write(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} exceeds 64");
        if width < 64 {
            assert!(value < (1u64 << width), "value {value:#x} does not fit in {width} bits");
        }
        // Write bit-by-bit groups; hardware would use a barrel shifter, a
        // byte-sliced loop is plenty for a software model.
        let mut remaining = width;
        while remaining > 0 {
            let bit_in_byte = (self.len_bits % 8) as u8;
            if bit_in_byte == 0 {
                self.bytes.push(0);
            }
            let room = 8 - bit_in_byte as u32;
            let take = room.min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= chunk << (room - take);
            self.len_bits += take;
            remaining -= take;
        }
    }

    /// Appends the first `bits` bits of another packed stream.
    pub fn append(&mut self, bytes: &[u8], bits: u32) {
        let mut r = BitReader::new(bytes, bits);
        let mut remaining = bits;
        while remaining > 0 {
            let take = remaining.min(56);
            self.write(r.read(take), take);
            remaining -= take;
        }
    }

    /// Consumes the writer, returning the packed bytes and the bit length.
    pub fn finish(self) -> (Vec<u8>, u32) {
        (self.bytes, self.len_bits)
    }
}

/// Sequential bit reader over a packed stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    len_bits: u32,
    pos: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, of which only `len_bits` bits are valid.
    pub fn new(bytes: &'a [u8], len_bits: u32) -> Self {
        debug_assert!(bytes.len() * 8 >= len_bits as usize);
        Self { bytes, len_bits, pos: 0 }
    }

    /// Current read position in bits.
    pub fn position(&self) -> u32 {
        self.pos
    }

    /// Moves the read cursor to an absolute bit offset.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is beyond the valid stream length.
    pub fn seek(&mut self, pos: u32) {
        assert!(pos <= self.len_bits, "seek to {pos} beyond stream of {} bits", self.len_bits);
        self.pos = pos;
    }

    /// Number of unread bits.
    pub fn remaining(&self) -> u32 {
        self.len_bits - self.pos
    }

    /// Reads `width` bits MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain.
    pub fn read(&mut self, width: u32) -> u64 {
        assert!(width <= 64);
        assert!(
            self.remaining() >= width,
            "read of {width} bits with only {} remaining",
            self.remaining()
        );
        let mut out = 0u64;
        let mut remaining = width;
        while remaining > 0 {
            let byte = self.bytes[(self.pos / 8) as usize];
            let bit_in_byte = self.pos % 8;
            let avail = 8 - bit_in_byte;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.pos += take;
            remaining -= take;
        }
        out
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> bool {
        self.read(1) == 1
    }

    /// Peeks up to `width` bits without advancing, zero-padding past the end.
    ///
    /// This is the lookup-window primitive a table-driven Huffman decoder
    /// uses: near the end of the stream the window is padded with zeros.
    pub fn peek_padded(&self, width: u32) -> u64 {
        assert!(width <= 57, "peek window limited to 57 bits");
        let mut out = 0u64;
        for i in 0..width {
            let p = self.pos + i;
            let bit = if p < self.len_bits {
                (self.bytes[(p / 8) as usize] >> (7 - p % 8)) & 1
            } else {
                0
            };
            out = (out << 1) | bit as u64;
        }
        out
    }

    /// Advances the cursor by `width` bits (used together with
    /// [`peek_padded`](Self::peek_padded)).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain.
    pub fn skip(&mut self, width: u32) {
        assert!(self.remaining() >= width);
        self.pos += width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        w.write(0, 2);
        w.write(0b1011, 4);
        w.write(0xdead_beef, 32);
        w.write(0x3ff, 10);
        let (bytes, len) = w.finish();
        assert_eq!(len, 49);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(1), 1);
        assert_eq!(r.read(2), 0);
        assert_eq!(r.read(4), 0b1011);
        assert_eq!(r.read(32), 0xdead_beef);
        assert_eq!(r.read(10), 0x3ff);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn zero_width_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write(0, 0);
        w.write(0b11, 2);
        w.write(0, 0);
        let (bytes, len) = w.finish();
        assert_eq!(len, 2);
        assert_eq!(bytes, vec![0b1100_0000]);
    }

    #[test]
    fn peek_padded_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write(0b1, 1);
        let (bytes, len) = w.finish();
        let r = BitReader::new(&bytes, len);
        assert_eq!(r.peek_padded(4), 0b1000);
    }

    #[test]
    fn append_concatenates_streams() {
        let mut a = BitWriter::new();
        a.write(0b101, 3);
        let mut b = BitWriter::new();
        b.write(0x1234, 16);
        let (bb, blen) = b.finish();
        a.append(&bb, blen);
        let (bytes, len) = a.finish();
        assert_eq!(len, 19);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(16), 0x1234);
    }

    #[test]
    fn seek_rewinds() {
        let mut w = BitWriter::new();
        w.write(0xAA, 8);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(8), 0xAA);
        r.seek(4);
        assert_eq!(r.read(4), 0xA);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write(4, 2);
    }

    #[test]
    #[should_panic(expected = "remaining")]
    fn read_past_end_panics() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        let _ = r.read(2);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..64)) {
            let mut w = BitWriter::new();
            let mut expect = Vec::new();
            for &(v, width) in &fields {
                let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
                w.write(masked, width);
                expect.push((masked, width));
            }
            let total: u32 = fields.iter().map(|&(_, w)| w).sum();
            let (bytes, len) = w.finish();
            prop_assert_eq!(len, total);
            let mut r = BitReader::new(&bytes, len);
            for (v, width) in expect {
                prop_assert_eq!(r.read(width), v);
            }
        }

        #[test]
        fn prop_peek_matches_read(data in proptest::collection::vec(any::<u8>(), 1..32), win in 1u32..32) {
            let len = (data.len() * 8) as u32;
            let mut r = BitReader::new(&data, len);
            let peeked = r.peek_padded(win.min(57));
            let take = win.min(len);
            let read = r.read(take) << (win - take);
            prop_assert_eq!(peeked, read);
        }
    }
}

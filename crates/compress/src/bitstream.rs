//! Bit-granular stream writer/reader used by every codec in this crate.
//!
//! Bits are packed MSB-first within each byte, which mirrors how a hardware
//! shifter would serialise variable-length codewords onto a bus and keeps
//! the packed streams byte-comparable across codecs.
//!
//! # Performance
//!
//! Both halves work a machine word at a time instead of bit-by-bit:
//!
//! * [`BitWriter`] stages bits in a 64-bit accumulator and flushes whole
//!   bytes in one `extend_from_slice` per write — no per-bit loop, no
//!   read-modify-write of previously written bytes.
//! * [`BitReader`] services any `read`/`peek` from a single 16-byte
//!   big-endian window load, so a 64-bit field costs one shift and mask
//!   regardless of alignment.
//! * [`BitWriter::append`] byte-copies the source stream when the writer
//!   is byte-aligned and falls back to 57-bit word chunks otherwise.
//!
//! The hot-path argument checks in [`BitWriter::write`] are
//! `debug_assert!`s: release builds trust the codecs (every call site
//! masks its value to `width` bits), debug builds and the test suite keep
//! the guard rails.

/// Append-only bit writer.
///
/// ```
/// use slc_compress::bitstream::{BitWriter, BitReader};
///
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(0xABCD, 16);
/// let (bytes, len) = w.finish();
/// assert_eq!(len, 19);
/// let mut r = BitReader::new(&bytes, len);
/// assert_eq!(r.read(3), 0b101);
/// assert_eq!(r.read(16), 0xABCD);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Staging word: the low `acc_bits` bits are pending output, MSB-first
    /// (the oldest pending bit is the highest of the `acc_bits`).
    acc: u64,
    /// Number of valid bits in `acc` (always `< 8` between calls).
    acc_bits: u32,
    /// Number of valid bits already written.
    len_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for `bits` bits.
    pub fn with_capacity_bits(bits: u32) -> Self {
        Self { bytes: Vec::with_capacity(bits.div_ceil(8) as usize), ..Self::default() }
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> u32 {
        self.len_bits
    }

    /// Appends the `width` low-order bits of `value`, MSB first.
    ///
    /// # Invariants
    ///
    /// `width` must be `<= 64` and `value` must fit in `width` bits; both
    /// are checked with `debug_assert!` only, since every codec call site
    /// masks its values. Note that for `width == 64` every `u64` fits, so
    /// the value check applies only to `width < 64` (`(1u64 << 64)` would
    /// overflow — the guard must never be written as a single shift).
    /// Release builds additionally mask in [`push`](Self::push), so a
    /// contract violation corrupts at most its own field, never the
    /// already-staged bits.
    pub fn write(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64, "width {width} exceeds 64");
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        if width == 0 {
            return;
        }
        self.len_bits += width;
        if width > 57 {
            // The staging word can hold at most 7 carried bits + 57 new
            // ones; split wide fields once instead of checking per byte.
            let low = width - 32;
            self.push(value >> low, 32);
            self.push(value, low);
        } else {
            self.push(value, width);
        }
    }

    /// Stages `width <= 57` bits and flushes every complete byte.
    #[inline]
    fn push(&mut self, value: u64, width: u32) {
        // One cheap mask keeps an out-of-contract value from clobbering
        // the staged bits of earlier writes.
        let value = value & (u64::MAX >> (64 - width));
        let total = self.acc_bits + width; // <= 7 + 57 = 64
        let acc = (self.acc << width) | value;
        let keep = total % 8;
        let flush_bytes = (total / 8) as usize;
        if flush_bytes > 0 {
            // Left-align the pending bits and emit the complete bytes in
            // one copy.
            let aligned = acc << (64 - total);
            self.bytes.extend_from_slice(&aligned.to_be_bytes()[..flush_bytes]);
        }
        self.acc = if keep == 0 { 0 } else { acc & ((1u64 << keep) - 1) };
        self.acc_bits = keep;
    }

    /// Appends the first `bits` bits of another packed stream.
    pub fn append(&mut self, bytes: &[u8], bits: u32) {
        debug_assert!(bytes.len() * 8 >= bits as usize);
        if bits == 0 {
            return;
        }
        if self.acc_bits == 0 {
            // Byte-aligned: whole bytes copy verbatim, the tail is staged.
            let whole = (bits / 8) as usize;
            self.bytes.extend_from_slice(&bytes[..whole]);
            let tail = bits % 8;
            if tail > 0 {
                self.acc = (bytes[whole] >> (8 - tail)) as u64;
                self.acc_bits = tail;
            }
            self.len_bits += bits;
        } else {
            // Misaligned: copy in 56-bit chunks through the normal
            // write path.
            let mut r = BitReader::new(bytes, bits);
            let mut remaining = bits;
            while remaining > 0 {
                let take = remaining.min(56);
                self.write(r.read(take), take);
                remaining -= take;
            }
        }
    }

    /// Consumes the writer, returning the packed bytes and the bit length.
    pub fn finish(mut self) -> (Vec<u8>, u32) {
        if self.acc_bits > 0 {
            self.bytes.push((self.acc << (8 - self.acc_bits)) as u8);
        }
        (self.bytes, self.len_bits)
    }
}

/// Fixed-capacity bit writer for bounded per-block encodes.
///
/// Same MSB-first packing as [`BitWriter`] (the streams are
/// byte-identical), but staged into a stack buffer of `CAP` bytes instead
/// of a `Vec`: each flush is one unconditional 8-byte store at the cursor
/// (the staging word is always written whole and the cursor advanced by
/// the completed bytes), so the hot path carries no capacity checks or
/// heap growth, and [`finish`](Self::finish) performs the block's single
/// exact-size allocation.
///
/// `CAP` must cover the codec's worst-case encode **plus 8 bytes of
/// slack** for the whole-word flush; `write` panics (via slice indexing)
/// if a codec overruns it.
#[derive(Debug, Clone)]
pub struct FixedBitWriter<const CAP: usize> {
    buf: [u8; CAP],
    /// Completed bytes.
    cursor: usize,
    /// Staging word: low `acc_bits` bits pending, MSB-first.
    acc: u64,
    acc_bits: u32,
}

impl<const CAP: usize> Default for FixedBitWriter<CAP> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const CAP: usize> FixedBitWriter<CAP> {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: [0u8; CAP], cursor: 0, acc: 0, acc_bits: 0 }
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> u32 {
        self.cursor as u32 * 8 + self.acc_bits
    }

    /// Appends the `width` low-order bits of `value`, MSB first (same
    /// contract as [`BitWriter::write`]).
    #[inline]
    pub fn write(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64, "width {width} exceeds 64");
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        if width == 0 {
            return;
        }
        if width > 57 {
            let low = width - 32;
            self.push(value >> low, 32);
            self.push(value, low);
        } else {
            self.push(value, width);
        }
    }

    /// Stages `width <= 57` bits; completed bytes land in the buffer via
    /// one branchless 8-byte store.
    #[inline]
    fn push(&mut self, value: u64, width: u32) {
        let value = value & (u64::MAX >> (64 - width));
        let total = self.acc_bits + width; // <= 7 + 57 = 64
        let acc = (self.acc << width) | value;
        let keep = total % 8;
        let flush_bytes = (total / 8) as usize;
        // Store the whole left-aligned staging word unconditionally and
        // advance only past the complete bytes; the slack bytes are
        // rewritten by the next flush.
        let aligned = acc << (64 - total);
        self.buf[self.cursor..self.cursor + 8].copy_from_slice(&aligned.to_be_bytes());
        self.cursor += flush_bytes;
        self.acc = if keep == 0 { 0 } else { acc & ((1u64 << keep) - 1) };
        self.acc_bits = keep;
    }

    /// Finishes into the packed bytes (one exact-size allocation) and the
    /// bit length.
    pub fn finish(mut self) -> (Vec<u8>, u32) {
        let len_bits = self.len_bits();
        let mut len = self.cursor;
        if self.acc_bits > 0 {
            self.buf[len] = (self.acc << (8 - self.acc_bits)) as u8;
            len += 1;
        }
        // slc-lint: allow(hot-path): the writer's documented single exact-size output allocation
        (self.buf[..len].to_vec(), len_bits)
    }

    /// Finishes by appending the packed bytes to `out` (no allocation of
    /// its own — the append-into counterpart of [`finish`](Self::finish),
    /// byte-identical output). Returns the bit length.
    pub fn finish_into(mut self, out: &mut Vec<u8>) -> u32 {
        let len_bits = self.len_bits();
        let mut len = self.cursor;
        if self.acc_bits > 0 {
            self.buf[len] = (self.acc << (8 - self.acc_bits)) as u8;
            len += 1;
        }
        out.extend_from_slice(&self.buf[..len]);
        len_bits
    }
}

/// Sequential bit reader over a packed stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    len_bits: u32,
    pos: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, of which only `len_bits` bits are valid.
    pub fn new(bytes: &'a [u8], len_bits: u32) -> Self {
        debug_assert!(bytes.len() * 8 >= len_bits as usize);
        Self { bytes, len_bits, pos: 0 }
    }

    /// Current read position in bits.
    pub fn position(&self) -> u32 {
        self.pos
    }

    /// Moves the read cursor to an absolute bit offset.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is beyond the valid stream length.
    pub fn seek(&mut self, pos: u32) {
        // slc-lint: allow(assert): corrupt-stream guard, documented and kept in release builds
        assert!(pos <= self.len_bits, "seek to {pos} beyond stream of {} bits", self.len_bits);
        self.pos = pos;
    }

    /// Number of unread bits.
    pub fn remaining(&self) -> u32 {
        self.len_bits - self.pos
    }

    /// Loads `width <= 64` bits starting at bit `pos`; bytes past the end
    /// of the slice read as zero.
    ///
    /// Fast path: `offset + width <= 64` (always true for `width <= 57`)
    /// is one 8-byte big-endian load plus a shift; only wider misaligned
    /// reads pay for a 16-byte window.
    #[inline]
    fn window(&self, pos: u32, width: u32) -> u64 {
        let start = (pos / 8) as usize;
        let offset = pos % 8;
        let span = offset + width;
        if span <= 64 {
            let word = if start + 8 <= self.bytes.len() {
                let mut w = [0u8; 8];
                w.copy_from_slice(&self.bytes[start..start + 8]);
                u64::from_be_bytes(w)
            } else {
                let mut buf = [0u8; 8];
                let avail = self.bytes.len() - start;
                buf[..avail].copy_from_slice(&self.bytes[start..]);
                u64::from_be_bytes(buf)
            };
            let shifted = word >> (64 - span);
            if width == 64 {
                shifted
            } else {
                shifted & ((1u64 << width) - 1)
            }
        } else {
            let mut buf = [0u8; 16];
            let end = self.bytes.len().min(start + 16);
            buf[..end - start].copy_from_slice(&self.bytes[start..end]);
            let window = u128::from_be_bytes(buf);
            // offset <= 7 and width <= 64, so the shift is >= 57 and the
            // result fits in 64 bits after masking.
            let shifted = (window >> (128 - span)) as u64;
            if width == 64 {
                shifted
            } else {
                shifted & ((1u64 << width) - 1)
            }
        }
    }

    /// Reads `width` bits MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain (corrupt-stream guard, kept
    /// in release builds).
    pub fn read(&mut self, width: u32) -> u64 {
        // Width is a compile-time constant at every call site; only the
        // remaining-bits check depends on (possibly corrupt) stream data.
        debug_assert!(width <= 64);
        // slc-lint: allow(assert): corrupt-stream guard, documented and kept in release builds
        assert!(
            self.remaining() >= width,
            "read of {width} bits with only {} remaining",
            self.remaining()
        );
        if width == 0 {
            return 0;
        }
        let out = self.window(self.pos, width);
        self.pos += width;
        out
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> bool {
        self.read(1) == 1
    }

    /// Peeks up to `width` bits without advancing, zero-padding past the end.
    ///
    /// This is the lookup-window primitive a table-driven Huffman decoder
    /// uses: near the end of the stream the window is padded with zeros.
    pub fn peek_padded(&self, width: u32) -> u64 {
        // Width is a compile-time constant at every call site.
        debug_assert!(width <= 57, "peek window limited to 57 bits");
        if width == 0 {
            return 0;
        }
        // Bits past `len_bits` must read as zero even when the backing
        // slice carries data there, so load only the valid span and pad.
        let take = width.min(self.remaining());
        if take == 0 {
            return 0;
        }
        self.window(self.pos, take) << (width - take)
    }

    /// Advances the cursor by `width` bits (used together with
    /// [`peek_padded`](Self::peek_padded)).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain.
    pub fn skip(&mut self, width: u32) {
        // slc-lint: allow(assert): corrupt-stream guard, documented and kept in release builds
        assert!(self.remaining() >= width);
        self.pos += width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        w.write(0, 2);
        w.write(0b1011, 4);
        w.write(0xdead_beef, 32);
        w.write(0x3ff, 10);
        let (bytes, len) = w.finish();
        assert_eq!(len, 49);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(1), 1);
        assert_eq!(r.read(2), 0);
        assert_eq!(r.read(4), 0b1011);
        assert_eq!(r.read(32), 0xdead_beef);
        assert_eq!(r.read(10), 0x3ff);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn zero_width_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write(0, 0);
        w.write(0b11, 2);
        w.write(0, 0);
        let (bytes, len) = w.finish();
        assert_eq!(len, 2);
        assert_eq!(bytes, vec![0b1100_0000]);
    }

    #[test]
    fn full_width_64_bit_writes_roundtrip() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        w.write(u64::MAX, 64);
        w.write(0, 64);
        w.write(0x0123_4567_89ab_cdef, 64);
        let (bytes, len) = w.finish();
        assert_eq!(len, 193);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(1), 1);
        assert_eq!(r.read(64), u64::MAX);
        assert_eq!(r.read(64), 0);
        assert_eq!(r.read(64), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn peek_padded_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write(0b1, 1);
        let (bytes, len) = w.finish();
        let r = BitReader::new(&bytes, len);
        assert_eq!(r.peek_padded(4), 0b1000);
    }

    #[test]
    fn peek_padded_ignores_slack_bytes_past_len() {
        // The backing slice carries set bits beyond len_bits; the padded
        // window must still read them as zero.
        let bytes = [0xffu8, 0xff];
        let r = BitReader::new(&bytes, 3);
        assert_eq!(r.peek_padded(8), 0b1110_0000);
    }

    #[test]
    fn append_concatenates_streams() {
        let mut a = BitWriter::new();
        a.write(0b101, 3);
        let mut b = BitWriter::new();
        b.write(0x1234, 16);
        let (bb, blen) = b.finish();
        a.append(&bb, blen);
        let (bytes, len) = a.finish();
        assert_eq!(len, 19);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(16), 0x1234);
    }

    #[test]
    fn append_aligned_takes_byte_copy_path() {
        let mut a = BitWriter::new();
        a.write(0xAB, 8);
        let mut b = BitWriter::new();
        b.write(0x12345, 20);
        let (bb, blen) = b.finish();
        a.append(&bb, blen);
        let (bytes, len) = a.finish();
        assert_eq!(len, 28);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(8), 0xAB);
        assert_eq!(r.read(20), 0x12345);
    }

    #[test]
    fn seek_rewinds() {
        let mut w = BitWriter::new();
        w.write(0xAA, 8);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(8), 0xAA);
        r.seek(4);
        assert_eq!(r.read(4), 0xA);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "does not fit")]
    fn write_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write(4, 2);
    }

    #[test]
    #[should_panic(expected = "remaining")]
    fn read_past_end_panics() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        let _ = r.read(2);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..64)) {
            let mut w = BitWriter::new();
            let mut expect = Vec::new();
            for &(v, width) in &fields {
                let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
                w.write(masked, width);
                expect.push((masked, width));
            }
            let total: u32 = fields.iter().map(|&(_, w)| w).sum();
            let (bytes, len) = w.finish();
            prop_assert_eq!(len, total);
            let mut r = BitReader::new(&bytes, len);
            for (v, width) in expect {
                prop_assert_eq!(r.read(width), v);
            }
        }

        #[test]
        fn prop_peek_matches_read(data in proptest::collection::vec(any::<u8>(), 1..32), win in 1u32..32) {
            let len = (data.len() * 8) as u32;
            let mut r = BitReader::new(&data, len);
            let peeked = r.peek_padded(win.min(57));
            let take = win.min(len);
            let read = r.read(take) << (win - take);
            prop_assert_eq!(peeked, read);
        }

        #[test]
        fn prop_fixed_writer_matches_vec_writer(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..48)) {
            // The stack-backed writer must be bit- and byte-identical to
            // the Vec-backed one on any write sequence that fits its
            // capacity (48 * 64 bits = 384 bytes < 392).
            let mut reference = BitWriter::new();
            let mut fixed = FixedBitWriter::<400>::new();
            for &(v, width) in &fields {
                let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
                reference.write(masked, width);
                fixed.write(masked, width);
            }
            prop_assert_eq!(reference.len_bits(), fixed.len_bits());
            let (expect_bytes, expect_len) = reference.finish();
            let (bytes, len) = fixed.finish();
            prop_assert_eq!(len, expect_len);
            prop_assert_eq!(bytes, expect_bytes);
        }

        #[test]
        fn prop_append_matches_inline_writes(head in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..8),
                                             tail in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..8)) {
            let mask = |v: u64, w: u32| if w == 64 { v } else { v & ((1u64 << w) - 1) };
            // Reference: everything written inline.
            let mut inline = BitWriter::new();
            for &(v, w) in head.iter().chain(&tail) {
                inline.write(mask(v, w), w);
            }
            let (expect_bytes, expect_len) = inline.finish();
            // Candidate: tail serialised separately and appended.
            let mut a = BitWriter::new();
            for &(v, w) in &head {
                a.write(mask(v, w), w);
            }
            let mut b = BitWriter::new();
            for &(v, w) in &tail {
                b.write(mask(v, w), w);
            }
            let (bb, blen) = b.finish();
            a.append(&bb, blen);
            let (bytes, len) = a.finish();
            prop_assert_eq!(len, expect_len);
            prop_assert_eq!(bytes, expect_bytes);
        }
    }
}

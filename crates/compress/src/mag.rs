//! Memory access granularity (MAG) arithmetic.
//!
//! MAG is the amount of data one DRAM read or write command moves:
//! `bus width × burst length`. GDDR5/5X/6 with a 32-bit bus and burst
//! length 8 has a MAG of 32 B, so a block compressed to 36 B still costs a
//! 64 B transfer. This module owns all rounding/burst math so the rest of
//! the workspace can never get it subtly wrong.

use std::fmt;

/// A memory access granularity in bytes.
///
/// ```
/// use slc_compress::mag::Mag;
///
/// let mag = Mag::GDDR5;             // 32 B
/// assert_eq!(mag.round_up_bytes(36), 64);
/// assert_eq!(mag.bursts_for_bytes(36, 128), 2);
/// assert_eq!(mag.round_up_bits(36 * 8), 64 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mag(u32);

impl Mag {
    /// GDDR5/5X/6: 32-bit bus × burst length 8 = 32 B (the paper's default).
    pub const GDDR5: Mag = Mag(32);

    /// Narrow-channel configuration studied in Fig. 9 (16 B).
    pub const NARROW_16: Mag = Mag(16);

    /// Wide-channel configuration studied in Fig. 9 (64 B).
    pub const WIDE_64: Mag = Mag(64);

    /// Creates a MAG of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a power of two in `8..=128` (a MAG is a
    /// bus-width × burst-length product and must divide the block size).
    pub fn new(bytes: u32) -> Self {
        assert!(
            bytes.is_power_of_two() && (8..=128).contains(&bytes),
            "MAG must be a power of two in 8..=128, got {bytes}"
        );
        Mag(bytes)
    }

    /// Granularity in bytes.
    pub fn bytes(self) -> u32 {
        self.0
    }

    /// Granularity in bits.
    pub fn bits(self) -> u32 {
        self.0 * 8
    }

    /// Rounds a byte size up to the next multiple of the MAG
    /// (the paper's *effective* compressed size). Zero stays zero-cost-free:
    /// any access moves at least one burst, so 0 rounds to one MAG.
    pub fn round_up_bytes(self, bytes: u32) -> u32 {
        if bytes == 0 {
            return self.0;
        }
        bytes.div_ceil(self.0) * self.0
    }

    /// Rounds a bit size up to the next multiple of the MAG, in bits.
    pub fn round_up_bits(self, bits: u32) -> u32 {
        self.round_up_bytes(bits.div_ceil(8)) * 8
    }

    /// Number of bursts needed to move `bytes` of a block of
    /// `block_bytes`, clamped to the uncompressed burst count.
    pub fn bursts_for_bytes(self, bytes: u32, block_bytes: u32) -> u32 {
        let max = block_bytes.div_ceil(self.0);
        bytes.div_ceil(self.0).clamp(1, max)
    }

    /// Number of bursts for a bit-sized payload.
    pub fn bursts_for_bits(self, bits: u32, block_bytes: u32) -> u32 {
        self.bursts_for_bytes(bits.div_ceil(8), block_bytes)
    }

    /// How many bytes of a compressed size are above the highest MAG
    /// multiple at or below it (the heat-map x-axis of Fig. 2).
    pub fn bytes_above_multiple(self, bytes: u32) -> u32 {
        bytes % self.0
    }
}

impl fmt::Display for Mag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

impl From<Mag> for u32 {
    fn from(m: Mag) -> u32 {
        m.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_36_bytes_fetches_64() {
        // "for a compressed size of 36B, we fetch 64B"
        assert_eq!(Mag::GDDR5.round_up_bytes(36), 64);
        assert_eq!(Mag::GDDR5.bursts_for_bytes(36, 128), 2);
    }

    #[test]
    fn exact_multiples_are_unchanged() {
        for m in [32, 64, 96, 128] {
            assert_eq!(Mag::GDDR5.round_up_bytes(m), m);
        }
    }

    #[test]
    fn zero_bytes_still_cost_one_burst() {
        assert_eq!(Mag::GDDR5.round_up_bytes(0), 32);
        assert_eq!(Mag::GDDR5.bursts_for_bytes(0, 128), 1);
    }

    #[test]
    fn bursts_clamp_at_uncompressed() {
        assert_eq!(Mag::GDDR5.bursts_for_bytes(1000, 128), 4);
        assert_eq!(Mag::WIDE_64.bursts_for_bytes(1000, 128), 2);
        assert_eq!(Mag::NARROW_16.bursts_for_bytes(128, 128), 8);
    }

    #[test]
    fn bytes_above_multiple_matches_modulo() {
        assert_eq!(Mag::GDDR5.bytes_above_multiple(36), 4);
        assert_eq!(Mag::GDDR5.bytes_above_multiple(64), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Mag::new(48);
    }

    #[test]
    fn display_formats_bytes() {
        assert_eq!(Mag::GDDR5.to_string(), "32B");
    }

    proptest! {
        #[test]
        fn prop_round_up_is_minimal_multiple(bytes in 0u32..=512) {
            let m = Mag::GDDR5;
            let r = m.round_up_bytes(bytes);
            prop_assert_eq!(r % m.bytes(), 0);
            prop_assert!(r >= bytes.max(1));
            prop_assert!(r < bytes.max(1) + m.bytes());
        }

        #[test]
        fn prop_bits_and_bytes_agree(bits in 0u32..=1024) {
            let m = Mag::GDDR5;
            prop_assert_eq!(m.round_up_bits(bits), m.round_up_bytes(bits.div_ceil(8)) * 8);
            prop_assert_eq!(m.bursts_for_bits(bits, 128), m.bursts_for_bytes(bits.div_ceil(8), 128));
        }
    }
}

//! Chunk-oriented codec dispatch for the batch engine.
//!
//! The `slc-engine` crate shards a byte stream into chunks and hands each
//! chunk's blocks to *some* codec behind a trait object. Two things make
//! that possible without the engine naming concrete types:
//!
//! * [`BlockCodec`] — the object-safe surface the engine compresses
//!   through. It is [`BlockCompressor`] plus the `Send + Sync` bounds a
//!   parallel fan-out needs, with a blanket impl, so every existing codec
//!   (and every future one) is a `BlockCodec` automatically.
//! * [`CodecId`] — the stable one-byte wire identity written into a
//!   container header, so a decoder can verify it was handed the codec
//!   the stream was encoded with. Wire values are append-only: retiring
//!   a codec retires its number, it is never reused.

use crate::BlockCompressor;

/// Stable wire identity of a block codec (one byte in container headers).
///
/// The discriminants are the on-disk format: they must never be renumbered,
/// only appended to. [`CodecId::name`] round-trips with
/// [`BlockCompressor::name`] via [`CodecId::from_name`], which is how the
/// engine derives the header byte from whatever codec it was built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// Base-Delta-Immediate.
    Bdi = 0,
    /// Frequent Pattern Compression.
    Fpc = 1,
    /// C-PACK.
    Cpack = 2,
    /// Bit-Plane Compression.
    Bpc = 3,
    /// Entropy-encoding based memory compression (trained).
    E2mc = 4,
    /// Statistical cache compression (trained).
    Sc2 = 5,
    /// HyComp with its FP-H floating-point path (trained).
    HyComp = 6,
    /// Interleaved byte-oriented rANS entropy coding.
    Rans = 7,
}

impl CodecId {
    /// Every codec id, in wire order.
    pub const ALL: [CodecId; 8] = [
        CodecId::Bdi,
        CodecId::Fpc,
        CodecId::Cpack,
        CodecId::Bpc,
        CodecId::E2mc,
        CodecId::Sc2,
        CodecId::HyComp,
        CodecId::Rans,
    ];

    /// The header byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Parses a header byte; `None` for values no codec owns (a corrupt
    /// or future-format container).
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// The codec's [`BlockCompressor::name`].
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Bdi => "bdi",
            CodecId::Fpc => "fpc",
            CodecId::Cpack => "cpack",
            CodecId::Bpc => "bpc",
            CodecId::E2mc => "e2mc",
            CodecId::Sc2 => "sc2",
            CodecId::HyComp => "hycomp",
            CodecId::Rans => "rans",
        }
    }

    /// Inverse of [`name`](Self::name); `None` for unknown names (e.g.
    /// `"fp-h"`, HyComp's internal sub-codec, which is not a standalone
    /// container codec).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|id| id.name() == name)
    }
}

/// The object-safe codec surface of the batch engine: a block codec that
/// can be shared across the engine's worker threads.
///
/// Blanket-implemented for every `BlockCompressor + Send + Sync`, so the
/// seven codecs need no per-type opt-in and the engine takes
/// `Arc<dyn BlockCodec>` without caring which one it holds.
pub trait BlockCodec: BlockCompressor + Send + Sync {}

impl<T: BlockCompressor + Send + Sync + ?Sized> BlockCodec for T {}

/// Whole-chunk coding capability: a codec that prefers to encode an
/// engine chunk as one stream (amortising model setup — e.g. one rANS
/// frequency table per 64 KiB chunk instead of per 128 B block) opts in
/// by returning itself from [`BlockCompressor::chunk_coder`].
///
/// The container format is untouched by this capability: a `Coded`
/// chunk's byte interpretation always belongs to the codec named in the
/// header, and the frame parser never looks inside chunk payloads. The
/// engine's raw fallback (store the chunk verbatim when coding does not
/// pay) applies to chunk coders exactly as to per-block coding.
///
/// `decode_chunk` must be containment-safe: for arbitrary `src` bytes it
/// returns `Err` (or fills `dst` completely) — never an out-of-bounds
/// access, and any panic is treated as corruption by the engine's guard.
pub trait ChunkCoder: Send + Sync {
    /// Encodes `chunk` as one self-contained stream.
    fn encode_chunk(&self, chunk: &[u8]) -> Vec<u8>;

    /// Decodes a stream produced by
    /// [`encode_chunk`](Self::encode_chunk) into `dst`, whose length is
    /// the original chunk length.
    fn decode_chunk(&self, src: &[u8], dst: &mut [u8]) -> Result<(), &'static str>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_values_are_stable() {
        // These are the on-disk format: renumbering them would silently
        // invalidate every existing container.
        let expected = [
            ("bdi", 0u8),
            ("fpc", 1),
            ("cpack", 2),
            ("bpc", 3),
            ("e2mc", 4),
            ("sc2", 5),
            ("hycomp", 6),
            ("rans", 7),
        ];
        for (name, wire) in expected {
            let id = CodecId::from_name(name).expect(name);
            assert_eq!(id.as_u8(), wire, "{name}");
            assert_eq!(CodecId::from_u8(wire), Some(id));
            assert_eq!(id.name(), name);
        }
    }

    #[test]
    fn unknown_bytes_and_names_are_rejected() {
        assert_eq!(CodecId::from_u8(8), None);
        assert_eq!(CodecId::from_u8(255), None);
        assert_eq!(CodecId::from_name("fp-h"), None, "sub-codec, not a container codec");
        assert_eq!(CodecId::from_name(""), None);
    }

    #[test]
    fn every_codec_is_a_block_codec() {
        // Compile-time: the blanket impl covers the stateless codecs and
        // trait objects alike.
        fn takes(_: &dyn BlockCodec) {}
        takes(&crate::bdi::Bdi::new());
        takes(&crate::fpc::Fpc::new());
        let boxed: Box<dyn BlockCodec> = Box::new(crate::cpack::Cpack::new());
        assert_eq!(boxed.name(), "cpack");
    }
}

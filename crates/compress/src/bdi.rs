//! Base-Delta-Immediate (BDI) compression.
//!
//! Pekhimenko et al., "Base-Delta-Immediate Compression: Practical Data
//! Compression for On-chip Caches", PACT 2012 — one of the four baselines of
//! the SLC paper's Figure 1.
//!
//! A block is viewed as `128 / k` values of `k ∈ {8, 4, 2}` bytes. Each
//! value is stored either as a small signed delta against one arbitrary
//! base (the first value not representable from zero) or against an
//! *implicit zero base* (the "immediate" part). A per-value mask selects
//! the base. Special encodings cover the all-zero block and a block that
//! repeats a single 8-byte value.

use crate::bitstream::{BitReader, FixedBitWriter};
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS, BLOCK_BYTES};

/// Fixed writer capacity for any BDI encode: the widest geometry (B2D1,
/// 596 bits) plus the tag, rounded up to whole bytes, plus the writer's
/// 8-byte flush slack.
const WRITER_CAP: usize = (4usize + 596).div_ceil(8) + 8;

/// The BDI encoding chosen for a block, ordered by decreasing specificity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BdiEncoding {
    /// Every byte is zero.
    Zeros,
    /// One 8-byte value repeated across the block.
    Repeat,
    /// Base size 8, delta size 1.
    B8D1,
    /// Base size 8, delta size 2.
    B8D2,
    /// Base size 8, delta size 4.
    B8D4,
    /// Base size 4, delta size 1.
    B4D1,
    /// Base size 4, delta size 2.
    B4D2,
    /// Base size 2, delta size 1.
    B2D1,
    /// Stored verbatim.
    Uncompressed,
}

impl BdiEncoding {
    /// All base+delta variants in the order the hardware evaluates them
    /// (smallest compressed size first).
    pub const BASE_DELTA_VARIANTS: [(BdiEncoding, usize, usize); 6] = [
        (BdiEncoding::B8D1, 8, 1),
        (BdiEncoding::B4D1, 4, 1),
        (BdiEncoding::B8D2, 8, 2),
        (BdiEncoding::B2D1, 2, 1),
        (BdiEncoding::B4D2, 4, 2),
        (BdiEncoding::B8D4, 8, 4),
    ];

    /// 4-bit wire tag for the encoding.
    pub fn tag(self) -> u8 {
        match self {
            BdiEncoding::Zeros => 0,
            BdiEncoding::Repeat => 1,
            BdiEncoding::B8D1 => 2,
            BdiEncoding::B8D2 => 3,
            BdiEncoding::B8D4 => 4,
            BdiEncoding::B4D1 => 5,
            BdiEncoding::B4D2 => 6,
            BdiEncoding::B2D1 => 7,
            BdiEncoding::Uncompressed => 8,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag (corrupt stream).
    pub fn from_tag(tag: u8) -> Self {
        match tag {
            0 => BdiEncoding::Zeros,
            1 => BdiEncoding::Repeat,
            2 => BdiEncoding::B8D1,
            3 => BdiEncoding::B8D2,
            4 => BdiEncoding::B8D4,
            5 => BdiEncoding::B4D1,
            6 => BdiEncoding::B4D2,
            7 => BdiEncoding::B2D1,
            8 => BdiEncoding::Uncompressed,
            // slc-lint: allow(hot-path): corrupt-tag guard, contained by the engine's per-chunk catch_unwind
            other => panic!("corrupt BDI stream: unknown tag {other}"),
        }
    }

    /// Compressed size in bits for this encoding on a 128 B block
    /// (tag + base + mask + deltas).
    pub fn size_bits(self) -> u32 {
        const TAG: u32 = 4;
        match self {
            BdiEncoding::Zeros => TAG,
            BdiEncoding::Repeat => TAG + 64,
            BdiEncoding::Uncompressed => BLOCK_BITS,
            _ => {
                let (_, base, delta) = Self::BASE_DELTA_VARIANTS
                    .iter()
                    .copied()
                    .find(|&(e, _, _)| e == self)
                    // slc-lint: allow(hot-path): the const table lists every base-delta variant, the find is infallible
                    .expect("variant listed");
                let n = (BLOCK_BYTES / base) as u32;
                TAG + (base as u32) * 8 + n + n * (delta as u32) * 8
            }
        }
    }
}

/// The BDI block compressor.
///
/// ```
/// use slc_compress::{BlockCompressor, bdi::Bdi};
///
/// let bdi = Bdi::new();
/// // 32 similar f32 values: ideal base-delta material.
/// let mut block = [0u8; 128];
/// for i in 0..32 {
///     block[i * 4..i * 4 + 4].copy_from_slice(&(1000u32 + i as u32).to_le_bytes());
/// }
/// let c = bdi.compress(&block);
/// assert!(c.size_bits() < 128 * 8);
/// assert_eq!(bdi.decompress(&c), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Bdi {
    _private: (),
}

impl Bdi {
    /// Creates a BDI codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Determines the best encoding for `block` without materialising it.
    ///
    /// Same planner as [`compress`](BlockCompressor::compress), so the two
    /// can never disagree on the winning variant.
    pub fn choose_encoding(&self, block: &Block) -> BdiEncoding {
        let v8 = words_of(block);
        if is_zero(&v8) {
            return BdiEncoding::Zeros;
        }
        if is_repeat8(&v8) {
            return BdiEncoding::Repeat;
        }
        match best_base_delta(&v8) {
            Some((enc, ..)) => enc,
            None => BdiEncoding::Uncompressed,
        }
    }
}

/// The block's sixteen 64-bit words: one load pass feeds the cheap
/// Zeros/Repeat special-case checks and then doubles as the packed-lane
/// staging register that [`plan_arm`] tests every geometry against.
fn words_of(block: &Block) -> [u64; BLOCK_BYTES / 8] {
    let mut v8 = [0u64; BLOCK_BYTES / 8];
    let (words, _) = block.as_chunks::<8>();
    for (slot, c) in v8.iter_mut().zip(words) {
        *slot = u64::from_le_bytes(*c);
    }
    v8
}

fn is_zero(v8: &[u64; BLOCK_BYTES / 8]) -> bool {
    v8.iter().fold(0u64, |acc, &w| acc | w) == 0
}

fn is_repeat8(v8: &[u64; BLOCK_BYTES / 8]) -> bool {
    v8.iter().all(|&w| w == v8[0])
}

/// The block's 4-byte values, little-endian, in memory order (lane 0 of
/// each staging word is its low half). Only materialised when a 4-byte
/// arm wins and its deltas must actually be written.
fn split4(v8: &[u64; BLOCK_BYTES / 8]) -> [u64; BLOCK_BYTES / 4] {
    let mut v4 = [0u64; BLOCK_BYTES / 4];
    for (i, &w) in v8.iter().enumerate() {
        v4[2 * i] = w & 0xffff_ffff;
        v4[2 * i + 1] = w >> 32;
    }
    v4
}

/// The block's 2-byte values, little-endian, in memory order. Only
/// materialised when the B2D1 arm wins.
fn split2(v8: &[u64; BLOCK_BYTES / 8]) -> [u64; BLOCK_BYTES / 2] {
    let mut v2 = [0u64; BLOCK_BYTES / 2];
    for (i, &w) in v8.iter().enumerate() {
        for j in 0..4 {
            v2[4 * i + j] = (w >> (16 * j)) & 0xffff;
        }
    }
    v2
}

/// Best representable base+delta variant with its full plan
/// `(enc, base_bytes, delta_bytes, base, mask)`, or `None` when no
/// geometry fits. Arms are evaluated in the hardware's listed order with
/// a strict improvement test on compressed size, so the winner is
/// identical to the sequential evaluation. All six arms plan directly on
/// the 64-bit staging words ([`plan_arm`] treats them as packed lanes),
/// so no per-width value array is built unless an arm actually wins.
fn best_base_delta(v8: &[u64; BLOCK_BYTES / 8]) -> Option<(BdiEncoding, usize, usize, u64, u64)> {
    let mut best: Option<(BdiEncoding, usize, usize, u64, u64)> = None;
    let mut best_bits = BLOCK_BITS;
    // Arms sharing a base width share one fused zero-fit pass over the
    // staging words; computed on first use since pruning below can skip a
    // whole width.
    let mut zf8: Option<[u64; 3]> = None;
    let mut zf4: Option<[u64; 2]> = None;
    for (enc, base_bytes, delta_bytes) in BdiEncoding::BASE_DELTA_VARIANTS {
        // Sizes are static per arm, so an arm that cannot beat the current
        // winner needs no planning at all (iteration follows the listed
        // order, so "strictly fewer bits" also reproduces the order
        // tiebreak of the sequential evaluation).
        let bits = enc.size_bits();
        if bits >= best_bits {
            continue;
        }
        let plan = match base_bytes {
            8 => {
                let zf = zf8.get_or_insert_with(|| zero_fit8(v8));
                let d = delta_bytes.trailing_zeros() as usize; // 1/2/4 -> 0/1/2
                plan_arm::<1>(v8, delta_bytes, zf[d])
            }
            4 => {
                let zf = zf4.get_or_insert_with(|| zero_fit4(v8));
                plan_arm::<2>(v8, delta_bytes, zf[delta_bytes - 1])
            }
            _ => {
                // W = 16, d = 1: bias 2^7, overflow bits 8..16.
                let zf = zero_fit_pass::<4>(v8, splat::<4>(1 << 7), splat::<4>(0xff00));
                plan_arm::<4>(v8, delta_bytes, zf)
            }
        };
        let Some((base, mask)) = plan else {
            continue;
        };
        best = Some((enc, base_bytes, delta_bytes, base, mask));
        best_bits = bits;
    }
    best
}

/// Zero-fit bitmaps for all three 8-byte-base arms (delta 1, 2, 4) in a
/// single pass: a 64-bit value fits a `d`-byte signed delta from zero iff
/// its sign-folded magnitude `w XOR sign_splat(w)` clears bits
/// `8d - 1..`, which is the same predicate as the lane add/mask test
/// (`w ∈ [-2^(8d-1), 2^(8d-1))` either way) with the bias add and the
/// three separate word loads factored out.
fn zero_fit8(words: &[u64; BLOCK_BYTES / 8]) -> [u64; 3] {
    let (mut f1, mut f2, mut f4) = (0u64, 0u64, 0u64);
    for (i, &w) in words.iter().enumerate() {
        let mag = w ^ (((w as i64) >> 63) as u64);
        f1 |= u64::from(mag >> 7 == 0) << i;
        f2 |= u64::from(mag >> 15 == 0) << i;
        f4 |= u64::from(mag >> 31 == 0) << i;
    }
    [f1, f2, f4]
}

/// Zero-fit bitmaps for both 4-byte-base arms (delta 1, 2), sharing one
/// pass over the staging words.
fn zero_fit4(words: &[u64; BLOCK_BYTES / 8]) -> [u64; 2] {
    let tops = splat::<2>(1 << 31);
    let (b1, h1) = (splat::<2>(1 << 7), splat::<2>(0xffff_ff00));
    let (b2, h2) = (splat::<2>(1 << 15), splat::<2>(0xffff_0000));
    let (mut f1, mut f2) = (0u64, 0u64);
    for (i, &w) in words.iter().enumerate() {
        f1 |= (0b11 & !nonzero_lanes::<2>(lane_add::<2>(w, b1, tops) & h1, tops)) << (2 * i);
        f2 |= (0b11 & !nonzero_lanes::<2>(lane_add::<2>(w, b2, tops) & h2, tops)) << (2 * i);
    }
    [f1, f2]
}

/// One generic zero-fit pass: bit `i` of the result is set when value
/// `i` (lane `i % LANES` of word `i / LANES`) fits the arm's delta from
/// the implicit zero base.
fn zero_fit_pass<const LANES: usize>(words: &[u64; BLOCK_BYTES / 8], bias: u64, hi: u64) -> u64 {
    let wbits = (64 / LANES) as u32;
    let tops = splat::<LANES>(1u64 << (wbits - 1));
    let lmask = (1u64 << LANES) - 1;
    let mut zero_fit = 0u64;
    for (w, &word) in words.iter().enumerate() {
        let fits = lmask & !nonzero_lanes::<LANES>(lane_add::<LANES>(word, bias, tops) & hi, tops);
        zero_fit |= fits << (LANES * w);
    }
    zero_fit
}

/// Repeats the low `64 / LANES` bits of `v` across every lane.
#[inline(always)]
fn splat<const LANES: usize>(v: u64) -> u64 {
    let mut s = v;
    let mut i = 1;
    while i < LANES {
        s |= v << (i * (64 / LANES));
        i += 1;
    }
    s
}

/// Lane-wise `(a + b) mod 2^W` for `LANES` lanes of `W = 64 / LANES`
/// bits: the carry chain is cut at each lane's MSB by adding the low
/// `W - 1` bits (which cannot carry across the MSB position, as each
/// side is at most `2^(W-1) - 1`) and fixing the MSBs up with XOR.
#[inline(always)]
fn lane_add<const LANES: usize>(a: u64, b: u64, tops: u64) -> u64 {
    if LANES == 1 {
        a.wrapping_add(b)
    } else {
        ((a & !tops).wrapping_add(b & !tops)) ^ ((a ^ b) & tops)
    }
}

/// Per-lane nonzero test, gathered: bit `k` of the result is set when
/// lane `k` of `u` is nonzero. Adding `2^(W-1) - 1` to each lane's low
/// bits carries into the lane's MSB position exactly when those bits are
/// nonzero (and never across the lane boundary); OR-ing `u` back in
/// covers a set MSB itself. One multiply then shifts each lane's MSB to
/// bit `k` — every partial product lands on a distinct bit position, so
/// no carries corrupt the gather.
#[inline(always)]
fn nonzero_lanes<const LANES: usize>(u: u64, tops: u64) -> u64 {
    if LANES == 1 {
        u64::from(u != 0)
    } else {
        let msbs = ((u & !tops).wrapping_add(!tops) | u) & tops;
        msbs.wrapping_mul(gather_mul(LANES)) >> (64 - LANES)
    }
}

/// Multiply constant moving lane `k`'s MSB (bit `(k + 1) * W - 1`) to
/// bit `64 - LANES + k`, so a single shift right by `64 - LANES` yields
/// the lane bitmap.
const fn gather_mul(lanes: usize) -> u64 {
    let w = 64 / lanes;
    let mut m = 0u64;
    let mut k = 0;
    while k < lanes {
        m |= 1u64 << ((64 - lanes + k) - ((k + 1) * w - 1));
        k += 1;
    }
    m
}

/// Plans one base+delta arm with two branchless bitmap passes (the "bulk
/// delta encode": every value's fit is computed with the same
/// add/mask/test, no per-value control flow), directly on the block's
/// sixteen 64-bit staging words: a word holds `LANES` values of
/// `W = 64 / LANES` bits, and each SWAR step tests a whole word's lanes
/// at once — the hardware evaluates all geometries in parallel from the
/// same staging register the same way.
///
/// `zero_fit` is the precomputed pass-1 bitmap — bit `i` set when value
/// `i` is representable from the implicit zero base (arms sharing a base
/// width share one fused pass, see [`best_base_delta`]). The arm's
/// explicit base is the first value that bitmap misses (it deltas
/// against itself). Pass 2 computes the *base-fit* bitmap against that
/// base; the arm is representable iff every zero-miss is a base-hit — a
/// word holding a value that fits neither sinks the arm immediately, so
/// a doomed arm (the common case on incompressible blocks) pays for one
/// word of pass 2, not the whole lane. The returned mask is exactly the
/// zero-miss bitmap: bit `i` set = value `i` deltas against the explicit
/// base, clear = against zero, matching the wire format.
///
/// "Delta fits `d` signed bytes" is tested as
/// `((v - base + 2^(8d-1)) mod 2^W) & hi == 0` with `hi` the lane's bits
/// `8d..W` — a lane-wise add and mask instead of sign-extension
/// arithmetic.
fn plan_arm<const LANES: usize>(
    words: &[u64; BLOCK_BYTES / 8],
    delta_bytes: usize,
    zero_fit: u64,
) -> Option<(u64, u64)> {
    let wbits = (64 / LANES) as u32;
    let wmask = if LANES == 1 { u64::MAX } else { (1u64 << wbits) - 1 };
    let half = 1u64 << (delta_bytes as u32 * 8 - 1);
    let full = 1u64 << (delta_bytes as u32 * 8);
    // `(x & wmask) < full` == "no bits of x in the lane above the delta".
    let hi = splat::<LANES>(wmask & !(full - 1));
    let tops = splat::<LANES>(1u64 << (wbits - 1));
    let lmask = (1u64 << LANES) - 1;
    let live = if LANES == 4 { u64::MAX } else { (1u64 << (16 * LANES)) - 1 };
    let need = !zero_fit & live;
    if need == 0 {
        // Every value fits the zero base; no explicit base is consumed
        // (base field stays 0, as in the sequential evaluation).
        return Some((0, 0));
    }
    let idx = need.trailing_zeros() as usize;
    let base = (words[idx / LANES] >> (wbits * (idx % LANES) as u32)) & wmask;
    let bias = splat::<LANES>(half.wrapping_sub(base) & wmask);
    for (w, &word) in words.iter().enumerate() {
        let fits = lmask & !nonzero_lanes::<LANES>(lane_add::<LANES>(word, bias, tops) & hi, tops);
        // A zero-miss in this word that the base also misses makes the
        // arm unrepresentable — no later value can change that.
        if (need >> (LANES * w)) & lmask & !fits != 0 {
            return None;
        }
    }
    Some((base, need))
}

/// The complete BDI encode, appending the payload (or the verbatim
/// block) to `out`; returns `(size_bits, is_compressed)`. Both
/// [`compress`](BlockCompressor::compress) and the engine's
/// [`compress_into`](BlockCompressor::compress_into) path funnel here,
/// so they cannot diverge.
fn encode_into(block: &Block, out: &mut Vec<u8>) -> (u32, bool) {
    // One word-load pass feeds the cheap special-case checks, then the
    // planner tests all six geometries directly on the staging words.
    let v8 = words_of(block);
    if is_zero(&v8) {
        let mut w = FixedBitWriter::<WRITER_CAP>::new();
        w.write(BdiEncoding::Zeros.tag() as u64, 4);
        return (w.finish_into(out), true);
    }
    if is_repeat8(&v8) {
        let mut w = FixedBitWriter::<WRITER_CAP>::new();
        w.write(BdiEncoding::Repeat.tag() as u64, 4);
        w.write(v8[0], 64);
        return (w.finish_into(out), true);
    }
    let Some((enc, base_bytes, delta_bytes, base, mask)) = best_base_delta(&v8) else {
        out.extend_from_slice(block);
        return (BLOCK_BITS, false);
    };
    let n = BLOCK_BYTES / base_bytes;
    let mut w = FixedBitWriter::<WRITER_CAP>::new();
    w.write(enc.tag() as u64, 4);
    w.write(base & mask_for(base_bytes), base_bytes as u32 * 8);
    // Value 0's flag goes first on the wire (MSB of the field):
    // reverse the LSB-indexed bitmap once and write it whole.
    w.write(mask.reverse_bits() >> (64 - n), n as u32);
    // Only the winning arm's value lane is ever materialised.
    match (base_bytes, delta_bytes) {
        (8, 1) => encode_deltas::<8, 1>(&v8, base, mask, &mut w),
        (8, 2) => encode_deltas::<8, 2>(&v8, base, mask, &mut w),
        (8, 4) => encode_deltas::<8, 4>(&v8, base, mask, &mut w),
        (4, 1) => encode_deltas::<4, 1>(&split4(&v8), base, mask, &mut w),
        (4, 2) => encode_deltas::<4, 2>(&split4(&v8), base, mask, &mut w),
        (2, 1) => encode_deltas::<2, 1>(&split2(&v8), base, mask, &mut w),
        // slc-lint: allow(hot-path): planner invariant — choose_encoding only returns geometries handled above
        _ => unreachable!("not a BDI geometry"),
    }
    let bits = w.finish_into(out);
    debug_assert_eq!(bits, enc.size_bits());
    (bits, true)
}

/// Writes the delta section of one `BASE`/`DELTA` geometry: every
/// `64 / delta_bits` deltas are packed into a single `u64` staging word
/// (MSB-first, mirroring [`decode_base_delta`]'s fetch layout exactly)
/// with a branchless base select, so the writer is touched once per word
/// instead of once per value. Monomorphised per arm like the decoder, so
/// the trip counts, shifts and masks are compile-time constants.
fn encode_deltas<const BASE: usize, const DELTA: usize>(
    values: &[u64],
    base: u64,
    mask: u64,
    w: &mut FixedBitWriter<WRITER_CAP>,
) {
    let n = BLOCK_BYTES / BASE;
    debug_assert_eq!(values.len(), n);
    let dbits = DELTA as u32 * 8;
    let per_write = (64 / dbits) as usize;
    debug_assert_eq!(n % per_write, 0, "every BDI geometry batches evenly");
    let dmask = mask_for(DELTA);
    for chunk in 0..n / per_write {
        let mut raw = 0u64;
        for t in 0..per_write {
            let idx = chunk * per_write + t;
            // All-ones when the mask selects the explicit base. The low
            // `delta_bits` of the wrapping difference equal the
            // sign-extended delta's low bits for every DELTA <= BASE.
            let sel = 0u64.wrapping_sub((mask >> idx) & 1);
            let delta = values[idx].wrapping_sub(base & sel) & dmask;
            raw |= delta << ((per_write - 1 - t) as u32 * dbits);
        }
        w.write(raw, per_write as u32 * dbits);
    }
}

impl BlockCompressor for Bdi {
    fn name(&self) -> &'static str {
        "bdi"
    }

    fn compress(&self, block: &Block) -> Compressed {
        // slc-lint: allow(hot-path): the block's single output-payload allocation (documented contract)
        let mut payload = Vec::new();
        let (bits, compressed) = encode_into(block, &mut payload);
        if compressed {
            Compressed::new(bits, payload)
        } else {
            Compressed::uncompressed(block)
        }
    }

    fn compress_into(&self, block: &Block, out: &mut Vec<u8>) -> (u32, bool) {
        encode_into(block, out)
    }

    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block) {
        if !compressed {
            out.copy_from_slice(&payload[..BLOCK_BYTES]);
            return;
        }
        let mut r = BitReader::new(payload, size_bits);
        let enc = BdiEncoding::from_tag(r.read(4) as u8);
        // The caller's buffer may hold stale bytes; the zero-run and
        // masked-delta arms rely on a zeroed canvas.
        out.fill(0);
        match enc {
            BdiEncoding::Zeros => {}
            BdiEncoding::Repeat => {
                let v = r.read(64).to_le_bytes();
                for chunk in out.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&v);
                }
            }
            BdiEncoding::Uncompressed => {
                // slc-lint: allow(hot-path): corrupt-stream guard, contained by the engine's per-chunk catch_unwind
                unreachable!("verbatim blocks use Compressed::uncompressed")
            }
            BdiEncoding::B8D1 => decode_base_delta::<8, 1>(&mut r, out),
            BdiEncoding::B8D2 => decode_base_delta::<8, 2>(&mut r, out),
            BdiEncoding::B8D4 => decode_base_delta::<8, 4>(&mut r, out),
            BdiEncoding::B4D1 => decode_base_delta::<4, 1>(&mut r, out),
            BdiEncoding::B4D2 => decode_base_delta::<4, 2>(&mut r, out),
            BdiEncoding::B2D1 => decode_base_delta::<2, 1>(&mut r, out),
        }
    }

    fn size_bits(&self, block: &Block) -> u32 {
        self.choose_encoding(block).size_bits()
    }
}

/// Decodes the base + mask + delta section of one `BASE`/`DELTA` geometry
/// into `out` (the tag has already been consumed).
///
/// Monomorphised per arm so the value count, the batch width and every
/// shift and mask below are compile-time constants: deltas arrive in full
/// 64-bit reader fetches (the value count is always a multiple of the
/// per-fetch batch) and the fixed-trip inner loop unrolls into straight
/// shift/add/store code — the bulk decode counterpart of the compress
/// side's bulk planning pass.
fn decode_base_delta<const BASE: usize, const DELTA: usize>(
    r: &mut BitReader<'_>,
    out: &mut Block,
) {
    let n = BLOCK_BYTES / BASE;
    let dbits = DELTA as u32 * 8;
    let per_read = (64 / dbits) as usize;
    debug_assert_eq!(n % per_read, 0, "every BDI geometry batches evenly");
    let dmask = mask_for(DELTA);
    let wmask = mask_for(BASE);
    let base = r.read(BASE as u32 * 8);
    // n <= 64, so the whole mask is one bitmap read.
    let mask = r.read(n as u32);
    for chunk in 0..n / per_read {
        let raw = r.read(per_read as u32 * dbits);
        for t in 0..per_read {
            let idx = chunk * per_read + t;
            let v_raw = (raw >> ((per_read - 1 - t) as u32 * dbits)) & dmask;
            let delta = sign_extend(v_raw, DELTA);
            let b = if (mask >> (n - 1 - idx)) & 1 == 1 { base } else { 0 };
            let v = b.wrapping_add(delta as u64) & wmask;
            out[idx * BASE..(idx + 1) * BASE].copy_from_slice(&v.to_le_bytes()[..BASE]);
        }
    }
}

fn mask_for(bytes: usize) -> u64 {
    if bytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (bytes * 8)) - 1
    }
}

fn sign_extend(raw: u64, bytes: usize) -> i64 {
    let shift = 64 - bytes as u32 * 8;
    ((raw << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block_from_u32s(f: impl Fn(usize) -> u32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..BLOCK_BYTES / 4 {
            b[i * 4..i * 4 + 4].copy_from_slice(&f(i).to_le_bytes());
        }
        b
    }

    #[test]
    fn zero_block_uses_zeros_encoding() {
        let bdi = Bdi::new();
        let block = [0u8; BLOCK_BYTES];
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::Zeros);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), 4);
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn repeated_value_uses_repeat_encoding() {
        let bdi = Bdi::new();
        let mut block = [0u8; BLOCK_BYTES];
        for chunk in block.chunks_exact_mut(8) {
            chunk.copy_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        }
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::Repeat);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), 68);
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn close_u32_values_pick_b4d1() {
        let bdi = Bdi::new();
        let block = block_from_u32s(|i| 0x4000_0000 + i as u32);
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::B4D1);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), BdiEncoding::B4D1.size_bits());
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn close_u16_values_pick_b2d1() {
        let bdi = Bdi::new();
        let mut block = [0u8; BLOCK_BYTES];
        for i in 0..BLOCK_BYTES / 2 {
            let v = 0x4100u16 + (i as u16 % 96);
            block[i * 2..i * 2 + 2].copy_from_slice(&v.to_le_bytes());
        }
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::B2D1);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), BdiEncoding::B2D1.size_bits());
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn mixed_small_and_large_values_use_zero_base() {
        // Alternating small immediates and values near one large base: the
        // dual-base scheme captures this, a single base could not.
        let bdi = Bdi::new();
        let block = block_from_u32s(|i| if i % 2 == 0 { i as u32 } else { 0x7fff_0000 + i as u32 });
        let enc = bdi.choose_encoding(&block);
        assert_ne!(enc, BdiEncoding::Uncompressed);
        let c = bdi.compress(&block);
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn high_entropy_block_is_uncompressed() {
        let bdi = Bdi::new();
        let mut block = [0u8; BLOCK_BYTES];
        let mut state = 0x12345678u64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), BLOCK_BITS);
        assert!(!c.is_compressed());
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn size_bits_matches_compress() {
        let bdi = Bdi::new();
        let block = block_from_u32s(|i| 7 * i as u32);
        assert_eq!(bdi.size_bits(&block), bdi.compress(&block).size_bits());
    }

    #[test]
    fn encoding_sizes_match_formula() {
        // n = 128/base values: tag(4) + base*8 + n + n*delta*8.
        assert_eq!(BdiEncoding::B8D1.size_bits(), 4 + 64 + 16 + 16 * 8);
        assert_eq!(BdiEncoding::B4D2.size_bits(), 4 + 32 + 32 + 32 * 16);
        assert_eq!(BdiEncoding::B2D1.size_bits(), 4 + 16 + 64 + 64 * 8);
    }

    #[test]
    fn tag_roundtrip() {
        for enc in [
            BdiEncoding::Zeros,
            BdiEncoding::Repeat,
            BdiEncoding::B8D1,
            BdiEncoding::B8D2,
            BdiEncoding::B8D4,
            BdiEncoding::B4D1,
            BdiEncoding::B4D2,
            BdiEncoding::B2D1,
            BdiEncoding::Uncompressed,
        ] {
            assert_eq!(BdiEncoding::from_tag(enc.tag()), enc);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_random(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(bdi.decompress(&bdi.compress(&block)), block);
        }

        #[test]
        fn prop_roundtrip_low_entropy(base in any::<u32>(), spread in 0u32..256,
                                      seeds in proptest::collection::vec(0u32..256, 32)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            for (i, s) in seeds.iter().enumerate() {
                let v = base.wrapping_add(s % spread.max(1));
                block[i*4..i*4+4].copy_from_slice(&v.to_le_bytes());
            }
            let c = bdi.compress(&block);
            prop_assert_eq!(bdi.decompress(&c), block);
            // Low-spread data must compress.
            if spread <= 64 {
                prop_assert!(c.size_bits() < BLOCK_BITS);
            }
        }

        #[test]
        fn prop_compress_into_matches_compress(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            let c = bdi.compress(&block);
            let mut out = vec![0xa5u8; 3];
            let (bits, compressed) = bdi.compress_into(&block, &mut out);
            prop_assert_eq!(bits, c.size_bits());
            prop_assert_eq!(compressed, c.is_compressed());
            prop_assert_eq!(&out[..3], &[0xa5u8; 3][..], "append-only");
            prop_assert_eq!(&out[3..], &c.payload()[..c.size_bytes() as usize]);
        }

        #[test]
        fn prop_size_never_exceeds_block(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert!(bdi.size_bits(&block) <= BLOCK_BITS);
        }
    }
}

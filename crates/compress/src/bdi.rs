//! Base-Delta-Immediate (BDI) compression.
//!
//! Pekhimenko et al., "Base-Delta-Immediate Compression: Practical Data
//! Compression for On-chip Caches", PACT 2012 — one of the four baselines of
//! the SLC paper's Figure 1.
//!
//! A block is viewed as `128 / k` values of `k ∈ {8, 4, 2}` bytes. Each
//! value is stored either as a small signed delta against one arbitrary
//! base (the first value not representable from zero) or against an
//! *implicit zero base* (the "immediate" part). A per-value mask selects
//! the base. Special encodings cover the all-zero block and a block that
//! repeats a single 8-byte value.

use crate::bitstream::{BitReader, FixedBitWriter};
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS, BLOCK_BYTES};

/// Fixed writer capacity for any BDI encode: the widest geometry (B2D1,
/// 596 bits) plus the tag, rounded up to whole bytes, plus the writer's
/// 8-byte flush slack.
const WRITER_CAP: usize = (4usize + 596).div_ceil(8) + 8;

/// The BDI encoding chosen for a block, ordered by decreasing specificity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BdiEncoding {
    /// Every byte is zero.
    Zeros,
    /// One 8-byte value repeated across the block.
    Repeat,
    /// Base size 8, delta size 1.
    B8D1,
    /// Base size 8, delta size 2.
    B8D2,
    /// Base size 8, delta size 4.
    B8D4,
    /// Base size 4, delta size 1.
    B4D1,
    /// Base size 4, delta size 2.
    B4D2,
    /// Base size 2, delta size 1.
    B2D1,
    /// Stored verbatim.
    Uncompressed,
}

impl BdiEncoding {
    /// All base+delta variants in the order the hardware evaluates them
    /// (smallest compressed size first).
    pub const BASE_DELTA_VARIANTS: [(BdiEncoding, usize, usize); 6] = [
        (BdiEncoding::B8D1, 8, 1),
        (BdiEncoding::B4D1, 4, 1),
        (BdiEncoding::B8D2, 8, 2),
        (BdiEncoding::B2D1, 2, 1),
        (BdiEncoding::B4D2, 4, 2),
        (BdiEncoding::B8D4, 8, 4),
    ];

    /// 4-bit wire tag for the encoding.
    pub fn tag(self) -> u8 {
        match self {
            BdiEncoding::Zeros => 0,
            BdiEncoding::Repeat => 1,
            BdiEncoding::B8D1 => 2,
            BdiEncoding::B8D2 => 3,
            BdiEncoding::B8D4 => 4,
            BdiEncoding::B4D1 => 5,
            BdiEncoding::B4D2 => 6,
            BdiEncoding::B2D1 => 7,
            BdiEncoding::Uncompressed => 8,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag (corrupt stream).
    pub fn from_tag(tag: u8) -> Self {
        match tag {
            0 => BdiEncoding::Zeros,
            1 => BdiEncoding::Repeat,
            2 => BdiEncoding::B8D1,
            3 => BdiEncoding::B8D2,
            4 => BdiEncoding::B8D4,
            5 => BdiEncoding::B4D1,
            6 => BdiEncoding::B4D2,
            7 => BdiEncoding::B2D1,
            8 => BdiEncoding::Uncompressed,
            other => panic!("corrupt BDI stream: unknown tag {other}"),
        }
    }

    /// Compressed size in bits for this encoding on a 128 B block
    /// (tag + base + mask + deltas).
    pub fn size_bits(self) -> u32 {
        const TAG: u32 = 4;
        match self {
            BdiEncoding::Zeros => TAG,
            BdiEncoding::Repeat => TAG + 64,
            BdiEncoding::Uncompressed => BLOCK_BITS,
            _ => {
                let (_, base, delta) = Self::BASE_DELTA_VARIANTS
                    .iter()
                    .copied()
                    .find(|&(e, _, _)| e == self)
                    .expect("variant listed");
                let n = (BLOCK_BYTES / base) as u32;
                TAG + (base as u32) * 8 + n + n * (delta as u32) * 8
            }
        }
    }
}

/// The BDI block compressor.
///
/// ```
/// use slc_compress::{BlockCompressor, bdi::Bdi};
///
/// let bdi = Bdi::new();
/// // 32 similar f32 values: ideal base-delta material.
/// let mut block = [0u8; 128];
/// for i in 0..32 {
///     block[i * 4..i * 4 + 4].copy_from_slice(&(1000u32 + i as u32).to_le_bytes());
/// }
/// let c = bdi.compress(&block);
/// assert!(c.size_bits() < 128 * 8);
/// assert_eq!(bdi.decompress(&c), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Bdi {
    _private: (),
}

impl Bdi {
    /// Creates a BDI codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Determines the best encoding for `block` without materialising it.
    ///
    /// Same planner as [`compress`](BlockCompressor::compress), so the two
    /// can never disagree on the winning variant.
    pub fn choose_encoding(&self, block: &Block) -> BdiEncoding {
        let v8 = words_of(block);
        if is_zero(&v8) {
            return BdiEncoding::Zeros;
        }
        if is_repeat8(&v8) {
            return BdiEncoding::Repeat;
        }
        match best_base_delta(&ValueLanes::split(v8)) {
            Some((enc, ..)) => enc,
            None => BdiEncoding::Uncompressed,
        }
    }
}

/// The block's sixteen 64-bit words: one load pass feeds the cheap
/// Zeros/Repeat special-case checks, and [`ValueLanes`] derives the
/// narrower lanes from it only when base+delta planning is reached.
fn words_of(block: &Block) -> [u64; BLOCK_BYTES / 8] {
    let mut v8 = [0u64; BLOCK_BYTES / 8];
    for (slot, c) in v8.iter_mut().zip(block.chunks_exact(8)) {
        *slot = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
    }
    v8
}

fn is_zero(v8: &[u64; BLOCK_BYTES / 8]) -> bool {
    v8.iter().fold(0u64, |acc, &w| acc | w) == 0
}

fn is_repeat8(v8: &[u64; BLOCK_BYTES / 8]) -> bool {
    v8.iter().all(|&w| w == v8[0])
}

/// The block decoded as little-endian values of every base width at once.
///
/// One pass over the 64-bit words fills all three lanes (the 4- and
/// 2-byte values are shifts of the 8-byte loads), so the six base+delta
/// arms plan over fixed arrays without ever re-reading block bytes — the
/// hardware evaluates all geometries in parallel from the same staging
/// register the same way.
struct ValueLanes {
    v8: [u64; BLOCK_BYTES / 8],
    v4: [u64; BLOCK_BYTES / 4],
    v2: [u64; BLOCK_BYTES / 2],
}

impl ValueLanes {
    fn split(v8: [u64; BLOCK_BYTES / 8]) -> Self {
        let mut v4 = [0u64; BLOCK_BYTES / 4];
        let mut v2 = [0u64; BLOCK_BYTES / 2];
        for (i, &w) in v8.iter().enumerate() {
            v4[2 * i] = w & 0xffff_ffff;
            v4[2 * i + 1] = w >> 32;
            for j in 0..4 {
                v2[4 * i + j] = (w >> (16 * j)) & 0xffff;
            }
        }
        Self { v8, v4, v2 }
    }

    fn values(&self, width: usize) -> &[u64] {
        match width {
            8 => &self.v8,
            4 => &self.v4,
            2 => &self.v2,
            _ => unreachable!("BDI base widths are 8/4/2"),
        }
    }
}

/// Best representable base+delta variant with its full plan
/// `(enc, base_bytes, delta_bytes, base, mask)`, or `None` when no
/// geometry fits. Arms are evaluated in the hardware's listed order with
/// a strict improvement test on compressed size, so the winner is
/// identical to the sequential evaluation.
fn best_base_delta(lanes: &ValueLanes) -> Option<(BdiEncoding, usize, usize, u64, u64)> {
    let mut best: Option<(BdiEncoding, usize, usize, u64, u64)> = None;
    let mut best_bits = BLOCK_BITS;
    for (enc, base_bytes, delta_bytes) in BdiEncoding::BASE_DELTA_VARIANTS {
        // Sizes are static per arm, so an arm that cannot beat the current
        // winner needs no planning at all (iteration follows the listed
        // order, so "strictly fewer bits" also reproduces the order
        // tiebreak of the sequential evaluation).
        let bits = enc.size_bits();
        if bits >= best_bits {
            continue;
        }
        let Some((base, mask)) = plan_arm(lanes.values(base_bytes), base_bytes, delta_bytes) else {
            continue;
        };
        best = Some((enc, base_bytes, delta_bytes, base, mask));
        best_bits = bits;
    }
    best
}

/// Plans one base+delta arm over a width's value lane with two branchless
/// bitmap passes (the "bulk delta encode": every value's fit is computed
/// with the same add/mask/compare, no per-value control flow).
///
/// Pass 1 computes the *zero-fit* bitmap — bit `i` set when value `i` is
/// representable from the implicit zero base. The arm's explicit base is
/// the first value that bitmap misses (it deltas against itself). Pass 2
/// computes the *base-fit* bitmap against that base; the arm is
/// representable iff every zero-miss is a base-hit. The returned mask is
/// exactly the zero-miss bitmap: bit `i` set = value `i` deltas against
/// the explicit base, clear = against zero, matching the wire format.
///
/// "Delta fits `d` signed bytes" is tested as
/// `((v - base + 2^(8d-1)) mod 2^(8w)) < 2^(8d)` — one add, mask and
/// compare per value instead of sign-extension arithmetic.
fn plan_arm(values: &[u64], base_bytes: usize, delta_bytes: usize) -> Option<(u64, u64)> {
    let wmask = mask_for(base_bytes);
    let half = 1u64 << (delta_bytes as u32 * 8 - 1);
    let full = 1u64 << (delta_bytes as u32 * 8);
    let mut zero_fit = 0u64;
    for (i, &v) in values.iter().enumerate() {
        zero_fit |= u64::from(v.wrapping_add(half) & wmask < full) << i;
    }
    let live = if values.len() == 64 { u64::MAX } else { (1u64 << values.len()) - 1 };
    let need = !zero_fit & live;
    if need == 0 {
        // Every value fits the zero base; no explicit base is consumed
        // (base field stays 0, as in the sequential evaluation).
        return Some((0, 0));
    }
    let base = values[need.trailing_zeros() as usize];
    let mut base_fit = 0u64;
    for (i, &v) in values.iter().enumerate() {
        base_fit |= u64::from(v.wrapping_sub(base).wrapping_add(half) & wmask < full) << i;
    }
    if need & !base_fit != 0 {
        return None;
    }
    Some((base, need))
}

/// Computes `v - base` in the `width`-byte signed domain.
fn sign_extend_sub(v: u64, base: u64, width: usize) -> i64 {
    let bits = width as u32 * 8;
    let diff = v.wrapping_sub(base);
    if bits == 64 {
        diff as i64
    } else {
        // Sign-extend the low `bits` of the difference.
        let shift = 64 - bits;
        ((diff << shift) as i64) >> shift
    }
}

impl BlockCompressor for Bdi {
    fn name(&self) -> &'static str {
        "bdi"
    }

    fn compress(&self, block: &Block) -> Compressed {
        // One word-load pass feeds the cheap special-case checks; the
        // narrower lanes are split out only if planning is reached, and
        // then feed the planner and the encode step alike.
        let v8 = words_of(block);
        if is_zero(&v8) {
            let mut w = FixedBitWriter::<WRITER_CAP>::new();
            w.write(BdiEncoding::Zeros.tag() as u64, 4);
            let (payload, bits) = w.finish();
            return Compressed::new(bits, payload);
        }
        if is_repeat8(&v8) {
            let mut w = FixedBitWriter::<WRITER_CAP>::new();
            w.write(BdiEncoding::Repeat.tag() as u64, 4);
            w.write(v8[0], 64);
            let (payload, bits) = w.finish();
            return Compressed::new(bits, payload);
        }
        let lanes = ValueLanes::split(v8);
        let Some((enc, base_bytes, delta_bytes, base, mask)) = best_base_delta(&lanes) else {
            return Compressed::uncompressed(block);
        };
        let values = lanes.values(base_bytes);
        let n = values.len();
        let mut w = FixedBitWriter::<WRITER_CAP>::new();
        w.write(enc.tag() as u64, 4);
        w.write(base & mask_for(base_bytes), base_bytes as u32 * 8);
        // Value 0's flag goes first on the wire (MSB of the field):
        // reverse the LSB-indexed bitmap once and write it whole.
        w.write(mask.reverse_bits() >> (64 - n), n as u32);
        for (i, &v) in values.iter().enumerate() {
            let b = if (mask >> i) & 1 == 1 { base } else { 0 };
            let delta = sign_extend_sub(v, b, base_bytes);
            w.write((delta as u64) & mask_for(delta_bytes), delta_bytes as u32 * 8);
        }
        let (payload, bits) = w.finish();
        debug_assert_eq!(bits, enc.size_bits());
        Compressed::new(bits, payload)
    }

    fn decompress(&self, c: &Compressed) -> Block {
        if !c.is_compressed() {
            let mut out = [0u8; BLOCK_BYTES];
            out.copy_from_slice(&c.payload()[..BLOCK_BYTES]);
            return out;
        }
        let mut r = BitReader::new(c.payload(), c.size_bits());
        let enc = BdiEncoding::from_tag(r.read(4) as u8);
        let mut out = [0u8; BLOCK_BYTES];
        match enc {
            BdiEncoding::Zeros => {}
            BdiEncoding::Repeat => {
                let v = r.read(64).to_le_bytes();
                for chunk in out.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&v);
                }
            }
            BdiEncoding::Uncompressed => {
                unreachable!("verbatim blocks use Compressed::uncompressed")
            }
            BdiEncoding::B8D1 => decode_base_delta::<8, 1>(&mut r, &mut out),
            BdiEncoding::B8D2 => decode_base_delta::<8, 2>(&mut r, &mut out),
            BdiEncoding::B8D4 => decode_base_delta::<8, 4>(&mut r, &mut out),
            BdiEncoding::B4D1 => decode_base_delta::<4, 1>(&mut r, &mut out),
            BdiEncoding::B4D2 => decode_base_delta::<4, 2>(&mut r, &mut out),
            BdiEncoding::B2D1 => decode_base_delta::<2, 1>(&mut r, &mut out),
        }
        out
    }

    fn size_bits(&self, block: &Block) -> u32 {
        self.choose_encoding(block).size_bits()
    }
}

/// Decodes the base + mask + delta section of one `BASE`/`DELTA` geometry
/// into `out` (the tag has already been consumed).
///
/// Monomorphised per arm so the value count, the batch width and every
/// shift and mask below are compile-time constants: deltas arrive in full
/// 64-bit reader fetches (the value count is always a multiple of the
/// per-fetch batch) and the fixed-trip inner loop unrolls into straight
/// shift/add/store code — the bulk decode counterpart of the compress
/// side's bulk planning pass.
fn decode_base_delta<const BASE: usize, const DELTA: usize>(
    r: &mut BitReader<'_>,
    out: &mut Block,
) {
    let n = BLOCK_BYTES / BASE;
    let dbits = DELTA as u32 * 8;
    let per_read = (64 / dbits) as usize;
    debug_assert_eq!(n % per_read, 0, "every BDI geometry batches evenly");
    let dmask = mask_for(DELTA);
    let wmask = mask_for(BASE);
    let base = r.read(BASE as u32 * 8);
    // n <= 64, so the whole mask is one bitmap read.
    let mask = r.read(n as u32);
    for chunk in 0..n / per_read {
        let raw = r.read(per_read as u32 * dbits);
        for t in 0..per_read {
            let idx = chunk * per_read + t;
            let v_raw = (raw >> ((per_read - 1 - t) as u32 * dbits)) & dmask;
            let delta = sign_extend(v_raw, DELTA);
            let b = if (mask >> (n - 1 - idx)) & 1 == 1 { base } else { 0 };
            let v = b.wrapping_add(delta as u64) & wmask;
            out[idx * BASE..(idx + 1) * BASE].copy_from_slice(&v.to_le_bytes()[..BASE]);
        }
    }
}

fn mask_for(bytes: usize) -> u64 {
    if bytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (bytes * 8)) - 1
    }
}

fn sign_extend(raw: u64, bytes: usize) -> i64 {
    let shift = 64 - bytes as u32 * 8;
    ((raw << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block_from_u32s(f: impl Fn(usize) -> u32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..BLOCK_BYTES / 4 {
            b[i * 4..i * 4 + 4].copy_from_slice(&f(i).to_le_bytes());
        }
        b
    }

    #[test]
    fn zero_block_uses_zeros_encoding() {
        let bdi = Bdi::new();
        let block = [0u8; BLOCK_BYTES];
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::Zeros);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), 4);
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn repeated_value_uses_repeat_encoding() {
        let bdi = Bdi::new();
        let mut block = [0u8; BLOCK_BYTES];
        for chunk in block.chunks_exact_mut(8) {
            chunk.copy_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        }
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::Repeat);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), 68);
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn close_u32_values_pick_b4d1() {
        let bdi = Bdi::new();
        let block = block_from_u32s(|i| 0x4000_0000 + i as u32);
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::B4D1);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), BdiEncoding::B4D1.size_bits());
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn mixed_small_and_large_values_use_zero_base() {
        // Alternating small immediates and values near one large base: the
        // dual-base scheme captures this, a single base could not.
        let bdi = Bdi::new();
        let block = block_from_u32s(|i| if i % 2 == 0 { i as u32 } else { 0x7fff_0000 + i as u32 });
        let enc = bdi.choose_encoding(&block);
        assert_ne!(enc, BdiEncoding::Uncompressed);
        let c = bdi.compress(&block);
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn high_entropy_block_is_uncompressed() {
        let bdi = Bdi::new();
        let mut block = [0u8; BLOCK_BYTES];
        let mut state = 0x12345678u64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), BLOCK_BITS);
        assert!(!c.is_compressed());
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn size_bits_matches_compress() {
        let bdi = Bdi::new();
        let block = block_from_u32s(|i| 7 * i as u32);
        assert_eq!(bdi.size_bits(&block), bdi.compress(&block).size_bits());
    }

    #[test]
    fn encoding_sizes_match_formula() {
        // n = 128/base values: tag(4) + base*8 + n + n*delta*8.
        assert_eq!(BdiEncoding::B8D1.size_bits(), 4 + 64 + 16 + 16 * 8);
        assert_eq!(BdiEncoding::B4D2.size_bits(), 4 + 32 + 32 + 32 * 16);
        assert_eq!(BdiEncoding::B2D1.size_bits(), 4 + 16 + 64 + 64 * 8);
    }

    #[test]
    fn tag_roundtrip() {
        for enc in [
            BdiEncoding::Zeros,
            BdiEncoding::Repeat,
            BdiEncoding::B8D1,
            BdiEncoding::B8D2,
            BdiEncoding::B8D4,
            BdiEncoding::B4D1,
            BdiEncoding::B4D2,
            BdiEncoding::B2D1,
            BdiEncoding::Uncompressed,
        ] {
            assert_eq!(BdiEncoding::from_tag(enc.tag()), enc);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_random(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(bdi.decompress(&bdi.compress(&block)), block);
        }

        #[test]
        fn prop_roundtrip_low_entropy(base in any::<u32>(), spread in 0u32..256,
                                      seeds in proptest::collection::vec(0u32..256, 32)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            for (i, s) in seeds.iter().enumerate() {
                let v = base.wrapping_add(s % spread.max(1));
                block[i*4..i*4+4].copy_from_slice(&v.to_le_bytes());
            }
            let c = bdi.compress(&block);
            prop_assert_eq!(bdi.decompress(&c), block);
            // Low-spread data must compress.
            if spread <= 64 {
                prop_assert!(c.size_bits() < BLOCK_BITS);
            }
        }

        #[test]
        fn prop_size_never_exceeds_block(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert!(bdi.size_bits(&block) <= BLOCK_BITS);
        }
    }
}

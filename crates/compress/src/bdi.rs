//! Base-Delta-Immediate (BDI) compression.
//!
//! Pekhimenko et al., "Base-Delta-Immediate Compression: Practical Data
//! Compression for On-chip Caches", PACT 2012 — one of the four baselines of
//! the SLC paper's Figure 1.
//!
//! A block is viewed as `128 / k` values of `k ∈ {8, 4, 2}` bytes. Each
//! value is stored either as a small signed delta against one arbitrary
//! base (the first value not representable from zero) or against an
//! *implicit zero base* (the "immediate" part). A per-value mask selects
//! the base. Special encodings cover the all-zero block and a block that
//! repeats a single 8-byte value.

use crate::bitstream::{BitReader, BitWriter};
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS, BLOCK_BYTES};

/// The BDI encoding chosen for a block, ordered by decreasing specificity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BdiEncoding {
    /// Every byte is zero.
    Zeros,
    /// One 8-byte value repeated across the block.
    Repeat,
    /// Base size 8, delta size 1.
    B8D1,
    /// Base size 8, delta size 2.
    B8D2,
    /// Base size 8, delta size 4.
    B8D4,
    /// Base size 4, delta size 1.
    B4D1,
    /// Base size 4, delta size 2.
    B4D2,
    /// Base size 2, delta size 1.
    B2D1,
    /// Stored verbatim.
    Uncompressed,
}

impl BdiEncoding {
    /// All base+delta variants in the order the hardware evaluates them
    /// (smallest compressed size first).
    pub const BASE_DELTA_VARIANTS: [(BdiEncoding, usize, usize); 6] = [
        (BdiEncoding::B8D1, 8, 1),
        (BdiEncoding::B4D1, 4, 1),
        (BdiEncoding::B8D2, 8, 2),
        (BdiEncoding::B2D1, 2, 1),
        (BdiEncoding::B4D2, 4, 2),
        (BdiEncoding::B8D4, 8, 4),
    ];

    /// 4-bit wire tag for the encoding.
    pub fn tag(self) -> u8 {
        match self {
            BdiEncoding::Zeros => 0,
            BdiEncoding::Repeat => 1,
            BdiEncoding::B8D1 => 2,
            BdiEncoding::B8D2 => 3,
            BdiEncoding::B8D4 => 4,
            BdiEncoding::B4D1 => 5,
            BdiEncoding::B4D2 => 6,
            BdiEncoding::B2D1 => 7,
            BdiEncoding::Uncompressed => 8,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag (corrupt stream).
    pub fn from_tag(tag: u8) -> Self {
        match tag {
            0 => BdiEncoding::Zeros,
            1 => BdiEncoding::Repeat,
            2 => BdiEncoding::B8D1,
            3 => BdiEncoding::B8D2,
            4 => BdiEncoding::B8D4,
            5 => BdiEncoding::B4D1,
            6 => BdiEncoding::B4D2,
            7 => BdiEncoding::B2D1,
            8 => BdiEncoding::Uncompressed,
            other => panic!("corrupt BDI stream: unknown tag {other}"),
        }
    }

    /// Compressed size in bits for this encoding on a 128 B block
    /// (tag + base + mask + deltas).
    pub fn size_bits(self) -> u32 {
        const TAG: u32 = 4;
        match self {
            BdiEncoding::Zeros => TAG,
            BdiEncoding::Repeat => TAG + 64,
            BdiEncoding::Uncompressed => BLOCK_BITS,
            _ => {
                let (_, base, delta) = Self::BASE_DELTA_VARIANTS
                    .iter()
                    .copied()
                    .find(|&(e, _, _)| e == self)
                    .expect("variant listed");
                let n = (BLOCK_BYTES / base) as u32;
                TAG + (base as u32) * 8 + n + n * (delta as u32) * 8
            }
        }
    }
}

/// The BDI block compressor.
///
/// ```
/// use slc_compress::{BlockCompressor, bdi::Bdi};
///
/// let bdi = Bdi::new();
/// // 32 similar f32 values: ideal base-delta material.
/// let mut block = [0u8; 128];
/// for i in 0..32 {
///     block[i * 4..i * 4 + 4].copy_from_slice(&(1000u32 + i as u32).to_le_bytes());
/// }
/// let c = bdi.compress(&block);
/// assert!(c.size_bits() < 128 * 8);
/// assert_eq!(bdi.decompress(&c), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Bdi {
    _private: (),
}

impl Bdi {
    /// Creates a BDI codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Determines the best encoding for `block` without materialising it.
    ///
    /// Same planner as [`compress`](BlockCompressor::compress), so the two
    /// can never disagree on the winning variant.
    pub fn choose_encoding(&self, block: &Block) -> BdiEncoding {
        if block.iter().all(|&b| b == 0) {
            return BdiEncoding::Zeros;
        }
        if is_repeat8(block) {
            return BdiEncoding::Repeat;
        }
        match best_base_delta(block, &mut [0u64; MAX_VALUES]) {
            Some((enc, ..)) => enc,
            None => BdiEncoding::Uncompressed,
        }
    }
}

/// Best representable base+delta variant of `block` with its full plan
/// `(enc, base_bytes, delta_bytes, base, mask)`, or `None` when no
/// geometry fits. One value-extraction and one planning pass per base
/// width; each pass evaluates every delta size of that width at once.
/// Winner selection matches evaluating `BASE_DELTA_VARIANTS` in the
/// hardware's listed order with a strict improvement test.
/// On `Some`, `values` holds the winning base width's decoded values, so
/// the encode step needs no further extraction pass.
fn best_base_delta(
    block: &Block,
    values: &mut [u64; MAX_VALUES],
) -> Option<(BdiEncoding, usize, usize, u64, u64)> {
    let mut best: Option<(BdiEncoding, usize, usize, u64, u64)> = None;
    let mut best_bits = BLOCK_BITS;
    let mut best_order = usize::MAX;
    let mut extracted = 0usize;
    for (base_bytes, deltas) in [(8usize, &[1usize, 2, 4][..]), (4, &[1, 2]), (2, &[1])] {
        let n = values_of(block, base_bytes, values);
        extracted = base_bytes;
        let plans = plan_widths(&values[..n], base_bytes, deltas);
        for (&delta_bytes, plan) in deltas.iter().zip(plans) {
            let Some((base, mask)) = plan else { continue };
            let (order, (enc, ..)) = BdiEncoding::BASE_DELTA_VARIANTS
                .iter()
                .copied()
                .enumerate()
                .find(|&(_, (_, b, d))| b == base_bytes && d == delta_bytes)
                .expect("variant listed");
            let bits = enc.size_bits();
            if bits < best_bits || (bits == best_bits && order < best_order) {
                best = Some((enc, base_bytes, delta_bytes, base, mask));
                best_bits = bits;
                best_order = order;
            }
        }
    }
    if let Some((_, base_bytes, ..)) = best {
        if base_bytes != extracted {
            values_of(block, base_bytes, values);
        }
    }
    best
}

/// Maximum number of values per block (base size 2 -> 64 values).
const MAX_VALUES: usize = BLOCK_BYTES / 2;

/// Decodes the block into `width`-byte little-endian values; returns the
/// value count. Fixed-size output keeps the per-block path allocation-free.
fn values_of(block: &Block, width: usize, out: &mut [u64; MAX_VALUES]) -> usize {
    let n = BLOCK_BYTES / width;
    for (slot, c) in out.iter_mut().zip(block.chunks_exact(width)) {
        let mut buf = [0u8; 8];
        buf[..width].copy_from_slice(c);
        *slot = u64::from_le_bytes(buf);
    }
    n
}

fn is_repeat8(block: &Block) -> bool {
    let first = &block[..8];
    block.chunks_exact(8).all(|c| c == first)
}

/// Plans every delta size of one base width in a single pass over the
/// values. Per delta size the result is a per-value plan: bit `i` of the
/// mask set = value `i` deltas against the explicit base, clear = against
/// the implicit zero base (at most 64 values, so one `u64` bitmap);
/// `None` when the block is not representable with that geometry. The
/// base is the first value the zero base cannot represent (which
/// therefore deltas against itself); later values must fit one of the
/// two bases.
///
/// "Delta fits `d` signed bytes" is tested branchlessly as
/// `((v - base + 2^(8d-1)) mod 2^(8w)) < 2^(8d)` — one add, mask and
/// compare per value instead of sign-extension arithmetic.
fn plan_widths(values: &[u64], base_bytes: usize, deltas: &[usize]) -> [Option<(u64, u64)>; 3] {
    #[derive(Clone, Copy, Default)]
    struct DeltaState {
        dead: bool,
        base_found: bool,
        base: u64,
        mask: u64,
        half: u64,
        full: u64,
    }
    let wmask = mask_for(base_bytes);
    let mut states = [DeltaState::default(); 3];
    for (state, &d) in states.iter_mut().zip(deltas) {
        state.half = 1u64 << (d as u32 * 8 - 1);
        state.full = 1u64 << (d as u32 * 8);
    }
    for (i, &v) in values.iter().enumerate() {
        for state in states[..deltas.len()].iter_mut() {
            if state.dead {
                continue;
            }
            if v.wrapping_add(state.half) & wmask < state.full {
                continue; // zero base covers it
            }
            if !state.base_found {
                state.base_found = true;
                state.base = v;
                state.mask |= 1u64 << i; // delta 0 against itself
            } else if v.wrapping_sub(state.base).wrapping_add(state.half) & wmask < state.full {
                state.mask |= 1u64 << i;
            } else {
                state.dead = true;
            }
        }
    }
    let mut out = [None; 3];
    for (slot, state) in out.iter_mut().zip(states).take(deltas.len()) {
        if !state.dead {
            *slot = Some((state.base, state.mask));
        }
    }
    out
}

/// Computes `v - base` in the `width`-byte signed domain.
fn sign_extend_sub(v: u64, base: u64, width: usize) -> i64 {
    let bits = width as u32 * 8;
    let diff = v.wrapping_sub(base);
    if bits == 64 {
        diff as i64
    } else {
        // Sign-extend the low `bits` of the difference.
        let shift = 64 - bits;
        ((diff << shift) as i64) >> shift
    }
}

impl BlockCompressor for Bdi {
    fn name(&self) -> &'static str {
        "bdi"
    }

    fn compress(&self, block: &Block) -> Compressed {
        // Plan inline (one pass shared with the encode step) instead of
        // calling choose_encoding and re-deriving the winning plan.
        if block.iter().all(|&b| b == 0) {
            let mut w = BitWriter::new();
            w.write(BdiEncoding::Zeros.tag() as u64, 4);
            let (payload, bits) = w.finish();
            return Compressed::new(bits, payload);
        }
        if is_repeat8(block) {
            let mut w = BitWriter::new();
            w.write(BdiEncoding::Repeat.tag() as u64, 4);
            w.write(u64::from_le_bytes(block[..8].try_into().expect("8 bytes")), 64);
            let (payload, bits) = w.finish();
            return Compressed::new(bits, payload);
        }
        let mut values = [0u64; MAX_VALUES];
        let Some((enc, base_bytes, delta_bytes, base, mask)) = best_base_delta(block, &mut values)
        else {
            return Compressed::uncompressed(block);
        };
        let n = BLOCK_BYTES / base_bytes;
        let mut w = BitWriter::with_capacity_bits(enc.size_bits());
        w.write(enc.tag() as u64, 4);
        w.write(base & mask_for(base_bytes), base_bytes as u32 * 8);
        // Value 0's flag goes first on the wire (MSB of the field):
        // reverse the LSB-indexed bitmap once and write it whole.
        w.write(mask.reverse_bits() >> (64 - n), n as u32);
        for (i, &v) in values[..n].iter().enumerate() {
            let b = if (mask >> i) & 1 == 1 { base } else { 0 };
            let delta = sign_extend_sub(v, b, base_bytes);
            w.write((delta as u64) & mask_for(delta_bytes), delta_bytes as u32 * 8);
        }
        let (payload, bits) = w.finish();
        debug_assert_eq!(bits, enc.size_bits());
        Compressed::new(bits, payload)
    }

    fn decompress(&self, c: &Compressed) -> Block {
        if !c.is_compressed() {
            let mut out = [0u8; BLOCK_BYTES];
            out.copy_from_slice(&c.payload()[..BLOCK_BYTES]);
            return out;
        }
        let mut r = BitReader::new(c.payload(), c.size_bits());
        let enc = BdiEncoding::from_tag(r.read(4) as u8);
        let mut out = [0u8; BLOCK_BYTES];
        match enc {
            BdiEncoding::Zeros => {}
            BdiEncoding::Repeat => {
                let v = r.read(64).to_le_bytes();
                for chunk in out.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&v);
                }
            }
            BdiEncoding::Uncompressed => {
                unreachable!("verbatim blocks use Compressed::uncompressed")
            }
            _ => {
                let (_, base_bytes, delta_bytes) = BdiEncoding::BASE_DELTA_VARIANTS
                    .iter()
                    .copied()
                    .find(|&(e, _, _)| e == enc)
                    .expect("variant listed");
                let n = BLOCK_BYTES / base_bytes;
                let base = r.read(base_bytes as u32 * 8);
                // n <= 64, so the whole mask is one bitmap read.
                let mask = r.read(n as u32);
                // Deltas are fetched up to 64 bits at a time and split in
                // registers instead of one reader call per value.
                let dbits = delta_bytes as u32 * 8;
                let per_read = (64 / dbits) as usize;
                let dmask = mask_for(delta_bytes);
                let mut i = 0;
                while i < n {
                    let take = (n - i).min(per_read);
                    let raw = r.read(take as u32 * dbits);
                    for t in 0..take {
                        let v_raw = (raw >> ((take - 1 - t) as u32 * dbits)) & dmask;
                        let delta = sign_extend(v_raw, delta_bytes);
                        let idx = i + t;
                        let b = if (mask >> (n - 1 - idx)) & 1 == 1 { base } else { 0 };
                        let v = b.wrapping_add(delta as u64) & mask_for(base_bytes);
                        out[idx * base_bytes..(idx + 1) * base_bytes]
                            .copy_from_slice(&v.to_le_bytes()[..base_bytes]);
                    }
                    i += take;
                }
            }
        }
        out
    }

    fn size_bits(&self, block: &Block) -> u32 {
        self.choose_encoding(block).size_bits()
    }
}

fn mask_for(bytes: usize) -> u64 {
    if bytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (bytes * 8)) - 1
    }
}

fn sign_extend(raw: u64, bytes: usize) -> i64 {
    let shift = 64 - bytes as u32 * 8;
    ((raw << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block_from_u32s(f: impl Fn(usize) -> u32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..BLOCK_BYTES / 4 {
            b[i * 4..i * 4 + 4].copy_from_slice(&f(i).to_le_bytes());
        }
        b
    }

    #[test]
    fn zero_block_uses_zeros_encoding() {
        let bdi = Bdi::new();
        let block = [0u8; BLOCK_BYTES];
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::Zeros);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), 4);
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn repeated_value_uses_repeat_encoding() {
        let bdi = Bdi::new();
        let mut block = [0u8; BLOCK_BYTES];
        for chunk in block.chunks_exact_mut(8) {
            chunk.copy_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        }
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::Repeat);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), 68);
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn close_u32_values_pick_b4d1() {
        let bdi = Bdi::new();
        let block = block_from_u32s(|i| 0x4000_0000 + i as u32);
        assert_eq!(bdi.choose_encoding(&block), BdiEncoding::B4D1);
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), BdiEncoding::B4D1.size_bits());
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn mixed_small_and_large_values_use_zero_base() {
        // Alternating small immediates and values near one large base: the
        // dual-base scheme captures this, a single base could not.
        let bdi = Bdi::new();
        let block = block_from_u32s(|i| if i % 2 == 0 { i as u32 } else { 0x7fff_0000 + i as u32 });
        let enc = bdi.choose_encoding(&block);
        assert_ne!(enc, BdiEncoding::Uncompressed);
        let c = bdi.compress(&block);
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn high_entropy_block_is_uncompressed() {
        let bdi = Bdi::new();
        let mut block = [0u8; BLOCK_BYTES];
        let mut state = 0x12345678u64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        let c = bdi.compress(&block);
        assert_eq!(c.size_bits(), BLOCK_BITS);
        assert!(!c.is_compressed());
        assert_eq!(bdi.decompress(&c), block);
    }

    #[test]
    fn size_bits_matches_compress() {
        let bdi = Bdi::new();
        let block = block_from_u32s(|i| 7 * i as u32);
        assert_eq!(bdi.size_bits(&block), bdi.compress(&block).size_bits());
    }

    #[test]
    fn encoding_sizes_match_formula() {
        // n = 128/base values: tag(4) + base*8 + n + n*delta*8.
        assert_eq!(BdiEncoding::B8D1.size_bits(), 4 + 64 + 16 + 16 * 8);
        assert_eq!(BdiEncoding::B4D2.size_bits(), 4 + 32 + 32 + 32 * 16);
        assert_eq!(BdiEncoding::B2D1.size_bits(), 4 + 16 + 64 + 64 * 8);
    }

    #[test]
    fn tag_roundtrip() {
        for enc in [
            BdiEncoding::Zeros,
            BdiEncoding::Repeat,
            BdiEncoding::B8D1,
            BdiEncoding::B8D2,
            BdiEncoding::B8D4,
            BdiEncoding::B4D1,
            BdiEncoding::B4D2,
            BdiEncoding::B2D1,
            BdiEncoding::Uncompressed,
        ] {
            assert_eq!(BdiEncoding::from_tag(enc.tag()), enc);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_random(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(bdi.decompress(&bdi.compress(&block)), block);
        }

        #[test]
        fn prop_roundtrip_low_entropy(base in any::<u32>(), spread in 0u32..256,
                                      seeds in proptest::collection::vec(0u32..256, 32)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            for (i, s) in seeds.iter().enumerate() {
                let v = base.wrapping_add(s % spread.max(1));
                block[i*4..i*4+4].copy_from_slice(&v.to_le_bytes());
            }
            let c = bdi.compress(&block);
            prop_assert_eq!(bdi.decompress(&c), block);
            // Low-spread data must compress.
            if spread <= 64 {
                prop_assert!(c.size_bits() < BLOCK_BITS);
            }
        }

        #[test]
        fn prop_size_never_exceeds_block(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let bdi = Bdi::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert!(bdi.size_bits(&block) <= BLOCK_BITS);
        }
    }
}

//! Lossless GPU memory compression substrates.
//!
//! This crate implements the four state-of-the-art memory compression
//! techniques the SLC paper (Lal et al., DATE 2019) evaluates in Figure 1 —
//! [`bdi`] (Base-Delta-Immediate), [`fpc`] (Frequent Pattern Compression),
//! [`cpack`] (C-PACK) and [`e2mc`] (entropy-encoding based memory
//! compression) — plus the techniques the paper discusses only
//! qualitatively in Section II-A: [`bpc`] (Bit-Plane Compression),
//! [`sc2`] (statistical cache compression) and [`hycomp`] (HyComp with
//! its FP-H floating-point path), so those claims can be checked
//! quantitatively.
//!
//! All compressors operate on fixed-size memory blocks (128 B in current
//! GPUs) and implement the [`BlockCompressor`] trait. Compressed sizes are
//! tracked in **bits**, because SLC's budgeting logic (crate `slc-core`)
//! reasons about bit-granular code lengths.
//!
//! # Raw vs effective compression ratio
//!
//! DRAM can only transfer multiples of the memory access granularity
//! ([`Mag`]); the *effective* size of a compressed block is its size rounded
//! up to the next MAG multiple. [`Mag::round_up_bytes`] and
//! [`ratio::RatioAccumulator`] implement the paper's two ratio definitions.
//!
//! ```
//! use slc_compress::{BlockCompressor, bdi::Bdi, mag::Mag, BLOCK_BYTES};
//!
//! let block = [0u8; 128]; // an all-zero block compresses extremely well
//! let compressed = Bdi::new().compress(&block);
//! assert!(compressed.size_bits() < 8 * BLOCK_BYTES as u32);
//! let eff = Mag::GDDR5.round_up_bytes(compressed.size_bytes());
//! assert_eq!(eff % 32, 0);
//! ```
//!
//! # Performance
//!
//! The per-block hot paths are engineered to work a machine word at a
//! time rather than bit by bit:
//!
//! * **Staging-word bitstream** — [`bitstream::BitWriter`] accumulates
//!   bits in a 64-bit staging word and flushes completed bytes with one
//!   bulk copy per `write`; [`bitstream::BitReader`] serves any read or
//!   peek from a single (at most 16-byte) window load. Codecs fuse each
//!   token's prefix, index and literal fields into one `write`/`peek`
//!   pair, so a C-PACK word or an FPC pattern costs two bitstream calls
//!   end to end. The wire format is bit-identical to the original
//!   byte-loop implementation (see `tests/bitstream_equivalence.rs`).
//! * **LUT Huffman decode** — [`e2mc`]'s canonical code builds a flat
//!   decode table indexed by the longest-code-length window at training
//!   time; decoding a symbol is one table load (plus a raw 16-bit read
//!   for escapes) instead of a bit-serial canonical walk, the scheme used
//!   by GPU Huffman decoders (cuSZ+, Rivera et al.). Encoding uses a
//!   per-symbol `(codeword, length)` table with the escape's raw bits
//!   pre-fused, so every symbol is exactly one `write`.
//! * **Zero-alloc block codecs** — per-block state lives in fixed-size
//!   arrays (BDI value/mask bitmaps, C-PACK's FIFO dictionary, BPC's
//!   planes, E2MC's way sizes), and E2MC computes its parallel-decoding
//!   pointers from code-length sums *before* encoding, eliminating the
//!   per-way scratch writers. The only heap allocation per block is the
//!   output payload itself.
//! * **Transposed bit-planes** — BPC's DBP rotation runs as a 32×32
//!   bit-matrix transpose (Hacker's Delight §7-3), ~5 word-ops per plane
//!   instead of a 33×31 single-bit gather.
//! * **Shared trained artifacts** — [`e2mc::E2mc`] holds its trained
//!   [`e2mc::SymbolTable`] (~832 KB of precomputed encode/decode tables)
//!   behind an `Arc`. The clone-cost contract: cloning a trained codec —
//!   or any scheme built on one — is an O(1) refcount bump, **never** a
//!   copy of the tables, so harnesses instantiate one scheme per variant,
//!   threshold or worker thread against a single frozen model (the
//!   paper's one-shot sampling phase freezes the table for the life of a
//!   run; SC2 shares one trained Huffman structure across the whole cache
//!   the same way). `E2mc::shared_table` exposes the handle, and a unit
//!   test pins pointer identity across clones.
//! * **Shared block analyses** — [`e2mc::E2mc::analyze`] captures a
//!   block's per-symbol code lengths and their sum as an
//!   [`e2mc::BlockAnalysis`] (68 bytes, no payload) in one pass over the
//!   dense width table. Every size-only consumer — SLC's budget decision
//!   and Fig. 5 tree in `slc-core`, burst accounting and ratio studies in
//!   the workload harness — takes the artifact instead of re-deriving the
//!   lengths, so one analysis per block serves any number of schemes,
//!   MAGs and thresholds (pinned bit-identical to the direct path by
//!   property tests).
//! * **Bulk dictionary/geometry scans** — C-PACK probes all 16 FIFO
//!   entries at every match granularity in one branchless pass (SSE2
//!   compare+movemask on x86-64, a scalar bitmap loop elsewhere) instead
//!   of three early-exit scans, and BDI extracts the 8/4/2-byte value
//!   lanes in a single pass then plans every base+delta arm with two
//!   branchless fit-bitmap sweeps; its decoder is monomorphised per
//!   geometry so every trip count and shift is a compile-time constant.
//! * **Fixed-capacity block writer** — bounded encodes (C-PACK, BDI) use
//!   [`bitstream::FixedBitWriter`], which stages into a stack buffer with
//!   one unconditional 8-byte store per flush and allocates exactly once
//!   at `finish`, bit-identical to [`bitstream::BitWriter`].
//! * **Batched delta writes + append-into encode** — BDI packs every
//!   `64 / delta_bits` deltas of an arm into one `u64` with compile-time
//!   trip counts (monomorphised per geometry like its decoder) so the
//!   writer is touched once per staging word, not once per value; and
//!   [`BlockCompressor::compress_into`] lets the engine's per-block loop
//!   append payload bytes straight into the chunk buffer, skipping the
//!   per-block payload allocation.
//! * **Interleaved rANS entropy substrate** — [`rans`] adds a 4-lane
//!   byte-oriented rANS coder whose encode/decode inner loops are
//!   branch-free (reciprocal-multiply encode, 4096-slot LUT decode,
//!   speculative word refill), with a whole-chunk mode
//!   ([`ChunkCoder`]) that gathers one frequency table per engine chunk
//!   instead of per 128 B block.
//!
//! `cargo bench --bench codec_throughput` (crate `slc-bench`) measures
//! all of this and refreshes the repo-root `BENCH_codec.json` baseline
//! (CI fails on >30% regression against the committed baseline; see
//! `tools/check_bench_regression.py`).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bdi;
pub mod bitstream;
pub mod bpc;
pub mod codec;
pub mod cpack;
pub mod e2mc;
pub mod fpc;
pub mod hycomp;
pub mod mag;
pub mod rans;
pub mod ratio;
pub mod sc2;
pub mod symbols;

pub use codec::{BlockCodec, ChunkCoder, CodecId};
pub use mag::Mag;

/// Size of an uncompressed memory block in bytes (typical GPU block size).
pub const BLOCK_BYTES: usize = 128;

/// Size of an uncompressed memory block in bits.
pub const BLOCK_BITS: u32 = (BLOCK_BYTES as u32) * 8;

/// A memory block, the unit of compression (one 128 B L2 line / DRAM block).
pub type Block = [u8; BLOCK_BYTES];

/// Outcome of compressing one block.
///
/// A `Compressed` value records the exact bit-size of the encoding and the
/// packed payload. A compressor that cannot beat the uncompressed size
/// reports `size_bits == BLOCK_BITS` and stores the block verbatim
/// (`is_compressed() == false`), matching the "store uncompressed" leg of
/// the paper's Figure 4 flow chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compressed {
    size_bits: u32,
    payload: Vec<u8>,
    compressed: bool,
}

impl Compressed {
    /// Wraps a compressed payload of `size_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is too short to hold `size_bits` bits.
    pub fn new(size_bits: u32, payload: Vec<u8>) -> Self {
        // slc-lint: allow(assert): documented size-contract guard; on the decode path the payload length is pinned to ceil(bits/8) before construction
        assert!(
            payload.len() * 8 >= size_bits as usize,
            "payload of {} bytes cannot hold {} bits",
            payload.len(),
            size_bits
        );
        Self { size_bits, payload, compressed: true }
    }

    /// Wraps a block stored verbatim because compression did not pay off.
    pub fn uncompressed(block: &Block) -> Self {
        // slc-lint: allow(hot-path): the block's single output-payload allocation (documented contract)
        Self { size_bits: BLOCK_BITS, payload: block.to_vec(), compressed: false }
    }

    /// Exact size of the encoding in bits.
    pub fn size_bits(&self) -> u32 {
        self.size_bits
    }

    /// Size of the encoding in whole bytes (rounded up).
    pub fn size_bytes(&self) -> u32 {
        self.size_bits.div_ceil(8)
    }

    /// `true` if the block is stored in compressed form, `false` if verbatim.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// The packed payload bytes (compressed stream, or the raw block when
    /// [`is_compressed`](Self::is_compressed) is `false`).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }
}

/// A block compressor/decompressor pair.
///
/// Implementations must be lossless: `decompress(compress(b)) == b` for every
/// block `b`. This invariant is checked by property tests in every codec
/// module and by the cross-codec integration tests.
pub trait BlockCompressor {
    /// Short machine-friendly identifier (e.g. `"bdi"`, `"e2mc"`).
    fn name(&self) -> &'static str;

    /// Compresses one block.
    fn compress(&self, block: &Block) -> Compressed;

    /// Reconstructs the original block into a caller-provided buffer.
    ///
    /// The arguments are the deconstructed fields of a [`Compressed`]
    /// value; taking them apart lets the engine's chunk decoder feed
    /// wire bytes straight in — no owned `Compressed` (and no payload
    /// allocation) on the hot decode path. Callers must pass
    /// `payload.len() >= size_bytes` (the borrowed mirror of
    /// [`Compressed::new`]'s size contract); `out` is fully overwritten.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the payload was not produced by the
    /// same compressor (corrupt stream).
    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block);

    /// Reconstructs the original block (owned convenience wrapper over
    /// [`decompress_into`](Self::decompress_into); cold paths and tests).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `c` was not produced by the same
    /// compressor (corrupt stream).
    fn decompress(&self, c: &Compressed) -> Block {
        let mut out = [0u8; BLOCK_BYTES];
        self.decompress_into(c.size_bits(), c.is_compressed(), c.payload(), &mut out);
        out
    }

    /// Compressed size in bits without materialising the payload.
    ///
    /// The default delegates to [`compress`](Self::compress); codecs with a
    /// cheap size path (e.g. E2MC's code-length adder) override it.
    fn size_bits(&self, block: &Block) -> u32 {
        self.compress(block).size_bits()
    }

    /// Compresses one block, appending exactly
    /// [`size_bytes`](Compressed::size_bytes) payload bytes to `out`
    /// and returning `(size_bits, is_compressed)`.
    ///
    /// The engine's per-block loop encodes straight into the chunk
    /// buffer through this; the default delegates to
    /// [`compress`](Self::compress), and codecs whose writers can target
    /// a caller buffer (BDI) override it to skip the per-block payload
    /// allocation. Must be observationally identical to `compress`.
    fn compress_into(&self, block: &Block, out: &mut Vec<u8>) -> (u32, bool) {
        let c = self.compress(block);
        out.extend_from_slice(&c.payload()[..c.size_bytes() as usize]);
        (c.size_bits(), c.is_compressed())
    }

    /// The codec's whole-chunk coding mode, if it has one.
    ///
    /// `None` (the default) means the engine codes chunk blocks
    /// individually; a codec that amortises per-stream model setup over
    /// a whole engine chunk (rANS: one frequency table per chunk)
    /// returns itself. See [`codec::ChunkCoder`].
    fn chunk_coder(&self) -> Option<&dyn codec::ChunkCoder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressed_size_bytes_rounds_up() {
        let c = Compressed::new(9, vec![0xff, 0x80]);
        assert_eq!(c.size_bytes(), 2);
        assert_eq!(c.size_bits(), 9);
        assert!(c.is_compressed());
    }

    #[test]
    fn uncompressed_block_is_verbatim() {
        let block = [0xabu8; BLOCK_BYTES];
        let c = Compressed::uncompressed(&block);
        assert_eq!(c.size_bits(), BLOCK_BITS);
        assert!(!c.is_compressed());
        assert_eq!(c.payload(), &block[..]);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn new_rejects_short_payload() {
        let _ = Compressed::new(64, vec![0u8; 4]);
    }
}

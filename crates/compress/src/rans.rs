//! Interleaved byte-oriented rANS entropy coding (order-0).
//!
//! The entropy substrate of the batch engine: a range Asymmetric Numeral
//! System over raw bytes, the scheme GPU entropy coders use for
//! numerical data (DietGPU's general byte-wise codec; see SNIPPETS §3).
//! Where the dictionary codecs (BDI/FPC/C-PACK) exploit *structure*, a
//! byte-oriented order-0 model exploits the skewed byte histograms of
//! floating-point tensors — exponent and high-mantissa bytes concentrate
//! on a handful of values — without any alignment or type assumptions,
//! which is exactly why it composes with GPU-style numerical data: the
//! model never needs to know where a float starts.
//!
//! # Coding parameters
//!
//! * **Frequency scale** — per-symbol frequencies are normalised to a
//!   [`RANS_SCALE`] = 2^12 total, the DietGPU/ryg sweet spot: a 4096-slot
//!   decode LUT (4 KiB, L1-resident) and at most 12 bits of per-symbol
//!   state growth.
//! * **State** — 32-bit per-lane state `x ∈ [2^16, 2^32)` with 16-bit
//!   renormalisation. The interval ratio (`2^16`) times the scale
//!   (`2^12`) stays below the state ceiling, so **exactly zero or one**
//!   16-bit word moves per symbol on either side — renormalisation is a
//!   compare plus a conditionally-advanced cursor, never a loop, which
//!   is what keeps the inner loops branch-free (load/shift/mask only).
//! * **Interleave** — [`RANS_LANES`] = 4 independent states share one
//!   muxed word stream (lane of symbol `i` is `i mod 4`). The encoder
//!   runs backwards so the decoder consumes symbols and words strictly
//!   forwards; four in-flight states hide the serial multiply latency
//!   of a single rANS chain.
//! * **Division-free encode** — the per-symbol `x / freq` is a 64×64
//!   reciprocal multiply (`ceil(2^48 / freq)`, exact for every
//!   `x < 2^32`, `freq <= 4096`), so the encode step is also
//!   multiply/shift/add only.
//!
//! # Stream layout
//!
//! ```text
//! [table][states][words]
//! table  := n-1 (u8) | n symbol bytes, ascending | n × 12-bit (freq-1)
//! states := RANS_LANES × u32 LE (final encoder states)
//! words  := 16-bit renormalisation words, LE, in decode order
//! ```
//!
//! The table is serialised sparsely (only present symbols) and
//! re-validated on parse: ascending symbols, frequencies summing to
//! exactly [`RANS_SCALE`]. Decode never reads out of bounds and never
//! panics — corrupt streams surface as `Err` (or a guarded panic at the
//! [`BlockCompressor`] boundary, matching the other codecs' contract).
//!
//! # Two coding granularities
//!
//! [`Rans`] implements [`BlockCompressor`] per 128 B block (each block
//! stream carries its own table), which is what the registry, the
//! hardening barrages and the `compress_block/rans` bench row exercise.
//! But the natural unit for an entropy coder is the engine *chunk*: one
//! frequency gather and one shared table amortised over all blocks of a
//! 64 KiB chunk. [`Rans`] therefore also implements
//! [`ChunkCoder`](crate::codec::ChunkCoder), and the engine routes whole
//! chunks through [`encode_stream`]/[`decode_stream`] — zero container
//! format changes, because a `Coded` chunk's byte interpretation belongs
//! to the codec named in the header.

use crate::bitstream::{BitReader, BitWriter};
use crate::codec::ChunkCoder;
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS};

/// log2 of the frequency scale: frequencies are normalised to 2^12.
pub const RANS_SCALE_BITS: u32 = 12;

/// The frequency scale every serialised table sums to.
pub const RANS_SCALE: u32 = 1 << RANS_SCALE_BITS;

/// Number of interleaved coder lanes sharing one word stream.
pub const RANS_LANES: usize = 4;

/// Lower bound of the normalised state interval (16-bit renorm).
const RANS_L: u32 = 1 << 16;

/// Serialised size of the lane-state section.
const STATE_BYTES: usize = RANS_LANES * 4;

/// Normalises a byte histogram to frequencies summing to exactly
/// [`RANS_SCALE`]; `None` when every count is zero. Deterministic: every
/// present symbol gets `max(1, floor(count * SCALE / total))`, then the
/// rounding error is settled against the most frequent symbol(s), which
/// absorb it with the least ratio distortion.
pub fn normalize_freqs(counts: &[u32; 256]) -> Option<[u16; 256]> {
    let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    if total == 0 {
        return None;
    }
    let mut freq = [0u16; 256];
    let mut sum = 0u32;
    for (f, &c) in freq.iter_mut().zip(counts) {
        if c > 0 {
            *f = ((u64::from(c) * u64::from(RANS_SCALE) / total) as u16).max(1);
            sum += u32::from(*f);
        }
    }
    // Initial sum is within ±256 of the scale (≤ 4096 from the floors,
    // plus one per bumped-from-zero symbol); settle the difference
    // against the current largest frequency until exact.
    while sum > RANS_SCALE {
        let i = argmax(&freq);
        let take = (sum - RANS_SCALE).min(u32::from(freq[i]) - 1);
        freq[i] -= take as u16;
        sum -= take;
    }
    if sum < RANS_SCALE {
        let i = argmax(&freq);
        freq[i] += (RANS_SCALE - sum) as u16;
    }
    Some(freq)
}

/// First index of the largest frequency (deterministic tiebreak).
fn argmax(freq: &[u16; 256]) -> usize {
    let mut best = 0usize;
    for (i, &f) in freq.iter().enumerate() {
        if f > freq[best] {
            best = i;
        }
    }
    best
}

/// Four-way unrolled byte histogram (split counters avoid the
/// store-to-load dependency of a single table on streaky data).
fn histogram(data: &[u8]) -> [u32; 256] {
    let mut c = [[0u32; 256]; 4];
    let mut it = data.chunks_exact(4);
    for quad in &mut it {
        c[0][quad[0] as usize] += 1;
        c[1][quad[1] as usize] += 1;
        c[2][quad[2] as usize] += 1;
        c[3][quad[3] as usize] += 1;
    }
    for &b in it.remainder() {
        c[0][b as usize] += 1;
    }
    let mut out = [0u32; 256];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = c[0][i] + c[1][i] + c[2][i] + c[3][i];
    }
    out
}

/// Per-symbol encoder tables: frequency, cumulative start, the scale
/// complement (`SCALE - freq`, so the encode step is one fused
/// multiply-add) and the `ceil(2^48 / freq)` reciprocal.
struct EncTable {
    freq: [u32; 256],
    cum: [u32; 256],
    cmpl: [u32; 256],
    rcp: [u64; 256],
}

impl EncTable {
    fn build(freq: &[u16; 256]) -> Self {
        let mut t = EncTable { freq: [0; 256], cum: [0; 256], cmpl: [0; 256], rcp: [0; 256] };
        let mut cum = 0u32;
        for (s, &fr) in freq.iter().enumerate() {
            let f = u32::from(fr);
            t.freq[s] = f;
            t.cum[s] = cum;
            t.cmpl[s] = RANS_SCALE - f;
            if f > 0 {
                // ceil(2^48 / f): exact floor division for every state
                // below 2^32 because x * (ceil - 2^48/f) < 2^48.
                t.rcp[s] = ((1u128 << 48).div_ceil(u128::from(f))) as u64;
            }
            cum += f;
        }
        debug_assert_eq!(cum, RANS_SCALE);
        t
    }
}

/// Decoder tables: the 4096-slot symbol LUT plus per-symbol freq/cum.
struct DecTable {
    slot_sym: Box<[u8; RANS_SCALE as usize]>,
    freq: [u16; 256],
    cum: [u16; 256],
}

impl DecTable {
    fn build(freq: &[u16; 256]) -> Self {
        // slc-lint: allow(hot-path): 4 KiB decode table, built once per stream and amortised over the whole chunk
        let mut slot_sym = Box::new([0u8; RANS_SCALE as usize]);
        let mut cum = [0u16; 256];
        let mut at = 0usize;
        for s in 0..256 {
            cum[s] = at as u16;
            let f = freq[s] as usize;
            slot_sym[at..at + f].fill(s as u8);
            at += f;
        }
        debug_assert_eq!(at, RANS_SCALE as usize);
        DecTable { slot_sym, freq: *freq, cum }
    }
}

/// Serialises the sparse frequency table (see the module docs layout).
fn write_table(freq: &[u16; 256], out: &mut Vec<u8>) {
    // slc-lint: allow(hot-path): per-stream table serialisation scratch, amortised over the whole chunk
    let present: Vec<u8> = (0u16..256).filter(|&s| freq[s as usize] > 0).map(|s| s as u8).collect();
    debug_assert!(!present.is_empty());
    out.push((present.len() - 1) as u8);
    out.extend_from_slice(&present);
    let mut w = BitWriter::with_capacity_bits(present.len() as u32 * RANS_SCALE_BITS);
    for &s in &present {
        // freq - 1 so the single-symbol table's 4096 fits the 12-bit field.
        w.write(u64::from(freq[s as usize]) - 1, RANS_SCALE_BITS);
    }
    let (bytes, _) = w.finish();
    out.extend_from_slice(&bytes);
}

/// Reads the symbol-count byte of a serialised table. The wire encodes
/// `n - 1` in one byte, so the returned count is always in `1..=256` —
/// but the *byte* is attacker-controlled, so this is a registered taint
/// source (`tools/lint/untrusted.txt`) and downstream layout arithmetic
/// must be guarded or carry a reviewed waiver.
fn table_count(src: &[u8]) -> Result<usize, &'static str> {
    let &n_minus_1 = src.first().ok_or("rans table truncated")?;
    Ok(n_minus_1 as usize + 1)
}

/// Reads one `RANS_SCALE_BITS`-wide frequency field. The wire encodes
/// `f - 1`, so the result is in `1..=RANS_SCALE` — a registered taint
/// source like [`table_count`].
fn table_freq(r: &mut BitReader) -> u32 {
    r.read(RANS_SCALE_BITS) as u32 + 1
}

/// Parses and validates a serialised table; returns the frequencies and
/// the number of bytes consumed. Registered as a taint *sanitizer*: a
/// table that survives the length, ascending-symbol, and frequency-sum
/// checks below is safe to decode against.
fn parse_table(src: &[u8]) -> Result<([u16; 256], usize), &'static str> {
    let n = table_count(src)?;
    // slc-lint: trusted(n is 1..=256 by u8 + 1 construction, so the layout arithmetic cannot overflow)
    let used = 1 + n + (n * RANS_SCALE_BITS as usize).div_ceil(8);
    if src.len() < used {
        return Err("rans table truncated");
    }
    // slc-lint: trusted(1 + n <= used <= src.len() was checked just above, so the symbol slice is in bounds)
    let syms = &src[1..1 + n];
    let mut freq = [0u16; 256];
    // slc-lint: trusted(slice lies inside the length-checked used prefix; n <= 256 keeps the bit count far below u32::MAX)
    let mut r = BitReader::new(&src[1 + n..used], (n as u32) * RANS_SCALE_BITS);
    let mut sum = 0u32;
    let mut prev: i32 = -1;
    for &s in syms {
        if i32::from(s) <= prev {
            return Err("rans table symbols not ascending");
        }
        prev = i32::from(s);
        let f = table_freq(&mut r);
        freq[s as usize] = f as u16;
        // slc-lint: trusted(at most 256 addends of at most RANS_SCALE each — the sum stays far below u32::MAX)
        sum += f;
    }
    if sum != RANS_SCALE {
        return Err("rans table frequencies do not sum to the scale");
    }
    Ok((freq, used))
}

/// One encoder step for symbol `s` on state `x`: branchless renorm (an
/// unconditional word store with a conditionally-advanced cursor), then
/// the reciprocal-multiply state update.
#[inline(always)]
fn enc_step(x: u32, s: u8, t: &EncTable, words: &mut [u16], wpos: &mut usize) -> u32 {
    let i = s as usize;
    debug_assert!(t.freq[i] > 0, "encoding a symbol absent from the table");
    let x_max = u64::from(t.freq[i]) << 20;
    words[*wpos] = x as u16;
    let renorm = u64::from(x) >= x_max;
    *wpos += renorm as usize;
    let x = if renorm { x >> 16 } else { x };
    let q = ((u128::from(x) * u128::from(t.rcp[i])) >> 48) as u32;
    // x' = (x/f) << 12 | (x%f) + cum  ==  x + cum + (x/f) * (SCALE - f)
    x.wrapping_add(t.cum[i]).wrapping_add(q.wrapping_mul(t.cmpl[i]))
}

/// Encodes `data` with `t`, appending `[states][words]` to `out`.
///
/// Symbols are processed back to front (lane of symbol `i` is
/// `i % RANS_LANES`) and the word buffer is emitted reversed, so the
/// decoder walks both symbols and words strictly forwards.
fn rans_encode(data: &[u8], t: &EncTable, out: &mut Vec<u8>) {
    let n = data.len();
    let mut states = [RANS_L; RANS_LANES];
    // At most one 16-bit word per symbol, plus one slot of slack for the
    // unconditional store in enc_step.
    // slc-lint: allow(hot-path): per-stream word staging buffer — the encode's single scratch allocation
    let mut words = vec![0u16; n + 1];
    let mut wpos = 0usize;
    let mut i = n;
    // Ragged head first (in backward order), then whole lane groups.
    while !i.is_multiple_of(RANS_LANES) {
        i -= 1;
        states[i % RANS_LANES] =
            enc_step(states[i % RANS_LANES], data[i], t, &mut words, &mut wpos);
    }
    while i > 0 {
        i -= RANS_LANES;
        // Descending symbol order within the group: lanes 3, 2, 1, 0.
        for lane in (0..RANS_LANES).rev() {
            states[lane] = enc_step(states[lane], data[i + lane], t, &mut words, &mut wpos);
        }
    }
    out.reserve(STATE_BYTES + wpos * 2);
    for &s in &states {
        out.extend_from_slice(&s.to_le_bytes());
    }
    for w in words[..wpos].iter().rev() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Encodes `data` as one self-contained rANS stream
/// (`[table][states][words]`, see the module docs). The frequency table
/// is gathered from `data` itself — the whole-chunk path that amortises
/// one table over every block of an engine chunk.
///
/// # Panics
///
/// Panics on empty input (no meaningful table exists).
pub fn encode_stream(data: &[u8]) -> Vec<u8> {
    // slc-lint: allow(assert): documented API-contract panic, checked once per stream on the encode side
    assert!(!data.is_empty(), "rANS stream encode needs at least one byte");
    let counts = histogram(data);
    // slc-lint: allow(hot-path): infallible after the non-empty assert — a non-empty histogram always has a non-zero count
    let freq = normalize_freqs(&counts).expect("non-empty data has a non-zero count");
    let enc = EncTable::build(&freq);
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    write_table(&freq, &mut out);
    rans_encode(data, &enc, &mut out);
    out
}

/// Decodes a stream produced by [`encode_stream`] into `dst` (whose
/// length is the original data length — the engine knows it from the
/// container geometry). Corrupt input yields `Err`, never a panic or an
/// out-of-bounds access; a full-size but wrong decode is impossible
/// because the word cursor and final lane states are checked.
pub fn decode_stream(src: &[u8], dst: &mut [u8]) -> Result<(), &'static str> {
    let (freq, used) = parse_table(src)?;
    let dec = DecTable::build(&freq);
    let body = &src[used..];
    if body.len() < STATE_BYTES {
        return Err("rans stream too short for lane states");
    }
    let mut states = [0u32; RANS_LANES];
    let (state_words, _) = body.as_chunks::<4>();
    for (s, c) in states.iter_mut().zip(state_words) {
        *s = u32::from_le_bytes(*c);
    }
    if states.iter().any(|&x| x < RANS_L) {
        return Err("rans lane state below the normalised interval");
    }
    let words = &body[STATE_BYTES..];
    let limit = words.len();
    if !limit.is_multiple_of(2) {
        return Err("rans word stream misaligned");
    }
    let mut pos = 0usize;
    let slot_mask = RANS_SCALE - 1;
    // One step per lane, branch-free: LUT symbol lookup, multiply/shift
    // state update, speculative word load with a conditionally-advanced
    // cursor. A corrupt stream can only desynchronise the cursor or the
    // states, both checked after the loop.
    let mut step = |x: u32, out: &mut u8| {
        let slot = x & slot_mask;
        let s = dec.slot_sym[slot as usize];
        *out = s;
        let f = u32::from(dec.freq[s as usize]);
        let c = u32::from(dec.cum[s as usize]);
        // slot ∈ [cum, cum+f) by LUT construction, so no underflow.
        let x = f.wrapping_mul(x >> RANS_SCALE_BITS).wrapping_add(slot - c);
        let w = if pos + 2 <= limit {
            u32::from(u16::from_le_bytes([words[pos], words[pos + 1]]))
        } else {
            0
        };
        let refill = x < RANS_L;
        pos += 2 * refill as usize;
        if refill {
            (x << 16) | w
        } else {
            x
        }
    };
    let mut chunks = dst.chunks_exact_mut(RANS_LANES);
    for group in &mut chunks {
        // Fixed trip count: unrolls to four independent lane steps.
        for (lane, out) in group.iter_mut().enumerate() {
            states[lane] = step(states[lane], out);
        }
    }
    for (lane, out) in chunks.into_remainder().iter_mut().enumerate() {
        states[lane] = step(states[lane], out);
    }
    if pos != limit {
        return Err("rans word stream length mismatch");
    }
    if states.iter().any(|&x| x != RANS_L) {
        return Err("rans lane states corrupt at end of stream");
    }
    Ok(())
}

/// Scalar reference decoder: one symbol at a time, linear-search symbol
/// lookup, branchy renormalisation — a direct transcription of the rANS
/// decode recurrence sharing none of [`decode_stream`]'s lane buffering,
/// LUT or branchless tricks. Property tests pin the interleaved decoder
/// byte-identical to this.
pub fn decode_reference(src: &[u8], dst: &mut [u8]) -> Result<(), &'static str> {
    let (freq, used) = parse_table(src)?;
    let mut cum = [0u32; 257];
    for s in 0..256 {
        cum[s + 1] = cum[s] + u32::from(freq[s]);
    }
    let body = &src[used..];
    if body.len() < STATE_BYTES || !(body.len() - STATE_BYTES).is_multiple_of(2) {
        return Err("rans stream body malformed");
    }
    let mut states = [0u32; RANS_LANES];
    let (state_words, _) = body.as_chunks::<4>();
    for (s, c) in states.iter_mut().zip(state_words) {
        *s = u32::from_le_bytes(*c);
    }
    let words = &body[STATE_BYTES..];
    let mut pos = 0usize;
    for (i, out) in dst.iter_mut().enumerate() {
        let x = &mut states[i % RANS_LANES];
        let slot = *x & (RANS_SCALE - 1);
        let s = (0usize..256).find(|&s| slot < cum[s + 1]).expect("cum[256] is the scale");
        *x = u32::from(freq[s]) * (*x >> RANS_SCALE_BITS) + slot - cum[s];
        if *x < RANS_L {
            if pos + 2 > words.len() {
                return Err("rans word stream exhausted");
            }
            *x = (*x << 16) | u32::from(u16::from_le_bytes([words[pos], words[pos + 1]]));
            pos += 2;
        }
        *out = s as u8;
    }
    if pos != words.len() || states.iter().any(|&x| x != RANS_L) {
        return Err("rans stream corrupt at end");
    }
    Ok(())
}

/// The rANS block codec (and whole-chunk coder — see the module docs).
///
/// ```
/// use slc_compress::{BlockCompressor, rans::Rans};
///
/// let rans = Rans::new();
/// let block = [0x42u8; 128]; // one symbol: near-zero entropy
/// let c = rans.compress(&block);
/// assert!(c.size_bits() < 128 * 8);
/// assert_eq!(rans.decompress(&c), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Rans {
    _private: (),
}

impl Rans {
    /// Creates a rANS codec.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlockCompressor for Rans {
    fn name(&self) -> &'static str {
        "rans"
    }

    fn compress(&self, block: &Block) -> Compressed {
        let stream = encode_stream(block);
        let bits = (stream.len() * 8) as u32;
        if bits >= BLOCK_BITS {
            return Compressed::uncompressed(block);
        }
        Compressed::new(bits, stream)
    }

    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block) {
        if !compressed {
            out.copy_from_slice(&payload[..crate::BLOCK_BYTES]);
            return;
        }
        let src = &payload[..(size_bits as usize).div_ceil(8)];
        if let Err(reason) = decode_stream(src, out) {
            // slc-lint: allow(hot-path): maps the stream decoder's Err to the block API's documented guard panic, contained by the engine's per-chunk catch_unwind
            panic!("corrupt rANS stream: {reason}");
        }
    }

    fn chunk_coder(&self) -> Option<&dyn ChunkCoder> {
        Some(self)
    }
}

impl ChunkCoder for Rans {
    fn encode_chunk(&self, chunk: &[u8]) -> Vec<u8> {
        encode_stream(chunk)
    }

    fn decode_chunk(&self, src: &[u8], dst: &mut [u8]) -> Result<(), &'static str> {
        decode_stream(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) {
        let stream = encode_stream(data);
        let mut out = vec![0u8; data.len()];
        decode_stream(&stream, &mut out).expect("own stream decodes");
        assert_eq!(out, data, "roundtrip of {} bytes", data.len());
        let mut scalar = vec![0u8; data.len()];
        decode_reference(&stream, &mut scalar).expect("reference decodes");
        assert_eq!(scalar, out, "interleaved and scalar decoders agree");
    }

    #[test]
    fn single_symbol_stream_is_table_plus_states_only() {
        let data = vec![0xabu8; 1000];
        let stream = encode_stream(&data);
        // n=1 table: 1 + 1 + 2 bytes, then 16 state bytes, zero words
        // (freq 4096 never renormalises).
        assert_eq!(stream.len(), 4 + STATE_BYTES);
        roundtrip(&data);
    }

    #[test]
    fn ragged_tails_roundtrip() {
        let data: Vec<u8> = (0..1031u32).map(|i| (i * 7 % 40) as u8).collect();
        for len in [1usize, 2, 3, 4, 5, 7, 127, 128, 129, 1023, 1031] {
            roundtrip(&data[..len]);
        }
    }

    #[test]
    fn uniform_256_roundtrips() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 256) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 4095:1 skew — near-zero entropy, must compress hard.
        let mut data = vec![7u8; 8192];
        data[100] = 200;
        data[5000] = 200;
        let stream = encode_stream(&data);
        assert!(stream.len() < data.len() / 8, "skewed stream must compress: {}", stream.len());
        roundtrip(&data);
    }

    #[test]
    fn normalization_is_exact_and_deterministic() {
        let mut counts = [0u32; 256];
        counts[0] = 1;
        counts[1] = 1_000_000;
        counts[255] = 3;
        let freq = normalize_freqs(&counts).unwrap();
        assert_eq!(freq.iter().map(|&f| u32::from(f)).sum::<u32>(), RANS_SCALE);
        assert!(freq[0] >= 1 && freq[255] >= 1, "present symbols keep a nonzero slot");
        assert_eq!(normalize_freqs(&counts).unwrap(), freq, "deterministic");
        assert_eq!(normalize_freqs(&[0u32; 256]), None);
        let mut single = [0u32; 256];
        single[42] = 17;
        let freq = normalize_freqs(&single).unwrap();
        assert_eq!(u32::from(freq[42]), RANS_SCALE);
    }

    #[test]
    fn table_roundtrips_and_rejects_corruption() {
        let data: Vec<u8> = (0..512u32).map(|i| (i % 11) as u8).collect();
        let freq = normalize_freqs(&histogram(&data)).unwrap();
        let mut bytes = Vec::new();
        write_table(&freq, &mut bytes);
        let (parsed, used) = parse_table(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed, freq);
        // Truncations and a broken frequency sum must be rejected.
        for cut in 0..bytes.len() {
            assert!(parse_table(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(parse_table(&[]).is_err());
        let mut unsorted = bytes.clone();
        unsorted.swap(1, 2);
        assert!(parse_table(&unsorted).is_err(), "non-ascending symbols rejected");
    }

    #[test]
    fn corrupt_streams_error_out() {
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 17) as u8).collect();
        let stream = encode_stream(&data);
        let mut out = vec![0u8; data.len()];
        // Truncation at every boundary: error, never a panic.
        for cut in 0..stream.len() {
            assert!(
                decode_stream(&stream[..cut], &mut out).is_err(),
                "truncation at {cut} must error"
            );
        }
        // Dropping trailing words desynchronises the cursor check even
        // when the table still parses.
        let mut short = stream.clone();
        short.truncate(stream.len() - 2);
        assert!(decode_stream(&short, &mut out).is_err());
    }

    #[test]
    fn block_codec_roundtrips_and_registers() {
        let rans = Rans::new();
        assert_eq!(rans.name(), "rans");
        assert!(rans.chunk_coder().is_some(), "rans codes whole chunks");
        let mut block = [0u8; crate::BLOCK_BYTES];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i % 9) as u8;
        }
        let c = rans.compress(&block);
        assert!(c.is_compressed(), "9-symbol block must compress");
        assert_eq!(rans.decompress(&c), block);
        // Noise block: per-block table overhead forces verbatim storage.
        let mut state = 0x1234_5678u64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 33) as u8;
        }
        let c = rans.compress(&block);
        assert!(!c.is_compressed());
        assert_eq!(rans.decompress(&c), block);
    }

    proptest! {
        #[test]
        fn prop_random_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..4096)) {
            roundtrip(&data);
        }

        #[test]
        fn prop_skewed_bytes_roundtrip(
            seeds in proptest::collection::vec(0u8..4, 1..2048),
            lo in any::<u8>(),
        ) {
            // Tiny alphabets at arbitrary offsets: the adversarial case
            // for normalisation (huge frequencies, few slots).
            let data: Vec<u8> = seeds.iter().map(|&s| lo.wrapping_add(s)).collect();
            roundtrip(&data);
        }

        #[test]
        fn prop_normalized_tables_sum_to_scale(counts in proptest::collection::vec(0u32..=u32::MAX / 256, 256)) {
            let arr: [u32; 256] = counts.try_into().unwrap();
            if let Some(freq) = normalize_freqs(&arr) {
                prop_assert_eq!(freq.iter().map(|&f| u32::from(f)).sum::<u32>(), RANS_SCALE);
                for s in 0..256 {
                    prop_assert_eq!(arr[s] > 0, freq[s] > 0, "support preserved at {}", s);
                }
            }
        }
    }
}

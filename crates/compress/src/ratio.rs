//! Raw and effective compression-ratio bookkeeping (Fig. 1 semantics).
//!
//! * The **raw** ratio ignores MAG: `Σ uncompressed / Σ compressed`.
//! * The **effective** ratio scales every compressed size up to the nearest
//!   MAG multiple first, which is what the memory system actually transfers.

use crate::mag::Mag;

/// Accumulates per-block compressed sizes and reports raw/effective ratios.
///
/// ```
/// use slc_compress::{ratio::RatioAccumulator, mag::Mag};
///
/// let mut acc = RatioAccumulator::new(Mag::GDDR5, 128);
/// acc.record_bytes(36); // raw 3.56x, effective 2x for this block
/// assert!((acc.raw_ratio() - 128.0 / 36.0).abs() < 1e-9);
/// assert!((acc.effective_ratio() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RatioAccumulator {
    mag: Mag,
    block_bytes: u32,
    blocks: u64,
    raw_bytes: u64,
    effective_bytes: u64,
}

impl RatioAccumulator {
    /// Creates an accumulator for blocks of `block_bytes` under `mag`.
    pub fn new(mag: Mag, block_bytes: u32) -> Self {
        Self { mag, block_bytes, blocks: 0, raw_bytes: 0, effective_bytes: 0 }
    }

    /// Records one block compressed to `bytes`.
    pub fn record_bytes(&mut self, bytes: u32) {
        let capped = bytes.min(self.block_bytes);
        self.blocks += 1;
        self.raw_bytes += u64::from(capped);
        self.effective_bytes += u64::from(self.mag.round_up_bytes(capped).min(self.block_bytes));
    }

    /// Records one block compressed to `bits`.
    pub fn record_bits(&mut self, bits: u32) {
        self.record_bytes(bits.div_ceil(8));
    }

    /// Number of blocks recorded.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Raw compression ratio (MAG-oblivious). Returns 1.0 when empty.
    pub fn raw_ratio(&self) -> f64 {
        if self.blocks == 0 {
            return 1.0;
        }
        let original = self.blocks as f64 * f64::from(self.block_bytes);
        original / self.raw_bytes.max(1) as f64
    }

    /// Effective compression ratio (sizes rounded up to MAG multiples).
    pub fn effective_ratio(&self) -> f64 {
        if self.blocks == 0 {
            return 1.0;
        }
        let original = self.blocks as f64 * f64::from(self.block_bytes);
        original / self.effective_bytes.max(1) as f64
    }

    /// Total effective bytes transferred, i.e. what the bus actually moves.
    pub fn effective_bytes(&self) -> u64 {
        self.effective_bytes
    }

    /// Merges another accumulator (must share MAG and block size).
    ///
    /// # Panics
    ///
    /// Panics when the configurations differ.
    pub fn merge(&mut self, other: &RatioAccumulator) {
        assert_eq!(self.mag, other.mag, "cannot merge accumulators with different MAGs");
        assert_eq!(self.block_bytes, other.block_bytes);
        self.blocks += other.blocks;
        self.raw_bytes += other.raw_bytes;
        self.effective_bytes += other.effective_bytes;
    }
}

/// Geometric mean of a slice of positive values; 0.0 for an empty slice.
///
/// The paper reports GM across benchmarks for every figure.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_accumulator_reports_unity() {
        let acc = RatioAccumulator::new(Mag::GDDR5, 128);
        assert_eq!(acc.raw_ratio(), 1.0);
        assert_eq!(acc.effective_ratio(), 1.0);
        assert_eq!(acc.blocks(), 0);
    }

    #[test]
    fn paper_intro_example() {
        // "a compression ratio that seems close to 4x (3.6x ...) is actually
        // only 2x" — 36 B out of 128 B.
        let mut acc = RatioAccumulator::new(Mag::GDDR5, 128);
        acc.record_bytes(36);
        assert!((acc.raw_ratio() - 3.5555).abs() < 1e-3);
        assert!((acc.effective_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_blocks_are_capped() {
        let mut acc = RatioAccumulator::new(Mag::GDDR5, 128);
        acc.record_bytes(200);
        assert_eq!(acc.raw_ratio(), 1.0);
        assert_eq!(acc.effective_ratio(), 1.0);
    }

    #[test]
    fn merge_combines_totals() {
        let mut a = RatioAccumulator::new(Mag::GDDR5, 128);
        let mut b = RatioAccumulator::new(Mag::GDDR5, 128);
        a.record_bytes(32);
        b.record_bytes(64);
        a.merge(&b);
        assert_eq!(a.blocks(), 2);
        assert!((a.raw_ratio() - 256.0 / 96.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different MAGs")]
    fn merge_rejects_mismatched_mag() {
        let mut a = RatioAccumulator::new(Mag::GDDR5, 128);
        let b = RatioAccumulator::new(Mag::WIDE_64, 128);
        a.merge(&b);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_effective_never_exceeds_raw(sizes in proptest::collection::vec(0u32..=128, 1..100)) {
            let mut acc = RatioAccumulator::new(Mag::GDDR5, 128);
            for s in sizes {
                acc.record_bytes(s);
            }
            // Rounding up sizes can only lower the ratio.
            prop_assert!(acc.effective_ratio() <= acc.raw_ratio() + 1e-12);
            prop_assert!(acc.effective_ratio() >= 1.0);
        }

        #[test]
        fn prop_gm_between_min_and_max(vals in proptest::collection::vec(0.1f64..10.0, 1..20)) {
            let gm = geometric_mean(&vals);
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(gm >= min - 1e-12 && gm <= max + 1e-12);
        }
    }
}

//! Online symbol-frequency sampling for E2MC.
//!
//! E2MC estimates symbol probabilities by sampling the application's memory
//! traffic (the paper uses an online sampling phase of 20 M instructions
//! and then freezes the code tables). This module is the software
//! equivalent: feed it blocks, then build a [`SymbolTable`](super::SymbolTable).

use crate::symbols::block_to_symbols;
use crate::Block;

/// Accumulates 16-bit symbol frequencies over sampled blocks.
#[derive(Clone)]
pub struct SymbolSampler {
    counts: Vec<u64>,
    blocks: u64,
    max_blocks: Option<u64>,
}

impl std::fmt::Debug for SymbolSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolSampler")
            .field("blocks", &self.blocks)
            .field("distinct_symbols", &self.distinct_symbols())
            .field("max_blocks", &self.max_blocks)
            .finish()
    }
}

impl Default for SymbolSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolSampler {
    /// Creates an unbounded sampler.
    pub fn new() -> Self {
        Self { counts: vec![0; 1 << 16], blocks: 0, max_blocks: None }
    }

    /// Creates a sampler that ignores blocks after the first `max_blocks`
    /// (the online-sampling cutoff).
    pub fn with_limit(max_blocks: u64) -> Self {
        Self { max_blocks: Some(max_blocks), ..Self::new() }
    }

    /// Records the 64 symbols of one block; returns `false` once the
    /// sampling window is exhausted.
    pub fn sample_block(&mut self, block: &Block) -> bool {
        if let Some(limit) = self.max_blocks {
            if self.blocks >= limit {
                return false;
            }
        }
        self.blocks += 1;
        for s in block_to_symbols(block) {
            self.counts[s as usize] += 1;
        }
        true
    }

    /// Records every block of a byte buffer (zero-padding the tail block).
    pub fn sample_bytes(&mut self, bytes: &[u8]) {
        for block in crate::symbols::blocks_of(bytes) {
            if !self.sample_block(&block) {
                break;
            }
        }
    }

    /// Number of blocks sampled so far.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Frequency of one symbol.
    pub fn count(&self, symbol: u16) -> u64 {
        self.counts[symbol as usize]
    }

    /// Number of distinct symbols observed.
    pub fn distinct_symbols(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The `k` most frequent symbols, most frequent first; ties broken by
    /// symbol value for determinism.
    pub fn top_symbols(&self, k: usize) -> Vec<(u16, u64)> {
        let mut live: Vec<(u16, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(s, &c)| (s as u16, c))
            .collect();
        live.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s));
        live.truncate(k);
        live
    }

    /// Total symbol occurrences recorded.
    pub fn total(&self) -> u64 {
        self.blocks * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BLOCK_BYTES;

    fn block_of_symbol(sym: u16) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for c in b.chunks_exact_mut(2) {
            c.copy_from_slice(&sym.to_le_bytes());
        }
        b
    }

    #[test]
    fn counts_accumulate() {
        let mut s = SymbolSampler::new();
        s.sample_block(&block_of_symbol(7));
        s.sample_block(&block_of_symbol(7));
        s.sample_block(&block_of_symbol(9));
        assert_eq!(s.count(7), 128);
        assert_eq!(s.count(9), 64);
        assert_eq!(s.blocks(), 3);
        assert_eq!(s.total(), 192);
        assert_eq!(s.distinct_symbols(), 2);
    }

    #[test]
    fn limit_stops_sampling() {
        let mut s = SymbolSampler::with_limit(1);
        assert!(s.sample_block(&block_of_symbol(1)));
        assert!(!s.sample_block(&block_of_symbol(2)));
        assert_eq!(s.count(2), 0);
        assert_eq!(s.blocks(), 1);
    }

    #[test]
    fn top_symbols_orders_by_frequency_then_value() {
        let mut s = SymbolSampler::new();
        s.sample_block(&block_of_symbol(5));
        s.sample_block(&block_of_symbol(3));
        let top = s.top_symbols(10);
        // Equal counts: smaller symbol first.
        assert_eq!(top, vec![(3, 64), (5, 64)]);
        assert_eq!(s.top_symbols(1).len(), 1);
    }

    #[test]
    fn sample_bytes_pads_tail() {
        let mut s = SymbolSampler::new();
        s.sample_bytes(&[0xff; 2]);
        assert_eq!(s.blocks(), 1);
        assert_eq!(s.count(0xffff), 1);
        assert_eq!(s.count(0), 63);
    }
}

//! The shared per-block analysis artifact of the SLC pipeline.
//!
//! Every SLC decision — the Fig. 4 budget comparison and the Fig. 5
//! truncation selection — is a pure function of a block's per-symbol
//! canonical-Huffman code lengths, the very lengths E2MC sums to size the
//! block before encoding it. [`BlockAnalysis`] captures exactly that
//! (lengths + their sum, no payload), so one cheap [`E2mc::analyze`] pass
//! can serve any number of consumers: the E2MC size model, N SLC schemes
//! at different MAGs/thresholds/variants, ratio studies and burst
//! accounting — the phase split cuSZ and the GPU Huffman-decode work use
//! to separate histogram/codebook construction from coding.
//!
//! [`E2mc::analyze`]: super::E2mc::analyze

use crate::symbols::SYMBOLS_PER_BLOCK;
use crate::BLOCK_BITS;

use super::HEADER_BITS;

/// Aligned sums of the Fig. 5 adder tree above its leaf level: 32 pair
/// sums, 16 sums of 4, 8 of 8, 4 of 16, 2 of 32 and the 64-symbol root,
/// concatenated level by level.
pub const TREE_SUM_NODES: usize = SYMBOLS_PER_BLOCK - 1;

/// Per-symbol code lengths, the Fig. 5 tree's level sums and their total
/// for one analysed block.
///
/// Produced by [`E2mc::analyze`](super::E2mc::analyze) in a single pass
/// over the dense width table; carries **no payload**, only the sizing
/// facts every downstream decision needs. All derived quantities
/// (`slc-core`'s budget decision and tree selection, burst counts, ratio
/// accumulators) are deterministic functions of this value, so computing
/// it once per block and sharing the artifact is bit-identical to
/// re-deriving it at every consumer. The adder tree's intermediate sums
/// are part of the artifact: the hardware computes them anyway while
/// summing the block size, so every scheme/MAG/threshold sweep that
/// re-decides over a shared analysis reads the tree instead of rebuilding
/// it per decision.
///
/// Lengths are stored as bytes (the widest encoding is the escape code
/// plus 16 raw bits, well under 256) and tree sums as `u16` (the root is
/// at most 64 × 255 = 16320 bits), keeping the artifact at 196 bytes so
/// snapshot-level caches of hundreds of thousands of analyses stay cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAnalysis {
    /// Encoded length of each of the 64 symbols in bits (escape symbols
    /// cost their escape codeword plus 16 raw bits).
    lengths: [u8; SYMBOLS_PER_BLOCK],
    /// The adder tree's aligned sums above the leaf level, levels
    /// concatenated bottom-up (see [`TREE_SUM_NODES`]).
    tree_sums: [u16; TREE_SUM_NODES],
    /// Sum of `lengths` — the data portion of every framing's size.
    total_code_bits: u32,
}

impl BlockAnalysis {
    /// Builds an analysis from per-symbol widths as the dense table
    /// stores them (the [`E2mc::analyze`](super::E2mc::analyze) path).
    pub(super) fn from_widths(lengths: [u8; SYMBOLS_PER_BLOCK]) -> Self {
        let mut tree_sums = [0u16; TREE_SUM_NODES];
        for i in 0..SYMBOLS_PER_BLOCK / 2 {
            tree_sums[i] = u16::from(lengths[2 * i]) + u16::from(lengths[2 * i + 1]);
        }
        let (mut prev, mut out, mut width) = (0usize, SYMBOLS_PER_BLOCK / 2, SYMBOLS_PER_BLOCK / 4);
        while width >= 1 {
            for i in 0..width {
                tree_sums[out + i] = tree_sums[prev + 2 * i] + tree_sums[prev + 2 * i + 1];
            }
            prev = out;
            out += width;
            width /= 2;
        }
        let total_code_bits = u32::from(tree_sums[TREE_SUM_NODES - 1]);
        Self { lengths, tree_sums, total_code_bits }
    }

    /// Builds an analysis from raw per-symbol code lengths.
    ///
    /// Exposed for tests and tools that synthesise length patterns; the
    /// production path is [`E2mc::analyze`](super::E2mc::analyze).
    ///
    /// # Panics
    ///
    /// Panics if a length exceeds 255 bits (no real encoding comes close:
    /// the maximum is the escape codeword plus 16 raw bits).
    pub fn from_lengths(lengths: [u32; SYMBOLS_PER_BLOCK]) -> Self {
        let mut widths = [0u8; SYMBOLS_PER_BLOCK];
        for (w, &l) in widths.iter_mut().zip(&lengths) {
            *w = u8::try_from(l).expect("code length exceeds 255 bits");
        }
        Self::from_widths(widths)
    }

    /// Per-symbol code lengths as stored (one byte each) — the zero-copy
    /// sibling of [`code_lengths`](Self::code_lengths) for consumers that
    /// widen on the fly.
    pub fn lengths_u8(&self) -> &[u8; SYMBOLS_PER_BLOCK] {
        &self.lengths
    }

    /// Per-symbol code lengths — the inputs of the Fig. 5 adder tree.
    pub fn code_lengths(&self) -> [u32; SYMBOLS_PER_BLOCK] {
        let mut out = [0u32; SYMBOLS_PER_BLOCK];
        for (o, &w) in out.iter_mut().zip(&self.lengths) {
            *o = u32::from(w);
        }
        out
    }

    /// The Fig. 5 adder tree's aligned sums above the leaf level, levels
    /// concatenated bottom-up: 32 pair sums, then 16 sums of 4 symbols,
    /// 8 of 8, 4 of 16, 2 of 32 and finally the 64-symbol root. Computed
    /// once at analysis time; `slc-core`'s tree construction copies these
    /// instead of re-adding 63 nodes per decision.
    pub fn tree_sums(&self) -> &[u16; TREE_SUM_NODES] {
        &self.tree_sums
    }

    /// Sum of all code lengths (the tree's root, before any header).
    pub fn total_code_bits(&self) -> u32 {
        self.total_code_bits
    }

    /// Lossless compressed size under E2MC's framing: mode bit + pdps +
    /// code lengths. Matches
    /// [`E2mc::lossless_size_bits`](super::E2mc::lossless_size_bits).
    pub fn lossless_size_bits(&self) -> u32 {
        HEADER_BITS + self.total_code_bits
    }

    /// The E2MC stored size: the lossless size capped at the verbatim
    /// block (incompressible blocks are stored raw). Matches
    /// [`BlockCompressor::size_bits`](crate::BlockCompressor::size_bits)
    /// on [`E2mc`](super::E2mc).
    pub fn e2mc_size_bits(&self) -> u32 {
        self.lossless_size_bits().min(BLOCK_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lengths_sums_and_frames() {
        let mut lengths = [3u32; SYMBOLS_PER_BLOCK];
        lengths[0] = 19;
        let a = BlockAnalysis::from_lengths(lengths);
        assert_eq!(a.total_code_bits(), 3 * 63 + 19);
        assert_eq!(a.code_lengths(), lengths);
        assert_eq!(a.lossless_size_bits(), HEADER_BITS + a.total_code_bits());
        assert_eq!(a.e2mc_size_bits(), a.lossless_size_bits());
    }

    #[test]
    fn e2mc_size_is_capped_at_the_block() {
        let a = BlockAnalysis::from_lengths([28; SYMBOLS_PER_BLOCK]);
        assert!(a.lossless_size_bits() > BLOCK_BITS);
        assert_eq!(a.e2mc_size_bits(), BLOCK_BITS);
    }

    #[test]
    #[should_panic(expected = "exceeds 255")]
    fn oversized_lengths_are_rejected() {
        BlockAnalysis::from_lengths([256; SYMBOLS_PER_BLOCK]);
    }

    #[test]
    fn tree_sums_match_a_scalar_rebuild() {
        let mut lengths = [0u32; SYMBOLS_PER_BLOCK];
        for (i, l) in lengths.iter_mut().enumerate() {
            *l = (i as u32 * 7 + 3) % 29;
        }
        let a = BlockAnalysis::from_lengths(lengths);
        let sums = a.tree_sums();
        // Level by level: node k of width w sums lengths[k*w..(k+1)*w].
        let (mut offset, mut width) = (0usize, 2usize);
        while width <= SYMBOLS_PER_BLOCK {
            for node in 0..SYMBOLS_PER_BLOCK / width {
                let want: u32 = lengths[node * width..(node + 1) * width].iter().sum();
                assert_eq!(u32::from(sums[offset + node]), want, "width {width} node {node}");
            }
            offset += SYMBOLS_PER_BLOCK / width;
            width *= 2;
        }
        assert_eq!(offset, TREE_SUM_NODES);
        assert_eq!(u32::from(sums[TREE_SUM_NODES - 1]), a.total_code_bits());
    }

    #[test]
    fn tree_sums_cannot_overflow_u16() {
        // The widest per-symbol encoding is 255 bits; the root is 64 × 255.
        let a = BlockAnalysis::from_lengths([255; SYMBOLS_PER_BLOCK]);
        assert_eq!(a.total_code_bits(), 255 * SYMBOLS_PER_BLOCK as u32);
        assert_eq!(u32::from(a.tree_sums()[TREE_SUM_NODES - 1]), 16320);
    }
}

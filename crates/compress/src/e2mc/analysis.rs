//! The shared per-block analysis artifact of the SLC pipeline.
//!
//! Every SLC decision — the Fig. 4 budget comparison and the Fig. 5
//! truncation selection — is a pure function of a block's per-symbol
//! canonical-Huffman code lengths, the very lengths E2MC sums to size the
//! block before encoding it. [`BlockAnalysis`] captures exactly that
//! (lengths + their sum, no payload), so one cheap [`E2mc::analyze`] pass
//! can serve any number of consumers: the E2MC size model, N SLC schemes
//! at different MAGs/thresholds/variants, ratio studies and burst
//! accounting — the phase split cuSZ and the GPU Huffman-decode work use
//! to separate histogram/codebook construction from coding.
//!
//! [`E2mc::analyze`]: super::E2mc::analyze

use crate::symbols::SYMBOLS_PER_BLOCK;
use crate::BLOCK_BITS;

use super::HEADER_BITS;

/// Per-symbol code lengths and their sum for one analysed block.
///
/// Produced by [`E2mc::analyze`](super::E2mc::analyze) in a single pass
/// over the dense width table; carries **no payload**, only the sizing
/// facts every downstream decision needs. All derived quantities
/// (`slc-core`'s budget decision and tree selection, burst counts, ratio
/// accumulators) are deterministic functions of this value, so computing
/// it once per block and sharing the artifact is bit-identical to
/// re-deriving it at every consumer.
///
/// Lengths are stored as bytes (the widest encoding is the escape code
/// plus 16 raw bits, well under 256), keeping the artifact at 68 bytes so
/// snapshot-level caches of hundreds of thousands of analyses stay cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAnalysis {
    /// Encoded length of each of the 64 symbols in bits (escape symbols
    /// cost their escape codeword plus 16 raw bits).
    lengths: [u8; SYMBOLS_PER_BLOCK],
    /// Sum of `lengths` — the data portion of every framing's size.
    total_code_bits: u32,
}

impl BlockAnalysis {
    /// Builds an analysis from per-symbol widths as the dense table
    /// stores them (the [`E2mc::analyze`](super::E2mc::analyze) path).
    pub(super) fn from_widths(lengths: [u8; SYMBOLS_PER_BLOCK]) -> Self {
        let total_code_bits = lengths.iter().map(|&w| u32::from(w)).sum();
        Self { lengths, total_code_bits }
    }

    /// Builds an analysis from raw per-symbol code lengths.
    ///
    /// Exposed for tests and tools that synthesise length patterns; the
    /// production path is [`E2mc::analyze`](super::E2mc::analyze).
    ///
    /// # Panics
    ///
    /// Panics if a length exceeds 255 bits (no real encoding comes close:
    /// the maximum is the escape codeword plus 16 raw bits).
    pub fn from_lengths(lengths: [u32; SYMBOLS_PER_BLOCK]) -> Self {
        let mut widths = [0u8; SYMBOLS_PER_BLOCK];
        for (w, &l) in widths.iter_mut().zip(&lengths) {
            *w = u8::try_from(l).expect("code length exceeds 255 bits");
        }
        Self::from_widths(widths)
    }

    /// Per-symbol code lengths — the inputs of the Fig. 5 adder tree.
    pub fn code_lengths(&self) -> [u32; SYMBOLS_PER_BLOCK] {
        let mut out = [0u32; SYMBOLS_PER_BLOCK];
        for (o, &w) in out.iter_mut().zip(&self.lengths) {
            *o = u32::from(w);
        }
        out
    }

    /// Sum of all code lengths (the tree's root, before any header).
    pub fn total_code_bits(&self) -> u32 {
        self.total_code_bits
    }

    /// Lossless compressed size under E2MC's framing: mode bit + pdps +
    /// code lengths. Matches
    /// [`E2mc::lossless_size_bits`](super::E2mc::lossless_size_bits).
    pub fn lossless_size_bits(&self) -> u32 {
        HEADER_BITS + self.total_code_bits
    }

    /// The E2MC stored size: the lossless size capped at the verbatim
    /// block (incompressible blocks are stored raw). Matches
    /// [`BlockCompressor::size_bits`](crate::BlockCompressor::size_bits)
    /// on [`E2mc`](super::E2mc).
    pub fn e2mc_size_bits(&self) -> u32 {
        self.lossless_size_bits().min(BLOCK_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lengths_sums_and_frames() {
        let mut lengths = [3u32; SYMBOLS_PER_BLOCK];
        lengths[0] = 19;
        let a = BlockAnalysis::from_lengths(lengths);
        assert_eq!(a.total_code_bits(), 3 * 63 + 19);
        assert_eq!(a.code_lengths(), lengths);
        assert_eq!(a.lossless_size_bits(), HEADER_BITS + a.total_code_bits());
        assert_eq!(a.e2mc_size_bits(), a.lossless_size_bits());
    }

    #[test]
    fn e2mc_size_is_capped_at_the_block() {
        let a = BlockAnalysis::from_lengths([28; SYMBOLS_PER_BLOCK]);
        assert!(a.lossless_size_bits() > BLOCK_BITS);
        assert_eq!(a.e2mc_size_bits(), BLOCK_BITS);
    }

    #[test]
    #[should_panic(expected = "exceeds 255")]
    fn oversized_lengths_are_rejected() {
        BlockAnalysis::from_lengths([256; SYMBOLS_PER_BLOCK]);
    }
}

//! Length-limited canonical Huffman codes for E2MC.
//!
//! E2MC assigns Huffman codes to the most probable 16-bit symbols and an
//! escape code for the rest. Hardware decoders need a bounded code length;
//! we build plain Huffman lengths first and, when the depth exceeds the
//! limit, redistribute lengths with the classic zlib-style fix-up that
//! keeps the Kraft sum exactly complete.

/// Maximum codeword length supported by the hardware decode tables.
pub const MAX_CODE_LEN: u32 = 16;

/// Computes unrestricted Huffman code lengths for `freqs` (all > 0).
///
/// Deterministic: ties broken by insertion order.
fn huffman_lengths(freqs: &[u64]) -> Vec<u32> {
    let n = freqs.len();
    assert!(n > 0, "huffman over empty alphabet");
    if n == 1 {
        return vec![1];
    }
    // Node arena: leaves 0..n, internal nodes after.
    let mut weight: Vec<u64> = freqs.to_vec();
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..n).map(|i| Reverse((freqs[i], i))).collect();
    while heap.len() > 1 {
        let Reverse((wa, a)) = heap.pop().expect("len > 1");
        let Reverse((wb, b)) = heap.pop().expect("len > 1");
        let node = weight.len();
        weight.push(wa + wb);
        parent.push(usize::MAX);
        parent[a] = node;
        parent[b] = node;
        heap.push(Reverse((wa + wb, node)));
    }
    // Depth of each leaf = number of parent hops.
    let mut lengths = vec![0u32; n];
    for (i, len) in lengths.iter_mut().enumerate() {
        let mut p = parent[i];
        let mut d = 0;
        while p != usize::MAX {
            d += 1;
            p = parent[p];
        }
        *len = d;
    }
    lengths
}

/// Restricts code lengths to `max_len`, preserving Kraft completeness.
///
/// Follows zlib's `gen_bitlen` overflow repair: clamp overlong codes, then
/// repeatedly split a shorter code to pay for each over-budget leaf.
/// Lengths are then re-assigned to symbols in frequency order (rarest
/// symbol gets the longest code) to stay near-optimal.
fn limit_lengths(freqs: &[u64], lengths: &[u32], max_len: u32) -> Vec<u32> {
    let n = lengths.len();
    debug_assert_eq!(freqs.len(), n);
    if lengths.iter().all(|&l| l <= max_len) {
        return lengths.to_vec();
    }
    let mut bl_count = vec![0u32; max_len as usize + 1];
    let mut overflow = 0u32;
    for &l in lengths {
        let c = l.min(max_len);
        bl_count[c as usize] += 1;
        if l > max_len {
            overflow += 1;
        }
    }
    while overflow > 0 {
        let mut bits = max_len - 1;
        while bl_count[bits as usize] == 0 {
            bits -= 1;
        }
        bl_count[bits as usize] -= 1;
        bl_count[bits as usize + 1] += 2;
        bl_count[max_len as usize] -= 1;
        overflow -= 1;
    }
    // Assign: rarest symbols get the longest codes. Deterministic ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (freqs[i], std::cmp::Reverse(i)));
    let mut out = vec![0u32; n];
    let mut cursor = 0usize;
    for len in (1..=max_len).rev() {
        for _ in 0..bl_count[len as usize] {
            out[order[cursor]] = len;
            cursor += 1;
        }
    }
    debug_assert_eq!(cursor, n);
    out
}

/// A canonical Huffman code over an arbitrary alphabet of `n` entries.
///
/// Entry indices are caller-defined (E2MC uses `0..k` for the top-k symbols
/// and `k` for the escape). Codes are MSB-first, ordered by `(length,
/// index)` as canonical codes require.
#[derive(Debug, Clone)]
pub struct CanonicalCode {
    /// Code length per entry.
    lengths: Vec<u32>,
    /// Codeword per entry (low `lengths[i]` bits significant).
    codes: Vec<u16>,
    /// Single-lookup decode table, indexed by the top `lut_bits` bits of a
    /// left-aligned `MAX_CODE_LEN`-bit window. Each entry packs
    /// `(entry_index << 8) | code_length`; [`LUT_INVALID`] marks windows no
    /// codeword covers (corrupt stream). This is the flat
    /// max-code-length-indexed table of Rivera et al. / cuSZ+: one load
    /// replaces the bit-serial canonical walk.
    lut: Vec<u32>,
    /// Window bits the LUT is indexed by (= longest assigned code length).
    lut_bits: u32,
}

/// Sentinel for decode windows outside every codeword's range.
const LUT_INVALID: u32 = u32::MAX;

impl CanonicalCode {
    /// Builds a length-limited canonical code from entry frequencies.
    ///
    /// Frequencies of zero are allowed and get no code (length 0); at least
    /// one frequency must be positive.
    ///
    /// # Panics
    ///
    /// Panics if every frequency is zero or `max_len > MAX_CODE_LEN`.
    pub fn from_frequencies(freqs: &[u64], max_len: u32) -> Self {
        assert!((1..=MAX_CODE_LEN).contains(&max_len));
        let live: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
        assert!(!live.is_empty(), "canonical code needs at least one live entry");
        let live_freqs: Vec<u64> = live.iter().map(|&i| freqs[i]).collect();
        let raw = huffman_lengths(&live_freqs);
        let limited = limit_lengths(&live_freqs, &raw, max_len);
        let mut lengths = vec![0u32; freqs.len()];
        for (slot, &i) in live.iter().enumerate() {
            lengths[i] = limited[slot];
        }
        Self::from_lengths(lengths)
    }

    /// Builds the canonical code tables from per-entry lengths.
    fn from_lengths(lengths: Vec<u32>) -> Self {
        let mut sorted: Vec<u32> =
            (0..lengths.len() as u32).filter(|&i| lengths[i as usize] > 0).collect();
        sorted.sort_by_key(|&i| (lengths[i as usize], i));
        let mut codes = vec![0u16; lengths.len()];
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        for &i in &sorted {
            count[lengths[i as usize] as usize] += 1;
        }
        let lut_bits =
            (1..=MAX_CODE_LEN).rev().find(|&l| count[l as usize] > 0).unwrap_or(1).max(1);
        let mut lut = vec![LUT_INVALID; 1usize << lut_bits];
        let mut code = 0u32;
        let mut index = 0u32;
        #[allow(clippy::needless_range_loop)] // `len` is arithmetic, not just an index
        for len in 1..=MAX_CODE_LEN as usize {
            code <<= 1;
            for _ in 0..count[len] {
                let entry = sorted[index as usize];
                codes[entry as usize] = code as u16;
                // Every window whose top `len` bits equal this codeword
                // decodes to this entry: fill its 2^(lut_bits - len) slots.
                let span = 1u32 << (lut_bits - len as u32);
                let base = code << (lut_bits - len as u32);
                let packed = (entry << 8) | len as u32;
                for slot in base..base + span {
                    lut[slot as usize] = packed;
                }
                code += 1;
                index += 1;
            }
        }
        // Kraft completeness check: after the last length the code must have
        // consumed exactly the whole space.
        debug_assert!({
            let kraft: u64 =
                lengths.iter().filter(|&&l| l > 0).map(|&l| 1u64 << (MAX_CODE_LEN - l)).sum();
            kraft <= 1u64 << MAX_CODE_LEN
        });
        Self { lengths, codes, lut, lut_bits }
    }

    /// Number of entries in the alphabet (including zero-length ones).
    pub fn alphabet_len(&self) -> usize {
        self.lengths.len()
    }

    /// Code length of `entry` in bits; 0 means the entry has no code.
    pub fn length(&self, entry: usize) -> u32 {
        self.lengths[entry]
    }

    /// Codeword of `entry` (valid only when `length(entry) > 0`).
    pub fn code(&self, entry: usize) -> u16 {
        self.codes[entry]
    }

    /// Decodes one entry from `peek` (left-aligned `MAX_CODE_LEN`-bit
    /// window) returning `(entry, length)`.
    ///
    /// Single table lookup: the window's top [`max_length`](Self::max_length)
    /// bits index a flat table precomputed at construction, replacing the
    /// bit-serial canonical walk.
    ///
    /// # Panics
    ///
    /// Panics on a window that matches no codeword (corrupt stream).
    pub fn decode(&self, peek: u32) -> (u32, u32) {
        match self.decode_checked(peek) {
            Some(hit) => hit,
            // slc-lint: allow(hot-path): documented corrupt-stream guard, contained by the engine's per-chunk catch_unwind
            None => panic!("corrupt Huffman stream: no codeword matches window {peek:#06x}"),
        }
    }

    /// Non-panicking [`decode`](Self::decode): `None` when no codeword
    /// covers the window.
    pub fn decode_checked(&self, peek: u32) -> Option<(u32, u32)> {
        debug_assert!(peek < (1 << MAX_CODE_LEN));
        let packed = self.lut[(peek >> (MAX_CODE_LEN - self.lut_bits)) as usize];
        if packed == LUT_INVALID {
            None
        } else {
            Some((packed >> 8, packed & 0xff))
        }
    }

    /// Longest assigned code length (the decode table's window width;
    /// construction guarantees at least one live entry, so this is >= 1).
    pub fn max_length(&self) -> u32 {
        self.lut_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_all(code: &CanonicalCode) {
        for entry in 0..code.alphabet_len() {
            if code.length(entry) == 0 {
                continue;
            }
            let len = code.length(entry);
            let window = (code.code(entry) as u32) << (MAX_CODE_LEN - len);
            let (dec, dlen) = code.decode(window);
            assert_eq!(dec as usize, entry);
            assert_eq!(dlen, len);
        }
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let code = CanonicalCode::from_frequencies(&[5, 3], MAX_CODE_LEN);
        assert_eq!(code.length(0), 1);
        assert_eq!(code.length(1), 1);
        assert_ne!(code.code(0), code.code(1));
        roundtrip_all(&code);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let code = CanonicalCode::from_frequencies(&[42], MAX_CODE_LEN);
        assert_eq!(code.length(0), 1);
        roundtrip_all(&code);
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let code = CanonicalCode::from_frequencies(&[1000, 10, 10, 1], MAX_CODE_LEN);
        assert!(code.length(0) < code.length(3));
        roundtrip_all(&code);
    }

    #[test]
    fn zero_frequency_entries_get_no_code() {
        let code = CanonicalCode::from_frequencies(&[10, 0, 5], MAX_CODE_LEN);
        assert_eq!(code.length(1), 0);
        roundtrip_all(&code);
    }

    #[test]
    fn skewed_distribution_respects_length_limit() {
        // Fibonacci-like frequencies force deep Huffman trees.
        let mut freqs = vec![1u64; 40];
        let mut a = 1u64;
        let mut b = 2u64;
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let code = CanonicalCode::from_frequencies(&freqs, 8);
        assert!(code.max_length() <= 8);
        roundtrip_all(&code);
    }

    #[test]
    fn kraft_sum_is_valid() {
        let freqs: Vec<u64> = (1..=300).map(|i| i * i).collect();
        let code = CanonicalCode::from_frequencies(&freqs, 12);
        let kraft: u64 =
            (0..300).filter(|&i| code.length(i) > 0).map(|i| 1u64 << (12 - code.length(i))).sum();
        assert!(kraft <= 1 << 12);
        roundtrip_all(&code);
    }

    proptest! {
        #[test]
        fn prop_all_codewords_decode(freqs in proptest::collection::vec(0u64..10_000, 1..200)) {
            prop_assume!(freqs.iter().any(|&f| f > 0));
            let code = CanonicalCode::from_frequencies(&freqs, MAX_CODE_LEN);
            roundtrip_all(&code);
        }

        #[test]
        fn prop_length_limit_holds(freqs in proptest::collection::vec(1u64..u32::MAX as u64, 2..500),
                                   max_len in 10u32..=16) {
            let code = CanonicalCode::from_frequencies(&freqs, max_len);
            prop_assert!(code.max_length() <= max_len);
        }

        #[test]
        fn prop_codes_are_prefix_free(freqs in proptest::collection::vec(1u64..1000, 2..100)) {
            let code = CanonicalCode::from_frequencies(&freqs, MAX_CODE_LEN);
            let items: Vec<(u32, u16)> = (0..freqs.len())
                .map(|i| (code.length(i), code.code(i)))
                .collect();
            for (i, &(la, ca)) in items.iter().enumerate() {
                for &(lb, cb) in items.iter().skip(i + 1) {
                    let l = la.min(lb);
                    prop_assert!(ca >> (la - l) != cb >> (lb - l),
                        "prefix collision between lengths {la} and {lb}");
                }
            }
        }
    }
}

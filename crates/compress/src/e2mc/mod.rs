//! E2MC: entropy-encoding based memory compression for GPUs.
//!
//! Lal et al., "E2MC: Entropy Encoding Based Memory Compression for GPUs",
//! IPDPS 2017 — the highest-ratio lossless baseline in the SLC paper and the
//! substrate SLC itself extends.
//!
//! A 128 B block is 64 16-bit symbols. A per-application canonical Huffman
//! table (built from sampled traffic, see [`SymbolSampler`]) covers the
//! `top_k` most probable symbols; everything else is sent as an escape code
//! followed by the 16 raw bits. Symbols are split into 4 **parallel
//! decoding ways** (PDWs) of 16 symbols so hardware can decode them
//! concurrently; the block header carries one *parallel decoding pointer*
//! (pdp) per non-first way.
//!
//! The compressed size of a block is just the sum of its code lengths plus
//! the header — the property SLC's bit-budgeting exploits (the paper's
//! parallel tree adder computes the same sum).
//!
//! ```
//! use slc_compress::{BlockCompressor, e2mc::{E2mc, E2mcConfig}};
//!
//! // Train on data representative of the app's traffic...
//! let training: Vec<u8> = (0..4096u32).flat_map(|i| (i % 97).to_le_bytes()).collect();
//! let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
//! // ...then compress blocks of the same distribution.
//! let mut block = [0u8; 128];
//! for (i, c) in block.chunks_exact_mut(4).enumerate() {
//!     c.copy_from_slice(&((i as u32) % 97).to_le_bytes());
//! }
//! let c = e2mc.compress(&block);
//! assert!(c.size_bits() < 512, "low-entropy data compresses > 2x");
//! assert_eq!(e2mc.decompress(&c), block);
//! ```

mod analysis;
mod huffman;
mod sampler;

pub use analysis::{BlockAnalysis, TREE_SUM_NODES};
pub use huffman::{CanonicalCode, MAX_CODE_LEN};
pub use sampler::SymbolSampler;

use std::sync::Arc;

use crate::bitstream::{BitReader, BitWriter};
use crate::symbols::{block_to_symbols, symbols_to_block, SYMBOLS_PER_BLOCK};
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS, BLOCK_BYTES};

/// Number of parallel decoding ways (the paper's best configuration).
pub const WAYS: usize = 4;

/// Symbols per way.
pub const WAY_SYMBOLS: usize = SYMBOLS_PER_BLOCK / WAYS;

/// Width of one parallel decoding pointer in bits.
///
/// A pdp addresses a bit offset inside the compressed data section, which
/// is always shorter than the 1024-bit block, so 10 bits suffice. (The
/// paper stores byte-addressed 7-bit pdps; we keep ways bit-packed and
/// spend 3 extra bits per pointer instead of padding each way to a byte
/// boundary — the totals differ by under a byte per block.)
pub const PDP_BITS: u32 = 10;

/// Header of a losslessly compressed E2MC block: mode bit + 3 pdps.
pub const HEADER_BITS: u32 = 1 + (WAYS as u32 - 1) * PDP_BITS;

/// Configuration for table training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct E2mcConfig {
    /// Number of most-frequent symbols granted Huffman codes.
    pub top_k: usize,
    /// Maximum codeword length (hardware decode-table depth).
    pub max_code_len: u32,
    /// Online-sampling block budget; `None` samples everything offered.
    pub sample_blocks: Option<u64>,
}

impl Default for E2mcConfig {
    fn default() -> Self {
        Self { top_k: 1024, max_code_len: MAX_CODE_LEN, sample_blocks: None }
    }
}

/// A trained symbol table: canonical codes for the top-k symbols plus an
/// escape entry for the rest.
///
/// Tables are frozen after the one-shot sampling phase (the paper trains
/// once and never retrains), so they carry no interior mutability and the
/// ~832 KB of precomputed encode/decode tables below are immutable for
/// the life of the run. [`E2mc`] therefore holds the table behind an
/// [`Arc`]: cloning a trained codec — and every [`crate::BlockCompressor`]
/// or SLC scheme built on it — shares this one allocation instead of
/// deep-copying it.
#[derive(Clone)]
pub struct SymbolTable {
    code: CanonicalCode,
    /// Entry index -> symbol value, for entries `0..top.len()`.
    top: Vec<u16>,
    escape_entry: usize,
    /// Symbol value -> packed `(bits << 8) | width`, where `bits` is the
    /// complete wire encoding (codeword, or escape codeword followed by the
    /// 16 raw symbol bits) and `width <= 32` its length. Precomputed so
    /// [`encode_symbol`](Self::encode_symbol) is a single table load and
    /// one [`BitWriter::write`].
    enc: Vec<u64>,
    /// Decode window (left-aligned `MAX_CODE_LEN` bits) -> packed
    /// `(symbol << 16) | (escape << 8) | code_length`. Fuses the canonical
    /// decode and the entry-to-symbol lookup into one load per symbol;
    /// length 0 marks windows no codeword covers (corrupt stream).
    dec: Vec<u32>,
    /// Symbol value -> encoded width in bits. Duplicates the width byte of
    /// `enc` at 1/8th the footprint (64 KB vs 512 KB): the size-only paths
    /// (code-length sums, SLC's tree adder) touch symbols randomly, so the
    /// denser table keeps them in cache.
    bits: Vec<u8>,
}

impl std::fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolTable")
            .field("entries", &self.top.len())
            .field("escape_bits", &self.escape_bits())
            .finish()
    }
}

impl SymbolTable {
    /// Builds a table from sampled frequencies.
    pub fn from_sampler(sampler: &SymbolSampler, config: &E2mcConfig) -> Self {
        let top = sampler.top_symbols(config.top_k);
        let covered: u64 = top.iter().map(|&(_, c)| c).sum();
        let escape_freq = (sampler.total() - covered).max(1);
        let mut freqs: Vec<u64> = top.iter().map(|&(_, c)| c).collect();
        freqs.push(escape_freq);
        let code = CanonicalCode::from_frequencies(&freqs, config.max_code_len);
        let mut lookup = vec![u32::MAX; 1 << 16];
        let symbols: Vec<u16> = top.iter().map(|&(s, _)| s).collect();
        for (entry, &s) in symbols.iter().enumerate() {
            lookup[s as usize] = entry as u32;
        }
        let escape_entry = symbols.len();
        let esc_code = code.code(escape_entry) as u64;
        let esc_len = code.length(escape_entry);
        let enc: Vec<u64> = (0..1usize << 16)
            .map(|symbol| {
                let entry = lookup[symbol];
                if entry == u32::MAX {
                    // Escape codeword immediately followed by the 16 raw
                    // bits, fused into one write.
                    let bits = (esc_code << 16) | symbol as u64;
                    (bits << 8) | (esc_len + 16) as u64
                } else {
                    let e = entry as usize;
                    ((code.code(e) as u64) << 8) | code.length(e) as u64
                }
            })
            .collect();
        let dec = (0..1usize << MAX_CODE_LEN)
            .map(|window| {
                let (entry, len) = code.decode_checked(window as u32)?;
                Some(if entry as usize == escape_entry {
                    (1 << 8) | len
                } else {
                    ((symbols[entry as usize] as u32) << 16) | len
                })
            })
            .map(|packed| packed.unwrap_or(0))
            .collect();
        let bits = enc.iter().map(|&p| (p & 0xff) as u8).collect();
        Self { code, escape_entry, top: symbols, enc, dec, bits }
    }

    /// Encoded length of `symbol` in bits (escape + 16 raw bits when the
    /// symbol is not in the table).
    pub fn symbol_bits(&self, symbol: u16) -> u32 {
        self.bits[symbol as usize] as u32
    }

    /// Total cost of an escaped symbol.
    pub fn escape_bits(&self) -> u32 {
        self.code.length(self.escape_entry) + 16
    }

    /// Number of symbols holding dedicated codes.
    pub fn coded_symbols(&self) -> usize {
        self.top.len()
    }

    /// Appends the codeword(s) for `symbol` — one precomputed write, even
    /// for escapes (escape codeword and raw bits are fused at training).
    pub fn encode_symbol(&self, w: &mut BitWriter, symbol: u16) {
        let packed = self.enc[symbol as usize];
        w.write(packed >> 8, (packed & 0xff) as u32);
    }

    /// Stashes every symbol's packed wire encoding in one table pass, for
    /// the size-then-write pipeline shared by E2MC and SLC: size the ways
    /// from the stash, derive the pdps, then serialise the stash without
    /// touching the table again. A zero entry has width 0 and writes
    /// nothing (SLC zeroes its truncated hole this way).
    pub fn stash_encodings(&self, symbols: &[u16; SYMBOLS_PER_BLOCK]) -> [u64; SYMBOLS_PER_BLOCK] {
        let mut out = [0u64; SYMBOLS_PER_BLOCK];
        for (e, &s) in out.iter_mut().zip(symbols) {
            *e = self.enc[s as usize];
        }
        out
    }

    /// Encoded bit count of each parallel decoding way of a stash.
    ///
    /// The pdp offsets are prefix sums of these, which is what lets both
    /// framings write their header before a single codeword: ways lie back
    /// to back, so sequentially writing the stash afterwards produces
    /// exactly the concatenated per-way streams.
    pub fn way_bits(encodings: &[u64; SYMBOLS_PER_BLOCK]) -> [u32; WAYS] {
        let mut way_bits = [0u32; WAYS];
        for (bits, chunk) in way_bits.iter_mut().zip(encodings.chunks_exact(WAY_SYMBOLS)) {
            *bits = chunk.iter().map(|&e| (e & 0xff) as u32).sum();
        }
        way_bits
    }

    /// Serialises a stash produced by
    /// [`stash_encodings`](Self::stash_encodings).
    pub fn write_encodings(w: &mut BitWriter, encodings: &[u64; SYMBOLS_PER_BLOCK]) {
        // Fuse consecutive codewords into one staging word while their
        // summed widths fit the writer's 57-bit push budget, so a typical
        // block costs a handful of writer calls instead of one per
        // symbol. Bit-identical to writing each entry separately: the
        // accumulator concatenates MSB-first exactly as `write` would.
        let mut acc = 0u64;
        let mut acc_w = 0u32;
        for &e in encodings {
            let width = (e & 0xff) as u32;
            if acc_w + width > 57 {
                w.write(acc, acc_w);
                acc = 0;
                acc_w = 0;
            }
            acc = (acc << width) | (e >> 8);
            acc_w += width;
        }
        if acc_w > 0 {
            w.write(acc, acc_w);
        }
    }

    /// Decodes one symbol.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt stream.
    pub fn decode_symbol(&self, r: &mut BitReader<'_>) -> u16 {
        let window = r.peek_padded(MAX_CODE_LEN) as u32;
        let packed = self.dec[window as usize];
        let len = packed & 0xff;
        if len == 0 {
            panic!("corrupt E2MC stream: no codeword matches window {window:#06x}");
        }
        r.skip(len);
        if packed & 0x100 != 0 {
            r.read(16) as u16
        } else {
            (packed >> 16) as u16
        }
    }

    /// Decodes one symbol per slot of `out` (the allocation-free way path).
    ///
    /// Runs a register-buffered loop: a left-aligned 64-bit window is
    /// refilled from the reader only when fewer than 32 valid bits remain
    /// (the worst case consumption per symbol is escape code + 16 raw
    /// bits), so most symbols cost one table load and one shift instead of
    /// a reader round-trip.
    pub fn decode_way_into(&self, r: &mut BitReader<'_>, out: &mut [u16]) {
        let mut pos = r.position();
        let mut buf = 0u64; // decoded bits, left-aligned
        let mut avail = 0u32;
        for slot in out {
            if avail < 32 {
                r.seek(pos);
                // peek_padded returns the low 57 bits; left-align them.
                buf = r.peek_padded(57) << 7;
                avail = 57;
            }
            let window = (buf >> (64 - MAX_CODE_LEN)) as u32;
            let packed = self.dec[window as usize];
            let len = packed & 0xff;
            if len == 0 {
                // slc-lint: allow(hot-path): corrupt-stream guard, contained by the engine's per-chunk catch_unwind
                panic!("corrupt E2MC stream: no codeword matches window {window:#06x}");
            }
            let consumed;
            if packed & 0x100 != 0 {
                // Escape: the 16 raw bits follow the codeword, still
                // inside the 32-bit guarantee.
                *slot = ((buf >> (64 - len - 16)) & 0xffff) as u16;
                consumed = len + 16;
            } else {
                *slot = (packed >> 16) as u16;
                consumed = len;
            }
            buf <<= consumed;
            avail -= consumed;
            pos += consumed;
        }
        r.seek(pos);
    }

    /// The underlying canonical code (decode tables, per-entry lengths).
    pub fn canonical_code(&self) -> &CanonicalCode {
        &self.code
    }
}

/// The E2MC block compressor with a trained [`SymbolTable`].
///
/// The table lives behind an [`Arc`]: `E2mc::clone` is a refcount bump,
/// never a copy of the precomputed tables, so schemes, harness artifacts
/// and many concurrent compressor instances all share one trained model
/// (the paper's frozen per-application code table; SC2 shares one trained
/// Huffman structure across the whole cache the same way).
#[derive(Debug, Clone)]
pub struct E2mc {
    table: Arc<SymbolTable>,
}

impl E2mc {
    /// Wraps a pre-trained table.
    pub fn new(table: SymbolTable) -> Self {
        Self::from_shared(Arc::new(table))
    }

    /// Wraps an already-shared pre-trained table without re-wrapping it.
    pub fn from_shared(table: Arc<SymbolTable>) -> Self {
        Self { table }
    }

    /// Trains a table by sampling `bytes` (the online sampling phase).
    pub fn train_on_bytes(bytes: &[u8], config: &E2mcConfig) -> Self {
        let mut sampler = match config.sample_blocks {
            Some(limit) => SymbolSampler::with_limit(limit),
            None => SymbolSampler::new(),
        };
        sampler.sample_bytes(bytes);
        Self::new(SymbolTable::from_sampler(&sampler, config))
    }

    /// Trains a table from an iterator of blocks.
    pub fn train_on_blocks<'a>(
        blocks: impl IntoIterator<Item = &'a Block>,
        config: &E2mcConfig,
    ) -> Self {
        let mut sampler = match config.sample_blocks {
            Some(limit) => SymbolSampler::with_limit(limit),
            None => SymbolSampler::new(),
        };
        for b in blocks {
            if !sampler.sample_block(b) {
                break;
            }
        }
        Self::new(SymbolTable::from_sampler(&sampler, config))
    }

    /// The trained symbol table (shared with the SLC layer).
    pub fn table(&self) -> &SymbolTable {
        &self.table
    }

    /// The shared handle to the trained table. Clones of it (and of the
    /// codec) point at the same allocation — the property the harness
    /// relies on to instantiate many schemes per trained model.
    pub fn shared_table(&self) -> &Arc<SymbolTable> {
        &self.table
    }

    /// Analyses one block without encoding anything: one pass over the
    /// dense width table yields the per-symbol code lengths and their sum
    /// — everything the paper's tree adder, the Fig. 4 budget decision
    /// and all burst accounting need. The returned [`BlockAnalysis`] is
    /// the shared artifact of the SLC pipeline: produce it once per
    /// block, then let any number of schemes, thresholds and figures
    /// consume it (see the `slc-core` crate docs for the sharing
    /// contract).
    pub fn analyze(&self, block: &Block) -> BlockAnalysis {
        let symbols = block_to_symbols(block);
        let mut widths = [0u8; SYMBOLS_PER_BLOCK];
        for (o, s) in widths.iter_mut().zip(symbols) {
            *o = self.table.bits[s as usize];
        }
        BlockAnalysis::from_widths(widths)
    }

    /// Per-symbol code lengths of a block — the values the paper's parallel
    /// tree adder sums to obtain the compressed size.
    pub fn code_lengths(&self, block: &Block) -> [u32; SYMBOLS_PER_BLOCK] {
        self.analyze(block).code_lengths()
    }

    /// Sum of code lengths plus header: the lossless compressed size.
    pub fn lossless_size_bits(&self, block: &Block) -> u32 {
        self.analyze(block).lossless_size_bits()
    }

    /// The E2MC stored size of `block` — `min(header + Σ code lengths,`
    /// [`BLOCK_BITS`]`)` — as one running sum over the dense width table,
    /// with no per-symbol length array or adder-tree sums materialised.
    ///
    /// Pinned equal to `analyze(block).e2mc_size_bits()` by a unit test;
    /// the point is the footprint, not the value: consumers that only
    /// ever read the stored size (the E2MC-baseline burst sweep, the
    /// batch engine's skip-incompressible hint) capture a 4-byte number
    /// per block instead of the 196 B [`BlockAnalysis`] artifact — the
    /// slim size-only snapshot cache in `slc-workloads` is built on this.
    pub fn stored_size_bits(&self, block: &Block) -> u32 {
        let symbols = block_to_symbols(block);
        let mut total = 0u32;
        for s in symbols {
            total += u32::from(self.table.bits[s as usize]);
        }
        (HEADER_BITS + total).min(BLOCK_BITS)
    }
}

impl BlockCompressor for E2mc {
    fn name(&self) -> &'static str {
        "e2mc"
    }

    fn compress(&self, block: &Block) -> Compressed {
        let symbols = block_to_symbols(block);
        // Size-then-write over one stashed table pass (shared with SLC's
        // framing; see SymbolTable::stash_encodings) — replaces the seed's
        // four scratch writers + append.
        let encodings = self.table.stash_encodings(&symbols);
        let way_bits = SymbolTable::way_bits(&encodings);
        let total = HEADER_BITS + way_bits.iter().sum::<u32>();
        if total >= BLOCK_BITS {
            return Compressed::uncompressed(block);
        }
        let mut w = BitWriter::with_capacity_bits(total);
        w.write(1, 1); // mode: compressed
        let mut offset = 0u32;
        for &bits in way_bits.iter().take(WAYS - 1) {
            offset += bits;
            w.write(offset as u64, PDP_BITS);
        }
        SymbolTable::write_encodings(&mut w, &encodings);
        let (payload, bits) = w.finish();
        debug_assert_eq!(bits, total);
        debug_assert_eq!(bits, self.lossless_size_bits(block));
        Compressed::new(bits, payload)
    }

    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block) {
        if !compressed {
            out.copy_from_slice(&payload[..BLOCK_BYTES]);
            return;
        }
        let mut r = BitReader::new(payload, size_bits);
        // slc-lint: allow(assert): corrupt-stream guard, contained by the engine's per-chunk catch_unwind
        assert!(r.read_bit(), "corrupt E2MC stream: mode bit clear on compressed block");
        let mut pdps = [0u32; WAYS];
        for p in pdps.iter_mut().skip(1) {
            *p = r.read(PDP_BITS) as u32;
        }
        let data_start = HEADER_BITS;
        let mut symbols = [0u16; SYMBOLS_PER_BLOCK];
        for (way, pdp) in pdps.iter().enumerate() {
            // Each way is independently addressable: seek to its pdp as the
            // hardware's parallel decoders would.
            r.seek(data_start + pdp);
            self.table
                .decode_way_into(&mut r, &mut symbols[way * WAY_SYMBOLS..(way + 1) * WAY_SYMBOLS]);
        }
        *out = symbols_to_block(&symbols);
    }

    fn size_bits(&self, block: &Block) -> u32 {
        self.stored_size_bits(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp_bytes(n: u32, modulo: u32) -> Vec<u8> {
        (0..n).flat_map(|i| (i % modulo).to_le_bytes()).collect()
    }

    fn block_from_u32s(f: impl Fn(usize) -> u32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..BLOCK_BYTES / 4 {
            b[i * 4..i * 4 + 4].copy_from_slice(&f(i).to_le_bytes());
        }
        b
    }

    fn trained() -> E2mc {
        E2mc::train_on_bytes(&ramp_bytes(8192, 97), &E2mcConfig::default())
    }

    #[test]
    fn roundtrip_in_distribution_block() {
        let e = trained();
        let block = block_from_u32s(|i| (i as u32 * 7) % 97);
        let c = e.compress(&block);
        assert!(c.is_compressed());
        assert_eq!(e.decompress(&c), block);
    }

    #[test]
    fn roundtrip_with_escapes() {
        let e = trained();
        // Half the words are far outside the trained distribution.
        let block = block_from_u32s(|i| if i % 2 == 0 { 13 } else { 0xdead_0000 + i as u32 });
        let c = e.compress(&block);
        assert_eq!(e.decompress(&c), block);
    }

    #[test]
    fn size_bits_equals_compress_size() {
        let e = trained();
        for seed in 0..16u32 {
            let block = block_from_u32s(|i| (seed.wrapping_mul(2654435761) ^ i as u32) % 200);
            assert_eq!(e.size_bits(&block), e.compress(&block).size_bits());
        }
    }

    #[test]
    fn lossless_size_is_header_plus_code_lengths() {
        let e = trained();
        let block = block_from_u32s(|i| i as u32 % 97);
        let lens = e.code_lengths(&block);
        let total: u32 = lens.iter().sum();
        assert_eq!(e.lossless_size_bits(&block), HEADER_BITS + total);
    }

    #[test]
    fn analyze_agrees_with_size_and_length_paths() {
        let e = trained();
        for seed in 0..16u32 {
            let block =
                block_from_u32s(|i| (seed.wrapping_mul(2654435761) ^ (i as u32 * 31)) % 400);
            let a = e.analyze(&block);
            assert_eq!(a.code_lengths(), e.code_lengths(&block));
            assert_eq!(a.total_code_bits(), a.code_lengths().iter().sum::<u32>());
            assert_eq!(a.lossless_size_bits(), e.lossless_size_bits(&block));
            assert_eq!(a.e2mc_size_bits(), e.size_bits(&block));
        }
    }

    #[test]
    fn stored_size_direct_sum_equals_the_analysis_path() {
        // The slim-cache capture path must agree bit-for-bit with the
        // full artifact it replaces, including the incompressible cap.
        let e = trained();
        for seed in 0..32u32 {
            let block = block_from_u32s(|i| {
                let x = seed.wrapping_mul(2654435761) ^ (i as u32).wrapping_mul(0x9e3779b9);
                if seed % 4 == 3 {
                    x // out of distribution: exercises the BLOCK_BITS cap
                } else {
                    x % 400
                }
            });
            assert_eq!(e.stored_size_bits(&block), e.analyze(&block).e2mc_size_bits());
            assert_eq!(e.stored_size_bits(&block), e.size_bits(&block));
        }
    }

    #[test]
    fn out_of_distribution_block_stays_uncompressed() {
        let e = trained();
        let mut block = [0u8; BLOCK_BYTES];
        let mut state = 0xfeedu64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 33) as u8;
        }
        let c = e.compress(&block);
        // 64 escapes at >16 bits each exceed the block size.
        assert_eq!(c.size_bits(), BLOCK_BITS);
        assert_eq!(e.decompress(&c), block);
    }

    #[test]
    fn zero_block_compresses_to_near_header() {
        let e = trained();
        let c = e.compress(&[0u8; BLOCK_BYTES]);
        // Symbol 0 dominates training (upper halves of small u32s), so the
        // zero block should approach header + 64 * short code.
        assert!(c.size_bits() < 200, "got {}", c.size_bits());
        assert_eq!(e.decompress(&c), [0u8; BLOCK_BYTES]);
    }

    #[test]
    fn ways_are_independently_seekable() {
        // The decoder seeks each pdp; a correct roundtrip of a block whose
        // ways have distinct content exercises all four pointers.
        let e = trained();
        let block = block_from_u32s(|i| (i as u32 / 16) * 31 % 97);
        let c = e.compress(&block);
        assert_eq!(e.decompress(&c), block);
    }

    #[test]
    fn small_top_k_forces_more_escapes() {
        let bytes = ramp_bytes(8192, 997);
        let big = E2mc::train_on_bytes(&bytes, &E2mcConfig::default());
        let small = E2mc::train_on_bytes(&bytes, &E2mcConfig { top_k: 8, ..Default::default() });
        let block = block_from_u32s(|i| (i as u32 * 13) % 997);
        assert!(small.size_bits(&block) >= big.size_bits(&block));
    }

    #[test]
    fn clone_shares_the_trained_table() {
        // E2mc::clone must be an Arc refcount bump, not a deep copy of the
        // ~832 KB of precomputed tables: both handles point at the same
        // SymbolTable allocation.
        let a = trained();
        let b = a.clone();
        assert!(std::ptr::eq(a.table(), b.table()), "clone deep-copied the symbol table");
        assert!(Arc::ptr_eq(a.shared_table(), b.shared_table()));
    }

    #[test]
    fn from_shared_adopts_without_copying() {
        let a = trained();
        let c = E2mc::from_shared(Arc::clone(a.shared_table()));
        assert!(std::ptr::eq(a.table(), c.table()));
        // And the adopted codec is fully functional.
        let block = block_from_u32s(|i| (i as u32 * 7) % 97);
        assert_eq!(c.decompress(&c.compress(&block)), block);
    }

    #[test]
    fn sampling_limit_is_respected() {
        let bytes = ramp_bytes(8192, 97);
        let cfg = E2mcConfig { sample_blocks: Some(2), ..Default::default() };
        let e = E2mc::train_on_bytes(&bytes, &cfg);
        // Trained on two blocks only: still functional, just fewer codes.
        let block = block_from_u32s(|i| i as u32 % 97);
        assert_eq!(e.decompress(&e.compress(&block)), block);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_roundtrip_random_blocks(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let e = trained();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(e.decompress(&e.compress(&block)), block);
        }

        #[test]
        fn prop_roundtrip_in_distribution(words in proptest::collection::vec(0u32..97, BLOCK_BYTES / 4)) {
            let e = trained();
            let mut block = [0u8; BLOCK_BYTES];
            for (i, w) in words.iter().enumerate() {
                block[i*4..i*4+4].copy_from_slice(&w.to_le_bytes());
            }
            let c = e.compress(&block);
            prop_assert!(c.is_compressed());
            prop_assert_eq!(e.decompress(&c), block);
        }

        #[test]
        fn prop_size_bits_bounded(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let e = trained();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert!(e.size_bits(&block) <= BLOCK_BITS);
        }
    }
}

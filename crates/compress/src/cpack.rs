//! C-PACK (Cache Packer) compression.
//!
//! Chen et al., "C-Pack: A High-Performance Microprocessor Cache Compression
//! Algorithm", IEEE TVLSI 2010 — third baseline of the SLC paper's Figure 1.
//!
//! C-PACK combines static patterns for frequent words with a small FIFO
//! dictionary of recently seen words. Every 32-bit word emits one of six
//! codes; words that do not fully match the dictionary are pushed into it,
//! and the decompressor reconstructs the same dictionary as it decodes, so
//! no dictionary bits travel with the block.

use crate::bitstream::{BitReader, FixedBitWriter};
use crate::symbols::{block_to_words, words_to_block, WORDS_PER_BLOCK};
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS, BLOCK_BYTES};

/// Number of dictionary entries (4-bit index as in the original design).
pub const DICT_ENTRIES: usize = 16;

/// C-PACK word codes and their total encoded sizes in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpackCode {
    /// `00`: zero word (2 bits).
    Zzzz,
    /// `01` + 32 raw bits: no pattern matched (34 bits). Pushed to dict.
    Xxxx,
    /// `10` + 4-bit index: full dictionary match (6 bits).
    Mmmm,
    /// `1100` + 4-bit index + 16 raw bits: upper halfword matches a
    /// dictionary entry (24 bits). Pushed to dict.
    Mmxx,
    /// `1101` + 8 raw bits: three zero bytes, one literal low byte (12 bits).
    Zzzx,
    /// `1110` + 4-bit index + 8 raw bits: upper three bytes match a
    /// dictionary entry (16 bits). Pushed to dict.
    Mmmx,
}

impl CpackCode {
    /// Encoded size (prefix + index + literal bits).
    pub fn size_bits(self) -> u32 {
        match self {
            CpackCode::Zzzz => 2,
            CpackCode::Xxxx => 34,
            CpackCode::Mmmm => 6,
            CpackCode::Mmxx => 24,
            CpackCode::Zzzx => 12,
            CpackCode::Mmmx => 16,
        }
    }
}

/// FIFO dictionary shared (by construction) by compressor and decompressor.
/// Fixed-size storage: building one costs no allocation per block.
#[derive(Debug, Clone)]
struct Dictionary {
    entries: [u32; DICT_ENTRIES],
    next: usize,
}

impl Dictionary {
    fn new() -> Self {
        Self { entries: [0; DICT_ENTRIES], next: 0 }
    }

    fn push(&mut self, word: u32) {
        self.entries[self.next] = word;
        self.next = (self.next + 1) % DICT_ENTRIES;
    }

    /// Compares `word` against *all* 16 entries in one branchless pass,
    /// returning `(full, upper3, upper2)` match bitmaps (bit `i` set =
    /// entry `i` matches at that granularity). The hardware probes every
    /// dictionary entry in parallel; this is the software equivalent,
    /// replacing three early-exit scans whose worst case (the common
    /// no-match word) walked the whole FIFO three times. Each entry is
    /// loaded once and compared at all three granularities, so a partial
    /// hit costs no second pass.
    ///
    /// `bitmap.trailing_zeros()` recovers the lowest matching index, which
    /// is exactly what the sequential `position` probe returned.
    #[cfg(target_arch = "x86_64")]
    fn match_masks(&self, word: u32) -> (u32, u32, u32) {
        // Four 4-lane load/compare/movemask rounds (SSE2 is part of the
        // x86-64 baseline, so no runtime feature detection). A whole-FIFO
        // probe at every granularity costs about what one early-exit hit
        // at index 0 cost the scalar scan.
        use std::arch::x86_64::{
            __m128i, _mm_and_si128, _mm_castsi128_ps, _mm_cmpeq_epi32, _mm_loadu_si128,
            _mm_movemask_ps, _mm_set1_epi32,
        };
        // SAFETY: SSE2 is unconditionally available on x86_64, and the
        // unaligned loads stay inside `entries` (4 lanes x 4 chunks = 16).
        unsafe {
            let w_full = _mm_set1_epi32(word as i32);
            let w_u3 = _mm_set1_epi32((word & 0xffff_ff00) as i32);
            let w_u2 = _mm_set1_epi32((word & 0xffff_0000) as i32);
            let m3 = _mm_set1_epi32(0xffff_ff00u32 as i32);
            let m2 = _mm_set1_epi32(0xffff_0000u32 as i32);
            let mut full = 0u32;
            let mut upper3 = 0u32;
            let mut upper2 = 0u32;
            for i in 0..DICT_ENTRIES / 4 {
                let e = _mm_loadu_si128(self.entries.as_ptr().add(4 * i).cast::<__m128i>());
                let f = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(e, w_full))) as u32;
                let a =
                    _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(_mm_and_si128(e, m3), w_u3)))
                        as u32;
                let b =
                    _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(_mm_and_si128(e, m2), w_u2)))
                        as u32;
                full |= f << (4 * i);
                upper3 |= a << (4 * i);
                upper2 |= b << (4 * i);
            }
            (full, upper3, upper2)
        }
    }

    /// Portable fallback of [`match_masks`](Self::match_masks)
    /// (identical bitmaps).
    #[cfg(not(target_arch = "x86_64"))]
    fn match_masks(&self, word: u32) -> (u32, u32, u32) {
        let mut full = 0u32;
        let mut upper3 = 0u32;
        let mut upper2 = 0u32;
        for (i, &e) in self.entries.iter().enumerate() {
            let x = e ^ word;
            full |= u32::from(x == 0) << i;
            upper3 |= u32::from(x & 0xffff_ff00 == 0) << i;
            upper2 |= u32::from(x & 0xffff_0000 == 0) << i;
        }
        (full, upper3, upper2)
    }
}

/// The C-PACK block compressor.
///
/// ```
/// use slc_compress::{BlockCompressor, cpack::Cpack};
///
/// let cpack = Cpack::new();
/// // A block repeating one word: first word is a miss, the rest are
/// // 6-bit full dictionary matches.
/// let mut block = [0u8; 128];
/// for c in block.chunks_exact_mut(4) {
///     c.copy_from_slice(&0xCAFE_F00Du32.to_le_bytes());
/// }
/// let c = cpack.compress(&block);
/// assert_eq!(c.size_bits(), 34 + 31 * 6);
/// assert_eq!(cpack.decompress(&c), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Cpack {
    _private: (),
}

impl Cpack {
    /// Creates a C-PACK codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies `word` and forms its complete wire token in one cascade:
    /// `(bits, width, push)` where `bits`/`width` are the fused
    /// prefix+index+literal encoding ready for a single writer `write`
    /// and `push` says whether the decoder will push the word into its
    /// FIFO. Widths are unique per code, so they double as the code
    /// identity (see [`CpackCode::size_bits`]).
    fn token(dict: &Dictionary, word: u32) -> (u64, u32, bool) {
        if word == 0 {
            return (0b00, 2, false);
        }
        if word & 0xffff_ff00 == 0 {
            // The original priority checks the full dictionary match
            // before ZZZX, but the dictionary provably never holds a value
            // in 1..=0xff (entries are 0 initially, and every pushed word
            // already failed this check, so it is >= 0x100) — a ZZZX word
            // cannot full-match, and skipping the probe is exact.
            return ((0b1101 << 8) | word as u64, 12, false);
        }
        // One whole-FIFO probe yields every granularity's bitmap; the
        // priority cascade below only inspects bitmaps.
        let (full, upper3, upper2) = dict.match_masks(word);
        if full != 0 {
            let idx = full.trailing_zeros() as u64;
            return ((0b10 << 4) | idx, 6, false);
        }
        if upper3 != 0 {
            let idx = upper3.trailing_zeros() as u64;
            ((0b1110 << 12) | (idx << 8) | (word & 0xff) as u64, 16, true)
        } else if upper2 != 0 {
            let idx = upper2.trailing_zeros() as u64;
            ((0b1100 << 20) | (idx << 16) | (word & 0xffff) as u64, 24, true)
        } else {
            ((0b01 << 32) | word as u64, 34, true)
        }
    }
}

impl BlockCompressor for Cpack {
    fn name(&self) -> &'static str {
        "cpack"
    }

    fn compress(&self, block: &Block) -> Compressed {
        let words = block_to_words(block);
        let mut dict = Dictionary::new();
        // Worst case is all-miss: 34 bits/word = 136 bytes, plus the fixed
        // writer's 8-byte flush slack.
        let mut w = FixedBitWriter::<{ 34 * WORDS_PER_BLOCK / 8 + 8 }>::new();
        for &word in &words {
            // Prefix, index and literal bits fuse into one write per word
            // (bit-identical to the field-by-field layout); the token
            // cascade already resolved which code won.
            let (bits, width, push) = Self::token(&dict, word);
            w.write(bits, width);
            if push {
                dict.push(word);
            }
        }
        let (payload, bits) = w.finish();
        if bits >= BLOCK_BITS {
            Compressed::uncompressed(block)
        } else {
            Compressed::new(bits, payload)
        }
    }

    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block) {
        if !compressed {
            out.copy_from_slice(&payload[..BLOCK_BYTES]);
            return;
        }
        let mut r = BitReader::new(payload, size_bits);
        let mut dict = Dictionary::new();
        let mut words = [0u32; WORDS_PER_BLOCK];
        for slot in words.iter_mut() {
            // One 34-bit peek covers the widest token, so prefix, index and
            // literal all come from the same window; a single skip then
            // consumes the token.
            let tok = r.peek_padded(34);
            let word = match (tok >> 32) as u32 {
                0b00 => {
                    r.skip(2);
                    0
                }
                0b01 => {
                    r.skip(34);
                    let w = tok as u32;
                    dict.push(w);
                    w
                }
                0b10 => {
                    r.skip(6);
                    dict.entries[(tok >> 28) as usize & 0xf]
                }
                _ => match (tok >> 30) as u32 & 0b11 {
                    0b00 => {
                        r.skip(24);
                        let idx = (tok >> 26) as usize & 0xf;
                        let w = (dict.entries[idx] & 0xffff_0000) | ((tok >> 10) as u32 & 0xffff);
                        dict.push(w);
                        w
                    }
                    0b01 => {
                        r.skip(12);
                        (tok >> 22) as u32 & 0xff
                    }
                    0b10 => {
                        r.skip(16);
                        let idx = (tok >> 26) as usize & 0xf;
                        let w = (dict.entries[idx] & 0xffff_ff00) | ((tok >> 18) as u32 & 0xff);
                        dict.push(w);
                        w
                    }
                    // slc-lint: allow(hot-path): corrupt-stream guard, contained by the engine's per-chunk catch_unwind
                    _ => panic!("corrupt C-PACK stream: prefix 1111"),
                },
            };
            *slot = word;
        }
        *out = words_to_block(&words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block_from_u32s(f: impl Fn(usize) -> u32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..WORDS_PER_BLOCK {
            b[i * 4..i * 4 + 4].copy_from_slice(&f(i).to_le_bytes());
        }
        b
    }

    #[test]
    fn zero_block_is_two_bits_per_word() {
        let cpack = Cpack::new();
        let c = cpack.compress(&[0u8; BLOCK_BYTES]);
        assert_eq!(c.size_bits(), 2 * WORDS_PER_BLOCK as u32);
        assert_eq!(cpack.decompress(&c), [0u8; BLOCK_BYTES]);
    }

    #[test]
    fn partial_matches_share_upper_bytes() {
        let cpack = Cpack::new();
        // Same upper 3 bytes, differing low byte: one miss then mmmx codes.
        let block = block_from_u32s(|i| 0x1234_5600 | i as u32);
        let c = cpack.compress(&block);
        assert_eq!(c.size_bits(), 34 + 31 * 16);
        assert_eq!(cpack.decompress(&c), block);
    }

    #[test]
    fn small_bytes_use_zzzx() {
        let cpack = Cpack::new();
        let block = block_from_u32s(|i| (i as u32 % 255) + 1);
        let c = cpack.compress(&block);
        assert_eq!(cpack.decompress(&c), block);
        assert_eq!(c.size_bits(), 32 * 12);
    }

    #[test]
    fn dictionary_is_fifo() {
        let cpack = Cpack::new();
        // 17 distinct upper-halves fill the 16-entry FIFO and evict the
        // first; re-encountering word 0's upper half is then a miss.
        let block = block_from_u32s(|i| {
            let base = (i as u32 % 17) << 16;
            base | 0x00ff
        });
        let c = cpack.compress(&block);
        assert_eq!(cpack.decompress(&c), block);
    }

    #[test]
    fn incompressible_falls_back() {
        let cpack = Cpack::new();
        let mut block = [0u8; BLOCK_BYTES];
        let mut state = 7u64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            *b = (state >> 40) as u8;
        }
        let c = cpack.compress(&block);
        assert_eq!(cpack.decompress(&c), block);
        // All-miss blocks cost 34 bits/word > 32: stored raw.
        assert_eq!(c.size_bits(), BLOCK_BITS);
    }

    #[test]
    fn code_sizes_match_paper_table() {
        assert_eq!(CpackCode::Zzzz.size_bits(), 2);
        assert_eq!(CpackCode::Xxxx.size_bits(), 34);
        assert_eq!(CpackCode::Mmmm.size_bits(), 6);
        assert_eq!(CpackCode::Mmxx.size_bits(), 24);
        assert_eq!(CpackCode::Zzzx.size_bits(), 12);
        assert_eq!(CpackCode::Mmmx.size_bits(), 16);
    }

    proptest! {
        #[test]
        fn prop_bitmap_probe_matches_sequential_scan(
            entries in proptest::collection::vec(any::<u32>(), DICT_ENTRIES),
            word in any::<u32>(),
        ) {
            // The bulk (SIMD on x86-64) probe must agree bit-for-bit with
            // the reference per-entry scan at every granularity.
            let mut d = Dictionary::new();
            d.entries.copy_from_slice(&entries);
            let (full, upper3, upper2) = d.match_masks(word);
            let mut rf = 0u32;
            let mut r3 = 0u32;
            let mut r2 = 0u32;
            for (i, &e) in entries.iter().enumerate() {
                rf |= u32::from(e == word) << i;
                r3 |= u32::from(e >> 8 == word >> 8) << i;
                r2 |= u32::from(e >> 16 == word >> 16) << i;
            }
            prop_assert_eq!(full, rf);
            prop_assert_eq!(upper3, r3);
            prop_assert_eq!(upper2, r2);
            // trailing_zeros reproduces the sequential `position` probe.
            prop_assert_eq!(
                (full != 0).then(|| full.trailing_zeros() as usize),
                entries.iter().position(|&e| e == word)
            );
        }

        #[test]
        fn prop_roundtrip_random(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let cpack = Cpack::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(cpack.decompress(&cpack.compress(&block)), block);
        }

        #[test]
        fn prop_roundtrip_clustered(bases in proptest::collection::vec(any::<u32>(), 1..4),
                                    picks in proptest::collection::vec((0usize..4, any::<u8>()), WORDS_PER_BLOCK)) {
            // Words drawn from a few clusters exercise every dict path.
            let cpack = Cpack::new();
            let mut block = [0u8; BLOCK_BYTES];
            for (i, &(which, low)) in picks.iter().enumerate() {
                let base = bases[which % bases.len()];
                let w = (base & 0xffff_ff00) | low as u32;
                block[i*4..i*4+4].copy_from_slice(&w.to_le_bytes());
            }
            prop_assert_eq!(cpack.decompress(&cpack.compress(&block)), block);
        }
    }
}

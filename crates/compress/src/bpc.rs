//! Bit-Plane Compression (BPC).
//!
//! Kim et al., "Bit-Plane Compression: Transforming Data for Better
//! Compression in Many-core Architectures", ISCA 2016. The SLC paper argues
//! qualitatively (Section II-A) that BPC also suffers from MAG because its
//! run-length and frequent-pattern encodings exploit the same patterns as
//! FPC/C-PACK; this implementation lets us check that claim quantitatively.
//!
//! Pipeline: delta transform over the 32 words of a block, bit-plane
//! rotation of the 31 deltas (33-bit signed), XOR of adjacent planes (DBX),
//! then per-plane pattern encoding. The exact code table below follows the
//! structure of the original (zero-run / all-zero / all-one / single-one /
//! two-consecutive-ones / raw); code assignments are this crate's own
//! prefix-free set, documented per symbol.

use crate::bitstream::{BitReader, BitWriter};
use crate::symbols::{block_to_words, words_to_block, WORDS_PER_BLOCK};
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS, BLOCK_BYTES};

/// Number of deltas per block (words - 1).
const DELTAS: usize = WORDS_PER_BLOCK - 1;

/// Number of bit planes: 33 (a delta of two 32-bit words needs 33 bits).
const PLANES: usize = 33;

/// The BPC block compressor.
///
/// ```
/// use slc_compress::{BlockCompressor, bpc::Bpc};
///
/// let bpc = Bpc::new();
/// // A linear ramp has constant deltas: all DBX planes collapse.
/// let mut block = [0u8; 128];
/// for i in 0..32 {
///     block[i * 4..i * 4 + 4].copy_from_slice(&(100 + 3 * i as u32).to_le_bytes());
/// }
/// let c = bpc.compress(&block);
/// assert!(c.size_bits() < 128);
/// assert_eq!(bpc.decompress(&c), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Bpc {
    _private: (),
}

impl Bpc {
    /// Creates a BPC codec.
    pub fn new() -> Self {
        Self::default()
    }
}

/// In-place 32×32 bit-matrix transpose (Hacker's Delight §7-3): 5 swap
/// rounds of 32-bit ops instead of the naive 32×32 single-bit walk.
fn transpose32(a: &mut [u32; 32]) {
    let mut j = 16u32;
    let mut m = 0x0000_ffffu32;
    while j != 0 {
        let mut k = 0usize;
        while k < 32 {
            let t = (a[k] ^ (a[k + j as usize] >> j)) & m;
            a[k] ^= t;
            a[k + j as usize] ^= t << j;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Computes the 31-bit DBP planes (bit `j` of plane `k` = bit `k` of
/// delta `j`) followed by the DBX transform.
///
/// The bit-plane rotation is a bit-matrix transpose: planes 0..32 come
/// from one [`transpose32`] over the deltas' low words (the row/bit
/// reversals below adapt the transpose's MSB-first orientation), and the
/// 33rd plane gathers the sign bits directly.
fn dbx_planes(words: &[u32; WORDS_PER_BLOCK]) -> [u32; PLANES] {
    let mut deltas = [0i64; DELTAS];
    for i in 0..DELTAS {
        deltas[i] = words[i + 1] as i64 - words[i] as i64;
    }
    let mut m = [0u32; 32];
    for (j, &d) in deltas.iter().enumerate() {
        m[31 - j] = d as u32;
    }
    transpose32(&mut m);
    let mut dbp = [0u32; PLANES];
    for k in 0..32 {
        dbp[k] = m[31 - k];
    }
    let mut top = 0u32;
    for (j, &d) in deltas.iter().enumerate() {
        top |= (((d >> 32) & 1) as u32) << j;
    }
    dbp[PLANES - 1] = top;
    let mut dbx = [0u32; PLANES];
    dbx[PLANES - 1] = dbp[PLANES - 1];
    for k in 0..PLANES - 1 {
        dbx[k] = dbp[k] ^ dbp[k + 1];
    }
    dbx
}

/// Inverts [`dbx_planes`]: reconstructs the words from base + planes.
fn undo_dbx(base: u32, dbx: &[u32; PLANES]) -> [u32; WORDS_PER_BLOCK] {
    let mut dbp = [0u32; PLANES];
    dbp[PLANES - 1] = dbx[PLANES - 1];
    for k in (0..PLANES - 1).rev() {
        dbp[k] = dbx[k] ^ dbp[k + 1];
    }
    // Transpose the 32 low planes back into the deltas' low words; bit 32
    // comes from the top plane and sign-extends the rest.
    let mut m = [0u32; 32];
    for (k, &plane) in dbp[..32].iter().enumerate() {
        m[31 - k] = plane;
    }
    transpose32(&mut m);
    let mut words = [0u32; WORDS_PER_BLOCK];
    words[0] = base;
    for j in 0..DELTAS {
        let low = m[31 - j] as u64;
        let bit32 = ((dbp[PLANES - 1] >> j) & 1) as u64;
        let d = ((bit32 << 32) | low) as i64;
        // Sign-extend from bit 32.
        let d = (d << (64 - PLANES)) >> (64 - PLANES);
        words[j + 1] = (words[j] as i64 + d) as u32;
    }
    words
}

const PLANE_MASK: u32 = (1u32 << DELTAS) - 1;

fn write_plane_run(w: &mut BitWriter, run: u32) {
    if run == 1 {
        w.write(0b01, 2); // single all-zero plane
    } else {
        // Zero-run of 2..=33 planes: '001' + 5-bit length, one write.
        w.write(u64::from((0b001 << 5) | (run - 2)), 8);
    }
}

impl BlockCompressor for Bpc {
    fn name(&self) -> &'static str {
        "bpc"
    }

    fn compress(&self, block: &Block) -> Compressed {
        let words = block_to_words(block);
        let dbx = dbx_planes(&words);
        let mut w = BitWriter::new();
        // Base word: '00' zero | '01' + 16 LSBs when upper half zero | '1' + raw.
        let base = words[0];
        if base == 0 {
            w.write(0b00, 2);
        } else if base <= 0xffff {
            w.write((0b01 << 16) | base as u64, 18);
        } else {
            w.write((1 << 32) | base as u64, 33);
        }
        let mut k = 0;
        while k < PLANES {
            let plane = dbx[k];
            if plane == 0 {
                let mut run = 1;
                while k + run < PLANES && dbx[k + run] == 0 && run < PLANES {
                    run += 1;
                }
                write_plane_run(&mut w, run as u32);
                k += run;
                continue;
            }
            if plane == PLANE_MASK {
                w.write(0b0001, 4);
            } else if plane.count_ones() == 1 {
                w.write(u64::from((0b00001 << 5) | plane.trailing_zeros()), 10);
            } else if plane.count_ones() == 2 && (plane >> plane.trailing_zeros()) == 0b11 {
                w.write(u64::from((0b000001 << 5) | plane.trailing_zeros()), 11);
            } else {
                w.write((1 << DELTAS) | u64::from(plane), 1 + DELTAS as u32);
            }
            k += 1;
        }
        let (payload, bits) = w.finish();
        if bits >= BLOCK_BITS {
            Compressed::uncompressed(block)
        } else {
            Compressed::new(bits, payload)
        }
    }

    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block) {
        if !compressed {
            out.copy_from_slice(&payload[..BLOCK_BYTES]);
            return;
        }
        let mut r = BitReader::new(payload, size_bits);
        let base = if r.read_bit() {
            r.read(32) as u32
        } else if r.read_bit() {
            r.read(16) as u32
        } else {
            0
        };
        let mut dbx = [0u32; PLANES];
        let mut k = 0;
        while k < PLANES {
            // One 6-bit peek resolves any prefix; one read then fetches
            // prefix + payload together.
            let p = r.peek_padded(6) as u32;
            if p & 0b100000 != 0 {
                // '1' + raw plane
                dbx[k] = r.read(1 + DELTAS as u32) as u32 & PLANE_MASK;
                k += 1;
            } else if p & 0b010000 != 0 {
                // '01': single zero plane
                r.skip(2);
                k += 1;
            } else if p & 0b001000 != 0 {
                // '001' + 5: zero run
                let run = (r.read(8) as usize & 0x1f) + 2;
                k += run;
            } else if p & 0b000100 != 0 {
                // '0001': all ones
                r.skip(4);
                dbx[k] = PLANE_MASK;
                k += 1;
            } else if p & 0b000010 != 0 {
                // '00001' + 5: single one
                let pos = r.read(10) as u32 & 0x1f;
                dbx[k] = 1 << pos;
                k += 1;
            } else if p & 0b000001 != 0 {
                // '000001' + 5: two consecutive ones
                let pos = r.read(11) as u32 & 0x1f;
                dbx[k] = 0b11 << pos;
                k += 1;
            } else {
                // slc-lint: allow(hot-path): corrupt-stream guard, contained by the engine's per-chunk catch_unwind
                panic!("corrupt BPC stream: prefix 000000");
            }
        }
        *out = words_to_block(&undo_dbx(base, &dbx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block_from_u32s(f: impl Fn(usize) -> u32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..WORDS_PER_BLOCK {
            b[i * 4..i * 4 + 4].copy_from_slice(&f(i).to_le_bytes());
        }
        b
    }

    #[test]
    fn zero_block_is_tiny() {
        let bpc = Bpc::new();
        let c = bpc.compress(&[0u8; BLOCK_BYTES]);
        // base '00' + one zero-run of 33 planes (3 + 5 bits) = 10 bits.
        assert_eq!(c.size_bits(), 10);
        assert_eq!(bpc.decompress(&c), [0u8; BLOCK_BYTES]);
    }

    #[test]
    fn linear_ramp_collapses() {
        let bpc = Bpc::new();
        let block = block_from_u32s(|i| 1_000_000 + 17 * i as u32);
        let c = bpc.compress(&block);
        assert!(c.size_bits() < 128, "ramp should collapse, got {} bits", c.size_bits());
        assert_eq!(bpc.decompress(&c), block);
    }

    #[test]
    fn negative_deltas_roundtrip() {
        let bpc = Bpc::new();
        let block = block_from_u32s(|i| 5_000_000u32.wrapping_sub(123 * i as u32));
        let c = bpc.compress(&block);
        assert_eq!(bpc.decompress(&c), block);
    }

    #[test]
    fn wrapping_word_values_roundtrip() {
        let bpc = Bpc::new();
        let block = block_from_u32s(|i| if i % 2 == 0 { u32::MAX } else { 0 });
        let c = bpc.compress(&block);
        assert_eq!(bpc.decompress(&c), block);
    }

    #[test]
    fn random_block_falls_back_to_raw() {
        let bpc = Bpc::new();
        let mut block = [0u8; BLOCK_BYTES];
        let mut state = 42u64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 48) as u8;
        }
        let c = bpc.compress(&block);
        assert_eq!(bpc.decompress(&c), block);
        // 33 mostly-raw planes exceed the block size.
        assert_eq!(c.size_bits(), BLOCK_BITS);
    }

    #[test]
    fn two_consecutive_ones_plane_roundtrips() {
        // Regression: the '000001' code's decoder must consume its full
        // 6-bit prefix. Craft deltas so one DBX plane is exactly two
        // adjacent ones: words 0,1,3,1,1,... gives deltas +1,+2,-2,0,...
        let bpc = Bpc::new();
        let mut block = [0u8; BLOCK_BYTES];
        let words: Vec<u32> = (0..WORDS_PER_BLOCK as u32)
            .map(|i| match i {
                0 => 0,
                1 => 1,
                2 => 3,
                _ => 1,
            })
            .collect();
        for (i, w) in words.iter().enumerate() {
            block[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        let c = bpc.compress(&block);
        assert_eq!(bpc.decompress(&c), block);
    }

    #[test]
    fn dbx_is_involutive() {
        let words = {
            let mut w = [0u32; WORDS_PER_BLOCK];
            for (i, v) in w.iter_mut().enumerate() {
                *v = (i as u32).wrapping_mul(0x9e37_79b9);
            }
            w
        };
        let dbx = dbx_planes(&words);
        assert_eq!(undo_dbx(words[0], &dbx), words);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_random(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let bpc = Bpc::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(bpc.decompress(&bpc.compress(&block)), block);
        }

        #[test]
        fn prop_roundtrip_smooth(start in any::<u32>(), step in 0u32..1024,
                                 noise in proptest::collection::vec(0u32..4, WORDS_PER_BLOCK)) {
            let bpc = Bpc::new();
            let mut block = [0u8; BLOCK_BYTES];
            for i in 0..WORDS_PER_BLOCK {
                let v = start.wrapping_add(step * i as u32).wrapping_add(noise[i]);
                block[i*4..i*4+4].copy_from_slice(&v.to_le_bytes());
            }
            let c = bpc.compress(&block);
            prop_assert_eq!(bpc.decompress(&c), block);
        }

        #[test]
        fn prop_transform_roundtrip(words in proptest::collection::vec(any::<u32>(), WORDS_PER_BLOCK)) {
            let mut arr = [0u32; WORDS_PER_BLOCK];
            arr.copy_from_slice(&words);
            let dbx = dbx_planes(&arr);
            prop_assert_eq!(undo_dbx(arr[0], &dbx), arr);
        }
    }
}

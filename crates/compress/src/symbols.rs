//! Symbol views of a memory block.
//!
//! E2MC (and SLC on top of it) encodes a 128 B block as 64 **16-bit
//! symbols**; FPC/C-PACK/BPC work on 32-bit words. These helpers convert
//! between the byte view and the symbol/word views with a fixed
//! little-endian convention (the byte order GPUs use for `f32` data).

use crate::{Block, BLOCK_BYTES};

/// Number of 16-bit symbols per block.
pub const SYMBOLS_PER_BLOCK: usize = BLOCK_BYTES / 2;

/// Number of 32-bit words per block.
pub const WORDS_PER_BLOCK: usize = BLOCK_BYTES / 4;

/// Splits a block into its 64 little-endian 16-bit symbols.
///
/// ```
/// use slc_compress::symbols::{block_to_symbols, symbols_to_block};
///
/// let mut block = [0u8; 128];
/// block[0] = 0x34;
/// block[1] = 0x12;
/// let syms = block_to_symbols(&block);
/// assert_eq!(syms[0], 0x1234);
/// assert_eq!(symbols_to_block(&syms), block);
/// ```
pub fn block_to_symbols(block: &Block) -> [u16; SYMBOLS_PER_BLOCK] {
    let mut out = [0u16; SYMBOLS_PER_BLOCK];
    for (i, chunk) in block.chunks_exact(2).enumerate() {
        out[i] = u16::from_le_bytes([chunk[0], chunk[1]]);
    }
    out
}

/// Reassembles a block from its 16-bit symbols.
pub fn symbols_to_block(symbols: &[u16; SYMBOLS_PER_BLOCK]) -> Block {
    let mut out = [0u8; BLOCK_BYTES];
    for (i, s) in symbols.iter().enumerate() {
        out[2 * i..2 * i + 2].copy_from_slice(&s.to_le_bytes());
    }
    out
}

/// Splits a block into its 32 little-endian 32-bit words.
pub fn block_to_words(block: &Block) -> [u32; WORDS_PER_BLOCK] {
    let mut out = [0u32; WORDS_PER_BLOCK];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        out[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    out
}

/// Reassembles a block from its 32-bit words.
pub fn words_to_block(words: &[u32; WORDS_PER_BLOCK]) -> Block {
    let mut out = [0u8; BLOCK_BYTES];
    for (i, w) in words.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Iterates over the 128 B blocks of a byte buffer, zero-padding the tail.
///
/// Workloads and the simulator view device arrays as sequences of blocks;
/// a trailing partial block behaves as if the allocation were padded, which
/// is how a real allocator would align it.
pub fn blocks_of(bytes: &[u8]) -> impl Iterator<Item = Block> + '_ {
    bytes.chunks(BLOCK_BYTES).map(|chunk| {
        let mut b = [0u8; BLOCK_BYTES];
        b[..chunk.len()].copy_from_slice(chunk);
        b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn symbol_layout_is_little_endian() {
        let mut block = [0u8; BLOCK_BYTES];
        block[126] = 0xcd;
        block[127] = 0xab;
        let syms = block_to_symbols(&block);
        assert_eq!(syms[63], 0xabcd);
    }

    #[test]
    fn word_layout_is_little_endian() {
        let mut block = [0u8; BLOCK_BYTES];
        block[4..8].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        let words = block_to_words(&block);
        assert_eq!(words[1], 0xdead_beef);
        assert_eq!(words_to_block(&words), block);
    }

    #[test]
    fn blocks_of_pads_tail_with_zeros() {
        let bytes = vec![0xffu8; 130];
        let blocks: Vec<Block> = blocks_of(&bytes).collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1][0], 0xff);
        assert_eq!(blocks[1][2], 0);
    }

    #[test]
    fn blocks_of_empty_is_empty() {
        assert_eq!(blocks_of(&[]).count(), 0);
    }

    proptest! {
        #[test]
        fn prop_symbol_roundtrip(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(symbols_to_block(&block_to_symbols(&block)), block);
        }

        #[test]
        fn prop_word_roundtrip(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(words_to_block(&block_to_words(&block)), block);
        }
    }
}

//! Frequent Pattern Compression (FPC).
//!
//! Alameldeen & Wood, "Frequent Pattern Compression: A Significance-Based
//! Compression Scheme for L2 Caches", UW-Madison TR, 2004 — second baseline
//! of the SLC paper's Figure 1.
//!
//! Each 32-bit word is encoded as a 3-bit prefix plus variable-length data;
//! runs of zero words collapse into a single prefix with a 3-bit run length.

use crate::bitstream::{BitReader, BitWriter};
use crate::symbols::{block_to_words, words_to_block, WORDS_PER_BLOCK};
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS, BLOCK_BYTES};

/// FPC word patterns with their 3-bit prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpcPattern {
    /// `000`: run of 1–8 zero words (3-bit run length stored).
    ZeroRun,
    /// `001`: 4-bit sign-extended.
    Se4,
    /// `010`: 8-bit sign-extended.
    Se8,
    /// `011`: 16-bit sign-extended.
    Se16,
    /// `100`: upper 16 bits significant, lower halfword zero.
    PaddedHalf,
    /// `101`: two halfwords, each a sign-extended byte.
    TwoSeBytes,
    /// `110`: four identical bytes.
    RepeatedBytes,
    /// `111`: uncompressed 32-bit word.
    Raw,
}

impl FpcPattern {
    /// The 3-bit wire prefix.
    pub fn prefix(self) -> u8 {
        match self {
            FpcPattern::ZeroRun => 0b000,
            FpcPattern::Se4 => 0b001,
            FpcPattern::Se8 => 0b010,
            FpcPattern::Se16 => 0b011,
            FpcPattern::PaddedHalf => 0b100,
            FpcPattern::TwoSeBytes => 0b101,
            FpcPattern::RepeatedBytes => 0b110,
            FpcPattern::Raw => 0b111,
        }
    }

    /// Payload bits following the prefix.
    pub fn data_bits(self) -> u32 {
        match self {
            FpcPattern::ZeroRun => 3,
            FpcPattern::Se4 => 4,
            FpcPattern::Se8 => 8,
            FpcPattern::Se16 => 16,
            FpcPattern::PaddedHalf => 16,
            FpcPattern::TwoSeBytes => 16,
            FpcPattern::RepeatedBytes => 8,
            FpcPattern::Raw => 32,
        }
    }
}

fn fits_se(word: u32, bits: u32) -> bool {
    let v = word as i32;
    let min = -(1i32 << (bits - 1));
    let max = (1i32 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

/// Classifies a single non-zero-run word.
pub fn classify_word(word: u32) -> FpcPattern {
    if fits_se(word, 4) {
        FpcPattern::Se4
    } else if fits_se(word, 8) {
        FpcPattern::Se8
    } else if fits_se(word, 16) {
        FpcPattern::Se16
    } else if word & 0xffff == 0 {
        FpcPattern::PaddedHalf
    } else if halfwords_are_se_bytes(word) {
        FpcPattern::TwoSeBytes
    } else if repeated_bytes(word) {
        FpcPattern::RepeatedBytes
    } else {
        FpcPattern::Raw
    }
}

fn halfwords_are_se_bytes(word: u32) -> bool {
    let lo = (word & 0xffff) as u16;
    let hi = (word >> 16) as u16;
    let se = |h: u16| {
        let v = h as i16;
        (-128..=127).contains(&v)
    };
    se(lo) && se(hi)
}

fn repeated_bytes(word: u32) -> bool {
    let b = word & 0xff;
    word == b * 0x0101_0101
}

/// The FPC block compressor.
///
/// ```
/// use slc_compress::{BlockCompressor, fpc::Fpc};
///
/// let fpc = Fpc::new();
/// let block = [0u8; 128]; // 32 zero words -> 4 zero-run tokens
/// let c = fpc.compress(&block);
/// assert_eq!(c.size_bits(), 4 * 6);
/// assert_eq!(fpc.decompress(&c), block);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fpc {
    _private: (),
}

impl Fpc {
    /// Creates an FPC codec.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlockCompressor for Fpc {
    fn name(&self) -> &'static str {
        "fpc"
    }

    fn compress(&self, block: &Block) -> Compressed {
        let words = block_to_words(block);
        let mut w = BitWriter::new();
        let mut i = 0;
        while i < WORDS_PER_BLOCK {
            let word = words[i];
            if word == 0 {
                let mut run = 1usize;
                while i + run < WORDS_PER_BLOCK && words[i + run] == 0 && run < 8 {
                    run += 1;
                }
                // Prefix and run length fused into one 6-bit write.
                w.write(((FpcPattern::ZeroRun.prefix() as u64) << 3) | (run as u64 - 1), 6);
                i += run;
                continue;
            }
            let p = classify_word(word);
            let data = match p {
                FpcPattern::Se4 => (word & 0xf) as u64,
                FpcPattern::Se8 | FpcPattern::RepeatedBytes => (word & 0xff) as u64,
                FpcPattern::Se16 => (word & 0xffff) as u64,
                FpcPattern::PaddedHalf => (word >> 16) as u64,
                FpcPattern::TwoSeBytes => (((word >> 16) & 0xff) << 8 | (word & 0xff)) as u64,
                FpcPattern::Raw => word as u64,
                // slc-lint: allow(hot-path): encoder invariant — zero runs were consumed by the run loop above
                FpcPattern::ZeroRun => unreachable!("zero runs handled above"),
            };
            // One write per token: 3-bit prefix immediately followed by the
            // payload (bit-identical to writing them separately).
            let bits = p.data_bits();
            w.write(((p.prefix() as u64) << bits) | data, 3 + bits);
            i += 1;
        }
        let (payload, bits) = w.finish();
        if bits >= BLOCK_BITS {
            Compressed::uncompressed(block)
        } else {
            Compressed::new(bits, payload)
        }
    }

    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block) {
        if !compressed {
            out.copy_from_slice(&payload[..BLOCK_BYTES]);
            return;
        }
        let mut r = BitReader::new(payload, size_bits);
        let mut words = [0u32; WORDS_PER_BLOCK];
        let mut i = 0;
        while i < WORDS_PER_BLOCK {
            // One 35-bit peek covers the widest token (prefix + 32 raw
            // bits): prefix and payload come from the same window, then a
            // single skip consumes the token.
            let tok = r.peek_padded(35);
            let prefix = (tok >> 32) as u8;
            let payload = |bits: u32| ((tok >> (32 - bits)) & ((1u64 << bits) - 1)) as u32;
            match prefix {
                0b000 => {
                    let run = payload(3) as usize + 1;
                    r.skip(6);
                    i += run; // words are pre-zeroed
                    continue;
                }
                0b001 => {
                    words[i] = sign_extend32(payload(4), 4);
                    r.skip(7);
                }
                0b010 => {
                    words[i] = sign_extend32(payload(8), 8);
                    r.skip(11);
                }
                0b011 => {
                    words[i] = sign_extend32(payload(16), 16);
                    r.skip(19);
                }
                0b100 => {
                    words[i] = payload(16) << 16;
                    r.skip(19);
                }
                0b101 => {
                    let data = payload(16);
                    let hi = sign_extend32(data >> 8, 8) & 0xffff;
                    let lo = sign_extend32(data & 0xff, 8) & 0xffff;
                    words[i] = (hi << 16) | lo;
                    r.skip(19);
                }
                0b110 => {
                    words[i] = payload(8) * 0x0101_0101;
                    r.skip(11);
                }
                0b111 => {
                    words[i] = payload(32);
                    r.skip(35);
                }
                // slc-lint: allow(hot-path): corrupt-stream guard, contained by the engine's per-chunk catch_unwind
                _ => unreachable!("3-bit prefix"),
            }
            i += 1;
        }
        *out = words_to_block(&words);
    }
}

fn sign_extend32(v: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((v << shift) as i32) >> shift) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block_from_u32s(f: impl Fn(usize) -> u32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..WORDS_PER_BLOCK {
            b[i * 4..i * 4 + 4].copy_from_slice(&f(i).to_le_bytes());
        }
        b
    }

    #[test]
    fn zero_block_collapses_to_runs() {
        let fpc = Fpc::new();
        let c = fpc.compress(&[0u8; BLOCK_BYTES]);
        // 32 zero words = 4 runs of 8, each 6 bits.
        assert_eq!(c.size_bits(), 24);
        assert_eq!(fpc.decompress(&c), [0u8; BLOCK_BYTES]);
    }

    #[test]
    fn classification_matches_patterns() {
        assert_eq!(classify_word(0x0000_0003), FpcPattern::Se4);
        assert_eq!(classify_word(0xffff_fffc), FpcPattern::Se4); // -4
        assert_eq!(classify_word(0x0000_007f), FpcPattern::Se8);
        assert_eq!(classify_word(0x0000_7fff), FpcPattern::Se16);
        assert_eq!(classify_word(0xabcd_0000), FpcPattern::PaddedHalf);
        assert_eq!(classify_word(0x0011_0022), FpcPattern::TwoSeBytes);
        assert_eq!(classify_word(0x5a5a_5a5a), FpcPattern::RepeatedBytes);
        assert_eq!(classify_word(0x1234_5678), FpcPattern::Raw);
    }

    #[test]
    fn negative_halfwords_roundtrip() {
        let fpc = Fpc::new();
        // halfwords 0xffe0 (-32) and 0x0010 (16): TwoSeBytes territory.
        let block = block_from_u32s(|_| 0xffe0_0010);
        assert_eq!(classify_word(0xffe0_0010), FpcPattern::TwoSeBytes);
        let c = fpc.compress(&block);
        assert_eq!(fpc.decompress(&c), block);
    }

    #[test]
    fn small_integers_compress_well() {
        let fpc = Fpc::new();
        let block = block_from_u32s(|i| i as u32 % 8);
        let c = fpc.compress(&block);
        // Mixture of zero-runs and 4-bit tokens: far below 1024 bits.
        assert!(c.size_bits() < 300, "got {}", c.size_bits());
        assert_eq!(fpc.decompress(&c), block);
    }

    #[test]
    fn incompressible_falls_back_to_raw_block() {
        let fpc = Fpc::new();
        let mut block = [0u8; BLOCK_BYTES];
        let mut state = 99u64;
        for b in block.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 33) as u8;
        }
        let c = fpc.compress(&block);
        // 32 raw words would cost 32*35 = 1120 > 1024 bits.
        assert_eq!(c.size_bits(), BLOCK_BITS);
        assert_eq!(fpc.decompress(&c), block);
    }

    #[test]
    fn zero_run_splits_at_eight() {
        let fpc = Fpc::new();
        // 9 zero words then data: run(8) + run(1) + tokens.
        let block = block_from_u32s(|i| if i < 9 { 0 } else { 0x1234_5678 });
        let c = fpc.compress(&block);
        assert_eq!(fpc.decompress(&c), block);
        assert_eq!(c.size_bits(), 6 + 6 + 23 * 35);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_random(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let fpc = Fpc::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(fpc.decompress(&fpc.compress(&block)), block);
        }

        #[test]
        fn prop_roundtrip_patterned(words in proptest::collection::vec(
            prop_oneof![
                Just(0u32),
                (0u32..16).prop_map(|v| v.wrapping_sub(8)),
                any::<u8>().prop_map(|b| b as u32 * 0x0101_0101),
                any::<u16>().prop_map(|h| (h as u32) << 16),
                any::<u32>(),
            ], WORDS_PER_BLOCK)) {
            let fpc = Fpc::new();
            let mut block = [0u8; BLOCK_BYTES];
            for (i, w) in words.iter().enumerate() {
                block[i*4..i*4+4].copy_from_slice(&w.to_le_bytes());
            }
            prop_assert_eq!(fpc.decompress(&fpc.compress(&block)), block);
        }

        #[test]
        fn prop_size_bounded(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let fpc = Fpc::new();
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert!(fpc.size_bits(&block) <= BLOCK_BITS);
        }
    }
}
